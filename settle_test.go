package sara_test

import (
	"testing"

	"sara"
	"sara/internal/sim"
	"sara/internal/traffic"
)

// TestRunEndSettlesLazyAccounting guards the Run-exit settle hook: under
// the active-ticker list a component that is dormant when the horizon
// lands is never ticked again, so every lazily-batched counter — router
// stalls, DMA injection stalls, display drain and underruns, camera fill
// and overflow — must be flushed by sim.Settler at the end of Run. The
// horizons are deliberately off every frame and adaptation boundary so
// the run ends mid-dormancy, and the counters are read through the plain
// accessors (no cycle argument), exactly as reports do.
func TestRunEndSettlesLazyAccounting(t *testing.T) {
	reproOnFailure(t, "TestRunEndSettlesLazyAccounting")
	for _, horizon := range []sim.Cycle{30011, 44777} {
		run := func(skip bool) *sara.System {
			sys := buildCaseA(sara.QoS, skip)
			sys.Run(horizon)
			return sys
		}
		ref := run(false)
		fast := run(true)
		if got := fast.Kernel().SkippedCycles(); got == 0 {
			t.Fatalf("horizon %d: no cycles skipped; the run did not exercise dormancy", horizon)
		}

		var stalls uint64
		refRouters, fastRouters := ref.Routers(), fast.Routers()
		for i := range refRouters {
			rs, fs := refRouters[i].Stalls(), fastRouters[i].Stalls()
			if rs != fs {
				t.Errorf("horizon %d: router %s stalls: reference %d, idle-skipping %d",
					horizon, refRouters[i].Name(), rs, fs)
			}
			stalls += rs
		}
		if stalls == 0 {
			t.Fatalf("horizon %d: no router stalls; the workload should backpressure", horizon)
		}

		var injectStalls uint64
		for i, u := range ref.Units() {
			rs, fs := u.Engine.Stats(), fast.Units()[i].Engine.Stats()
			if rs != fs {
				t.Errorf("horizon %d: engine %s stats:\n  reference: %+v\n  skipping:  %+v",
					horizon, u.Label(), rs, fs)
			}
			injectStalls += rs.InjectStalls
		}
		if injectStalls == 0 {
			t.Fatalf("horizon %d: no injection stalls; the workload should backpressure", horizon)
		}

		buffered := 0
		for i, u := range ref.Units() {
			switch s := u.Source.(type) {
			case *traffic.DisplaySource:
				f := fast.Units()[i].Source.(*traffic.DisplaySource)
				if s.Occupancy() != f.Occupancy() {
					t.Errorf("horizon %d: display %s occupancy: reference %v, idle-skipping %v",
						horizon, u.Label(), s.Occupancy(), f.Occupancy())
				}
				if s.UnderrunCycles != f.UnderrunCycles {
					t.Errorf("horizon %d: display %s underrun cycles: reference %d, idle-skipping %d",
						horizon, u.Label(), s.UnderrunCycles, f.UnderrunCycles)
				}
				buffered++
			case *traffic.CameraSource:
				f := fast.Units()[i].Source.(*traffic.CameraSource)
				if s.Occupancy() != f.Occupancy() {
					t.Errorf("horizon %d: camera %s occupancy: reference %v, idle-skipping %v",
						horizon, u.Label(), s.Occupancy(), f.Occupancy())
				}
				if s.OverflowBytes() != f.OverflowBytes() {
					t.Errorf("horizon %d: camera %s overflow bytes: reference %v, idle-skipping %v",
						horizon, u.Label(), s.OverflowBytes(), f.OverflowBytes())
				}
				buffered++
			}
		}
		if buffered == 0 {
			t.Fatalf("horizon %d: roster has no buffered sources to settle", horizon)
		}
	}
}
