package sara_test

import (
	"sort"
	"testing"
	"testing/quick"

	"sara"
	"sara/internal/dma"
	"sara/internal/noc"
	"sara/internal/sim"
)

// sleepWindow is one router dormancy claim: no grant occurred in [from, until).
type sleepWindow struct {
	from, until sim.Cycle
}

// TestNoMissedGrantWindows is the safety property behind the event-driven
// arbiter, as a testing/quick property over randomized configurations:
// whenever a router was asleep for cycles [a, b) — its scan did not run,
// because the dormancy window or kernel-level skipping covered the
// stretch — replaying the same configuration fully stepped (idle skipping
// off, force-scan on) must produce zero grants for that router anywhere
// in [a, b). A grant inside a sleep window is exactly the missed-grant
// bug the nextGrantAt cache could hide if both modes shared it, which is
// why the reference replay bypasses the cache entirely.
func TestNoMissedGrantWindows(t *testing.T) {
	reproOnFailure(t, "TestNoMissedGrantWindows")
	const horizon = sara.Cycle(25000)
	prop := func(seed uint64) bool {
		cfg, desc := fuzzConfig(seed)
		// This property replays the serial kernel's modes (the stepped
		// reference needs sys.Kernel(), nil on domain-parallel builds);
		// the fuzz pool's parallel differential covers the domain kernel.
		cfg.DomainWorkers = 0

		// Event-driven run: record every sleep window and every grant.
		windows := map[string][]sleepWindow{}
		noc.SetDebugSleep(func(name string, from, until sim.Cycle) {
			windows[name] = append(windows[name], sleepWindow{from, until})
		})
		var fastGrants []tracedGrant
		noc.SetDebugGrant(func(name string, now sim.Cycle, port, out int, id uint64) {
			fastGrants = append(fastGrants, tracedGrant{name, now, port, out, id})
		})
		fastSys := sara.Build(cfg)
		fastSys.Run(horizon)
		// Close each router's trailing window: a router that went dormant
		// and never scanned again before the horizon — the blocked-on-
		// credit endgame — must have that stretch checked too.
		for _, r := range fastSys.Routers() {
			r.FlushSleep(sim.Cycle(horizon))
		}
		noc.SetDebugSleep(nil)
		noc.SetDebugGrant(nil)

		// Stepped force-scan replay: the per-cycle reference grant stream.
		// The DMA injection-wake cache is bypassed too, so a stale cached
		// injection hint shifts the replay's grants into a claimed window.
		var refGrants []tracedGrant
		noc.SetForceScan(true)
		dma.SetForceScan(true)
		noc.SetDebugGrant(func(name string, now sim.Cycle, port, out int, id uint64) {
			refGrants = append(refGrants, tracedGrant{name, now, port, out, id})
		})
		refSys := sara.Build(cfg)
		refSys.Kernel().SetIdleSkip(false)
		refSys.Run(horizon)
		noc.SetForceScan(false)
		dma.SetForceScan(false)
		noc.SetDebugGrant(nil)

		// Windows are emitted in scan order, hence sorted by from.
		inWindow := func(ws []sleepWindow, c sim.Cycle) bool {
			i := sort.Search(len(ws), func(i int) bool { return ws[i].from > c })
			return i > 0 && c < ws[i-1].until
		}
		ok := true
		for _, g := range refGrants {
			if inWindow(windows[g.router], g.now) {
				t.Errorf("seed %#x (%s): stepped replay grants txn %d at router %s cycle %d inside a sleep window",
					seed, desc, g.id, g.router, g.now)
				ok = false
				break
			}
		}
		// Self-consistency: the event-driven run cannot have granted
		// inside its own claimed windows (a hook-ordering bug would).
		for _, g := range fastGrants {
			if inWindow(windows[g.router], g.now) {
				t.Errorf("seed %#x (%s): event-driven run granted txn %d at router %s cycle %d inside its own sleep window",
					seed, desc, g.id, g.router, g.now)
				ok = false
				break
			}
		}
		// The property must not pass vacuously: the run has to sleep and
		// the reference has to grant.
		if len(windows) == 0 || len(refGrants) == 0 {
			t.Errorf("seed %#x (%s): vacuous run — %d routers slept, %d reference grants",
				seed, desc, len(windows), len(refGrants))
			ok = false
		}
		return ok
	}
	cfgQuick := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfgQuick.MaxCount = 4
	}
	cfgQuick.MaxCount *= fuzzScale()
	if err := quick.Check(prop, cfgQuick); err != nil {
		t.Fatal(err)
	}
}
