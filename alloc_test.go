package sara_test

import (
	"testing"

	"sara"
)

// TestSteadyStateAllocations pins the hot path to (near) zero heap
// allocations: after warmup, simulating case A allocates nothing per
// cycle — transactions come from the pool, completion events carry a
// pointer payload through the intrusive heap, and every scratch buffer is
// reused. The budget of 2 allocs per 1000 cycles absorbs rare amortized
// slice growth (time series, queue capacity).
func TestSteadyStateAllocations(t *testing.T) {
	sys := sara.Build(sara.Camcorder(sara.CaseA, sara.WithPolicy(sara.QoS)))
	// Warm up one frame so pools, heaps and FIFOs reach steady capacity.
	sys.RunFrames(1)

	const cyclesPerRun = 1000
	allocs := testing.AllocsPerRun(50, func() {
		sys.Run(cyclesPerRun)
	})
	if allocs > 2 {
		t.Fatalf("steady state allocates %.1f times per %d cycles, want <= 2", allocs, cyclesPerRun)
	}
}

// TestSteadyStateAllocationsRefresh pins the refresh-enabled hot path:
// the refresh state machine (forced drains, opportunistic pull-in, wake
// recomputation) must run entirely on preallocated state.
func TestSteadyStateAllocationsRefresh(t *testing.T) {
	sys := sara.Build(sara.Camcorder(sara.CaseA, sara.WithPolicy(sara.QoS), sara.WithRefresh(true)))
	sys.RunFrames(1)

	allocs := testing.AllocsPerRun(50, func() {
		sys.Run(1000)
	})
	if allocs > 2 {
		t.Fatalf("refresh-enabled steady state allocates %.1f times per 1000 cycles, want <= 2", allocs)
	}
}

// TestSteadyStateAllocationsLoaded pins the saturated (non-idle) phase:
// the event-driven NoC's dormancy bookkeeping — window recomputation,
// credit wakes, stall backfill — must run entirely on preallocated state
// even when every channel is flooded and grants flow back to back.
func TestSteadyStateAllocationsLoaded(t *testing.T) {
	sys := sara.Build(sara.Saturated())
	sys.RunFrames(1)

	allocs := testing.AllocsPerRun(50, func() {
		sys.Run(1000)
	})
	if allocs > 2 {
		t.Fatalf("loaded phase allocates %.1f times per 1000 cycles, want <= 2", allocs)
	}
}

// TestSteadyStateAllocationsScaled pins the 4x scaled SoC: eight
// channels of per-bank bucket maintenance — pushes, removals, dirty
// marks, cached-bound refreshes — must run entirely on preallocated
// state even with four times the DMAs flooding the system.
func TestSteadyStateAllocationsScaled(t *testing.T) {
	sys := sara.Build(sara.ScaledSaturated(4))
	sys.RunFrames(1)

	allocs := testing.AllocsPerRun(20, func() {
		sys.Run(1000)
	})
	// The budget scales with the roster: the only steady-state allocations
	// are the amortized NPI time-series appends, and the 4x system carries
	// four times the metered units of the base case (whose budget is 2).
	if allocs > 8 {
		t.Fatalf("scaled loaded phase allocates %.1f times per 1000 cycles, want <= 8", allocs)
	}
}

// TestSteadyStateAllocationsParallel pins the domain-parallel kernel's
// steady state: the per-worker epoch loop — barrier waits, mailbox-ring
// exchange, cross-link credit returns, per-domain kernel runs — must run
// entirely on preallocated state. AllocsPerRun counts mallocs
// process-wide, so the parked worker goroutines are covered too: the
// budget is for the whole 4x system (matching the scaled serial test),
// not per worker.
func TestSteadyStateAllocationsParallel(t *testing.T) {
	sys := sara.BuildParallel(sara.ScaledSaturated(4), 2)
	if sys.Domains() == 0 {
		t.Fatalf("4x saturated config should partition")
	}
	sys.RunFrames(1)

	allocs := testing.AllocsPerRun(20, func() {
		sys.Run(1000)
	})
	if allocs > 8 {
		t.Fatalf("parallel steady state allocates %.1f times per 1000 cycles, want <= 8", allocs)
	}
}

// TestSteadyStateAllocationsReference pins the cycle-stepped reference
// path too: allocation freedom must not depend on idle skipping.
func TestSteadyStateAllocationsReference(t *testing.T) {
	sys := sara.Build(sara.Camcorder(sara.CaseA, sara.WithPolicy(sara.QoS)))
	sys.Kernel().SetIdleSkip(false)
	sys.RunFrames(1)

	allocs := testing.AllocsPerRun(20, func() {
		sys.Run(1000)
	})
	if allocs > 2 {
		t.Fatalf("reference path allocates %.1f times per 1000 cycles, want <= 2", allocs)
	}
}
