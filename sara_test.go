package sara_test

import (
	"testing"

	"sara"
)

// TestPublicAPIRoundTrip exercises the facade the examples rely on.
func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := sara.Camcorder(sara.CaseA, sara.WithPolicy(sara.QoS), sara.WithSeed(7))
	sys := sara.Build(cfg)
	sys.RunFrames(1)
	from := sys.Now()
	sys.RunFrames(1)

	min := sys.MinNPIByCore(from)
	if len(min) < 9 {
		t.Fatalf("only %d metered cores, want the Table 2 roster", len(min))
	}
	if bw := sys.DRAM().AverageBandwidthGBps(sys.Now()); bw < 5 {
		t.Fatalf("bandwidth %.2f GB/s implausibly low", bw)
	}
	if _, ok := sys.Unit("Display"); !ok {
		t.Fatal("unit lookup broken through the facade")
	}
}

// TestCustomCoreExtension mirrors examples/customcore: adding a core must
// not require changes anywhere else.
func TestCustomCoreExtension(t *testing.T) {
	cfg := sara.Camcorder(sara.CaseA, sara.WithPolicy(sara.QoS))
	cfg.DMAs = append(cfg.DMAs, sara.DMASpec{
		Core:  "NPU",
		Class: 4, // system queue
		Source: sara.SourceSpec{
			Kind:            sara.SrcChunk,
			RateBps:         0.25e9,
			ReadFrac:        0.8,
			ChunkPeriodFrac: 0.2,
			DeadlineFrac:    0.7,
		},
	})
	sys := sara.Build(cfg)
	sys.RunFrames(2)
	u, ok := sys.Unit("NPU")
	if !ok {
		t.Fatal("NPU unit missing")
	}
	if u.Engine.Stats().Completed == 0 {
		t.Fatal("NPU moved no data")
	}
}
