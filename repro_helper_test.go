package sara_test

import (
	"testing"

	"sara/internal/repro"
)

// reproOnFailure arranges for a failing test to end with the
// standardized Repro: line naming the exact go test command that reruns
// it — the same convention the sweep supervisor's RunError uses — so
// every fuzz/differential failure in CI is one copy-paste from a local
// rerun. pattern is the -run regexp selecting this test (or subtest).
func reproOnFailure(t *testing.T, pattern string) {
	t.Helper()
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("%s", repro.Line(repro.GoTest(".", pattern)))
		}
	})
}
