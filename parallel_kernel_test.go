package sara_test

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"sara"
	"sara/internal/dma"
	"sara/internal/dram"
	"sara/internal/memctrl"
	"sara/internal/noc"
	"sara/internal/sim"
)

// The domain-parallel kernel's equivalence contract: on a partitionable
// config, every worker count produces bit-identical results — aggregate
// statistics, NPI series, and the full grant / credit / DRAM-command /
// injection / injection-wake traces. workers=1 runs the partitioned
// topology serially on the calling goroutine, so it is the serial
// reference execution; 2- and N-worker runs must reproduce it exactly.
// Domains emit trace events concurrently, so the collectors lock and the
// streams are canonicalized by sorting on their full field tuple: each
// per-component stream is deterministic (a domain is single-threaded),
// so the sorted union is too.

// parSnapshot is everything one parallel run exposes for comparison.
type parSnapshot struct {
	workers int // actual goroutine count (after the divisor clamp)
	domains int

	grants  []tracedGrant
	credits []tracedCredit
	cmds    []tracedCmd
	injs    []tracedInj
	wakes   []tracedWake

	ctrls   []memctrl.Stats
	dram    []dram.ChannelStats
	engines []dma.Stats
	routers map[string][2]uint64
	npi     map[string]float64
	series  map[string][]float64
	skipped uint64
	now     sim.Cycle
}

// captureParallel builds cfg with the given worker count, drives it with
// drive, and snapshots every comparable surface. The trace hooks are
// process-global and the domains run concurrently, so collection locks.
func captureParallel(t *testing.T, cfg sara.Config, workers int, drive func(*sara.System)) parSnapshot {
	t.Helper()
	var (
		mu  sync.Mutex
		res parSnapshot
	)
	detachGrant := noc.HookGrant(func(name string, now sim.Cycle, port, out int, id uint64) {
		mu.Lock()
		res.grants = append(res.grants, tracedGrant{name, now, port, out, id})
		mu.Unlock()
	})
	defer detachGrant()
	detachCredit := noc.HookCredit(func(name string, now sim.Cycle, port int, wasFull bool) {
		mu.Lock()
		res.credits = append(res.credits, tracedCredit{name, now, port, wasFull})
		mu.Unlock()
	})
	defer detachCredit()
	detachCmd := memctrl.HookTrace(func(ch int, now sim.Cycle, id uint64, kind byte) {
		mu.Lock()
		res.cmds = append(res.cmds, tracedCmd{ch, now, id, kind})
		mu.Unlock()
	})
	defer detachCmd()
	detachInj := dma.HookInject(func(now sim.Cycle, source int, id uint64, addr uint64) {
		mu.Lock()
		res.injs = append(res.injs, tracedInj{now, source, id, addr})
		mu.Unlock()
	})
	defer detachInj()
	detachWake := dma.HookWake(func(source int, at sim.Cycle, cause byte) {
		mu.Lock()
		res.wakes = append(res.wakes, tracedWake{source, at, cause})
		mu.Unlock()
	})
	defer detachWake()

	sys := sara.BuildParallel(cfg, workers)
	if sys.Domains() == 0 {
		t.Fatalf("BuildParallel(workers=%d) fell back to the serial kernel", workers)
	}
	drive(sys)

	res.workers = sys.DomainWorkers()
	res.domains = sys.Domains()
	sortParTraces(&res)
	for _, c := range sys.Controllers() {
		res.ctrls = append(res.ctrls, c.Stats())
	}
	res.dram = append(res.dram, sys.DRAMStats().Channels...)
	res.routers = map[string][2]uint64{}
	for _, r := range sys.Routers() {
		res.routers[r.Name()] = [2]uint64{r.Forwarded(), r.Stalls()}
	}
	res.series = map[string][]float64{}
	for _, u := range sys.Units() {
		res.engines = append(res.engines, u.Engine.Stats())
		if u.Series != nil {
			res.series[u.Label()] = append([]float64(nil), u.Series.Values...)
		}
	}
	res.npi = sys.MinNPIByCore(0)
	res.skipped = sys.SkippedCycles()
	res.now = sys.Now()
	return res
}

// sortParTraces canonicalizes the concurrent trace streams: a total
// order over every field makes sorted equality a multiset comparison,
// and each per-component substream is deterministic, so the whole sorted
// stream is reproducible across worker counts.
func sortParTraces(res *parSnapshot) {
	sort.Slice(res.grants, func(i, j int) bool {
		a, b := res.grants[i], res.grants[j]
		if a.now != b.now {
			return a.now < b.now
		}
		if a.router != b.router {
			return a.router < b.router
		}
		if a.port != b.port {
			return a.port < b.port
		}
		if a.out != b.out {
			return a.out < b.out
		}
		return a.id < b.id
	})
	sort.Slice(res.credits, func(i, j int) bool {
		a, b := res.credits[i], res.credits[j]
		if a.now != b.now {
			return a.now < b.now
		}
		if a.name != b.name {
			return a.name < b.name
		}
		if a.port != b.port {
			return a.port < b.port
		}
		return !a.wasFull && b.wasFull
	})
	sort.Slice(res.cmds, func(i, j int) bool {
		a, b := res.cmds[i], res.cmds[j]
		if a.now != b.now {
			return a.now < b.now
		}
		if a.ch != b.ch {
			return a.ch < b.ch
		}
		if a.id != b.id {
			return a.id < b.id
		}
		return a.kind < b.kind
	})
	sort.Slice(res.injs, func(i, j int) bool {
		a, b := res.injs[i], res.injs[j]
		if a.now != b.now {
			return a.now < b.now
		}
		if a.src != b.src {
			return a.src < b.src
		}
		if a.id != b.id {
			return a.id < b.id
		}
		return a.addr < b.addr
	})
	sort.Slice(res.wakes, func(i, j int) bool {
		a, b := res.wakes[i], res.wakes[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.cause < b.cause
	})
}

// compareParSnapshots asserts two runs are bit-identical on every
// surface, naming the first divergence.
func compareParSnapshots(t *testing.T, label string, ref, got parSnapshot) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf("%s: ", label)
		t.Fatalf(format, args...)
	}
	if ref.domains != got.domains {
		fail("domain counts differ: %d vs %d", ref.domains, got.domains)
	}
	if ref.now != got.now {
		fail("final cycles differ: %d vs %d", ref.now, got.now)
	}
	if len(ref.grants) != len(got.grants) {
		fail("grant counts differ: %d vs %d", len(ref.grants), len(got.grants))
	}
	for i := range ref.grants {
		if ref.grants[i] != got.grants[i] {
			fail("grant %d differs: %+v vs %+v", i, ref.grants[i], got.grants[i])
		}
	}
	if len(ref.credits) != len(got.credits) {
		fail("credit counts differ: %d vs %d", len(ref.credits), len(got.credits))
	}
	for i := range ref.credits {
		if ref.credits[i] != got.credits[i] {
			fail("credit %d differs: %+v vs %+v", i, ref.credits[i], got.credits[i])
		}
	}
	if len(ref.cmds) != len(got.cmds) {
		fail("DRAM command counts differ: %d vs %d", len(ref.cmds), len(got.cmds))
	}
	for i := range ref.cmds {
		if ref.cmds[i] != got.cmds[i] {
			fail("DRAM command %d differs: %+v vs %+v", i, ref.cmds[i], got.cmds[i])
		}
	}
	if len(ref.injs) != len(got.injs) {
		fail("injection counts differ: %d vs %d", len(ref.injs), len(got.injs))
	}
	for i := range ref.injs {
		if ref.injs[i] != got.injs[i] {
			fail("injection %d differs: %+v vs %+v", i, ref.injs[i], got.injs[i])
		}
	}
	if len(ref.wakes) != len(got.wakes) {
		fail("injection-wake counts differ: %d vs %d", len(ref.wakes), len(got.wakes))
	}
	for i := range ref.wakes {
		if ref.wakes[i] != got.wakes[i] {
			fail("injection-wake %d differs: %+v vs %+v", i, ref.wakes[i], got.wakes[i])
		}
	}
	for i := range ref.ctrls {
		if ref.ctrls[i] != got.ctrls[i] {
			fail("controller %d stats differ:\n  ref: %+v\n  got: %+v", i, ref.ctrls[i], got.ctrls[i])
		}
	}
	for i := range ref.dram {
		if ref.dram[i] != got.dram[i] {
			fail("DRAM channel %d stats differ:\n  ref: %+v\n  got: %+v", i, ref.dram[i], got.dram[i])
		}
	}
	for i := range ref.engines {
		if ref.engines[i] != got.engines[i] {
			fail("engine %d stats differ:\n  ref: %+v\n  got: %+v", i, ref.engines[i], got.engines[i])
		}
	}
	if len(ref.routers) != len(got.routers) {
		fail("router sets differ: %d vs %d", len(ref.routers), len(got.routers))
	}
	for name, rv := range ref.routers {
		if gv, ok := got.routers[name]; !ok || gv != rv {
			fail("router %q stats differ: %v vs %v", name, rv, got.routers[name])
		}
	}
	for core, rv := range ref.npi {
		if gv, ok := got.npi[core]; !ok || gv != rv {
			fail("core %q min NPI differs: %v vs %v", core, rv, got.npi[core])
		}
	}
	if len(ref.npi) != len(got.npi) {
		fail("NPI core sets differ: %d vs %d", len(ref.npi), len(got.npi))
	}
	for label2, rv := range ref.series {
		gv := got.series[label2]
		if len(rv) != len(gv) {
			fail("series %q lengths differ: %d vs %d", label2, len(rv), len(gv))
		}
		for i := range rv {
			if rv[i] != gv[i] {
				fail("series %q sample %d differs: %v vs %v", label2, i, rv[i], gv[i])
			}
		}
	}
	if ref.skipped != got.skipped {
		fail("skipped-cycle totals differ: %d vs %d", ref.skipped, got.skipped)
	}
}

// crossDomainGrants counts grants at channel-ingress routers coming from
// a remote domain's port — proof the run actually exercised the
// inter-domain mailboxes rather than degenerating to local traffic.
func crossDomainGrants(s parSnapshot) int {
	n := 0
	for _, g := range s.grants {
		var ch int
		if _, err := fmt.Sscanf(g.router, "chan%d", &ch); err == nil && g.port != ch {
			n++
		}
	}
	return n
}

// TestParallelWorkerCountEquivalence is the headline differential: the
// partitioned topology at 1, 2 and 4 workers (clamped to the channel
// count's divisors) over the 1x/2x/4x saturated SoCs must be
// bit-identical on every trace and statistic.
func TestParallelWorkerCountEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		cfg     sara.Config
		horizon sim.Cycle
	}{
		{"1x", sara.Saturated(), 20000},
		{"2x", sara.ScaledSaturated(2), 14000},
		{"4x", sara.ScaledSaturated(4), 10000},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			drive := func(s *sara.System) { s.Run(tc.horizon) }
			ref := captureParallel(t, tc.cfg, 1, drive)
			if ref.workers != 1 {
				t.Fatalf("reference run used %d workers, want 1", ref.workers)
			}
			if len(ref.grants) == 0 {
				t.Fatalf("vacuous run: no grants at horizon %d", tc.horizon)
			}
			if n := crossDomainGrants(ref); n == 0 {
				t.Fatalf("vacuous run: no cross-domain grants (mailboxes untested)")
			}
			for _, workers := range []int{2, 4} {
				got := captureParallel(t, tc.cfg, workers, drive)
				if got.workers < 2 {
					t.Fatalf("requested %d workers, got %d goroutines (domains=%d)",
						workers, got.workers, got.domains)
				}
				compareParSnapshots(t, tc.name, ref, got)
			}
		})
	}
}

// TestParallelRunSegmentation: cutting a run at an arbitrary (off-grid)
// horizon and resuming must be invisible — the epoch grid is absolute,
// so segmentation changes no exchange point.
func TestParallelRunSegmentation(t *testing.T) {
	cfg := sara.ScaledSaturated(2)
	one := captureParallel(t, cfg, 2, func(s *sara.System) { s.Run(8000) })
	cut := captureParallel(t, cfg, 2, func(s *sara.System) {
		s.Run(700) // off the epoch grid for every fuzzed hop latency
		s.Run(2500)
		s.Run(4800)
	})
	// Idle-skip accounting is boundary-sensitive — the settle at a cut
	// point executes cycles an uncut run would have skipped — and is
	// scheduler bookkeeping, not a simulation result. Everything else
	// must match exactly.
	cut.skipped = one.skipped
	compareParSnapshots(t, "segmented", one, cut)
}

// TestParallelFallback: unpartitionable configs and the serial default
// degrade gracefully to the serial kernel, unchanged.
func TestParallelFallback(t *testing.T) {
	// Hop latency pushes the lookahead past the response latency: a
	// completion could outrun the barrier, so Partition refuses.
	cfg := sara.Camcorder(sara.CaseA, sara.WithDomainWorkers(4))
	cfg.NoC.HopLatency = cfg.NoC.RespLatency // lookahead = resp+1 > resp
	sys := sara.Build(cfg)
	if sys.Domains() != 0 {
		t.Fatalf("unpartitionable config built %d domains, want serial fallback", sys.Domains())
	}
	if sys.Kernel() == nil {
		t.Fatalf("serial fallback has no kernel")
	}

	// DomainWorkers <= 1 selects the serial kernel outright.
	serial := sara.Build(sara.Camcorder(sara.CaseA, sara.WithDomainWorkers(1)))
	if serial.Domains() != 0 {
		t.Fatalf("DomainWorkers=1 built %d domains, want serial", serial.Domains())
	}

	// The partitioned build clamps workers to a divisor of the domain
	// count, never changing the topology (results stay machine-independent
	// when a budget caps the goroutine count).
	par := sara.BuildParallel(sara.ScaledSaturated(4), 3)
	channels := par.Config().DRAM.Geometry.Channels
	if par.Domains() != channels {
		t.Fatalf("got %d domains, want one per channel (%d)", par.Domains(), channels)
	}
	if par.DomainWorkers() != 2 {
		t.Fatalf("8 domains at 3 requested workers: got %d, want divisor clamp to 2", par.DomainWorkers())
	}
}

// TestParallelWatchdog: the boundary watchdog bounds a checked parallel
// run, and a tripped run poisons the System (the epoch exchange stopped
// mid-flight, so its state is no longer trustworthy).
func TestParallelWatchdog(t *testing.T) {
	sys := sara.BuildParallel(sara.ScaledSaturated(2), 2)
	sys.SetWatchdog(&sara.Watchdog{MaxExecuted: 500})
	err := sys.RunChecked(1 << 20)
	var dl *sara.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("RunChecked under a 500-cycle budget: got %v, want DeadlockError", err)
	}
	if err2 := sys.RunChecked(10); err2 == nil {
		t.Fatalf("tripped parallel system accepted another run")
	}
}
