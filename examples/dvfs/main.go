// DVFS: the Fig. 7 experiment. As DRAM frequency is scaled down from
// 1700 to 1300 MT/s, the image processor's priority-based self-adaptation
// compensates for the shrinking memory capacity by spending more time at
// high priority levels — the core keeps its frame rate, and the priority
// distribution is the visible fingerprint of the adaptation at work.
package main

import (
	"fmt"
	"strings"

	"sara"
)

func main() {
	hists := sara.Fig7(sara.ExpOptions{ScaleDiv: 256})

	fmt.Println("Image Proc. time share per priority level (0 = lowest urgency)")
	fmt.Println()
	fmt.Printf("%9s  %s\n", "DRAM", "levels 0..7")
	for _, h := range hists {
		fmt.Printf("%5d MT/s", h.DataRateMTps)
		for _, f := range h.Fraction {
			fmt.Printf(" %5.1f%%", 100*f)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("share of time at the two lowest vs two highest levels:")
	for _, h := range hists {
		lo := int(h.LowShare()*40 + 0.5)
		hi := int(h.HighShare()*40 + 0.5)
		fmt.Printf("%5d MT/s  low %-40s high %s\n",
			h.DataRateMTps, strings.Repeat("#", lo), strings.Repeat("#", hi))
	}
}
