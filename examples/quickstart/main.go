// Quickstart: build the paper's camcorder use case (test case A), run one
// frame under SARA's priority-based QoS policy, and check every core's
// health. This is the smallest complete use of the public API.
package main

import (
	"fmt"
	"sort"

	"sara"
)

func main() {
	// Test case A: all thirteen heterogeneous cores active, LPDDR4 at
	// 1866 MT/s. ScaleDiv 256 shrinks the 33 ms frame for a fast demo.
	cfg := sara.Camcorder(sara.CaseA,
		sara.WithPolicy(sara.QoS),
		sara.WithScaleDiv(256))

	sys := sara.Build(cfg)

	// One warmup frame, then one measured frame.
	sys.RunFrames(1)
	measureFrom := sys.Now()
	sys.RunFrames(1)

	fmt.Printf("simulated %d cycles, DRAM bandwidth %.2f GB/s, row-hit rate %.2f\n\n",
		sys.Now(), sys.DRAM().AverageBandwidthGBps(sys.Now()), sys.DRAM().RowHitRate())

	// Each core self-monitors its own notion of QoS; NPI >= 1 means the
	// target is met (Section 3.1 of the paper).
	min := sys.MinNPIByCore(measureFrom)
	cores := make([]string, 0, len(min))
	for c := range min {
		cores = append(cores, c)
	}
	sort.Strings(cores)
	for _, c := range cores {
		status := "ok"
		if min[c] < 1 {
			status = "BELOW TARGET"
		}
		fmt.Printf("%-14s min NPI %6.3f  %s\n", c, min[c], status)
	}
}
