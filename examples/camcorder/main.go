// Camcorder: the paper's headline comparison (Figs. 5 and 6). Runs the
// camcorder workload under all four arbitration policies for both test
// cases and prints which critical cores miss their targets under each —
// showing that only the priority-based QoS policy delivers every target.
package main

import (
	"fmt"
	"strings"

	"sara"
	"sara/internal/exp"
)

func main() {
	opt := sara.ExpOptions{ScaleDiv: 256}

	fmt.Println("test case A (all cores, LPDDR4-1866)")
	fmt.Println(strings.Repeat("-", 60))
	for _, run := range sara.Fig5(opt) {
		report(run)
	}

	fmt.Println()
	fmt.Println("test case B (GPS/camera/rotator/JPEG off, LPDDR4-1700)")
	fmt.Println(strings.Repeat("-", 60))
	for _, run := range sara.Fig6(opt) {
		report(run)
	}
}

func report(run sara.PolicyRun) {
	failures := run.Failures()
	verdict := "all critical cores meet their targets"
	if len(failures) > 0 {
		verdict = "BELOW TARGET: " + strings.Join(failures, ", ")
	}
	fmt.Printf("%-10s bw %5.2f GB/s   %s\n", run.Policy, run.BandwidthGBps, verdict)
	_ = exp.FormatRun // full per-core tables available via exp.FormatRun(run)
}
