// Customcore: extending SARA with a user-defined core. The paper's §3.1
// argues that distributed self-monitoring makes the system extensible —
// "a new core can be added or modified without updating the rest of the
// system." This example adds a neural accelerator ("NPU") to test case A:
// a work-chunk engine with a processing-time deadline, a custom
// NPI-to-priority table, and its own bandwidth appetite. Nothing else in
// the system changes.
package main

import (
	"fmt"
	"sort"

	"sara"
	"sara/internal/txn"
)

func main() {
	cfg := sara.Camcorder(sara.CaseA,
		sara.WithPolicy(sara.QoS),
		sara.WithScaleDiv(256))

	// The NPU joins the system queue: inference tiles arrive every tenth
	// of a frame and must finish within 60% of their period. Its custom
	// LUT escalates aggressively — an accelerator stalled on memory
	// wastes a large fixed power budget.
	cfg.DMAs = append(cfg.DMAs, sara.DMASpec{
		Core:      "NPU",
		Class:     txn.ClassSystem,
		Critical:  true,
		Window:    16,
		LUTBounds: []float64{1.6, 1.4, 1.25, 1.15, 1.05, 1.0, 0.9, 0},
		Source: sara.SourceSpec{
			Kind:            sara.SrcChunk,
			RateBps:         0.5e9,
			ReadFrac:        0.8,
			ChunkPeriodFrac: 0.2,
			DeadlineFrac:    0.7,
		},
	})

	sys := sara.Build(cfg)
	sys.RunFrames(1)
	from := sys.Now()
	sys.RunFrames(1)

	fmt.Println("with the NPU added, under SARA's priority-based QoS policy:")
	min := sys.MinNPIByCore(from)
	fmt.Printf("  NPU min NPI: %.3f\n", min["NPU"])

	cores := make([]string, 0, len(min))
	for core := range min {
		cores = append(cores, core)
	}
	sort.Strings(cores)
	below := 0
	for _, core := range cores {
		if v := min[core]; v < 1 {
			fmt.Printf("  %-14s min NPI %.3f BELOW TARGET\n", core, v)
			below++
		}
	}
	if below == 0 {
		fmt.Println("  every other core still meets its target — the NPU")
		fmt.Println("  integrated without retuning the rest of the system")
	}

	if u, ok := sys.Unit("NPU"); ok {
		h := u.Adapter.Histogram()
		fmt.Print("  NPU priority time share:")
		for lvl := 0; lvl < h.Levels(); lvl++ {
			fmt.Printf(" %d:%.0f%%", lvl, 100*h.Fraction(lvl))
		}
		fmt.Println()
	}
}
