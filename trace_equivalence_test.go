package sara_test

import (
	"testing"

	"sara"
	"sara/internal/dma"
	"sara/internal/memctrl"
	"sara/internal/noc"
	"sara/internal/sim"
)

// The aggregate equivalence tests compare end-of-run statistics; these
// compare the full command and injection streams, so an idle-skipping bug
// that reorders work without changing totals cannot hide.

type tracedCmd struct {
	ch   int
	now  sim.Cycle
	id   uint64
	kind byte
}

type tracedInj struct {
	now  sim.Cycle
	src  int
	id   uint64
	addr uint64
}

func runTraced(policy sara.Policy, skip bool, cycles sim.Cycle) ([]tracedCmd, []tracedInj) {
	var cmds []tracedCmd
	var injs []tracedInj
	memctrl.SetDebugTrace(func(ch int, now sim.Cycle, id uint64, kind byte) {
		cmds = append(cmds, tracedCmd{ch, now, id, kind})
	})
	dma.SetDebugInject(func(now sim.Cycle, src int, id uint64, addr uint64) {
		injs = append(injs, tracedInj{now, src, id, addr})
	})
	defer memctrl.SetDebugTrace(nil)
	defer dma.SetDebugInject(nil)
	sys := sara.Build(sara.Camcorder(sara.CaseA, sara.WithPolicy(policy)))
	sys.Kernel().SetIdleSkip(skip)
	sys.Run(cycles)
	return cmds, injs
}

// TestIdleSkipTraceEquivalence asserts that the idle-skipping kernel
// issues the exact same DRAM command stream and DMA injection stream —
// same transactions, same cycles, same order — as the cycle-stepped
// reference.
func TestIdleSkipTraceEquivalence(t *testing.T) {
	const horizon = 60000
	for _, policy := range []sara.Policy{sara.QoS, sara.FRFCFS} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			refCmds, refInjs := runTraced(policy, false, horizon)
			fastCmds, fastInjs := runTraced(policy, true, horizon)

			if len(refCmds) != len(fastCmds) {
				t.Fatalf("command counts differ: %d vs %d", len(refCmds), len(fastCmds))
			}
			for i := range refCmds {
				if refCmds[i] != fastCmds[i] {
					t.Fatalf("command %d differs: reference %+v, idle-skipping %+v",
						i, refCmds[i], fastCmds[i])
				}
			}
			if len(refInjs) != len(fastInjs) {
				t.Fatalf("injection counts differ: %d vs %d", len(refInjs), len(fastInjs))
			}
			for i := range refInjs {
				if refInjs[i] != fastInjs[i] {
					t.Fatalf("injection %d differs: reference %+v, idle-skipping %+v",
						i, refInjs[i], fastInjs[i])
				}
			}
			if len(refCmds) == 0 || len(refInjs) == 0 {
				t.Fatal("empty traces; the system did not run")
			}
		})
	}
}

// TestIdleSkipStallAccounting expands the routers' batched stall events
// into per-cycle stall sets and compares them against the cycle-stepped
// reference: deferred accrual may land later, but every stalled cycle
// must be attributed to the same cycle in both modes.
func TestIdleSkipStallAccounting(t *testing.T) {
	type ev struct {
		now      sim.Cycle
		n        uint64
		backfill bool
	}
	run := func(skip bool) map[string][]ev {
		out := map[string][]ev{}
		noc.SetDebugStall(func(name string, now sim.Cycle, n uint64, backfill bool) {
			out[name] = append(out[name], ev{now, n, backfill})
		})
		defer noc.SetDebugStall(nil)
		sys := sara.Build(sara.Camcorder(sara.CaseA, sara.WithPolicy(sara.QoS)))
		sys.Kernel().SetIdleSkip(skip)
		sys.RunFrames(2)
		return out
	}
	expand := func(evs []ev) map[sim.Cycle]bool {
		set := map[sim.Cycle]bool{}
		for _, e := range evs {
			if !e.backfill {
				set[e.now] = true
				continue
			}
			for c := e.now - sim.Cycle(e.n); c < e.now; c++ {
				set[c] = true
			}
		}
		return set
	}
	ref := run(false)
	fast := run(true)
	for name := range ref {
		rs, fs := expand(ref[name]), expand(fast[name])
		if len(rs) == 0 {
			t.Fatalf("router %s recorded no stalls; the workload should backpressure", name)
		}
		for c := range rs {
			if !fs[c] {
				t.Errorf("router %s: reference stalls at cycle %d, idle-skipping does not", name, c)
			}
		}
		for c := range fs {
			if !rs[c] {
				t.Errorf("router %s: idle-skipping stalls at cycle %d, reference does not", name, c)
			}
		}
	}
}
