package sara_test

import (
	"testing"

	"sara"
	"sara/internal/dma"
	"sara/internal/memctrl"
	"sara/internal/noc"
	"sara/internal/sim"
)

// The aggregate equivalence tests compare end-of-run statistics; these
// compare the full command and injection streams, so an idle-skipping bug
// that reorders work without changing totals cannot hide.

type tracedCmd struct {
	ch   int
	now  sim.Cycle
	id   uint64
	kind byte
}

type tracedInj struct {
	now  sim.Cycle
	src  int
	id   uint64
	addr uint64
}

type tracedGrant struct {
	router string
	now    sim.Cycle
	port   int
	out    int
	id     uint64
}

// tracedCredit is one credit-side event: a router input-port pop (wasFull
// marks pops that actually returned a credit upstream) or a controller
// class-queue release (name "mcN", port = class, always wasFull).
type tracedCredit struct {
	name    string
	now     sim.Cycle
	port    int
	wasFull bool
}

// tracedWake is one DMA injection-wake re-arm: engine src re-armed its
// cached next-injection cycle to at because of cause ('D' delivery, 'C'
// port credit). Enqueues are not part of this stream: they leave the
// engine's cached wake alone — the Tick gate reads the live queue — and
// only nudge the kernel's wake-heap entry so the active-ticker list runs
// that Tick in the enqueue cycle. The re-arm stream is pure behavior, so
// a stale or missing wake diverges it instead of silently stalling a
// core.
type tracedWake struct {
	src   int
	at    sim.Cycle
	cause byte
}

type traces struct {
	cmds    []tracedCmd
	injs    []tracedInj
	grants  []tracedGrant
	credits []tracedCredit
	wakes   []tracedWake
}

// traceMode selects one leg of the trace differential.
type traceMode int

const (
	// traceStepped is the cycle-stepped reference: idle skipping off and
	// every dormancy cache bypassed (noc, memctrl and dma force scans),
	// so a stale cached grant window, bucket bound or injection wake
	// diverges the trace instead of being shared by both modes.
	traceStepped traceMode = iota
	// traceSkipHeap is the production path: idle skipping driven by the
	// kernel's indexed wake heap.
	traceSkipHeap
	// traceSkipPoll is the legacy skipping reference: idle skipping on,
	// but the fast-forward target computed by the sim.SetForcePoll
	// linear sweep over every NextActivity hint. Comparing it against
	// both other modes isolates wake-heap bugs from hint bugs.
	traceSkipPoll
)

func runTraced(policy sara.Policy, mode traceMode, refresh bool, cycles sim.Cycle) traces {
	var tr traces
	stepped := mode == traceStepped
	noc.SetForceScan(stepped)
	memctrl.SetForceScan(stepped)
	dma.SetForceScan(stepped)
	sim.SetForcePoll(mode == traceSkipPoll)
	defer noc.SetForceScan(false)
	defer memctrl.SetForceScan(false)
	defer dma.SetForceScan(false)
	defer sim.SetForcePoll(false)
	memctrl.SetDebugTrace(func(ch int, now sim.Cycle, id uint64, kind byte) {
		tr.cmds = append(tr.cmds, tracedCmd{ch, now, id, kind})
	})
	dma.SetDebugInject(func(now sim.Cycle, src int, id uint64, addr uint64) {
		tr.injs = append(tr.injs, tracedInj{now, src, id, addr})
	})
	dma.SetDebugWake(func(src int, at sim.Cycle, cause byte) {
		tr.wakes = append(tr.wakes, tracedWake{src, at, cause})
	})
	noc.SetDebugGrant(func(name string, now sim.Cycle, port, out int, id uint64) {
		tr.grants = append(tr.grants, tracedGrant{name, now, port, out, id})
	})
	noc.SetDebugCredit(func(name string, now sim.Cycle, port int, wasFull bool) {
		tr.credits = append(tr.credits, tracedCredit{name, now, port, wasFull})
	})
	defer memctrl.SetDebugTrace(nil)
	defer dma.SetDebugInject(nil)
	defer dma.SetDebugWake(nil)
	defer noc.SetDebugGrant(nil)
	defer noc.SetDebugCredit(nil)
	sys := sara.Build(sara.Camcorder(sara.CaseA,
		sara.WithPolicy(policy), sara.WithRefresh(refresh)))
	sys.Kernel().SetIdleSkip(!stepped)
	sys.Run(cycles)
	return tr
}

// compareTraces asserts the full command, injection and NoC grant streams
// are bit-identical between the cycle-stepped reference and the
// idle-skipping run.
func compareTraces(t *testing.T, ref, fast traces) {
	t.Helper()
	if len(ref.cmds) != len(fast.cmds) {
		t.Fatalf("command counts differ: %d vs %d", len(ref.cmds), len(fast.cmds))
	}
	for i := range ref.cmds {
		if ref.cmds[i] != fast.cmds[i] {
			t.Fatalf("command %d differs: reference %+v, idle-skipping %+v",
				i, ref.cmds[i], fast.cmds[i])
		}
	}
	if len(ref.injs) != len(fast.injs) {
		t.Fatalf("injection counts differ: %d vs %d", len(ref.injs), len(fast.injs))
	}
	for i := range ref.injs {
		if ref.injs[i] != fast.injs[i] {
			t.Fatalf("injection %d differs: reference %+v, idle-skipping %+v",
				i, ref.injs[i], fast.injs[i])
		}
	}
	if len(ref.grants) != len(fast.grants) {
		t.Fatalf("NoC grant counts differ: %d vs %d", len(ref.grants), len(fast.grants))
	}
	for i := range ref.grants {
		if ref.grants[i] != fast.grants[i] {
			t.Fatalf("NoC grant %d differs: reference %+v, idle-skipping %+v",
				i, ref.grants[i], fast.grants[i])
		}
	}
	if len(ref.credits) != len(fast.credits) {
		t.Fatalf("credit counts differ: %d vs %d", len(ref.credits), len(fast.credits))
	}
	for i := range ref.credits {
		if ref.credits[i] != fast.credits[i] {
			t.Fatalf("credit %d differs: reference %+v, idle-skipping %+v",
				i, ref.credits[i], fast.credits[i])
		}
	}
	if len(ref.wakes) != len(fast.wakes) {
		t.Fatalf("DMA wake counts differ: %d vs %d", len(ref.wakes), len(fast.wakes))
	}
	for i := range ref.wakes {
		if ref.wakes[i] != fast.wakes[i] {
			t.Fatalf("DMA wake %d differs: reference %+v, idle-skipping %+v",
				i, ref.wakes[i], fast.wakes[i])
		}
	}
	if len(ref.cmds) == 0 || len(ref.injs) == 0 || len(ref.grants) == 0 || len(ref.credits) == 0 {
		t.Fatal("empty traces; the system did not run")
	}
	// The wake stream must exercise both re-arm causes: completion
	// deliveries and port credit returns.
	var deliveries, credits int
	for _, w := range ref.wakes {
		switch w.cause {
		case 'D':
			deliveries++
		case 'C':
			credits++
		default:
			t.Fatalf("unknown DMA wake cause %q", w.cause)
		}
	}
	if deliveries == 0 || credits == 0 {
		t.Fatalf("DMA wake trace causes D/C = %d/%d; the workload should exercise both re-arm edges",
			deliveries, credits)
	}
	// The stream must contain genuine credit returns on both sides of the
	// boundary: full-port pops and full-queue controller releases.
	var portCredits, mcCredits int
	for _, c := range ref.credits {
		if !c.wasFull {
			continue
		}
		if len(c.name) > 2 && c.name[:2] == "mc" {
			mcCredits++
		} else {
			portCredits++
		}
	}
	if portCredits == 0 || mcCredits == 0 {
		t.Fatalf("credit trace has %d port credits and %d controller credits; the workload should backpressure both",
			portCredits, mcCredits)
	}
}

// TestIdleSkipTraceEquivalence asserts that the idle-skipping kernel —
// wake heap and linear-poll reference alike — issues the exact same DRAM
// command stream, DMA injection stream, injection-wake stream and NoC
// arbitration grant stream — same transactions, same cycles, same order —
// as the cycle-stepped force-scan reference.
func TestIdleSkipTraceEquivalence(t *testing.T) {
	const horizon = 60000
	for _, policy := range []sara.Policy{sara.QoS, sara.FRFCFS} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			reproOnFailure(t, "TestIdleSkipTraceEquivalence/"+policy.String())
			ref := runTraced(policy, traceStepped, false, horizon)
			compareTraces(t, ref, runTraced(policy, traceSkipHeap, false, horizon))
			compareTraces(t, ref, runTraced(policy, traceSkipPoll, false, horizon))
		})
	}
}

// TestIdleSkipTraceEquivalenceRefresh repeats the trace comparison with
// LPDDR4 refresh enabled: REF commands and forced-drain precharges must
// land on identical cycles in both kernel modes, and the stream must
// actually contain REFs (kind 'R', transaction id 0).
func TestIdleSkipTraceEquivalenceRefresh(t *testing.T) {
	const horizon = 60000
	for _, policy := range []sara.Policy{sara.QoS, sara.FRFCFS} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			reproOnFailure(t, "TestIdleSkipTraceEquivalenceRefresh/"+policy.String())
			ref := runTraced(policy, traceStepped, true, horizon)
			fast := runTraced(policy, traceSkipHeap, true, horizon)
			compareTraces(t, ref, fast)
			refs := 0
			for _, c := range ref.cmds {
				if c.kind == 'R' {
					if c.id != 0 {
						t.Fatalf("REF carried transaction id %d", c.id)
					}
					refs++
				}
			}
			if refs == 0 {
				t.Fatal("refresh-enabled trace contains no REF commands")
			}
		})
	}
}

// TestIdleSkipStallAccounting expands the routers' batched stall events
// into per-cycle stall sets and compares them against the cycle-stepped
// reference: deferred accrual may land later, but every stalled cycle
// must be attributed to the same cycle in both modes.
func TestIdleSkipStallAccounting(t *testing.T) {
	reproOnFailure(t, "TestIdleSkipStallAccounting")
	type ev struct {
		now      sim.Cycle
		n        uint64
		backfill bool
	}
	run := func(skip bool) map[string][]ev {
		out := map[string][]ev{}
		noc.SetDebugStall(func(name string, now sim.Cycle, n uint64, backfill bool) {
			out[name] = append(out[name], ev{now, n, backfill})
		})
		defer noc.SetDebugStall(nil)
		sys := sara.Build(sara.Camcorder(sara.CaseA, sara.WithPolicy(sara.QoS)))
		sys.Kernel().SetIdleSkip(skip)
		sys.RunFrames(2)
		return out
	}
	expand := func(evs []ev) map[sim.Cycle]bool {
		set := map[sim.Cycle]bool{}
		for _, e := range evs {
			if !e.backfill {
				set[e.now] = true
				continue
			}
			for c := e.now - sim.Cycle(e.n); c < e.now; c++ {
				set[c] = true
			}
		}
		return set
	}
	ref := run(false)
	fast := run(true)
	for name := range ref {
		rs, fs := expand(ref[name]), expand(fast[name])
		if len(rs) == 0 {
			t.Fatalf("router %s recorded no stalls; the workload should backpressure", name)
		}
		for c := range rs {
			if !fs[c] {
				t.Errorf("router %s: reference stalls at cycle %d, idle-skipping does not", name, c)
			}
		}
		for c := range fs {
			if !rs[c] {
				t.Errorf("router %s: idle-skipping stalls at cycle %d, reference does not", name, c)
			}
		}
	}
}
