module sara

go 1.24
