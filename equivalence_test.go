package sara_test

import (
	"math"
	"testing"

	"sara"
)

// buildCaseA builds the full case-A camcorder system under the given
// policy with the default seed.
func buildCaseA(policy sara.Policy, skip bool) *sara.System {
	sys := sara.Build(sara.Camcorder(sara.CaseA, sara.WithPolicy(policy)))
	sys.Kernel().SetIdleSkip(skip)
	return sys
}

// TestIdleSkipEquivalence is the determinism guard for the event-driven
// kernel: the idle-skipping fast path must be observationally identical
// to the cycle-stepped reference. It runs case A twice — once with
// skipping, once without — and asserts identical DRAM stats, controller
// stats, per-core minimum NPI and final cycle counts.
func TestIdleSkipEquivalence(t *testing.T) {
	for _, policy := range []sara.Policy{sara.QoS, sara.QoSRB, sara.FCFS, sara.RR, sara.FrameRate, sara.FRFCFS} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			reproOnFailure(t, "TestIdleSkipEquivalence/"+policy.String())
			ref := buildCaseA(policy, false)
			fast := buildCaseA(policy, true)

			const frames = 2
			ref.RunFrames(frames)
			fast.RunFrames(frames)

			if ref.Now() != fast.Now() {
				t.Fatalf("final cycle: reference %d, idle-skipping %d", ref.Now(), fast.Now())
			}
			if got := fast.Kernel().SkippedCycles(); got == 0 {
				t.Fatal("idle-skipping run skipped no cycles; the fast path did not engage")
			}
			if got := ref.Kernel().SkippedCycles(); got != 0 {
				t.Fatalf("reference run skipped %d cycles; SetIdleSkip(false) did not disable skipping", got)
			}

			refDRAM, fastDRAM := ref.DRAM().Stats(), fast.DRAM().Stats()
			if len(refDRAM.Channels) != len(fastDRAM.Channels) {
				t.Fatalf("DRAM channel counts differ: %d vs %d", len(refDRAM.Channels), len(fastDRAM.Channels))
			}
			for ch := range refDRAM.Channels {
				if refDRAM.Channels[ch] != fastDRAM.Channels[ch] {
					t.Errorf("DRAM channel %d stats differ:\n  reference: %+v\n  skipping:  %+v",
						ch, refDRAM.Channels[ch], fastDRAM.Channels[ch])
				}
			}

			refCtrls, fastCtrls := ref.Controllers(), fast.Controllers()
			for i := range refCtrls {
				rs, fs := refCtrls[i].Stats(), fastCtrls[i].Stats()
				if rs != fs {
					t.Errorf("controller %d stats differ:\n  reference: %+v\n  skipping:  %+v", i, rs, fs)
				}
			}

			refNPI := ref.MinNPIByCore(0)
			fastNPI := fast.MinNPIByCore(0)
			if len(refNPI) != len(fastNPI) {
				t.Fatalf("min-NPI core sets differ: %v vs %v", refNPI, fastNPI)
			}
			for core, v := range refNPI {
				fv, ok := fastNPI[core]
				if !ok {
					t.Errorf("core %q missing from idle-skipping min-NPI", core)
					continue
				}
				if v != fv {
					t.Errorf("core %q min NPI: reference %v, idle-skipping %v", core, v, fv)
				}
			}

			// Per-unit engine statistics, including the batched stall
			// accounting, must also line up exactly.
			for i, ru := range ref.Units() {
				fu := fast.Units()[i]
				if ru.Engine.Stats() != fu.Engine.Stats() {
					t.Errorf("unit %s engine stats differ:\n  reference: %+v\n  skipping:  %+v",
						ru.Label(), ru.Engine.Stats(), fu.Engine.Stats())
				}
			}

			// Router counters, including the back-filled stall cycles.
			refRouters, fastRouters := ref.Routers(), fast.Routers()
			for i := range refRouters {
				rr, fr := refRouters[i], fastRouters[i]
				if rr.Forwarded() != fr.Forwarded() || rr.Stalls() != fr.Stalls() {
					t.Errorf("router %s: reference fwd=%d stalls=%d, idle-skipping fwd=%d stalls=%d",
						rr.Name(), rr.Forwarded(), rr.Stalls(), fr.Forwarded(), fr.Stalls())
				}
			}
		})
	}
}

// TestIdleSkipEquivalenceRefresh repeats the aggregate equivalence check
// with LPDDR4 refresh enabled: the refresh state machine (tREFI accrual,
// forced drains, tRFC blackouts) must behave identically whether the
// kernel steps every cycle or fast-forwards between timing gates, and the
// run must actually exercise refresh.
func TestIdleSkipEquivalenceRefresh(t *testing.T) {
	build := func(policy sara.Policy, skip bool) *sara.System {
		sys := sara.Build(sara.Camcorder(sara.CaseA,
			sara.WithPolicy(policy), sara.WithRefresh(true)))
		sys.Kernel().SetIdleSkip(skip)
		return sys
	}
	for _, policy := range []sara.Policy{sara.QoS, sara.QoSRB, sara.FRFCFS} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			reproOnFailure(t, "TestIdleSkipEquivalenceRefresh/"+policy.String())
			ref := build(policy, false)
			fast := build(policy, true)
			ref.RunFrames(2)
			fast.RunFrames(2)

			if got := fast.Kernel().SkippedCycles(); got == 0 {
				t.Fatal("refresh-enabled run skipped no cycles; the fast path did not engage")
			}
			refDRAM, fastDRAM := ref.DRAM().Stats(), fast.DRAM().Stats()
			for ch := range refDRAM.Channels {
				if refDRAM.Channels[ch] != fastDRAM.Channels[ch] {
					t.Errorf("DRAM channel %d stats differ:\n  reference: %+v\n  skipping:  %+v",
						ch, refDRAM.Channels[ch], fastDRAM.Channels[ch])
				}
			}
			if refDRAM.Totals().Refreshes == 0 {
				t.Fatal("refresh-enabled run issued no REF commands")
			}
			refCtrls, fastCtrls := ref.Controllers(), fast.Controllers()
			var refreshes uint64
			for i := range refCtrls {
				rs, fs := refCtrls[i].Stats(), fastCtrls[i].Stats()
				if rs != fs {
					t.Errorf("controller %d stats differ:\n  reference: %+v\n  skipping:  %+v", i, rs, fs)
				}
				refreshes += rs.Refreshes
			}
			if refreshes != refDRAM.Totals().Refreshes {
				t.Errorf("controller REF count %d disagrees with device count %d",
					refreshes, refDRAM.Totals().Refreshes)
			}
			refNPI, fastNPI := ref.MinNPIByCore(0), fast.MinNPIByCore(0)
			for core, v := range refNPI {
				if fv, ok := fastNPI[core]; !ok || v != fv {
					t.Errorf("core %q min NPI: reference %v, idle-skipping %v (ok=%v)", core, v, fv, ok)
				}
			}
			if duty := ref.DRAM().RefreshDuty(ref.Now()); duty <= 0 || duty > 0.2 {
				t.Errorf("refresh duty %v outside the plausible (0, 0.2] band", duty)
			}
		})
	}
}

// TestIdleSkipEquivalenceSeries pins the sampled NPI time series — the
// data behind the paper's figures — to be bit-identical between the two
// execution modes.
func TestIdleSkipEquivalenceSeries(t *testing.T) {
	reproOnFailure(t, "TestIdleSkipEquivalenceSeries")
	ref := buildCaseA(sara.QoS, false)
	fast := buildCaseA(sara.QoS, true)
	ref.RunFrames(1)
	fast.RunFrames(1)

	for i, ru := range ref.Units() {
		fu := fast.Units()[i]
		if (ru.Series == nil) != (fu.Series == nil) {
			t.Fatalf("unit %s: series presence differs", ru.Label())
		}
		if ru.Series == nil {
			continue
		}
		if ru.Series.Len() != fu.Series.Len() {
			t.Fatalf("unit %s: series lengths %d vs %d", ru.Label(), ru.Series.Len(), fu.Series.Len())
		}
		for j := range ru.Series.Values {
			if ru.Series.Cycles[j] != fu.Series.Cycles[j] ||
				ru.Series.Values[j] != fu.Series.Values[j] {
				t.Fatalf("unit %s sample %d: (%d, %v) vs (%d, %v)", ru.Label(), j,
					ru.Series.Cycles[j], ru.Series.Values[j],
					fu.Series.Cycles[j], fu.Series.Values[j])
			}
		}
	}

	// Sanity: the run produced meaningful NPI data at all.
	worst := math.Inf(1)
	for _, v := range ref.MinNPIByCore(0) {
		if v < worst {
			worst = v
		}
	}
	if math.IsInf(worst, 1) {
		t.Fatal("no NPI samples recorded")
	}
}
