// Command benchjson converts `go test -bench` output into a small JSON
// document so CI can archive the performance trajectory machine-readably
// across PRs (BENCH_loaded.json: loaded-phase and case-A ns/cycle,
// allocs/op, and the 1x/2x/4x scaled-SoC points).
//
//	go test -run=NONE -bench=... -benchmem . | benchjson -o BENCH_loaded.json
//	benchjson -o BENCH_loaded.json bench.out
//
// With -baseline it additionally compares the fresh ns/cycle numbers
// against a previously-emitted report and exits 3 when any shared
// benchmark regressed by more than -tolerance (fraction, default 0.25):
//
//	benchjson -baseline bench_baseline.json bench.out >/dev/null
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds the b.ReportMetric pairs (cycles/op, %skipped,
	// channels, worst-min-NPI, GB/s, ...), keyed by unit.
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	// NsPerCycle is derived from ns/op and the cycles/op metric, the
	// number the README perf tables track.
	NsPerCycle *float64 `json:"ns_per_cycle,omitempty"`
	// NsPerCyclePerChannel divides further by the channels metric on the
	// scaled-SoC benchmarks, the flatness curve the scaling work tracks.
	NsPerCyclePerChannel *float64 `json:"ns_per_cycle_per_channel,omitempty"`
}

// Report is the document benchjson emits.
type Report struct {
	// Context carries the go test header lines (goos, goarch, pkg, cpu).
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Bench           `json:"benchmarks"`
}

// parse consumes go test -bench output.
func parse(r io.Reader) (Report, error) {
	rep := Report{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseBenchLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
			continue
		}
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			prefix := key + ": "
			if len(line) > len(prefix) && line[:len(prefix)] == prefix {
				rep.Context[key] = line[len(prefix):]
			}
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses one "BenchmarkName  N  v unit  v unit ..." line.
func parseBenchLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields[0]) < len("Benchmark") || fields[0][:len("Benchmark")] != "Benchmark" {
		return Bench{}, false
	}
	b := Bench{Name: fields[0], Metrics: map[string]float64{}}
	if _, err := fmt.Sscan(fields[1], &b.Iterations); err != nil {
		return Bench{}, false
	}
	for i := 2; i+1 < len(fields); i += 2 {
		var v float64
		if _, err := fmt.Sscan(fields[i], &v); err != nil {
			return Bench{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsPerOp = &val
		default:
			b.Metrics[unit] = v
		}
	}
	if cycles, ok := b.Metrics["cycles/op"]; ok && cycles > 0 && b.NsPerOp > 0 {
		nsc := b.NsPerOp / cycles
		b.NsPerCycle = &nsc
		if ch, ok := b.Metrics["channels"]; ok && ch > 0 {
			per := nsc / ch
			b.NsPerCyclePerChannel = &per
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main without the process plumbing, so tests can drive the CLI
// and assert output and exit codes. 0 = success, 1 = bad input or write
// failure, 2 = usage error, 3 = ns/cycle regression beyond tolerance.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output file (default stdout)")
	baseline := fs.String("baseline", "", "baseline report JSON to compare ns/cycle against")
	tolerance := fs.Float64("tolerance", 0.25, "allowed fractional ns/cycle regression vs the baseline")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	rep, err := parse(in)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines in input")
		return 1
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "" {
		stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if *baseline != "" {
		return compareBaseline(rep, *baseline, *tolerance, stderr)
	}
	return 0
}

// compareBaseline checks every ns/cycle the fresh report shares with the
// baseline report and reports regressions beyond tolerance. An empty
// intersection fails too: a renamed benchmark must not silently turn the
// regression gate into a no-op.
func compareBaseline(rep Report, path string, tolerance float64, stderr io.Writer) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: baseline: %v\n", err)
		return 1
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(stderr, "benchjson: baseline %s: %v\n", path, err)
		return 1
	}
	fresh := map[string]*float64{}
	for _, b := range rep.Benchmarks {
		fresh[b.Name] = b.NsPerCycle
	}
	compared, regressed := 0, 0
	for _, b := range base.Benchmarks {
		if b.NsPerCycle == nil {
			continue
		}
		cur, ok := fresh[b.Name]
		if !ok || cur == nil {
			continue
		}
		compared++
		ratio := *cur / *b.NsPerCycle
		if ratio > 1+tolerance {
			regressed++
			fmt.Fprintf(stderr, "benchjson: REGRESSION %s: %.1f ns/cycle vs baseline %.1f (%.0f%% > %.0f%% tolerance)\n",
				b.Name, *cur, *b.NsPerCycle, (ratio-1)*100, tolerance*100)
			continue
		}
		fmt.Fprintf(stderr, "benchjson: ok %s: %.1f ns/cycle vs baseline %.1f (%+.0f%%)\n",
			b.Name, *cur, *b.NsPerCycle, (ratio-1)*100)
	}
	if compared == 0 {
		fmt.Fprintf(stderr, "benchjson: baseline %s shares no ns/cycle benchmarks with the input\n", path)
		return 1
	}
	if regressed > 0 {
		return 3
	}
	return 0
}
