package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: sara
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulatorThroughput            	    2000	    258009 ns/op	        48.20 %skipped	      1000 cycles/op	     503 B/op	       0 allocs/op
BenchmarkLoadedPhaseThroughputScaled/4x 	    2000	   2201684 ns/op	         8.000 channels	      1000 cycles/op	    1694 B/op	       0 allocs/op
PASS
ok  	sara	33.601s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	if rep.Context["cpu"] != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu context %q", rep.Context["cpu"])
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkSimulatorThroughput" || b.Iterations != 2000 || b.NsPerOp != 258009 {
		t.Fatalf("first benchmark %+v", b)
	}
	if b.NsPerCycle == nil || *b.NsPerCycle != 258.009 {
		t.Fatalf("ns/cycle %v, want 258.009", b.NsPerCycle)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 0 {
		t.Fatalf("allocs/op %v, want 0", b.AllocsPerOp)
	}
	if b.Metrics["%skipped"] != 48.20 {
		t.Fatalf("%%skipped metric %v", b.Metrics["%skipped"])
	}
	s := rep.Benchmarks[1]
	if s.NsPerCyclePerChannel == nil || *s.NsPerCyclePerChannel != 2201.684/8 {
		t.Fatalf("per-channel cost %v", s.NsPerCyclePerChannel)
	}

	// The document round-trips with the conventional keys present.
	enc, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"ns_per_op"`, `"ns_per_cycle"`, `"allocs_per_op"`, `"ns_per_cycle_per_channel"`} {
		if !strings.Contains(string(enc), key) {
			t.Fatalf("encoded report lacks %s:\n%s", key, enc)
		}
	}
}

func TestParseRejectsGarbageQuietly(t *testing.T) {
	rep, err := parse(strings.NewReader("hello\nBenchmarkBad x y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage", len(rep.Benchmarks))
	}
}

func TestRunStdinToStdout(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, strings.NewReader(sample), &out, &errb); code != 0 {
		t.Fatalf("exit code %d, want 0; stderr:\n%s", code, errb.String())
	}
	var rep Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("document holds %d benchmarks, want 2", len(rep.Benchmarks))
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, strings.NewReader("no benches here\n"), &out, &errb); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "no benchmark lines") {
		t.Errorf("stderr lacks the empty-input diagnosis:\n%s", errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("bad input still wrote a document: %q", out.String())
	}
}

func TestRunRejectsMissingFile(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"/no/such/bench.out"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-no-such-flag"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

// writeBaseline emits a baseline report whose two sample benchmarks run
// at the given ns/cycle values and returns its path.
func writeBaseline(t *testing.T, nsPerCycle1, nsPerCycle2 float64) string {
	t.Helper()
	mk := func(name string, nsc float64) Bench {
		return Bench{Name: name, NsPerCycle: &nsc}
	}
	rep := Report{Benchmarks: []Bench{
		mk("BenchmarkSimulatorThroughput", nsPerCycle1),
		mk("BenchmarkLoadedPhaseThroughputScaled/4x", nsPerCycle2),
	}}
	enc, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBaselineWithinTolerancePasses(t *testing.T) {
	// The sample runs at 258.009 and 2201.684/8 ns/cycle; a baseline 10%
	// below both is inside the default 25% tolerance.
	path := writeBaseline(t, 258.009/1.1, 2201.684/1.1)
	var out, errb strings.Builder
	if code := run([]string{"-baseline", path}, strings.NewReader(sample), &out, &errb); code != 0 {
		t.Fatalf("exit code %d, want 0; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "ok BenchmarkSimulatorThroughput") {
		t.Errorf("stderr lacks the per-benchmark comparison:\n%s", errb.String())
	}
}

func TestBaselineRegressionFails(t *testing.T) {
	// A baseline 40% below the sample's first benchmark trips the gate.
	path := writeBaseline(t, 258.009/1.4, 2201.684)
	var out, errb strings.Builder
	if code := run([]string{"-baseline", path}, strings.NewReader(sample), &out, &errb); code != 3 {
		t.Fatalf("exit code %d, want 3; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "REGRESSION BenchmarkSimulatorThroughput") {
		t.Errorf("stderr does not name the regressed benchmark:\n%s", errb.String())
	}
}

func TestBaselineToleranceFlag(t *testing.T) {
	// The same 40% regression passes once the tolerance is raised to 50%.
	path := writeBaseline(t, 258.009/1.4, 2201.684)
	var out, errb strings.Builder
	if code := run([]string{"-baseline", path, "-tolerance", "0.5"},
		strings.NewReader(sample), &out, &errb); code != 0 {
		t.Fatalf("exit code %d, want 0; stderr:\n%s", code, errb.String())
	}
}

func TestBaselineDisjointNamesFail(t *testing.T) {
	// A baseline sharing no benchmark names must fail loudly, not pass
	// vacuously.
	mk := Bench{Name: "BenchmarkRenamedAway", NsPerCycle: new(float64)}
	*mk.NsPerCycle = 100
	enc, err := json.Marshal(Report{Benchmarks: []Bench{mk}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{"-baseline", path}, strings.NewReader(sample), &out, &errb); code != 1 {
		t.Fatalf("exit code %d, want 1; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "shares no ns/cycle benchmarks") {
		t.Errorf("stderr lacks the disjoint-names diagnosis:\n%s", errb.String())
	}
}

func TestBaselineMissingFileFails(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-baseline", "/no/such/baseline.json"},
		strings.NewReader(sample), &out, &errb); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}

func TestRunRejectsUnwritableOutput(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-o", "/no/such/dir/bench.json"}, strings.NewReader(sample), &out, &errb)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}
