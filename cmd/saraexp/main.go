// Command saraexp regenerates the paper's evaluation figures:
//
//	saraexp            # all figures
//	saraexp -fig 5     # one figure (5, 6, 7, 8 or 9)
//	saraexp -scale 64  # trade fidelity for speed
//
// Output is a text report with the same rows/series the paper plots:
// per-core minimum NPI for Figs. 5/6/9, the image processor's
// priority-level distribution per DRAM frequency for Fig. 7, and the
// average-bandwidth bars for Fig. 8.
//
// Crash safety: -timeout and -max-cycles bound each run with the kernel
// watchdog; -journal checkpoints completed runs of the supervised
// figures (5, 6, 9) to a JSONL file and -resume serves them from it on a
// rerun. A run that panics or trips a budget prints its failure and
// rerun command in place of its table rows, the remaining runs complete,
// and the exit code reports the damage.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sara"
	"sara/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process plumbing, so tests can drive the CLI
// and assert output and exit codes. 0 = success, 1 = a run failed,
// 2 = usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("saraexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 0, "figure to regenerate (5..9); 0 = all")
	scale := fs.Int("scale", 256, "time-scale divisor (larger = faster, coarser)")
	seed := fs.Uint64("seed", 1, "workload seed")
	refresh := fs.Bool("refresh", false, "enable LPDDR4 refresh (tREFI/tRFC) in every run")
	timeout := fs.Duration("timeout", 0, "wall-clock budget per run (0 = unbounded)")
	maxCycles := fs.Uint64("max-cycles", 0, "executed-cycle budget per run (0 = unbounded)")
	retries := fs.Int("retries", 0, "rerun a failed run up to this many extra times")
	journal := fs.String("journal", "", "JSONL checkpoint journal for the supervised figures")
	resume := fs.Bool("resume", false, "with -journal: serve already-completed runs from the journal")
	analyze := fs.Bool("analyze", false, "attach the stall-attribution analyzers to every run (serializes workers)")
	analysisWindow := fs.Uint64("analysis-window", 0, "analyzer aggregation window in cycles (0 = 4 NPI sampling periods)")
	analysisOut := fs.String("analysis-out", "", "with -analyze: write the windowed reports of figures 5/6/9 here (.csv = CSV sections, else JSON)")
	monitorAddr := fs.String("monitor", "", "serve the live HTTP run monitor on this address (e.g. :8080)")
	domainWorkers := fs.Int("domain-workers", 0, "build each system on the domain-parallel kernel with this many goroutines (>= 2; 0/1 = serial kernel)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *fig != 0 && (*fig < 5 || *fig > 9) {
		fmt.Fprintf(stderr, "saraexp: unknown figure %d (want 5..9)\n", *fig)
		fs.Usage()
		return 2
	}
	if *analysisOut != "" && !*analyze {
		fmt.Fprintln(stderr, "saraexp: -analysis-out requires -analyze")
		return 2
	}

	opt := sara.ExpOptions{
		ScaleDiv:       *scale,
		Seed:           *seed,
		Refresh:        *refresh,
		Timeout:        *timeout,
		MaxCycles:      *maxCycles,
		Retries:        *retries,
		Journal:        *journal,
		Resume:         *resume,
		Analyze:        *analyze,
		AnalysisWindow: *analysisWindow,
		DomainWorkers:  *domainWorkers,
	}
	if *monitorAddr != "" {
		mon := sara.NewMonitor()
		if err := mon.Start(*monitorAddr); err != nil {
			fmt.Fprintf(stderr, "saraexp: %v\n", err)
			return 2
		}
		defer mon.Close()
		fmt.Fprintf(stdout, "monitor: http://%s\n", mon.Addr())
		opt.Monitor = mon
	}

	failed := 0
	reports := make(map[string]*sara.AnalysisReport)
	figNo := 0
	report := func(runs []sara.PolicyRun) {
		for _, r := range runs {
			fmt.Fprint(stdout, exp.FormatRun(r))
			if r.Analysis != nil {
				reports[fmt.Sprintf("fig%d-case%s-%v", figNo, r.Case, r.Policy)] = r.Analysis
			}
			if r.Err != nil {
				failed++
			}
		}
	}
	runAll := *fig == 0
	if runAll || *fig == 5 {
		fmt.Fprintln(stdout, "=== Fig. 5: NPI of critical cores, test case A, one frame ===")
		figNo = 5
		report(sara.Fig5(opt))
	}
	if runAll || *fig == 6 {
		fmt.Fprintln(stdout, "=== Fig. 6: NPI of critical cores, test case B, one frame ===")
		figNo = 6
		report(sara.Fig6(opt))
	}
	if runAll || *fig == 7 {
		fmt.Fprintln(stdout, "=== Fig. 7: Image Proc. priority distribution vs DRAM frequency ===")
		fmt.Fprint(stdout, exp.FormatFig7(sara.Fig7(opt)))
	}
	if runAll || *fig == 8 {
		fmt.Fprintln(stdout, "=== Fig. 8: average DRAM bandwidth by scheduling policy ===")
		fmt.Fprint(stdout, exp.FormatFig8(sara.Fig8(opt)))
	}
	if runAll || *fig == 9 {
		fmt.Fprintln(stdout, "=== Fig. 9: FR-FCFS vs QoS-RB, test case A ===")
		figNo = 9
		report(sara.Fig9(opt))
	}
	if *analysisOut != "" {
		if err := writeAnalysis(*analysisOut, reports); err != nil {
			fmt.Fprintf(stderr, "saraexp: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *analysisOut)
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "saraexp: %d run(s) failed; rerun commands above\n", failed)
		return 1
	}
	return 0
}

// writeAnalysis writes the figures' windowed observability reports to
// path: `# label`-separated CSV sections for a .csv suffix, one JSON
// object otherwise.
func writeAnalysis(path string, reports map[string]*sara.AnalysisReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return sara.WriteAnalysisCSV(f, reports)
	}
	return sara.WriteAnalysisJSON(f, reports)
}
