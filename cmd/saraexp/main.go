// Command saraexp regenerates the paper's evaluation figures:
//
//	saraexp            # all figures
//	saraexp -fig 5     # one figure (5, 6, 7, 8 or 9)
//	saraexp -scale 64  # trade fidelity for speed
//
// Output is a text report with the same rows/series the paper plots:
// per-core minimum NPI for Figs. 5/6/9, the image processor's
// priority-level distribution per DRAM frequency for Fig. 7, and the
// average-bandwidth bars for Fig. 8.
package main

import (
	"flag"
	"fmt"
	"log"

	"sara"
	"sara/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("saraexp: ")

	fig := flag.Int("fig", 0, "figure to regenerate (5..9); 0 = all")
	scale := flag.Int("scale", 256, "time-scale divisor (larger = faster, coarser)")
	seed := flag.Uint64("seed", 1, "workload seed")
	refresh := flag.Bool("refresh", false, "enable LPDDR4 refresh (tREFI/tRFC) in every run")
	flag.Parse()

	opt := sara.ExpOptions{ScaleDiv: *scale, Seed: *seed, Refresh: *refresh}

	runAll := *fig == 0
	if runAll || *fig == 5 {
		fmt.Println("=== Fig. 5: NPI of critical cores, test case A, one frame ===")
		for _, r := range sara.Fig5(opt) {
			fmt.Print(exp.FormatRun(r))
		}
	}
	if runAll || *fig == 6 {
		fmt.Println("=== Fig. 6: NPI of critical cores, test case B, one frame ===")
		for _, r := range sara.Fig6(opt) {
			fmt.Print(exp.FormatRun(r))
		}
	}
	if runAll || *fig == 7 {
		fmt.Println("=== Fig. 7: Image Proc. priority distribution vs DRAM frequency ===")
		fmt.Print(exp.FormatFig7(sara.Fig7(opt)))
	}
	if runAll || *fig == 8 {
		fmt.Println("=== Fig. 8: average DRAM bandwidth by scheduling policy ===")
		fmt.Print(exp.FormatFig8(sara.Fig8(opt)))
	}
	if runAll || *fig == 9 {
		fmt.Println("=== Fig. 9: FR-FCFS vs QoS-RB, test case A ===")
		for _, r := range sara.Fig9(opt) {
			fmt.Print(exp.FormatRun(r))
		}
	}
	if !runAll && (*fig < 5 || *fig > 9) {
		log.Fatalf("unknown figure %d (want 5..9)", *fig)
	}
}
