package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnknownFigureIsUsageError(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-fig", "4"}, &out, &errb); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown figure 4") {
		t.Errorf("stderr lacks the diagnosis:\n%s", errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("usage error wrote to stdout (figures ran anyway): %q", out.String())
	}
}

func TestUnknownFlagIsUsageError(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

// TestFig5JournalResume regenerates Fig. 5 twice against one journal;
// the resumed rerun must print byte-identical tables.
func TestFig5JournalResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "fig5.jsonl")
	base := []string{"-fig", "5", "-scale", "2048", "-journal", journal}

	var first, errb strings.Builder
	if code := run(base, &first, &errb); code != 0 {
		t.Fatalf("first run: exit %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(first.String(), "=== Fig. 5") {
		t.Fatalf("missing figure header:\n%s", first.String())
	}

	var second strings.Builder
	if code := run(append(base, "-resume"), &second, &errb); code != 0 {
		t.Fatalf("resumed run: exit %d, stderr:\n%s", code, errb.String())
	}
	if first.String() != second.String() {
		t.Errorf("resumed Fig. 5 not byte-identical:\nfirst:\n%s\nsecond:\n%s",
			first.String(), second.String())
	}
}

// TestMaxCyclesFailureDegradesGracefully trips the cycle budget on every
// Fig. 5 run and asserts the command reports each failure with its rerun
// command, keeps going, and exits 1.
func TestMaxCyclesFailureDegradesGracefully(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-fig", "5", "-scale", "2048", "-max-cycles", "100"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code %d, want 1; stderr:\n%s", code, errb.String())
	}
	if n := strings.Count(out.String(), "Repro: go run ./cmd/sarasweep -sweep cell"); n != 4 {
		t.Errorf("want 4 failed runs with Repro lines, got %d:\n%s", n, out.String())
	}
	if !strings.Contains(errb.String(), "4 run(s) failed") {
		t.Errorf("stderr lacks the failure tally:\n%s", errb.String())
	}
}

func TestAnalysisOutRequiresAnalyze(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-analysis-out", "x.json"}, &out, &errb); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-analysis-out requires -analyze") {
		t.Errorf("stderr lacks the diagnosis:\n%s", errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("usage error wrote to stdout (figures ran anyway): %q", out.String())
	}
}

func TestAnalyzedFig9WritesReports(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig9.json")
	var out, errb strings.Builder
	code := run([]string{"-fig", "9", "-scale", "2048", "-analyze", "-analysis-window", "4096",
		"-analysis-out", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code %d, want 0; stderr:\n%s", code, errb.String())
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var reports map[string]json.RawMessage
	if err := json.Unmarshal(blob, &reports); err != nil {
		t.Fatalf("report is not a JSON object: %v", err)
	}
	if len(reports) == 0 {
		t.Fatal("figure 9 produced no analysis reports")
	}
	for label := range reports {
		if !strings.HasPrefix(label, "fig9-") {
			t.Errorf("report label %q lacks the fig9- prefix", label)
		}
	}
}
