// Command sarasweep runs the design-space sweeps DESIGN.md calls out as
// ablations: Policy 2's row-buffer threshold delta, the priority
// quantization k, the aging limit T, the refresh on/off comparison, a
// seed fan-out with confidence intervals, the scaled-SoC cost curve —
// and "cell", the single-cell runner the supervisor's Repro lines name.
//
//	sarasweep -sweep delta
//	sarasweep -sweep bits
//	sarasweep -sweep aging
//	sarasweep -sweep refresh
//	sarasweep -sweep seeds
//	sarasweep -sweep scale
//	sarasweep -sweep cell -case A -policy qos -seed 3
//
// The -refresh flag enables LPDDR4 refresh in the delta/bits/aging/seeds
// and scale sweeps so any ablation can be re-run under refresh pressure.
//
// Crash safety: -timeout and -max-cycles bound each run with the kernel
// watchdog (a tripped run reports a DeadlockError with its wake-state
// dump instead of spinning); -journal appends completed cells of the
// seeds and cell sweeps to a JSONL checkpoint, and -resume serves
// journaled cells from it, so an interrupted fan-out picks up where it
// died. All four are zero-cost when left at their defaults.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"sara"
	"sara/internal/config"
	"sara/internal/core"
	"sara/internal/exp"
	"sara/internal/memctrl"
	"sara/internal/txn"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// cliOptions carries one invocation's parsed flags to the sweep funcs.
type cliOptions struct {
	opt  exp.Options   // fidelity + supervisor budgets (timeout, journal, ...)
	cell exp.Cell      // the -sweep cell target
	sink *analysisSink // -analyze / -monitor / -analysis-out wiring
}

// analysisSink wires -analyze and -monitor into the sweeps and collects
// the labeled reports -analysis-out writes. The RunCells-backed sweeps
// (seeds, cell) get their analyzers from exp.Options and only deposit
// reports here; the direct-build ablation sweeps attach per system via
// attach, which also closes the previous system's analyzer first — the
// trace edges are process-global, one live analyzer at a time.
type analysisSink struct {
	enabled bool
	window  uint64
	mon     *sara.Monitor
	prefix  string
	seq     int
	reports map[string]*sara.AnalysisReport

	az    *sara.Analyzer
	h     *sara.MonitorRun
	label string
}

// active reports whether any analysis wiring is on.
func (s *analysisSink) active() bool { return s != nil && (s.enabled || s.mon != nil) }

// attach closes the previous system's analyzer and arms one on sys.
func (s *analysisSink) attach(sys *core.System) {
	if !s.active() {
		return
	}
	s.close()
	s.label = fmt.Sprintf("%s#%d", s.prefix, s.seq)
	s.seq++
	s.h = s.mon.StartRun(s.label)
	aopt := sara.AnalysisOptions{Window: sara.Cycle(s.window), Edges: s.enabled}
	if s.h != nil {
		aopt.Publish = s.h.Publish
	}
	s.az = sara.AttachAnalyzer(sys, aopt)
}

// close detaches the live analyzer, harvesting its report.
func (s *analysisSink) close() {
	if s == nil || s.az == nil {
		return
	}
	s.az.Detach()
	if s.enabled {
		s.reports[s.label] = s.az.Report()
	}
	s.h.Finish(true)
	s.az, s.h = nil, nil
}

// deposit records a RunCells-produced report under label.
func (s *analysisSink) deposit(label string, rep *sara.AnalysisReport) {
	if s != nil && rep != nil {
		s.reports[label] = rep
	}
}

// writeReports writes the collected reports to path: CSV sections for a
// .csv suffix, one JSON object otherwise.
func (s *analysisSink) writeReports(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return sara.WriteAnalysisCSV(f, s.reports)
	}
	return sara.WriteAnalysisJSON(f, s.reports)
}

// sweeps is the dispatch table; -sweep is validated against it up front.
var sweeps = map[string]func(o cliOptions, w io.Writer) error{
	"delta":   sweepDelta,
	"bits":    sweepBits,
	"aging":   sweepAging,
	"refresh": sweepRefresh,
	"seeds":   sweepSeeds,
	"scale":   sweepScale,
	"cell":    sweepCell,
}

// sweepNames lists the valid -sweep values for the usage text.
func sweepNames() string {
	names := make([]string, 0, len(sweeps))
	for n := range sweeps {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

// run is main without the process plumbing, so tests can drive the CLI
// and assert output and exit codes. 0 = success, 1 = a run failed,
// 2 = usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sarasweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sweep := fs.String("sweep", "delta", "sweep to run: "+sweepNames())
	scale := fs.Int("scale", 256, "time-scale divisor")
	refresh := fs.Bool("refresh", false, "enable LPDDR4 refresh (tREFI/tRFC) in the sweep")
	timeout := fs.Duration("timeout", 0, "wall-clock budget per run; overruns abort with a watchdog diagnosis (0 = unbounded)")
	maxCycles := fs.Uint64("max-cycles", 0, "executed-cycle budget per run (0 = unbounded)")
	retries := fs.Int("retries", 0, "rerun a failed cell up to this many extra times (seeds/cell sweeps)")
	journal := fs.String("journal", "", "JSONL checkpoint journal for the seeds/cell sweeps")
	resume := fs.Bool("resume", false, "with -journal: serve already-completed cells from the journal")
	caseName := fs.String("case", "A", "cell sweep: test case, A or B")
	policyName := fs.String("policy", "qos", "cell sweep: arbitration policy (fcfs|rr|frfcfs|framerate|qos|qos-rb)")
	seed := fs.Uint64("seed", 1, "workload seed")
	freq := fs.Int("freq", 0, "cell sweep: DRAM data rate in MT/s (0 = case default)")
	socScale := fs.Int("soc-scale", 1, "cell sweep: SoC scale factor (channels and DMAs)")
	saturated := fs.Bool("saturated", false, "cell sweep: bandwidth-bound saturated variant")
	warmup := fs.Int("warmup", 0, "cell sweep: warmup frames before measurement")
	measure := fs.Int("measure", 1, "cell sweep: measured frames")
	domainWorkers := fs.Int("domain-workers", 0, "build each system on the domain-parallel kernel with this many goroutines (>= 2; 0/1 = serial kernel)")
	analyze := fs.Bool("analyze", false, "attach the stall-attribution analyzers (serializes workers)")
	analysisWindow := fs.Uint64("analysis-window", 0, "analyzer aggregation window in cycles (0 = 4 NPI sampling periods)")
	analysisOut := fs.String("analysis-out", "", "with -analyze: write the windowed reports here (.csv = CSV sections, else JSON)")
	monitorAddr := fs.String("monitor", "", "serve the live HTTP sweep monitor on this address (e.g. :8080)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *analysisOut != "" && !*analyze {
		fmt.Fprintln(stderr, "sarasweep: -analysis-out requires -analyze")
		return 2
	}

	fn, ok := sweeps[*sweep]
	if !ok {
		fmt.Fprintf(stderr, "sarasweep: unknown sweep %q (want %s)\n", *sweep, sweepNames())
		fs.Usage()
		return 2
	}
	var tc config.Case
	switch *caseName {
	case "A", "a":
		tc = config.CaseA
	case "B", "b":
		tc = config.CaseB
	default:
		fmt.Fprintf(stderr, "sarasweep: unknown case %q (want A or B)\n", *caseName)
		return 2
	}
	policy, err := memctrl.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintf(stderr, "sarasweep: %v\n", err)
		return 2
	}

	o := cliOptions{
		opt: exp.Options{
			ScaleDiv:       *scale,
			Refresh:        *refresh,
			Seed:           *seed,
			WarmupFrames:   *warmup,
			MeasureFrames:  *measure,
			Timeout:        *timeout,
			MaxCycles:      *maxCycles,
			Retries:        *retries,
			Journal:        *journal,
			Resume:         *resume,
			Analyze:        *analyze,
			AnalysisWindow: *analysisWindow,
			DomainWorkers:  *domainWorkers,
		},
		cell: exp.Cell{
			Case:         tc,
			Policy:       policy,
			Seed:         *seed,
			DataRateMTps: *freq,
			Scale:        *socScale,
			Saturated:    *saturated,
		},
		sink: &analysisSink{
			enabled: *analyze,
			window:  *analysisWindow,
			prefix:  *sweep,
			reports: make(map[string]*sara.AnalysisReport),
		},
	}
	if *monitorAddr != "" {
		mon := sara.NewMonitor()
		if err := mon.Start(*monitorAddr); err != nil {
			fmt.Fprintf(stderr, "sarasweep: %v\n", err)
			return 2
		}
		defer mon.Close()
		fmt.Fprintf(stdout, "monitor: http://%s\n", mon.Addr())
		o.sink.mon = mon
		o.opt.Monitor = mon
	}
	err = fn(o, stdout)
	o.sink.close()
	if err == nil && *analysisOut != "" {
		if err = o.sink.writeReports(*analysisOut); err == nil {
			fmt.Fprintf(stdout, "wrote %s\n", *analysisOut)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "sarasweep: %v\n", err)
		return 1
	}
	return 0
}

// build constructs cfg's system with the -timeout / -max-cycles budgets
// armed (a no-op watchdog-free build when neither is set) and, under
// -analyze / -monitor, an analyzer attached.
func (o cliOptions) build(cfg core.Config) *core.System {
	var sys *core.System
	if o.opt.DomainWorkers > 1 && !o.sink.active() {
		// The analyzers hook the serial kernel, so -analyze / -monitor
		// sweeps keep the serial build (matching exp.Options.apply).
		sys = sara.BuildParallel(cfg, o.opt.DomainWorkers)
	} else {
		sys = sara.Build(cfg)
	}
	if wd := o.opt.Watchdog(); wd != nil {
		sys.SetWatchdog(wd)
	}
	o.sink.attach(sys)
	return sys
}

// runFrames advances sys by k frames, through the checked entry point
// when a budget is armed and the plain zero-overhead run otherwise.
func (o cliOptions) runFrames(sys *core.System, k int) error {
	if o.opt.Timeout <= 0 && o.opt.MaxCycles == 0 {
		sys.RunFrames(k)
		return nil
	}
	return sys.RunFramesChecked(k)
}

// worstNPI is the scalar the ablation tables report: the minimum of the
// per-core minimum NPI over the measured window.
func worstNPI(sys *core.System, from sara.Cycle) float64 {
	worst := 1e9
	for _, v := range sys.MinNPIByCore(from) { //sara:maprange-ok min-reduction is order-insensitive
		if v < worst {
			worst = v
		}
	}
	return worst
}

// sweepDelta varies Policy 2's threshold: higher delta favors row hits
// (bandwidth) at growing risk to urgent transactions (worst-case NPI).
func sweepDelta(o cliOptions, w io.Writer) error {
	fmt.Fprintln(w, "delta  bandwidth(GB/s)  worst min NPI (critical cores)")
	for delta := 0; delta <= 8; delta += 2 {
		cfg := sara.Saturated(
			sara.WithPolicy(memctrl.QoSRB),
			sara.WithScaleDiv(o.opt.ScaleDiv),
			sara.WithDelta(txn.Priority(min(delta, 7))),
			sara.WithRefresh(o.opt.Refresh))
		if delta == 8 {
			// delta = 8 means "row hits always win" (no priority override).
			cfg.Delta = 8
		}
		sys := o.build(cfg)
		if err := o.runFrames(sys, 1); err != nil {
			return err
		}
		from := sys.Now()
		before := sys.DRAMStats()
		if err := o.runFrames(sys, 1); err != nil {
			return err
		}
		fmt.Fprintf(w, "%5d  %14.2f  %.3f\n", delta,
			sys.BandwidthOverWindowGBps(before, from, sys.Now()), worstNPI(sys, from))
	}
	return nil
}

// sweepBits varies the priority quantization k in 1..4 under Policy 1.
func sweepBits(o cliOptions, w io.Writer) error {
	fmt.Fprintln(w, "bits  levels  worst min NPI (case A, QoS)")
	for bits := 1; bits <= 4; bits++ {
		cfg := sara.Camcorder(sara.CaseA,
			sara.WithPolicy(memctrl.QoS),
			sara.WithScaleDiv(o.opt.ScaleDiv),
			sara.WithPriorityBits(bits),
			sara.WithRefresh(o.opt.Refresh))
		// Per-core LUT overrides are sized for 8 levels; drop them when
		// sweeping other quantizations.
		if bits != 3 {
			for i := range cfg.DMAs {
				cfg.DMAs[i].LUTBounds = nil
			}
		}
		sys := o.build(cfg)
		if err := o.runFrames(sys, 1); err != nil {
			return err
		}
		from := sys.Now()
		if err := o.runFrames(sys, 1); err != nil {
			return err
		}
		fmt.Fprintf(w, "%4d  %6d  %.3f\n", bits, 1<<bits, worstNPI(sys, from))
	}
	return nil
}

// sweepAging varies the starvation limit T under Policy 1.
func sweepAging(o cliOptions, w io.Writer) error {
	fmt.Fprintln(w, "agingT  worst min NPI (case A, QoS)")
	for _, t := range []uint64{1000, 10000, 100000, 0} {
		cfg := sara.Camcorder(sara.CaseA,
			sara.WithPolicy(memctrl.QoS),
			sara.WithScaleDiv(o.opt.ScaleDiv),
			sara.WithAgingT(sara.Cycle(t)),
			sara.WithRefresh(o.opt.Refresh))
		sys := o.build(cfg)
		if err := o.runFrames(sys, 1); err != nil {
			return err
		}
		from := sys.Now()
		if err := o.runFrames(sys, 1); err != nil {
			return err
		}
		label := fmt.Sprint(t)
		if t == 0 {
			label = "off"
		}
		fmt.Fprintf(w, "%6s  %.3f\n", label, worstNPI(sys, from))
	}
	return nil
}

// sweepRefresh compares the saturated workload with refresh off and on:
// how much bandwidth the tREFI cadence steals and what it costs the
// worst-case NPI under both row-aware policies.
func sweepRefresh(o cliOptions, w io.Writer) error {
	fmt.Fprintln(w, "policy     refresh  bandwidth(GB/s)  refreshes  blackout%  worst min NPI")
	for _, policy := range []memctrl.PolicyKind{memctrl.QoS, memctrl.QoSRB} {
		for _, on := range []bool{false, true} {
			cfg := sara.Saturated(
				sara.WithPolicy(policy),
				sara.WithScaleDiv(o.opt.ScaleDiv),
				sara.WithRefresh(on))
			sys := o.build(cfg)
			if err := o.runFrames(sys, 1); err != nil {
				return err
			}
			from := sys.Now()
			before := sys.DRAMStats()
			if err := o.runFrames(sys, 1); err != nil {
				return err
			}
			label := "off"
			if on {
				label = "on"
			}
			fmt.Fprintf(w, "%-9s  %-7s  %15.2f  %9d  %8.1f%%  %.3f\n",
				policy, label,
				sys.BandwidthOverWindowGBps(before, from, sys.Now()),
				sys.DRAMStats().Totals().Refreshes,
				100*sys.RefreshDuty(sys.Now()), worstNPI(sys, from))
		}
	}
	return nil
}

// sweepScale grows the saturated workload to 2x and 4x channels and
// cores and measures the loaded-phase simulation cost. The number to
// watch is ns/cycle/channel: the controllers' per-bank candidate buckets
// and the routers' grant dormancy keep the per-channel scheduling cost
// near-flat as the SoC grows, instead of re-inflating with total queue
// depth.
func sweepScale(o cliOptions, w io.Writer) error {
	fmt.Fprintln(w, "scale  channels  DMAs  bandwidth(GB/s)  ns/cycle  ns/cycle/channel")
	for _, factor := range []int{1, 2, 4} {
		cfg := sara.ScaledSaturated(factor,
			sara.WithScaleDiv(o.opt.ScaleDiv),
			sara.WithRefresh(o.opt.Refresh))
		sys := o.build(cfg)
		if err := o.runFrames(sys, 1); err != nil { // reach the saturated steady state
			return err
		}
		from := sys.Now()
		before := sys.DRAMStats()
		start := time.Now() //sara:wallclock host-throughput measurement (ns per simulated cycle)
		if err := o.runFrames(sys, 1); err != nil {
			return err
		}
		elapsed := time.Since(start)
		cycles := float64(sys.Now() - from)
		nsPerCycle := float64(elapsed.Nanoseconds()) / cycles
		ch := cfg.DRAM.Geometry.Channels
		fmt.Fprintf(w, "%4dx  %8d  %4d  %15.2f  %8.0f  %16.0f\n",
			factor, ch, len(cfg.DMAs),
			sys.BandwidthOverWindowGBps(before, from, sys.Now()),
			nsPerCycle, nsPerCycle/float64(ch))
	}
	return nil
}

// sweepSeeds fans one (case, policy) across seeds through the supervised
// harness and reports the across-seed confidence intervals. Failed cells
// are reported with their rerun command and fail the sweep's exit code
// after the surviving cells' summary prints.
func sweepSeeds(o cliOptions, w io.Writer) error {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	var failed int
	for _, policy := range []memctrl.PolicyKind{memctrl.QoS, memctrl.FCFS} {
		runs := exp.RunSeeds(config.CaseA, policy, seeds, o.opt)
		fmt.Fprint(w, exp.FormatSeedSummary(runs))
		for i, r := range runs {
			o.sink.deposit(fmt.Sprintf("%v-seed%d", policy, seeds[i]), r.Analysis)
		}
		for _, re := range exp.Failed(runs) {
			failed++
			fmt.Fprintln(w, re.Error())
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d cell(s) failed", failed)
	}
	return nil
}

// sweepCell runs the single cell the -case/-policy/-seed/... flags
// describe — the command every supervisor Repro line rebuilds a failure
// with.
func sweepCell(o cliOptions, w io.Writer) error {
	runs, err := exp.RunCells([]exp.Cell{o.cell}, o.opt)
	if err != nil {
		return err
	}
	fmt.Fprint(w, exp.FormatRun(runs[0]))
	o.sink.deposit(o.cell.String(), runs[0].Analysis)
	if runs[0].Err != nil {
		return runs[0].Err
	}
	return nil
}
