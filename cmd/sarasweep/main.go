// Command sarasweep runs the design-space sweeps DESIGN.md calls out as
// ablations: Policy 2's row-buffer threshold delta, the priority
// quantization k, and the aging limit T.
//
//	sarasweep -sweep delta
//	sarasweep -sweep bits
//	sarasweep -sweep aging
package main

import (
	"flag"
	"fmt"
	"log"

	"sara"
	"sara/internal/memctrl"
	"sara/internal/txn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sarasweep: ")

	sweep := flag.String("sweep", "delta", "sweep to run: delta|bits|aging")
	scale := flag.Int("scale", 256, "time-scale divisor")
	flag.Parse()

	switch *sweep {
	case "delta":
		sweepDelta(*scale)
	case "bits":
		sweepBits(*scale)
	case "aging":
		sweepAging(*scale)
	default:
		log.Fatalf("unknown sweep %q", *sweep)
	}
}

// sweepDelta varies Policy 2's threshold: higher delta favors row hits
// (bandwidth) at growing risk to urgent transactions (worst-case NPI).
func sweepDelta(scale int) {
	fmt.Println("delta  bandwidth(GB/s)  worst min NPI (critical cores)")
	for delta := 0; delta <= 8; delta += 2 {
		cfg := sara.Saturated(
			sara.WithPolicy(memctrl.QoSRB),
			sara.WithScaleDiv(scale),
			sara.WithDelta(txn.Priority(min(delta, 7))))
		if delta == 8 {
			// delta = 8 means "row hits always win" (no priority override).
			cfg.Delta = 8
		}
		sys := sara.Build(cfg)
		sys.RunFrames(1)
		from := sys.Now()
		before := sys.DRAM().Stats()
		sys.RunFrames(1)
		worst := 1e9
		for _, v := range sys.MinNPIByCore(from) {
			if v < worst {
				worst = v
			}
		}
		fmt.Printf("%5d  %14.2f  %.3f\n", delta,
			sys.DRAM().BandwidthOverWindowGBps(before, from, sys.Now()), worst)
	}
}

// sweepBits varies the priority quantization k in 1..4 under Policy 1.
func sweepBits(scale int) {
	fmt.Println("bits  levels  worst min NPI (case A, QoS)")
	for bits := 1; bits <= 4; bits++ {
		cfg := sara.Camcorder(sara.CaseA,
			sara.WithPolicy(memctrl.QoS),
			sara.WithScaleDiv(scale),
			sara.WithPriorityBits(bits))
		// Per-core LUT overrides are sized for 8 levels; drop them when
		// sweeping other quantizations.
		if bits != 3 {
			for i := range cfg.DMAs {
				cfg.DMAs[i].LUTBounds = nil
			}
		}
		sys := sara.Build(cfg)
		sys.RunFrames(1)
		from := sys.Now()
		sys.RunFrames(1)
		worst := 1e9
		for _, v := range sys.MinNPIByCore(from) {
			if v < worst {
				worst = v
			}
		}
		fmt.Printf("%4d  %6d  %.3f\n", bits, 1<<bits, worst)
	}
}

// sweepAging varies the starvation limit T under Policy 1.
func sweepAging(scale int) {
	fmt.Println("agingT  worst min NPI (case A, QoS)")
	for _, t := range []uint64{1000, 10000, 100000, 0} {
		cfg := sara.Camcorder(sara.CaseA,
			sara.WithPolicy(memctrl.QoS),
			sara.WithScaleDiv(scale),
			sara.WithAgingT(sara.Cycle(t)))
		sys := sara.Build(cfg)
		sys.RunFrames(1)
		from := sys.Now()
		sys.RunFrames(1)
		worst := 1e9
		for _, v := range sys.MinNPIByCore(from) {
			if v < worst {
				worst = v
			}
		}
		label := fmt.Sprint(t)
		if t == 0 {
			label = "off"
		}
		fmt.Printf("%6s  %.3f\n", label, worst)
	}
}
