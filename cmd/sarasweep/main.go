// Command sarasweep runs the design-space sweeps DESIGN.md calls out as
// ablations: Policy 2's row-buffer threshold delta, the priority
// quantization k, the aging limit T, the refresh on/off comparison and a
// seed fan-out with confidence intervals.
//
//	sarasweep -sweep delta
//	sarasweep -sweep bits
//	sarasweep -sweep aging
//	sarasweep -sweep refresh
//	sarasweep -sweep seeds
//	sarasweep -sweep scale
//
// The -refresh flag enables LPDDR4 refresh in the delta/bits/aging/seeds
// and scale sweeps so any ablation can be re-run under refresh pressure.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sara"
	"sara/internal/config"
	"sara/internal/exp"
	"sara/internal/memctrl"
	"sara/internal/txn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sarasweep: ")

	sweep := flag.String("sweep", "delta", "sweep to run: delta|bits|aging|refresh|seeds")
	scale := flag.Int("scale", 256, "time-scale divisor")
	refresh := flag.Bool("refresh", false, "enable LPDDR4 refresh (tREFI/tRFC) in the sweep")
	flag.Parse()

	switch *sweep {
	case "delta":
		sweepDelta(*scale, *refresh)
	case "bits":
		sweepBits(*scale, *refresh)
	case "aging":
		sweepAging(*scale, *refresh)
	case "refresh":
		sweepRefresh(*scale)
	case "seeds":
		sweepSeeds(*scale, *refresh)
	case "scale":
		sweepScale(*scale, *refresh)
	default:
		log.Fatalf("unknown sweep %q", *sweep)
	}
}

// sweepDelta varies Policy 2's threshold: higher delta favors row hits
// (bandwidth) at growing risk to urgent transactions (worst-case NPI).
func sweepDelta(scale int, refresh bool) {
	fmt.Println("delta  bandwidth(GB/s)  worst min NPI (critical cores)")
	for delta := 0; delta <= 8; delta += 2 {
		cfg := sara.Saturated(
			sara.WithPolicy(memctrl.QoSRB),
			sara.WithScaleDiv(scale),
			sara.WithDelta(txn.Priority(min(delta, 7))),
			sara.WithRefresh(refresh))
		if delta == 8 {
			// delta = 8 means "row hits always win" (no priority override).
			cfg.Delta = 8
		}
		sys := sara.Build(cfg)
		sys.RunFrames(1)
		from := sys.Now()
		before := sys.DRAM().Stats()
		sys.RunFrames(1)
		worst := 1e9
		for _, v := range sys.MinNPIByCore(from) {
			if v < worst {
				worst = v
			}
		}
		fmt.Printf("%5d  %14.2f  %.3f\n", delta,
			sys.DRAM().BandwidthOverWindowGBps(before, from, sys.Now()), worst)
	}
}

// sweepBits varies the priority quantization k in 1..4 under Policy 1.
func sweepBits(scale int, refresh bool) {
	fmt.Println("bits  levels  worst min NPI (case A, QoS)")
	for bits := 1; bits <= 4; bits++ {
		cfg := sara.Camcorder(sara.CaseA,
			sara.WithPolicy(memctrl.QoS),
			sara.WithScaleDiv(scale),
			sara.WithPriorityBits(bits),
			sara.WithRefresh(refresh))
		// Per-core LUT overrides are sized for 8 levels; drop them when
		// sweeping other quantizations.
		if bits != 3 {
			for i := range cfg.DMAs {
				cfg.DMAs[i].LUTBounds = nil
			}
		}
		sys := sara.Build(cfg)
		sys.RunFrames(1)
		from := sys.Now()
		sys.RunFrames(1)
		worst := 1e9
		for _, v := range sys.MinNPIByCore(from) {
			if v < worst {
				worst = v
			}
		}
		fmt.Printf("%4d  %6d  %.3f\n", bits, 1<<bits, worst)
	}
}

// sweepAging varies the starvation limit T under Policy 1.
func sweepAging(scale int, refresh bool) {
	fmt.Println("agingT  worst min NPI (case A, QoS)")
	for _, t := range []uint64{1000, 10000, 100000, 0} {
		cfg := sara.Camcorder(sara.CaseA,
			sara.WithPolicy(memctrl.QoS),
			sara.WithScaleDiv(scale),
			sara.WithAgingT(sara.Cycle(t)),
			sara.WithRefresh(refresh))
		sys := sara.Build(cfg)
		sys.RunFrames(1)
		from := sys.Now()
		sys.RunFrames(1)
		worst := 1e9
		for _, v := range sys.MinNPIByCore(from) {
			if v < worst {
				worst = v
			}
		}
		label := fmt.Sprint(t)
		if t == 0 {
			label = "off"
		}
		fmt.Printf("%6s  %.3f\n", label, worst)
	}
}

// sweepRefresh compares the saturated workload with refresh off and on:
// how much bandwidth the tREFI cadence steals and what it costs the
// worst-case NPI under both row-aware policies.
func sweepRefresh(scale int) {
	fmt.Println("policy     refresh  bandwidth(GB/s)  refreshes  blackout%  worst min NPI")
	for _, policy := range []memctrl.PolicyKind{memctrl.QoS, memctrl.QoSRB} {
		for _, on := range []bool{false, true} {
			cfg := sara.Saturated(
				sara.WithPolicy(policy),
				sara.WithScaleDiv(scale),
				sara.WithRefresh(on))
			sys := sara.Build(cfg)
			sys.RunFrames(1)
			from := sys.Now()
			before := sys.DRAM().Stats()
			sys.RunFrames(1)
			worst := 1e9
			for _, v := range sys.MinNPIByCore(from) {
				if v < worst {
					worst = v
				}
			}
			label := "off"
			if on {
				label = "on"
			}
			fmt.Printf("%-9s  %-7s  %15.2f  %9d  %8.1f%%  %.3f\n",
				policy, label,
				sys.DRAM().BandwidthOverWindowGBps(before, from, sys.Now()),
				sys.DRAM().Stats().Totals().Refreshes,
				100*sys.DRAM().RefreshDuty(sys.Now()), worst)
		}
	}
}

// sweepScale grows the saturated workload to 2x and 4x channels and
// cores and measures the loaded-phase simulation cost. The number to
// watch is ns/cycle/channel: the controllers' per-bank candidate buckets
// and the routers' grant dormancy keep the per-channel scheduling cost
// near-flat as the SoC grows, instead of re-inflating with total queue
// depth.
func sweepScale(scale int, refresh bool) {
	fmt.Println("scale  channels  DMAs  bandwidth(GB/s)  ns/cycle  ns/cycle/channel")
	for _, factor := range []int{1, 2, 4} {
		cfg := sara.ScaledSaturated(factor,
			sara.WithScaleDiv(scale),
			sara.WithRefresh(refresh))
		sys := sara.Build(cfg)
		sys.RunFrames(1) // reach the saturated steady state
		from := sys.Now()
		before := sys.DRAM().Stats()
		start := time.Now()
		sys.RunFrames(1)
		elapsed := time.Since(start)
		cycles := float64(sys.Now() - from)
		nsPerCycle := float64(elapsed.Nanoseconds()) / cycles
		ch := cfg.DRAM.Geometry.Channels
		fmt.Printf("%4dx  %8d  %4d  %15.2f  %8.0f  %16.0f\n",
			factor, ch, len(cfg.DMAs),
			sys.DRAM().BandwidthOverWindowGBps(before, from, sys.Now()),
			nsPerCycle, nsPerCycle/float64(ch))
	}
}

// sweepSeeds fans one (case, policy) across seeds through the parallel
// harness and reports the across-seed confidence intervals.
func sweepSeeds(scale int, refresh bool) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	opt := exp.Options{ScaleDiv: scale, Refresh: refresh}
	for _, policy := range []memctrl.PolicyKind{memctrl.QoS, memctrl.FCFS} {
		runs := exp.RunSeeds(config.CaseA, policy, seeds, opt)
		fmt.Print(exp.FormatSeedSummary(runs))
	}
}
