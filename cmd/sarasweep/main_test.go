package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fastCell keeps CLI-level simulations cheap: a high time-scale divisor
// shortens the frame while driving the exact production code path.
var fastCell = []string{"-sweep", "cell", "-case", "A", "-policy", "fcfs", "-scale", "2048"}

func TestUnknownSweepIsUsageError(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-sweep", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown sweep "bogus"`) {
		t.Errorf("stderr lacks the unknown-sweep diagnosis:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "Usage of sarasweep") {
		t.Errorf("stderr lacks usage text:\n%s", errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("usage error wrote to stdout: %q", out.String())
	}
}

func TestUnknownCaseAndPolicyAreUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-sweep", "cell", "-case", "Z"}, &out, &errb); code != 2 {
		t.Fatalf("bad case: exit code %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-sweep", "cell", "-policy", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad policy: exit code %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown policy") {
		t.Errorf("stderr lacks policy diagnosis:\n%s", errb.String())
	}
}

func TestUnknownFlagIsUsageError(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestCellRunSucceeds(t *testing.T) {
	var out, errb strings.Builder
	if code := run(fastCell, &out, &errb); code != 0 {
		t.Fatalf("exit code %d, want 0; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "case A / policy fcfs") {
		t.Errorf("cell output lacks the run header:\n%s", out.String())
	}
}

func TestCellMaxCyclesFailureCarriesRepro(t *testing.T) {
	var out, errb strings.Builder
	args := append([]string{"-max-cycles", "100"}, fastCell...)
	if code := run(args, &out, &errb); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "cycle budget exceeded") {
		t.Errorf("stderr lacks the watchdog diagnosis:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "Repro: go run ./cmd/sarasweep -sweep cell") {
		t.Errorf("stderr lacks the standardized Repro line:\n%s", errb.String())
	}
}

// TestCellJournalResume drives the journal through the CLI: the second,
// resumed invocation serves the cell from the journal and prints exactly
// the bytes the first produced.
func TestCellJournalResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "cli.jsonl")
	args := append([]string{"-journal", journal}, fastCell...)

	var first, errb strings.Builder
	if code := run(args, &first, &errb); code != 0 {
		t.Fatalf("first run: exit %d, stderr:\n%s", code, errb.String())
	}
	if st, err := os.Stat(journal); err != nil || st.Size() == 0 {
		t.Fatalf("first run left no journal: %v", err)
	}

	var second strings.Builder
	args = append([]string{"-resume"}, args...)
	if code := run(args, &second, &errb); code != 0 {
		t.Fatalf("resumed run: exit %d, stderr:\n%s", code, errb.String())
	}
	if first.String() != second.String() {
		t.Errorf("resumed output not byte-identical:\nfirst:\n%s\nsecond:\n%s",
			first.String(), second.String())
	}
}

func TestAnalysisOutRequiresAnalyze(t *testing.T) {
	var out, errb strings.Builder
	if code := run(append(fastCell, "-analysis-out", "x.json"), &out, &errb); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-analysis-out requires -analyze") {
		t.Errorf("stderr lacks the diagnosis:\n%s", errb.String())
	}
}

func TestAnalyzedCellWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rep.json")
	var out, errb strings.Builder
	code := run(append(fastCell, "-analyze", "-analysis-window", "4096", "-analysis-out", path), &out, &errb)
	if code != 0 {
		t.Fatalf("exit code %d, want 0; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("output lacks the report confirmation:\n%s", out.String())
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var reports map[string]json.RawMessage
	if err := json.Unmarshal(blob, &reports); err != nil {
		t.Fatalf("report is not a JSON object: %v", err)
	}
	if len(reports) != 1 {
		t.Fatalf("cell sweep wrote %d reports, want 1; keys: %v", len(reports), reports)
	}
}

func TestMonitorFlagServesStatus(t *testing.T) {
	var out, errb strings.Builder
	code := run(append(append([]string{}, fastCell...), "-monitor", "127.0.0.1:0"), &out, &errb)
	if code != 0 {
		t.Fatalf("exit code %d, want 0; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "monitor: http://127.0.0.1:") {
		t.Errorf("output lacks the monitor address line:\n%s", out.String())
	}
}
