module example.com/wakebug

go 1.24
