// Package wakebug seeds the stale now-relative wake-bound bug class:
// NextActivity re-derives its bound from mutable receiver state
// relative to now, so a later state change silently invalidates the
// bound the kernel already latched.
package wakebug

// Cycle mirrors sim.Cycle for the fixture.
type Cycle uint64

// Source emits one item every rate cycles.
type Source struct {
	rate Cycle
}

// NextActivity reports when the source next wants to run. BUG: the
// bound is now + s.rate, recomputed from mutable receiver state on
// every call instead of being anchored at the cursor in absolute time.
func (s *Source) NextActivity(now Cycle) (Cycle, bool) {
	return now + s.rate, true
}
