// Package allocbug seeds an allocation on an annotated hot path.
package allocbug

// Step builds a fresh slice every call. BUG: hot-path functions must
// not allocate.
//
//sara:hotpath
func Step() []int {
	return make([]int, 8)
}
