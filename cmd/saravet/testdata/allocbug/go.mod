module example.com/allocbug

go 1.24
