// Package hookbug seeds a direct trace-hook write. Hook pointers must
// only ever be wired through the hook registry (Attach), never assigned
// directly, or detach-all teardown leaks the handler.
package hookbug

// debugTrace is the package trace hook.
var debugTrace func(string)

// Install wires f straight into the hook variable. BUG: bypasses the
// registry.
func Install(f func(string)) {
	debugTrace = f
}
