module example.com/hookbug

go 1.24
