// Package clean is a saravet regression fixture that must produce no
// findings: an annotated hot path that mutates in place, and a wake
// bound anchored in absolute time.
package clean

// Cycle mirrors sim.Cycle for the fixture.
type Cycle uint64

// Counter is trivially alloc-free hot-path state.
type Counter struct {
	n    uint64
	next Cycle
}

// Step advances the counter without allocating.
//
//sara:hotpath
func (c *Counter) Step() {
	c.n++
}

// NextActivity returns the absolute next-wake cycle recorded at arm
// time, clamped to now — the sound pattern.
func (c *Counter) NextActivity(now Cycle) (Cycle, bool) {
	at := c.next
	if at < now {
		at = now
	}
	return at, true
}
