module example.com/clean

go 1.24
