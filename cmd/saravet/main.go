// Command saravet runs the repo's static-analysis suite (internal/lint):
// hotpathalloc, wakebound, hookdiscipline, determinism and the //sara:
// directive validator.
//
// Three modes:
//
//	saravet [packages]            standalone; loads the module (default
//	                              ./...) via the go command and prints
//	                              findings sorted by position.
//	saravet -escape [packages]    runs go build -gcflags=-m and reports
//	                              compiler-verified heap escapes inside
//	                              //sara:hotpath functions.
//	go vet -vettool=$(pwd)/bin/saravet ./...
//	                              vet driver; saravet speaks the vet.cfg
//	                              unit protocol, exporting hot-path facts
//	                              through the .vetx slots so the
//	                              cross-package contract works under
//	                              go vet's per-package scheduling.
//
// Exit codes: 0 clean, 1 findings (or a tree that fails to typecheck),
// 2 usage or load errors (the tool could not analyze at all).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"

	"sara/internal/lint"
	"sara/internal/lint/load"
)

const usage = `usage: saravet [-escape] [packages]
       go vet -vettool=/path/to/saravet [packages]

Runs the sara static-analysis suite: hotpathalloc, wakebound,
hookdiscipline, determinism, saradirective. Packages default to ./...
relative to the current directory.

  -escape   cross-check //sara:hotpath functions against the compiler's
            escape analysis (go build -gcflags=-m) instead of running the
            syntactic analyzers

Exit codes: 0 clean, 1 findings, 2 usage or load errors.
`

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

func run(args []string, dir string, stdout, stderr io.Writer) int {
	// The go vet driver protocol: -flags, -V=full, then one *.cfg per
	// package unit.
	if len(args) > 0 {
		switch {
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasPrefix(args[0], "-V="):
			fmt.Fprintf(stdout, "saravet version %s\n", version())
			return 0
		case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
			return runVetUnit(args[0], stderr)
		}
	}

	fs := flag.NewFlagSet("saravet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() { fmt.Fprint(stderr, usage) }
	escape := fs.Bool("escape", false, "run the compiler escape-analysis cross-check")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *escape {
		return runEscape(dir, fs.Args(), stdout, stderr)
	}
	return runStandalone(dir, fs.Args(), stdout, stderr)
}

func runStandalone(dir string, patterns []string, stdout, stderr io.Writer) int {
	res, err := load.Patterns(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "saravet: %v\n", err)
		return 2
	}
	analyzers := lint.All()
	var all []lint.Diagnostic
	for _, pkg := range res.Packages {
		if !pkg.Analyze {
			continue
		}
		pass := &lint.Pass{
			Fset:   res.Fset,
			Files:  pkg.Files,
			Pkg:    pkg.Types,
			Info:   pkg.Info,
			Module: res.Module,
			Facts:  res.Facts,
		}
		ds, err := lint.RunPackage(pass, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "saravet: %v\n", err)
			return 2
		}
		all = append(all, ds...)
	}
	return report(all, dir, stdout)
}

func runEscape(dir string, patterns []string, stdout, stderr io.Writer) int {
	res, err := load.Patterns(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "saravet: %v\n", err)
		return 2
	}
	if res.Module == "" {
		fmt.Fprintln(stderr, "saravet: -escape requires a module")
		return 2
	}
	ix := lint.NewEscapeIndex()
	for _, pkg := range res.Packages {
		ix.AddFiles(res.Fset, pkg.Files)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"build", fmt.Sprintf("-gcflags=%s/...=-m", res.Module), "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	out, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(stderr, "saravet: go build -gcflags=-m: %v\n%s", err, out)
		return 2
	}
	return report(ix.Check(out, dir), dir, stdout)
}

// report prints findings with positions relative to dir and returns the
// exit code.
func report(ds []lint.Diagnostic, dir string, w io.Writer) int {
	lint.SortDiagnostics(ds)
	abs, err := filepath.Abs(dir)
	for _, d := range ds {
		if err == nil {
			if rel, rerr := filepath.Rel(abs, d.Pos.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Fprintln(w, d.String())
	}
	if len(ds) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the subset of go vet's per-package unit config saravet
// consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	ModulePath                string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "saravet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "saravet: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "saravet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Facts are syntactic, so they are exported for every unit — even
	// VetxOnly dependency visits that never typecheck.
	facts := lint.ScanFacts(fset, files)
	if cfg.VetxOutput != "" {
		data, err := json.Marshal(&facts)
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, data, 0o666)
		}
		if err != nil {
			fmt.Fprintf(stderr, "saravet: writing facts: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	importPath := plainImportPath(cfg.ImportPath)
	if cfg.ModulePath == "" || !inModule(cfg.ModulePath, importPath) {
		return 0
	}

	imp := importer.ForCompiler(fset, compilerName(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		if r, ok := cfg.ImportMap[path]; ok {
			path = r
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: unsafeAware{imp},
		Error:    func(err error) { typeErrs = append(typeErrs, err.Error()) },
	}
	tpkg, _ := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "saravet: typecheck %s: %s\n", importPath, strings.Join(typeErrs, "\n"))
		return 1
	}

	// Sorted iteration makes the plain path win deterministically over a
	// test-variant spelling of the same package.
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, path)
	}
	sort.Strings(vetxPaths)
	factsMap := map[string]*lint.Facts{}
	for _, path := range vetxPaths {
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			continue
		}
		var f lint.Facts
		if json.Unmarshal(data, &f) != nil {
			continue
		}
		key := plainImportPath(path)
		if _, ok := factsMap[key]; !ok {
			factsMap[key] = &f
		}
	}

	pass := &lint.Pass{
		Fset:   fset,
		Files:  files,
		Pkg:    tpkg,
		Info:   info,
		Module: cfg.ModulePath,
		Facts:  factsMap,
	}
	ds, err := lint.RunPackage(pass, lint.All())
	if err != nil {
		fmt.Fprintf(stderr, "saravet: %v\n", err)
		return 2
	}
	for _, d := range ds {
		fmt.Fprintln(stderr, d.String())
	}
	if len(ds) > 0 {
		return 1
	}
	return 0
}

// unsafeAware wraps the export-data importer with the unsafe special case
// the compiler handles internally.
type unsafeAware struct {
	imp types.Importer
}

func (u unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.imp.Import(path)
}

// plainImportPath strips go vet's test-variant decorations:
// "p [p.test]" -> "p".
func plainImportPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

func compilerName(name string) string {
	if name == "" {
		return "gc"
	}
	return name
}

func inModule(module, path string) bool {
	return path == module || strings.HasPrefix(path, module+"/")
}

func version() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		v := bi.Main.Version
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				v += "-" + s.Value
			}
		}
		if v != "" {
			return v
		}
	}
	return "devel"
}
