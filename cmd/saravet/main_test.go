package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// vet runs the saravet CLI entry point against a testdata mini-module
// and returns the exit code plus captured output.
func vet(t *testing.T, module string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	dir := filepath.Join("testdata", module)
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("fixture module %s: %v", module, err)
	}
	var out, errb bytes.Buffer
	code = run(args, dir, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanModulePasses(t *testing.T) {
	code, out, errb := vet(t, "clean", "./...")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if out != "" {
		t.Fatalf("clean module produced findings:\n%s", out)
	}
}

// TestWakeBugRejected proves saravet rejects the stale now-relative
// NextActivity bound pattern (the PR 7 wake-contract bug class).
func TestWakeBugRejected(t *testing.T) {
	code, out, errb := vet(t, "wakebug", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "wakebound:") || !strings.Contains(out, "Source.NextActivity") {
		t.Fatalf("missing wakebound finding for Source.NextActivity:\n%s", out)
	}
}

// TestHookBugRejected proves saravet rejects a direct write to a
// package-level trace-hook pointer.
func TestHookBugRejected(t *testing.T) {
	code, out, errb := vet(t, "hookbug", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "hookdiscipline:") || !strings.Contains(out, "debugTrace") {
		t.Fatalf("missing hookdiscipline finding for debugTrace:\n%s", out)
	}
}

// TestAllocBugRejected proves saravet rejects an injected hot-path
// allocation.
func TestAllocBugRejected(t *testing.T) {
	code, out, errb := vet(t, "allocbug", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "hotpathalloc:") || !strings.Contains(out, "Step") {
		t.Fatalf("missing hotpathalloc finding for Step:\n%s", out)
	}
}

// TestEscapeModeFlagsAllocBug proves the -escape mode reports
// compiler-verified heap escapes inside annotated functions.
func TestEscapeModeFlagsAllocBug(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping go build -gcflags=-m run")
	}
	code, out, errb := vet(t, "allocbug", "-escape", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "escape:") || !strings.Contains(out, "Step") {
		t.Fatalf("missing escape finding for Step:\n%s", out)
	}
}

// TestEscapeModeCleanModule proves -escape stays quiet when nothing in
// an annotated function escapes.
func TestEscapeModeCleanModule(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping go build -gcflags=-m run")
	}
	code, out, errb := vet(t, "clean", "-escape", "./...")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
}

func TestUsageErrorExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, ".", &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "Exit codes: 0 clean, 1 findings, 2 usage") {
		t.Fatalf("usage text not printed:\n%s", errb.String())
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	dir := t.TempDir() // no go.mod, no packages
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, dir, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestVetDriverProtocol(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-flags"}, ".", &out, &errb); code != 0 {
		t.Fatalf("-flags exit %d, want 0", code)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("-flags printed %q, want []", out.String())
	}

	out.Reset()
	if code := run([]string{"-V=full"}, ".", &out, &errb); code != 0 {
		t.Fatalf("-V=full exit %d, want 0", code)
	}
	if !strings.HasPrefix(out.String(), "saravet version ") {
		t.Fatalf("-V=full printed %q", out.String())
	}

	out.Reset()
	if code := run([]string{"missing.cfg"}, ".", &out, &errb); code != 2 {
		t.Fatalf("unreadable unit config: exit %d, want 2", code)
	}
}

// TestVetToolIntegration drives saravet through the real go vet
// -vettool protocol against the seeded wake-bug module.
func TestVetToolIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping vettool build + go vet run")
	}
	bin := filepath.Join(t.TempDir(), "saravet")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building saravet: %v\n%s", err, out)
	}
	abs, err := filepath.Abs(filepath.Join("testdata", "wakebug"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = abs
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on the wake-bug module:\n%s", out)
	}
	if !strings.Contains(string(out), "wakebound") {
		t.Fatalf("go vet output lacks the wakebound finding:\n%s", out)
	}

	cmd = exec.Command("go", "vet", "-vettool="+bin, "./...")
	cleanDir, err := filepath.Abs(filepath.Join("testdata", "clean"))
	if err != nil {
		t.Fatal(err)
	}
	cmd.Dir = cleanDir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed on the clean module: %v\n%s", err, out)
	}
}
