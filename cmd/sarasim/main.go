// Command sarasim runs one camcorder simulation and reports per-core QoS:
//
//	sarasim -case A -policy qos -frames 2 -scale 32 [-csv npi.csv]
//
// It prints each core's minimum NPI over the measured frames, the DRAM
// bandwidth and row-hit rate, and optionally dumps the per-DMA NPI time
// series as CSV.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"sara"
	"sara/internal/exp"
	"sara/internal/memctrl"
	"sara/internal/meter"
	"sara/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sarasim: ")

	caseName := flag.String("case", "A", "test case: A or B (Table 1)")
	policyName := flag.String("policy", "qos", "arbitration policy: fcfs|rr|frfcfs|framerate|qos|qos-rb")
	frames := flag.Int("frames", 1, "measured frame periods (after 1 warmup frame)")
	scale := flag.Int("scale", 256, "time-scale divisor (larger = faster, coarser)")
	seed := flag.Uint64("seed", 1, "workload seed")
	refresh := flag.Bool("refresh", false, "enable LPDDR4 refresh (tREFI/tRFC)")
	csvPath := flag.String("csv", "", "write per-DMA NPI time series to this CSV file")
	flag.Parse()

	tc := sara.CaseA
	switch *caseName {
	case "A", "a":
	case "B", "b":
		tc = sara.CaseB
	default:
		log.Fatalf("unknown case %q (want A or B)", *caseName)
	}
	policy, err := memctrl.ParsePolicy(*policyName)
	if err != nil {
		log.Fatal(err)
	}

	run := sara.RunPolicy(tc, policy, sara.ExpOptions{
		ScaleDiv:      *scale,
		MeasureFrames: *frames,
		Seed:          *seed,
		Refresh:       *refresh,
	})
	fmt.Print(exp.FormatRun(run))
	if run.Refreshes > 0 {
		// Split each below-target core's shortfall between the refresh
		// cadence and contention, so "the dip is tREFI, not the policy"
		// is visible at a glance. Cores at or above the pass threshold
		// are healthy by the tool's own criterion and get no line.
		for _, core := range run.CriticalCores {
			npi := run.MinNPI[core]
			if npi >= exp.PassNPI {
				continue
			}
			ref, cont := meter.StallAttribution(npi, run.RefreshDuty)
			fmt.Printf("  %-14s shortfall %.3f = refresh %.3f + contention %.3f\n",
				core, ref+cont, ref, cont)
		}
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, run); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

func writeCSV(path string, run sara.PolicyRun) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	names := make([]string, 0, len(run.Series))
	for name := range run.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	series := make([]*stats.Series, 0, len(names))
	for _, n := range names {
		series = append(series, run.Series[n])
	}
	return stats.WriteCSV(f, series...)
}
