// Command sarasim runs one camcorder simulation and reports per-core QoS:
//
//	sarasim -case A -policy qos -frames 2 -scale 32 [-csv npi.csv]
//
// It prints each core's minimum NPI over the measured frames, the DRAM
// bandwidth and row-hit rate, and optionally dumps the per-DMA NPI time
// series as CSV.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"sara"
	"sara/internal/exp"
	"sara/internal/memctrl"
	"sara/internal/meter"
	"sara/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process plumbing, so tests can drive the CLI
// and assert output and exit codes. 0 = success, 1 = the run or an
// output write failed, 2 = usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sarasim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	caseName := fs.String("case", "A", "test case: A or B (Table 1)")
	policyName := fs.String("policy", "qos", "arbitration policy: fcfs|rr|frfcfs|framerate|qos|qos-rb")
	frames := fs.Int("frames", 1, "measured frame periods (after 1 warmup frame)")
	scale := fs.Int("scale", 256, "time-scale divisor (larger = faster, coarser)")
	seed := fs.Uint64("seed", 1, "workload seed")
	refresh := fs.Bool("refresh", false, "enable LPDDR4 refresh (tREFI/tRFC)")
	csvPath := fs.String("csv", "", "write per-DMA NPI time series to this CSV file")
	analyze := fs.Bool("analyze", false, "attach the stall-attribution analyzers")
	analysisWindow := fs.Uint64("analysis-window", 0, "analyzer aggregation window in cycles (0 = 4 NPI sampling periods)")
	analysisOut := fs.String("analysis-out", "", "with -analyze: write the windowed report here (.csv = system series CSV, else JSON)")
	domainWorkers := fs.Int("domain-workers", 0, "build the system on the domain-parallel kernel with this many goroutines (>= 2; 0/1 = serial kernel)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *analysisOut != "" && !*analyze {
		fmt.Fprintln(stderr, "sarasim: -analysis-out requires -analyze")
		return 2
	}

	tc := sara.CaseA
	switch *caseName {
	case "A", "a":
	case "B", "b":
		tc = sara.CaseB
	default:
		fmt.Fprintf(stderr, "sarasim: unknown case %q (want A or B)\n", *caseName)
		return 2
	}
	policy, err := memctrl.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintf(stderr, "sarasim: %v\n", err)
		return 2
	}

	res := sara.RunPolicy(tc, policy, sara.ExpOptions{
		ScaleDiv:       *scale,
		MeasureFrames:  *frames,
		Seed:           *seed,
		Refresh:        *refresh,
		Analyze:        *analyze,
		AnalysisWindow: *analysisWindow,
		DomainWorkers:  *domainWorkers,
	})
	fmt.Fprint(stdout, exp.FormatRun(res))
	if res.Err != nil {
		return 1
	}
	if res.Refreshes > 0 {
		// Split each below-target core's shortfall between the refresh
		// cadence and contention, so "the dip is tREFI, not the policy"
		// is visible at a glance. Cores at or above the pass threshold
		// are healthy by the tool's own criterion and get no line.
		for _, core := range res.CriticalCores {
			npi := res.MinNPI[core]
			if npi >= exp.PassNPI {
				continue
			}
			ref, cont := meter.StallAttribution(npi, res.RefreshDuty)
			fmt.Fprintf(stdout, "  %-14s shortfall %.3f = refresh %.3f + contention %.3f\n",
				core, ref+cont, ref, cont)
		}
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, res); err != nil {
			fmt.Fprintf(stderr, "sarasim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *csvPath)
	}
	if *analysisOut != "" {
		if err := writeAnalysis(*analysisOut, res.Analysis); err != nil {
			fmt.Fprintf(stderr, "sarasim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *analysisOut)
	}
	return 0
}

// writeAnalysis writes the run's windowed observability report: the
// system-level series as CSV for a .csv suffix, the full report as JSON
// otherwise.
func writeAnalysis(path string, rep *sara.AnalysisReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return rep.WriteCSV(f)
	}
	return sara.WriteAnalysisJSON(f, map[string]*sara.AnalysisReport{"run": rep})
}

func writeCSV(path string, run sara.PolicyRun) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	names := make([]string, 0, len(run.Series))
	for name := range run.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	series := make([]*stats.Series, 0, len(names))
	for _, n := range names {
		series = append(series, run.Series[n])
	}
	return stats.WriteCSV(f, series...)
}
