package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBadCaseAndPolicyAreUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-case", "Z"}, &out, &errb); code != 2 {
		t.Fatalf("bad case: exit code %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown case "Z"`) {
		t.Errorf("stderr lacks the case diagnosis:\n%s", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-policy", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad policy: exit code %d, want 2", code)
	}
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit code %d, want 2", code)
	}
}

func TestRunWritesReportAndCSV(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "npi.csv")
	var out, errb strings.Builder
	code := run([]string{"-case", "A", "-policy", "fcfs", "-scale", "2048", "-csv", csv}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code %d, want 0; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "case A / policy fcfs") {
		t.Errorf("report lacks run header:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "wrote "+csv) {
		t.Errorf("report lacks CSV confirmation:\n%s", out.String())
	}
}

func TestUnwritableCSVFails(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-scale", "2048", "-csv", filepath.Join(t.TempDir(), "no", "such", "dir.csv")}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}

func TestAnalysisOutRequiresAnalyze(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-analysis-out", "x.json"}, &out, &errb); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-analysis-out requires -analyze") {
		t.Errorf("stderr lacks the diagnosis:\n%s", errb.String())
	}
}

func TestAnalyzeWritesReport(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "rep.json")
	var out, errb strings.Builder
	code := run([]string{"-case", "A", "-policy", "qos", "-scale", "2048",
		"-analyze", "-analysis-window", "4096", "-analysis-out", jsonPath}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code %d, want 0; stderr:\n%s", code, errb.String())
	}
	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var reports map[string]json.RawMessage
	if err := json.Unmarshal(blob, &reports); err != nil {
		t.Fatalf("report is not a JSON object: %v", err)
	}
	if _, ok := reports["run"]; !ok {
		t.Fatalf("report lacks the \"run\" entry; keys: %v", reports)
	}

	csvPath := filepath.Join(dir, "rep.csv")
	out.Reset()
	errb.Reset()
	code = run([]string{"-case", "A", "-policy", "qos", "-scale", "2048",
		"-analyze", "-analysis-window", "4096", "-analysis-out", csvPath}, &out, &errb)
	if code != 0 {
		t.Fatalf("CSV run: exit code %d, want 0; stderr:\n%s", code, errb.String())
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), "worst_npi") {
		t.Errorf("system CSV lacks the worst_npi column:\n%s", csv)
	}
}
