// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablation sweeps DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark reports domain metrics (min NPI, GB/s) alongside ns/op.
package sara_test

import (
	"fmt"
	"testing"

	"sara"
	"sara/internal/memctrl"
	"sara/internal/txn"
)

func benchOpt() sara.ExpOptions { return sara.ExpOptions{ScaleDiv: 256} }

// BenchmarkFig4Adaptation exercises the Fig. 4 adaptation loop: one frame
// of case A under Policy 1 with every meter and adapter live.
func BenchmarkFig4Adaptation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := sara.Build(sara.Camcorder(sara.CaseA, sara.WithPolicy(sara.QoS)))
		sys.RunFrames(1)
	}
}

// BenchmarkFig5 regenerates Fig. 5: case A under the four policies.
func BenchmarkFig5(b *testing.B) {
	for _, p := range []sara.Policy{sara.FCFS, sara.RR, sara.FrameRate, sara.QoS} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				run := sara.RunPolicy(sara.CaseA, p, benchOpt())
				worst = minOf(run.MinNPI)
			}
			b.ReportMetric(worst, "worst-min-NPI")
		})
	}
}

// BenchmarkFig6 regenerates Fig. 6: case B under the four policies.
func BenchmarkFig6(b *testing.B) {
	for _, p := range []sara.Policy{sara.FCFS, sara.RR, sara.FrameRate, sara.QoS} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				run := sara.RunPolicy(sara.CaseB, p, benchOpt())
				worst = minOf(run.MinNPI)
			}
			b.ReportMetric(worst, "worst-min-NPI")
		})
	}
}

// BenchmarkFig7Sweep regenerates Fig. 7: the DRAM frequency sweep with the
// image processor's priority distribution.
func BenchmarkFig7Sweep(b *testing.B) {
	var high float64
	for i := 0; i < b.N; i++ {
		hists := sara.Fig7(benchOpt())
		high = hists[len(hists)-1].HighShare()
	}
	b.ReportMetric(high, "high-prio-share@1300")
}

// BenchmarkFig8Bandwidth regenerates Fig. 8: average DRAM bandwidth under
// the five scheduling policies on the saturated workload.
func BenchmarkFig8Bandwidth(b *testing.B) {
	for _, p := range []sara.Policy{sara.RR, sara.FCFS, sara.QoS, sara.QoSRB, sara.FRFCFS} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				cfg := sara.Saturated(sara.WithPolicy(p))
				sys := sara.Build(cfg)
				sys.RunFrames(1)
				from := sys.Now()
				before := sys.DRAM().Stats()
				sys.RunFrames(1)
				bw = sys.DRAM().BandwidthOverWindowGBps(before, from, sys.Now())
			}
			b.ReportMetric(bw, "GB/s")
		})
	}
}

// BenchmarkFig9RowBuffer regenerates Fig. 9: FR-FCFS vs QoS-RB on case A.
func BenchmarkFig9RowBuffer(b *testing.B) {
	for _, p := range []sara.Policy{sara.FRFCFS, sara.QoSRB} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				run := sara.RunPolicy(sara.CaseA, p, benchOpt())
				worst = minOf(run.MinNPI)
			}
			b.ReportMetric(worst, "worst-min-NPI")
		})
	}
}

// BenchmarkAblationDelta sweeps Policy 2's row-buffer threshold.
func BenchmarkAblationDelta(b *testing.B) {
	for _, delta := range []txn.Priority{0, 2, 4, 6, 7} {
		delta := delta
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				cfg := sara.Saturated(sara.WithPolicy(sara.QoSRB), sara.WithDelta(delta))
				sys := sara.Build(cfg)
				sys.RunFrames(2)
				bw = sys.DRAM().AverageBandwidthGBps(sys.Now())
			}
			b.ReportMetric(bw, "GB/s")
		})
	}
}

// BenchmarkAblationPriorityBits sweeps the quantization k (paper: k = 3
// suffices).
func BenchmarkAblationPriorityBits(b *testing.B) {
	for bits := 1; bits <= 4; bits++ {
		bits := bits
		b.Run(fmt.Sprintf("k=%d", bits), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				cfg := sara.Camcorder(sara.CaseA,
					sara.WithPolicy(sara.QoS), sara.WithPriorityBits(bits))
				if bits != 3 {
					// Per-core LUT overrides are sized for 8 levels.
					for j := range cfg.DMAs {
						cfg.DMAs[j].LUTBounds = nil
					}
				}
				sys := sara.Build(cfg)
				sys.RunFrames(1)
				from := sys.Now()
				sys.RunFrames(1)
				worst = minOf(sys.MinNPIByCore(from))
			}
			b.ReportMetric(worst, "worst-min-NPI")
		})
	}
}

// BenchmarkAblationAging sweeps the starvation limit T.
func BenchmarkAblationAging(b *testing.B) {
	for _, t := range []sara.Cycle{1000, 10000, 100000, 0} {
		t := t
		name := fmt.Sprintf("T=%d", t)
		if t == 0 {
			name = "T=off"
		}
		b.Run(name, func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				cfg := sara.Camcorder(sara.CaseA,
					sara.WithPolicy(sara.QoS), sara.WithAgingT(t))
				sys := sara.Build(cfg)
				sys.RunFrames(1)
				from := sys.Now()
				sys.RunFrames(1)
				worst = minOf(sys.MinNPIByCore(from))
			}
			b.ReportMetric(worst, "worst-min-NPI")
		})
	}
}

// BenchmarkAblationAdaptInterval sweeps the adaptation period.
func BenchmarkAblationAdaptInterval(b *testing.B) {
	for _, iv := range []sara.Cycle{256, 1024, 4096, 16384} {
		iv := iv
		b.Run(fmt.Sprintf("interval=%d", iv), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				cfg := sara.Camcorder(sara.CaseA,
					sara.WithPolicy(sara.QoS), sara.WithAdaptInterval(iv))
				sys := sara.Build(cfg)
				sys.RunFrames(1)
				from := sys.Now()
				sys.RunFrames(1)
				worst = minOf(sys.MinNPIByCore(from))
			}
			b.ReportMetric(worst, "worst-min-NPI")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw cycles/second of the full
// case A system, the number a user sizing longer runs cares about. The
// event-driven kernel fast-forwards quiescent stretches and the hot path
// is allocation-free, so this should report 0 allocs/op and a skipped
// fraction well above zero.
func BenchmarkSimulatorThroughput(b *testing.B) {
	sys := sara.Build(sara.Camcorder(sara.CaseA))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(1000)
	}
	b.ReportMetric(1000, "cycles/op")
	b.ReportMetric(100*float64(sys.Kernel().SkippedCycles())/float64(sys.Now()), "%skipped")
}

// BenchmarkSimulatorThroughputRefresh measures the full case A system
// with LPDDR4 refresh enabled: the refresh state machine rides the same
// timing-gate machinery, so throughput should stay close to the
// refresh-free number and allocs/op should stay at 0.
func BenchmarkSimulatorThroughputRefresh(b *testing.B) {
	sys := sara.Build(sara.Camcorder(sara.CaseA, sara.WithRefresh(true)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(1000)
	}
	b.ReportMetric(1000, "cycles/op")
	b.ReportMetric(100*float64(sys.Kernel().SkippedCycles())/float64(sys.Now()), "%skipped")
}

// BenchmarkLoadedPhaseThroughput measures ns/cycle through the saturated
// (non-idle) phase of the Fig. 8 workload: the CPU cluster floods every
// channel, so there are no system-wide idle gaps for the kernel to skip
// and the number isolates how cheaply the per-cycle machinery runs under
// sustained load — in particular whether the NoC routers stay dormant
// between grants instead of re-scanning ready heads every executed cycle.
func BenchmarkLoadedPhaseThroughput(b *testing.B) {
	sys := sara.Build(sara.Saturated())
	sys.RunFrames(1) // reach the saturated steady state
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(1000)
	}
	b.ReportMetric(1000, "cycles/op")
	b.ReportMetric(100*float64(sys.Kernel().SkippedCycles())/float64(sys.Now()), "%skipped")
}

// BenchmarkLoadedPhaseThroughputScaled measures the saturated phase on
// the scaled SoC configs (2x and 4x channels and cores). The number to
// compare across sizes is ns/cycle divided by the channel count: the
// per-bank candidate buckets keep each controller's scan proportional to
// active banks rather than queue depth, so per-channel cost should stay
// near-flat as the system grows. Allocs/op must stay at 0 at every scale.
func BenchmarkLoadedPhaseThroughputScaled(b *testing.B) {
	for _, factor := range []int{2, 4} {
		factor := factor
		b.Run(fmt.Sprintf("%dx", factor), func(b *testing.B) {
			sys := sara.Build(sara.ScaledSaturated(factor))
			sys.RunFrames(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Run(1000)
			}
			b.ReportMetric(1000, "cycles/op")
			b.ReportMetric(float64(sys.Config().DRAM.Geometry.Channels), "channels")
		})
	}
}

// BenchmarkLoadedPhaseThroughputParallel measures the saturated phase on
// the 4x SoC under the domain-parallel kernel at 1, 2 and 4 workers.
// Compare ns/cycle against BenchmarkLoadedPhaseThroughputScaled/4x: the
// w1 leg prices the partitioned topology plus the epoch machinery on one
// goroutine, and the multi-worker legs price the barrier against the
// sharded work — they win only when the per-epoch work per domain
// exceeds the synchronization cost, which needs real hardware
// parallelism (on a single-core host every leg is serial plus barrier
// overhead). Allocs/op must stay at 0 at every worker count.
func BenchmarkLoadedPhaseThroughputParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			sys := sara.BuildParallel(sara.ScaledSaturated(4), workers)
			if sys.Domains() == 0 {
				b.Fatal("4x saturated config should partition")
			}
			sys.RunFrames(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Run(1000)
			}
			b.ReportMetric(1000, "cycles/op")
			b.ReportMetric(float64(sys.Config().DRAM.Geometry.Channels), "channels")
			b.ReportMetric(float64(sys.DomainWorkers()), "workers")
		})
	}
}

// BenchmarkLoadedPhaseThroughputReference is the loaded-phase measurement
// with idle skipping disabled — the cycle-stepped floor the event-driven
// NoC is compared against.
func BenchmarkLoadedPhaseThroughputReference(b *testing.B) {
	sys := sara.Build(sara.Saturated())
	sys.Kernel().SetIdleSkip(false)
	sys.RunFrames(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(1000)
	}
	b.ReportMetric(1000, "cycles/op")
}

// BenchmarkSimulatorThroughputReference measures the same system with
// idle skipping disabled — the cycle-stepped reference path the
// equivalence tests compare against. The gap between this and
// BenchmarkSimulatorThroughput is what event-driven execution buys.
func BenchmarkSimulatorThroughputReference(b *testing.B) {
	sys := sara.Build(sara.Camcorder(sara.CaseA))
	sys.Kernel().SetIdleSkip(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(1000)
	}
	b.ReportMetric(1000, "cycles/op")
}

// BenchmarkFig5Parallel regenerates Fig. 5 with the runs fanned across
// GOMAXPROCS workers (the default harness mode), versus the serial
// BenchmarkFig5 sub-benchmarks above.
func BenchmarkFig5Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := sara.Fig5(benchOpt())
		if len(runs) != 4 {
			b.Fatal("unexpected run count")
		}
	}
}

func minOf(m map[string]float64) float64 {
	worst := 1e18
	for _, v := range m {
		if v < worst {
			worst = v
		}
	}
	return worst
}

var _ = memctrl.AllPolicies // keep the explicit policy dependency visible
