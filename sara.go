// Package sara is the public facade of the SARA library — a
// reproduction of "SARA: Self-Aware Resource Allocation for Heterogeneous
// MPSoCs" (Song, Alavoine, Lin — DAC 2018).
//
// It re-exports the pieces a downstream user composes:
//
//   - building a heterogeneous MPSoC memory subsystem from a Config
//     (DRAM, per-channel memory controllers, on-chip network, DMAs with
//     traffic sources, performance meters and priority adapters),
//   - the six arbitration policies the paper evaluates,
//   - the pre-built camcorder test cases of Table 1/2,
//   - and the experiment harness that regenerates every figure.
//
// See examples/quickstart for the smallest complete program.
package sara

import (
	"sara/internal/analysis"
	"sara/internal/config"
	"sara/internal/core"
	"sara/internal/exp"
	"sara/internal/memctrl"
	"sara/internal/sim"
	"sara/internal/txn"
)

// Cycle is a point in simulated time (DRAM command-clock cycles).
type Cycle = sim.Cycle

// Priority is a 3-bit urgency level (0 = healthy, 7 = most urgent).
type Priority = txn.Priority

// Policy selects the arbitration policy for the memory controllers and
// the on-chip network.
type Policy = memctrl.PolicyKind

// The arbitration policies of the evaluation (Section 4).
const (
	// FCFS serves transactions in arrival order.
	FCFS = memctrl.FCFS
	// RR round-robins the five class queues.
	RR = memctrl.RR
	// FRFCFS is first-ready FCFS (row hits first).
	FRFCFS = memctrl.FRFCFS
	// FrameRate is the frame-rate-based QoS baseline [Jeong et al.].
	FrameRate = memctrl.FrameRate
	// QoS is the paper's Policy 1 (priority-based round-robin).
	QoS = memctrl.QoS
	// QoSRB is the paper's Policy 2 (Policy 1 + row-buffer optimization).
	QoSRB = memctrl.QoSRB
)

// Config is a whole-system configuration.
type Config = core.Config

// DMASpec describes one DMA: its core, queue class, traffic shape, QoS
// meter parameters and optional custom NPI-to-priority table.
type DMASpec = core.DMASpec

// SourceSpec describes a DMA's traffic generator.
type SourceSpec = core.SourceSpec

// Traffic generator kinds.
const (
	// SrcFrame is a bursty whole-frame engine (frame-progress QoS).
	SrcFrame = core.SrcFrame
	// SrcDisplay is a constant-rate read-buffer refill engine.
	SrcDisplay = core.SrcDisplay
	// SrcCamera is a constant-rate write-buffer drain engine.
	SrcCamera = core.SrcCamera
	// SrcSporadic is a latency-sensitive sporadic engine.
	SrcSporadic = core.SrcSporadic
	// SrcRate is a steady bandwidth engine.
	SrcRate = core.SrcRate
	// SrcChunk is a periodic work-chunk engine with a deadline.
	SrcChunk = core.SrcChunk
	// SrcCPU is best-effort background traffic.
	SrcCPU = core.SrcCPU
)

// System is a fully wired simulation instance.
type System = core.System

// Unit is one assembled DMA with its engine, source, meter and adapter.
type Unit = core.Unit

// Build assembles a System from a Config.
func Build(cfg Config) *System { return core.Build(cfg) }

// BuildParallel assembles the domain-parallel System: one domain per
// memory channel, run on workers goroutines synchronized at
// conservative-lookahead epoch barriers. Results are bit-identical
// across worker counts; unpartitionable configs fall back to the serial
// kernel. See core.BuildParallel.
func BuildParallel(cfg Config, workers int) *System { return core.BuildParallel(cfg, workers) }

// PartitionPlan describes how a config shards into per-channel domains.
type PartitionPlan = core.PartitionPlan

// Partition reports the per-channel domain decomposition of a config,
// or ok=false when the topology cannot be safely sharded.
func Partition(cfg Config) (PartitionPlan, bool) { return core.Partition(cfg) }

// Case identifies one of the paper's test cases.
type Case = config.Case

// The two Table 1 test cases.
const (
	// CaseA runs all cores with DRAM at 1866 MT/s.
	CaseA = config.CaseA
	// CaseB disables GPS/camera/rotator/JPEG at 1700 MT/s.
	CaseB = config.CaseB
)

// Option adjusts a generated configuration.
type Option = config.Option

// Camcorder returns the paper's camcorder use case (Fig. 2 at 30 fps)
// for the given test case.
func Camcorder(tc Case, opts ...Option) Config { return config.Camcorder(tc, opts...) }

// Saturated returns the bandwidth-bound Fig. 8 variant of case A.
func Saturated(opts ...Option) Config { return config.Saturated(opts...) }

// ScaleSoC grows a configuration to factor× channels and DMA-roster
// copies (factor must be a power of two); see config.ScaleSoC.
func ScaleSoC(cfg Config, factor int) Config { return config.ScaleSoC(cfg, factor) }

// ScaledCamcorder returns the camcorder use case at factor× scale.
func ScaledCamcorder(tc Case, factor int, opts ...Option) Config {
	return config.ScaledCamcorder(tc, factor, opts...)
}

// ScaledSaturated returns the saturated Fig. 8 workload at factor× scale
// — the loaded-phase scaling benchmark.
func ScaledSaturated(factor int, opts ...Option) Config {
	return config.ScaledSaturated(factor, opts...)
}

// Configuration options, re-exported from internal/config.
var (
	// WithPolicy selects the arbitration policy.
	WithPolicy = config.WithPolicy
	// WithSeed sets the workload seed.
	WithSeed = config.WithSeed
	// WithScaleDiv sets the time-scaling factor (default 32).
	WithScaleDiv = config.WithScaleDiv
	// WithDataRate overrides the DRAM data rate in MT/s.
	WithDataRate = config.WithDataRate
	// WithRefresh enables LPDDR4 all-bank refresh (tREFI/tRFC) with the
	// JEDEC defaults for the configured data rate.
	WithRefresh = config.WithRefresh
	// WithDelta overrides Policy 2's row-buffer threshold.
	WithDelta = config.WithDelta
	// WithPriorityBits overrides the priority quantization k.
	WithPriorityBits = config.WithPriorityBits
	// WithAgingT overrides the starvation limit.
	WithAgingT = config.WithAgingT
	// WithAdaptInterval overrides the adaptation period.
	WithAdaptInterval = config.WithAdaptInterval
	// WithDomainWorkers selects the domain-parallel kernel (>= 2 workers).
	WithDomainWorkers = config.WithDomainWorkers
)

// Experiments re-exports the per-figure harness.

// ExpOptions tunes experiment fidelity versus runtime.
type ExpOptions = exp.Options

// PolicyRun is one (test case, policy) experiment outcome.
type PolicyRun = exp.PolicyRun

// FreqHistogram is one bar of the Fig. 7 sweep.
type FreqHistogram = exp.FreqHistogram

// BandwidthResult is one bar of the Fig. 8 comparison.
type BandwidthResult = exp.BandwidthResult

var (
	// DefaultExpOptions is the standard experiment fidelity.
	DefaultExpOptions = exp.DefaultOptions
	// FastExpOptions is the reduced fidelity used by tests.
	FastExpOptions = exp.FastOptions
	// RunPolicy measures one test case under one policy.
	RunPolicy = exp.RunPolicy
	// Fig5 regenerates Fig. 5 (case A, four policies).
	Fig5 = exp.Fig5
	// Fig6 regenerates Fig. 6 (case B, four policies).
	Fig6 = exp.Fig6
	// Fig7 regenerates Fig. 7 (priority distribution vs DRAM frequency).
	Fig7 = exp.Fig7
	// Fig8 regenerates Fig. 8 (bandwidth by scheduling policy).
	Fig8 = exp.Fig8
	// Fig9 regenerates Fig. 9 (FR-FCFS vs QoS-RB).
	Fig9 = exp.Fig9
	// FormatRun renders a PolicyRun as text.
	FormatRun = exp.FormatRun
	// FormatFig7 renders the Fig. 7 sweep as text.
	FormatFig7 = exp.FormatFig7
	// FormatFig8 renders the Fig. 8 bars as text.
	FormatFig8 = exp.FormatFig8
)

// Crash safety re-exports: the run supervisor, its typed failures and
// the checkpoint journal (see README "Crash safety & resume").

// Cell identifies one point of a sweep grid: a (case, policy, data rate,
// seed, scale, saturated) simulation.
type Cell = exp.Cell

// RunError reports one failed, contained sweep cell, ending with the
// exact one-line rerun command.
type RunError = exp.RunError

// Watchdog bounds a kernel run with cycle, wall-clock and progress
// budgets; install with System.SetWatchdog and drive the run through
// System.RunChecked / RunFramesChecked.
type Watchdog = sim.Watchdog

// DeadlockError reports a watchdog trip, with a per-idler wake-state
// diagnostic dump.
type DeadlockError = sim.DeadlockError

// PanicError wraps a panic recovered at the run boundary.
type PanicError = sim.PanicError

var (
	// RunCells measures a sweep grid under the run supervisor, with
	// optional per-cell budgets, retries and checkpoint journaling.
	RunCells = exp.RunCells
	// FailedRuns collects the contained failures of a supervised grid.
	FailedRuns = exp.Failed
	// OpenJournal opens (creating if absent) a checkpoint journal.
	OpenJournal = exp.OpenJournal
)

// Observability re-exports: the analysis layer and the live sweep
// monitor (see README "Observability").

// Analyzer aggregates windowed occupancy/backpressure/stall-attribution
// statistics for one System; attach with AttachAnalyzer before running.
type Analyzer = analysis.Analyzer

// AnalysisOptions configures an Analyzer: aggregation window, whether the
// process-global trace edges are tapped, and an optional live publisher.
type AnalysisOptions = analysis.Options

// AnalysisReport is the serialized outcome of one analyzed run.
type AnalysisReport = analysis.Report

// AnalysisSnapshot is one live windowed view of an in-flight run.
type AnalysisSnapshot = analysis.Snapshot

// Monitor is the HTTP live monitor serving sweep progress and snapshots.
type Monitor = analysis.Monitor

// MonitorRun is one run's publish handle on a Monitor.
type MonitorRun = analysis.RunHandle

var (
	// AttachAnalyzer arms an Analyzer over a built System.
	AttachAnalyzer = analysis.Attach
	// NewMonitor returns an idle Monitor; Start serves it.
	NewMonitor = analysis.NewMonitor
	// WriteAnalysisJSON writes labeled reports as one JSON object.
	WriteAnalysisJSON = analysis.WriteReportsJSON
	// WriteAnalysisCSV writes labeled reports as `# label`-separated CSV.
	WriteAnalysisCSV = analysis.WriteReportsCSV
)
