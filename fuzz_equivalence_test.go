package sara_test

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"sara"
	"sara/internal/dma"
	"sara/internal/dram"
	"sara/internal/memctrl"
	"sara/internal/noc"
	"sara/internal/sim"
)

// fuzzScale returns the SARA_FUZZ_SCALE multiplier (default 1) applied to
// every randomized-config pool size. CI's race job sets it to 2 so the
// short-mode differentials still cover a meaningful pool under the
// detector's slowdown.
func fuzzScale() int {
	if s := os.Getenv("SARA_FUZZ_SCALE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// The randomized differential harness: each case derives a whole system
// configuration from a single uint64 seed — test case, policy, refresh,
// workload seed, a random subset of the core roster, per-DMA request and
// window sizes, NoC port depths / hop latencies / aging, controller queue
// split and delta — and requires the idle-skipping event-driven run to be
// bit-identical to the cycle-stepped force-scan reference: aggregate
// statistics, the full NoC grant trace and the full credit-return trace.
// A failure names the config seed; fuzzConfig(seed) rebuilds the exact
// configuration for offline reproduction.

// fuzzPolicies is the policy pool the harness draws from.
var fuzzPolicies = []sara.Policy{sara.FCFS, sara.RR, sara.FRFCFS, sara.FrameRate, sara.QoS, sara.QoSRB}

// fuzzConfig deterministically derives a full system configuration from
// seed. Keep this function stable: failure messages identify configs by
// seed only.
func fuzzConfig(seed uint64) (sara.Config, string) {
	rng := sim.NewRand(seed)
	tc := sara.CaseA
	if rng.Bool(0.3) {
		tc = sara.CaseB
	}
	policy := fuzzPolicies[rng.Intn(len(fuzzPolicies))]
	refresh := rng.Bool(0.35)
	cfg := sara.Camcorder(tc,
		sara.WithPolicy(policy),
		sara.WithSeed(rng.Uint64()),
		sara.WithRefresh(refresh),
		sara.WithAgingT([]sara.Cycle{0, 500, 10000}[rng.Intn(3)]),
		sara.WithDelta(sara.Priority(rng.Intn(8))),
	)

	// Core mix: drop DMAs at random (topology varies with the mix — the
	// media and system aggregation routers disappear when their groups
	// empty out), keeping at least two so the system still routes.
	roster := cfg.DMAs
	kept := make([]sara.DMASpec, 0, len(roster))
	for _, spec := range roster {
		if rng.Bool(0.3) {
			continue
		}
		kept = append(kept, spec)
	}
	if len(kept) < 2 {
		kept = append(kept[:0], roster[:2]...)
	}
	cfg.DMAs = kept

	// Per-DMA shape: request (burst) sizes and outstanding windows.
	for i := range cfg.DMAs {
		s := &cfg.DMAs[i]
		s.Source.ReqSize = []uint32{0, 64, 128, 256}[rng.Intn(4)]
		if s.Source.Kind == sara.SrcRate {
			s.Source.BurstReqs = 1 + rng.Intn(16)
		}
		if rng.Bool(0.4) {
			s.Window = 4 + rng.Intn(60)
		}
	}

	// NoC knobs: shallow ports sharpen credit backpressure, hop 0 makes
	// injections arbitrable the same cycle, aging reshuffles selection.
	cfg.NoC.PortDepth = []int{2, 4, 8, 16}[rng.Intn(4)]
	cfg.NoC.HopLatency = sim.Cycle(rng.Intn(4))
	cfg.NoC.AgingT = []sim.Cycle{0, 300, 10000}[rng.Intn(3)]

	// Controller queue split: the credit-return boundary under test.
	switch rng.Intn(3) {
	case 1:
		cfg.QueueCaps = memctrl.QueueCaps{4, 4, 3, 6, 4}
	case 2:
		cfg.QueueCaps = memctrl.QueueCaps{16, 16, 12, 24, 16}
	}

	// SoC scale: a slice of the pool runs at 2x or 4x channels and cores,
	// so the controllers' per-bank bucket invalidation is differentially
	// fuzzed across system sizes (the force-scan stepped reference
	// re-derives candidates from scratch every cycle).
	factor := 1
	switch rng.Intn(5) {
	case 3:
		factor = 2
	case 4:
		factor = 4
	}
	cfg = sara.ScaleSoC(cfg, factor)

	// Adversarial dormancy patterns for the active-ticker list, drawn
	// after the scale draw (appending keeps every earlier draw — and so
	// every historic failure seed — meaning the same thing) and applied to
	// the scaled roster so they compose with 2x/4x SoCs.
	dormancy := "none"
	switch rng.Intn(4) {
	case 1:
		// Long quiescence: starve the steady consumers' token fill so
		// they sleep for thousands of cycles between bursts, stretching
		// the windows the kernel must prove empty.
		dormancy = "quiesce"
		for i := range cfg.DMAs {
			if s := &cfg.DMAs[i].Source; s.Kind == sara.SrcRate || s.Kind == sara.SrcCPU {
				s.RateBps /= 64
			}
		}
	case 2:
		// Single-cycle wakes: smooth, slow rate sources emit exactly one
		// request per token fill, so every wake is a one-cycle island of
		// activity between dormant stretches.
		dormancy = "singles"
		for i := range cfg.DMAs {
			s := &cfg.DMAs[i].Source
			if s.Kind == sara.SrcRate {
				s.RateBps /= 16
				s.BurstReqs = 1
			}
			if s.Kind == sara.SrcSporadic {
				s.RateBps /= 8
			}
		}
	case 3:
		// Co-due bursts: strip every start offset so the periodic engines
		// wake in phase and the active list must tick co-due packs in
		// registration order instead of one staggered ticker at a time.
		dormancy = "codue"
		for i := range cfg.DMAs {
			cfg.DMAs[i].Source.StartOffsetFrac = 0
		}
	}

	// Domain-parallel kernel: a slice of the pool re-runs the partitioned
	// topology at this worker count against its 1-worker reference (drawn
	// last — appending keeps every historic failure seed meaningful). The
	// three serial differential modes always run with the serial kernel;
	// captureRun clears this field before building.
	cfg.DomainWorkers = []int{1, 2, 4}[rng.Intn(3)]

	desc := fmt.Sprintf("case%v/%v/refresh=%v/dmas=%d/depth=%d/hop=%d/scale=%dx/dorm=%s/dw=%d",
		tc, policy, refresh, len(cfg.DMAs), cfg.NoC.PortDepth, cfg.NoC.HopLatency, factor, dormancy,
		cfg.DomainWorkers)
	return cfg, desc
}

// diffResult is everything one run exposes that the differential compares.
type diffResult struct {
	grants  []tracedGrant
	credits []tracedCredit
	ctrls   []memctrl.Stats
	dram    []dram.ChannelStats
	routers map[string][2]uint64
	engines []dma.Stats
	npi     map[string]float64
	skipped uint64
}

// captureRun executes cfg for the given horizon in one of the three
// differential modes: the cycle-stepped force-scan reference (skip=false,
// with every dormancy cache — router grant windows, controller buckets,
// DMA injection wakes — bypassed), the event-driven idle-skipping run
// (skip=true), or the idle-skipping run with the kernel's wake heap
// replaced by the sim.SetForcePoll linear sweep (skip and poll true).
func captureRun(cfg sara.Config, skip, poll bool, horizon sara.Cycle) diffResult {
	var res diffResult
	// The three differential modes compare serial kernels; the parallel
	// leg builds its own systems through captureParallel.
	cfg.DomainWorkers = 0
	noc.SetForceScan(!skip)
	memctrl.SetForceScan(!skip)
	dma.SetForceScan(!skip)
	sim.SetForcePoll(skip && poll)
	defer memctrl.SetForceScan(false)
	defer dma.SetForceScan(false)
	defer sim.SetForcePoll(false)
	noc.SetDebugGrant(func(name string, now sim.Cycle, port, out int, id uint64) {
		res.grants = append(res.grants, tracedGrant{name, now, port, out, id})
	})
	noc.SetDebugCredit(func(name string, now sim.Cycle, port int, wasFull bool) {
		res.credits = append(res.credits, tracedCredit{name, now, port, wasFull})
	})
	defer noc.SetForceScan(false)
	defer noc.SetDebugGrant(nil)
	defer noc.SetDebugCredit(nil)

	sys := sara.Build(cfg)
	sys.Kernel().SetIdleSkip(skip)
	sys.Run(horizon)

	for _, c := range sys.Controllers() {
		res.ctrls = append(res.ctrls, c.Stats())
	}
	res.dram = append(res.dram, sys.DRAM().Stats().Channels...)
	res.routers = map[string][2]uint64{}
	for _, r := range sys.Routers() {
		res.routers[r.Name()] = [2]uint64{r.Forwarded(), r.Stalls()}
	}
	for _, u := range sys.Units() {
		res.engines = append(res.engines, u.Engine.Stats())
	}
	res.npi = sys.MinNPIByCore(0)
	res.skipped = sys.Kernel().SkippedCycles()
	return res
}

// compareDiff asserts two runs of the same config are bit-identical.
func compareDiff(t *testing.T, seed uint64, ref, fast diffResult) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("config seed %#x: %s (rebuild with fuzzConfig(seed))",
			seed, fmt.Sprintf(format, args...))
	}
	if len(ref.grants) != len(fast.grants) {
		fail("grant counts differ: step %d, skip %d", len(ref.grants), len(fast.grants))
	}
	for i := range ref.grants {
		if ref.grants[i] != fast.grants[i] {
			fail("grant %d differs: step %+v, skip %+v", i, ref.grants[i], fast.grants[i])
		}
	}
	if len(ref.credits) != len(fast.credits) {
		fail("credit counts differ: step %d, skip %d", len(ref.credits), len(fast.credits))
	}
	for i := range ref.credits {
		if ref.credits[i] != fast.credits[i] {
			fail("credit %d differs: step %+v, skip %+v", i, ref.credits[i], fast.credits[i])
		}
	}
	for i := range ref.ctrls {
		if ref.ctrls[i] != fast.ctrls[i] {
			fail("controller %d stats differ:\n  step: %+v\n  skip: %+v", i, ref.ctrls[i], fast.ctrls[i])
		}
	}
	for i := range ref.dram {
		if ref.dram[i] != fast.dram[i] {
			fail("DRAM channel %d stats differ:\n  step: %+v\n  skip: %+v", i, ref.dram[i], fast.dram[i])
		}
	}
	if len(ref.routers) != len(fast.routers) {
		fail("router sets differ: %v vs %v", ref.routers, fast.routers)
	}
	for name, rv := range ref.routers {
		if fv, ok := fast.routers[name]; !ok || fv != rv {
			fail("router %s fwd/stalls differ: step %v, skip %v", name, rv, fast.routers[name])
		}
	}
	for i := range ref.engines {
		if ref.engines[i] != fast.engines[i] {
			fail("engine %d stats differ:\n  step: %+v\n  skip: %+v", i, ref.engines[i], fast.engines[i])
		}
	}
	if len(ref.npi) != len(fast.npi) {
		fail("min-NPI core sets differ: %v vs %v", ref.npi, fast.npi)
	}
	for core, v := range ref.npi {
		if fv, ok := fast.npi[core]; !ok || fv != v {
			fail("core %q min NPI differs: step %v, skip %v", core, v, fast.npi[core])
		}
	}
}

// TestRandomizedSkipVsStepDifferential fuzzes the skip-vs-step boundary
// across 50 randomized configurations. Every config must produce an
// identical NoC grant trace, credit trace and aggregate statistics in
// all three modes — the cycle-stepped force-scan reference, the wake-heap
// idle-skipping run, and the SetForcePoll linear-sweep skipping run; the
// heap run may additionally skip at most as many cycles as the poll run
// (a trusted stale-early cached bound can cost an extra uneventful
// executed cycle, never a missed wake). Across the pool, the
// event-driven runs must actually have skipped cycles and granted
// packets (the harness must not pass vacuously).
func TestRandomizedSkipVsStepDifferential(t *testing.T) {
	const (
		baseSeed = uint64(0x5a7a_2026_07_29)
		horizon  = sara.Cycle(30000)
	)
	configs := 50
	if testing.Short() {
		configs = 10
	}
	configs *= fuzzScale()
	// Deterministic parallel runs cost two extra builds per config, so the
	// worker-count differential runs a shorter horizon than the serial
	// three-mode legs — determinism violations show up within a few epochs.
	const parHorizon = sara.Cycle(12000)
	var totalGrants, totalSkipped, refreshRuns, scaledRuns, dormancyRuns, parallelRuns uint64
	for i := 0; i < configs; i++ {
		seed := sim.NewRand(baseSeed).Fork(uint64(i)).Uint64()
		cfg, desc := fuzzConfig(seed)
		if !strings.Contains(desc, "dorm=none") {
			dormancyRuns++
		}
		t.Run(fmt.Sprintf("cfg%02d_%s", i, desc), func(t *testing.T) {
			reproOnFailure(t, fmt.Sprintf("TestRandomizedSkipVsStepDifferential/cfg%02d_.*", i))
			ref := captureRun(cfg, false, false, horizon)
			fast := captureRun(cfg, true, false, horizon)
			polled := captureRun(cfg, true, true, horizon)
			if ref.skipped != 0 {
				t.Fatalf("config seed %#x: force-scan reference skipped %d cycles", seed, ref.skipped)
			}
			compareDiff(t, seed, ref, fast)
			compareDiff(t, seed, ref, polled)
			if fast.skipped > polled.skipped {
				// The heap may execute extra uneventful cycles on
				// stale-early cached bounds (trusted future keys), so it
				// can only skip at most what the exact swept minimum
				// skips; skipping MORE would mean a missed wake.
				t.Fatalf("config seed %#x: wake heap skipped %d cycles, poll reference only %d",
					seed, fast.skipped, polled.skipped)
			}
			totalGrants += uint64(len(fast.grants))
			totalSkipped += fast.skipped
			if cfg.DRAM.Refresh.Enabled {
				refreshRuns++
			}
			if cfg.DRAM.Geometry.Channels > 2 {
				scaledRuns++
			}
			// Worker-count differential: on partitionable configs that drew
			// a parallel worker count, the partitioned topology at that
			// count must be bit-identical to its own 1-worker reference.
			if dw := cfg.DomainWorkers; dw > 1 {
				if _, ok := sara.Partition(cfg); ok {
					drive := func(s *sara.System) { s.Run(parHorizon) }
					pref := captureParallel(t, cfg, 1, drive)
					pgot := captureParallel(t, cfg, dw, drive)
					compareParSnapshots(t,
						fmt.Sprintf("config seed %#x: dw=%d vs 1 worker", seed, dw), pref, pgot)
					if pgot.workers > 1 {
						parallelRuns++
					}
				}
			}
		})
	}
	if totalGrants == 0 || totalSkipped == 0 {
		t.Fatalf("vacuous fuzz pool: %d grants, %d skipped cycles across %d configs",
			totalGrants, totalSkipped, configs)
	}
	if !testing.Short() && refreshRuns == 0 {
		t.Fatal("fuzz pool exercised no refresh-enabled configs")
	}
	if !testing.Short() && scaledRuns == 0 {
		t.Fatal("fuzz pool exercised no scaled-SoC configs")
	}
	if !testing.Short() && dormancyRuns == 0 {
		t.Fatal("fuzz pool exercised no adversarial dormancy configs")
	}
	if !testing.Short() && parallelRuns == 0 {
		t.Fatal("fuzz pool exercised no multi-worker parallel runs")
	}
}
