// Package repro standardizes the "Repro:" line every failure in this
// repository prints: one exact, copy-pasteable command that reruns the
// failing case — a fuzz config, a differential trace, a sweep cell —
// with its seed, config and flags pinned. Graders, CI logs and humans
// all key on the same prefix.
package repro

import (
	"fmt"
	"strings"
)

// Prefix is the standardized marker; keep it grep-stable.
const Prefix = "Repro: "

// Line prefixes a rerun command with the standard marker.
func Line(cmd string) string { return Prefix + cmd }

// GoTest builds the rerun command for one test (or subtest) of pkg.
// pattern is anchored verbatim, so pass a name that selects exactly the
// failing case (subtest names are matched with /).
func GoTest(pkg, pattern string) string {
	return fmt.Sprintf("go test -count=1 -run '%s' %s", pattern, pkg)
}

// Command joins a command and its arguments, quoting any argument that
// contains whitespace so the line survives a shell round trip.
func Command(parts ...string) string {
	quoted := make([]string, len(parts))
	for i, p := range parts {
		if strings.ContainsAny(p, " \t") {
			p = "'" + p + "'"
		}
		quoted[i] = p
	}
	return strings.Join(quoted, " ")
}
