package repro

import "testing"

func TestLineAndGoTest(t *testing.T) {
	got := Line(GoTest(".", "TestFoo/cfg03_.*"))
	want := "Repro: go test -count=1 -run 'TestFoo/cfg03_.*' ."
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestCommandQuotesWhitespace(t *testing.T) {
	got := Command("go", "run", "./cmd/sarasweep", "-case", "A B")
	want := "go run ./cmd/sarasweep -case 'A B'"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}
