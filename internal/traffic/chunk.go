package traffic

import (
	"sara/internal/dma"
	"sara/internal/meter"
	"sara/internal/sim"
	"sara/internal/txn"
)

// ChunkSource models processing-time cores like the GPS and modem: every
// period a chunk of work arrives whose memory traffic must complete within
// a deadline (Table 2: "processing time"). The chunk meter degrades the
// NPI live once the deadline has passed.
type ChunkSource struct {
	name   string
	engine *dma.Engine

	// ChunkBytes is the memory volume of one work chunk.
	ChunkBytes uint64
	// Period is the chunk arrival period in cycles.
	Period sim.Cycle
	// ReqSize is the transaction size.
	ReqSize uint32
	// ReadFrac is the fraction of requests that are reads.
	ReadFrac float64
	// Scatter addresses the chunk randomly within the region instead of
	// sequentially, defeating row-buffer locality (GPS correlators gather
	// from scattered satellite-channel buffers).
	Scatter bool
	// StartOffset delays the first chunk.
	StartOffset sim.Cycle

	rng    *sim.Rand
	str    *stream
	picker kindPicker
	meter  *meter.ChunkMeter

	nextChunk   sim.Cycle
	issuedBytes uint64
	doneBytes   uint64
	active      bool

	// ChunksDone and ChunksMissed count chunks completed within/over the
	// deadline; ChunksOverrun counts chunks still unfinished when the next
	// one arrived (the new chunk supersedes the old).
	ChunksDone    uint64
	ChunksMissed  uint64
	ChunksOverrun uint64
}

// NewChunkSource builds a chunked work source over region r, reporting
// completion times into m.
func NewChunkSource(name string, e *dma.Engine, rng *sim.Rand, r Region,
	chunkBytes uint64, period sim.Cycle, reqSize uint32, readFrac float64,
	m *meter.ChunkMeter) *ChunkSource {
	s := &ChunkSource{
		name:       name,
		engine:     e,
		ChunkBytes: chunkBytes,
		Period:     period,
		ReqSize:    reqSize,
		ReadFrac:   readFrac,
		rng:        rng,
		str:        newStream(r, reqSize),
		picker:     kindPicker{readFrac: readFrac, rng: rng},
		meter:      m,
	}
	e.OnComplete(func(t *txn.Transaction, now sim.Cycle) {
		if !s.active {
			return
		}
		s.doneBytes += uint64(t.Size)
		if s.doneBytes >= s.ChunkBytes {
			s.active = false
			s.meter.ChunkDone(now)
			if now-s.chunkStart() <= s.meter.Deadline {
				s.ChunksDone++
			} else {
				s.ChunksMissed++
			}
		}
	})
	return s
}

func (s *ChunkSource) chunkStart() sim.Cycle { return s.nextChunk - s.Period }

// Name returns the source label.
func (s *ChunkSource) Name() string { return s.name }

// NextActivity implements sim.Idler: a chunk source is busy while the
// current chunk still has bytes to issue, waits for its start offset
// before the first chunk, and otherwise sleeps until the next chunk
// boundary.
//
//sara:hotpath
func (s *ChunkSource) NextActivity(now sim.Cycle) (sim.Cycle, bool) {
	if s.nextChunk == 0 {
		// First Tick initializes the schedule.
		return now, true
	}
	if s.active && s.issuedBytes < s.ChunkBytes && s.engine.PendingSpace() > 0 {
		return now, true
	}
	if !s.active && s.issuedBytes == 0 && s.doneBytes == 0 {
		// Waiting for the very first chunk start.
		if s.StartOffset > now {
			return s.StartOffset, true
		}
		return now, true
	}
	// Fully issued (waiting on completions, which are events) or between
	// chunks: nothing to do until the next boundary.
	return s.nextChunk, true
}

// ChunkProgress reports the in-flight chunk's completion fraction.
func (s *ChunkSource) ChunkProgress() float64 {
	if s.ChunkBytes == 0 {
		return 1
	}
	p := float64(s.doneBytes) / float64(s.ChunkBytes)
	if p > 1 {
		p = 1
	}
	return p
}

// Tick starts chunks on schedule and feeds the chunk's requests to the DMA.
func (s *ChunkSource) Tick(now sim.Cycle) {
	if s.nextChunk == 0 {
		s.nextChunk = s.StartOffset + s.Period
	}
	if now >= s.nextChunk-s.Period && now >= s.StartOffset && !s.active && s.issuedBytes == 0 {
		// First chunk of the run.
		s.startChunk(now)
	}
	if now >= s.nextChunk {
		if s.active {
			s.ChunksOverrun++
			s.meter.ChunkDone(now) // record the overrun duration
		}
		s.startChunk(now)
	}
	for s.active && s.issuedBytes < s.ChunkBytes && s.engine.PendingSpace() > 0 {
		addr := s.str.next()
		if s.Scatter {
			addr = randomIn(s.rng, s.str.region, s.ReqSize)
		}
		if !s.engine.Enqueue(s.picker.pick(), addr, s.ReqSize) {
			break
		}
		s.issuedBytes += uint64(s.ReqSize)
	}
}

func (s *ChunkSource) startChunk(now sim.Cycle) {
	s.active = true
	s.issuedBytes = 0
	s.doneBytes = 0
	s.nextChunk = now + s.Period
	s.meter.ChunkStarted(now)
}
