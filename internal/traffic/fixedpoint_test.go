package traffic

import (
	"testing"

	"sara/internal/dma"
	"sara/internal/noc"
	"sara/internal/sim"
	"sara/internal/txn"
)

// newIdleEngine builds a DMA engine wired to a throwaway router, for
// sources whose integration math is under test (no traffic flows).
func newIdleEngine() *dma.Engine {
	var nextID uint64
	sink := sinkFunc(func(*txn.Transaction, sim.Cycle) {})
	r := noc.NewRouter("fp", noc.Params{PortDepth: 4, Arb: noc.ArbFCFS}, 1, []noc.Sink{sink}, nil)
	return dma.New(dma.Config{Name: "fp", Core: "FP", Class: txn.ClassMedia, Window: 1}, 0, &nextID, r.Port(0), 0)
}

// TestDisplayDrainPartitionIndependent is the arithmetic core of the
// idle-skipping contract for buffered sources: integrating the panel
// drain over an arbitrary partition of cycles — including partitions that
// cross the buffer-empty boundary — must be bit-identical to single-cycle
// integration, with the same underrun accounting.
func TestDisplayDrainPartitionIndependent(t *testing.T) {
	rng := sim.NewRand(77)
	for trial := 0; trial < 200; trial++ {
		drain := 0.05 + 4*rng.Float64() // spans d<1B and d>1B per cycle
		buf := 256 + float64(rng.Intn(4096))
		const horizon = 3000

		ref := NewDisplaySource("ref", newIdleEngine(), Region{Size: 1 << 20}, drain, buf, 64)
		bat := NewDisplaySource("bat", newIdleEngine(), Region{Size: 1 << 20}, drain, buf, 64)

		// Reference: one step at a time.
		for c := sim.Cycle(1); c <= horizon; c++ {
			ref.integrateTo(c)
		}
		// Batched: random partition of the same span.
		for c := sim.Cycle(0); c < horizon; {
			step := sim.Cycle(1 + rng.Intn(97))
			if c+step > horizon {
				step = horizon - c
			}
			c += step
			bat.integrateTo(c)
		}

		if ref.occFP != bat.occFP || ref.carryFP != bat.carryFP ||
			ref.UnderrunCycles != bat.UnderrunCycles {
			t.Fatalf("trial %d (drain=%v buf=%v): stepped (occ=%d carry=%d ur=%d) vs batched (occ=%d carry=%d ur=%d)",
				trial, drain, buf,
				ref.occFP, ref.carryFP, ref.UnderrunCycles,
				bat.occFP, bat.carryFP, bat.UnderrunCycles)
		}
	}
}

// TestCameraFillPartitionIndependent checks the same property for the
// sensor-fill side, including overflow accounting across the clamp.
func TestCameraFillPartitionIndependent(t *testing.T) {
	rng := sim.NewRand(78)
	for trial := 0; trial < 200; trial++ {
		fill := 0.05 + 4*rng.Float64()
		buf := 256 + float64(rng.Intn(4096))
		const horizon = 3000

		ref := NewCameraSource("ref", newIdleEngine(), Region{Size: 1 << 20}, fill, buf, 64)
		bat := NewCameraSource("bat", newIdleEngine(), Region{Size: 1 << 20}, fill, buf, 64)

		for c := sim.Cycle(1); c <= horizon; c++ {
			ref.integrateTo(c)
		}
		for c := sim.Cycle(0); c < horizon; {
			step := sim.Cycle(1 + rng.Intn(97))
			if c+step > horizon {
				step = horizon - c
			}
			c += step
			bat.integrateTo(c)
		}

		if ref.occFP != bat.occFP || ref.overflowFP != bat.overflowFP {
			t.Fatalf("trial %d (fill=%v buf=%v): stepped (occ=%d of=%d) vs batched (occ=%d of=%d)",
				trial, fill, buf, ref.occFP, ref.overflowFP, bat.occFP, bat.overflowFP)
		}
	}
}

// TestTokenBucketPartitionIndependent checks the rate/CPU token
// accumulators.
func TestTokenBucketPartitionIndependent(t *testing.T) {
	rng := sim.NewRand(79)
	for trial := 0; trial < 100; trial++ {
		rate := 0.01 + 3*rng.Float64()
		const horizon = 2000

		ref := NewRateSource("ref", newIdleEngine(), sim.NewRand(1), Region{Size: 1 << 20}, rate, 64, 2, 0.5)
		bat := NewRateSource("bat", newIdleEngine(), sim.NewRand(1), Region{Size: 1 << 20}, rate, 64, 2, 0.5)

		for c := sim.Cycle(1); c <= horizon; c++ {
			ref.integrateTo(c)
		}
		for c := sim.Cycle(0); c < horizon; {
			step := sim.Cycle(1 + rng.Intn(211))
			if c+step > horizon {
				step = horizon - c
			}
			c += step
			bat.integrateTo(c)
		}
		if ref.tokensFP != bat.tokensFP {
			t.Fatalf("trial %d (rate=%v): tokens %d vs %d", trial, rate, ref.tokensFP, bat.tokensFP)
		}
	}
}
