package traffic

import (
	"sara/internal/dma"
	"sara/internal/sim"
)

// SporadicSource models latency-sensitive engines like the DSP and audio:
// individually small, randomly addressed requests at a modest average rate
// whose value lies entirely in completing quickly (Eqn. 1). Random
// addressing defeats row-buffer locality, which is what makes these cores
// vulnerable to FR-FCFS-style bandwidth optimizers (Fig. 9).
type SporadicSource struct {
	name   string
	engine *dma.Engine

	// MeanGap is the average inter-arrival time in cycles.
	MeanGap float64
	// ReqSize is the transaction size.
	ReqSize uint32
	// ReadFrac is the fraction of requests that are reads.
	ReadFrac float64

	rng    *sim.Rand
	region Region
	picker kindPicker

	nextArrival sim.Cycle
	dropped     uint64
}

// NewSporadicSource builds a sporadic source with geometric inter-arrival
// times of mean meanGap cycles over region r.
func NewSporadicSource(name string, e *dma.Engine, rng *sim.Rand, r Region,
	meanGap float64, reqSize uint32, readFrac float64) *SporadicSource {
	return &SporadicSource{
		name:        name,
		engine:      e,
		MeanGap:     meanGap,
		ReqSize:     reqSize,
		ReadFrac:    readFrac,
		rng:         rng,
		region:      r,
		picker:      kindPicker{readFrac: readFrac, rng: rng},
		nextArrival: sim.Cycle(rng.Geometric(meanGap)),
	}
}

// Name returns the source label.
func (s *SporadicSource) Name() string { return s.name }

// Dropped reports requests lost to a full DMA queue (should stay zero in a
// well-provisioned system; tests assert it).
func (s *SporadicSource) Dropped() uint64 { return s.dropped }

// NextActivity implements sim.Idler: the arrival process fires at a known
// future cycle and Tick is a strict no-op before it.
//
//sara:hotpath
func (s *SporadicSource) NextActivity(now sim.Cycle) (sim.Cycle, bool) {
	if s.nextArrival > now {
		return s.nextArrival, true
	}
	return now, true
}

// Tick issues a request whenever the arrival process fires.
func (s *SporadicSource) Tick(now sim.Cycle) {
	for now >= s.nextArrival {
		if !s.engine.Enqueue(s.picker.pick(), randomIn(s.rng, s.region, s.ReqSize), s.ReqSize) {
			s.dropped++
		}
		s.nextArrival += sim.Cycle(s.rng.Geometric(s.MeanGap))
	}
}

// RateSource models steady bandwidth consumers such as WiFi and USB: a
// token bucket fills at the target rate and requests are emitted in small
// bursts (bulk-transfer style), walking a region sequentially. Tokens
// accumulate in Q32 fixed point keyed off the absolute cycle, so the
// bucket evolves identically whether the kernel ticks it every cycle or
// fast-forwards over the accumulation gaps.
type RateSource struct {
	name   string
	engine *dma.Engine

	// RatePerCycle is the target bandwidth in bytes/cycle.
	RatePerCycle float64
	// ReqSize is the transaction size.
	ReqSize uint32
	// BurstReqs groups emissions: tokens are paid out only once a full
	// burst's worth has accumulated, creating the bursty arrival pattern
	// of bulk I/O engines. 1 means smooth.
	BurstReqs int
	// ReadFrac is the fraction of requests that are reads.
	ReadFrac float64

	rng    *sim.Rand
	str    *stream
	picker kindPicker

	rateFP   uint64 // Q32 bytes/cycle
	reqFP    uint64
	burstFP  uint64 // Q32 bytes per full burst
	tokensFP uint64
	funded   sim.Cycle
	// saturated records that the last tick ended with the DMA queue full:
	// a per-cycle reference run would have clamped the bucket on every
	// blocked cycle since, so the next tick must clamp retroactively
	// before funding its own cycle (see Tick).
	saturated bool
}

// NewRateSource builds a rate-driven source over region r.
func NewRateSource(name string, e *dma.Engine, rng *sim.Rand, r Region,
	ratePerCycle float64, reqSize uint32, burstReqs int, readFrac float64) *RateSource {
	if burstReqs <= 0 {
		burstReqs = 1
	}
	s := &RateSource{
		name:         name,
		engine:       e,
		RatePerCycle: ratePerCycle,
		ReqSize:      reqSize,
		BurstReqs:    burstReqs,
		ReadFrac:     readFrac,
		rng:          rng,
		str:          newStream(r, reqSize),
		picker:       kindPicker{readFrac: readFrac, rng: rng},
		rateFP:       toFP(ratePerCycle),
		reqFP:        bytesFP(reqSize),
	}
	s.burstFP = s.reqFP * uint64(burstReqs)
	return s
}

// Name returns the source label.
func (s *RateSource) Name() string { return s.name }

// integrateTo accumulates tokens so that `total` single-cycle fills have
// happened since the start of the run.
func (s *RateSource) integrateTo(total sim.Cycle) {
	if total <= s.funded {
		return
	}
	s.tokensFP += s.rateFP * uint64(total-s.funded)
	s.funded = total
}

// NextActivity implements sim.Idler: the source acts on the first cycle
// whose token fill completes a burst. The bound is computed in absolute
// time from the funding cursor, NOT relative to now: the kernel's
// fast-forward probe may query the hint while the bucket integration lags
// now, and a now-relative answer would push the cached wake past the true
// fill cycle (an unsound raise the active-ticker list would never
// recover from).
//
//sara:hotpath
func (s *RateSource) NextActivity(now sim.Cycle) (sim.Cycle, bool) {
	if s.tokensFP >= s.burstFP {
		if s.engine.PendingSpace() > 0 {
			return now, true
		}
		// Saturated: Tick only clamps the bucket, which one batched
		// clamp reproduces exactly at the next executed cycle.
		return 0, false
	}
	if s.rateFP == 0 {
		return 0, false
	}
	// A tick at cycle c funds through c+1; the burst completes at the
	// first c with c+1-funded >= steps.
	steps := ceilDiv(s.burstFP-s.tokensFP, s.rateFP)
	if steps == 0 {
		steps = 1
	}
	at := s.funded + sim.Cycle(steps) - 1
	if at < now {
		at = now
	}
	return at, true
}

// Tick accumulates tokens and emits whole bursts when funded. The random
// stream is consumed only for requests that are actually enqueued, and
// the saturation cap composes as min(tokens + n*rate, cap) — both
// properties keep a tick after n fast-forwarded blocked cycles
// bit-identical to n blocked single-cycle ticks.
func (s *RateSource) Tick(now sim.Cycle) {
	if s.saturated {
		// Every un-ticked cycle since the saturating tick would have
		// clamped the bucket in the per-cycle reference; one batched
		// clamp after funding those cycles composes to the same value
		// (min is affine-compatible: min(min(t+r,c)+r,c) = min(t+2r,c)).
		s.integrateTo(now)
		if s.tokensFP > 4*s.burstFP {
			s.tokensFP = 4 * s.burstFP
		}
		s.saturated = false
	}
	s.integrateTo(now + 1)
	for s.tokensFP >= s.burstFP {
		if s.engine.PendingSpace() == 0 {
			// DMA saturated: stop accumulating unbounded debt so the
			// source does not flood the instant space frees up. Cap the
			// bucket at a few bursts.
			if s.tokensFP > 4*s.burstFP {
				s.tokensFP = 4 * s.burstFP
			}
			s.saturated = true
			return
		}
		emitted := uint64(0)
		for i := 0; i < s.BurstReqs && s.engine.PendingSpace() > 0; i++ {
			s.engine.Enqueue(s.picker.pick(), s.str.next(), s.ReqSize)
			emitted++
		}
		s.tokensFP -= emitted * s.reqFP
	}
}
