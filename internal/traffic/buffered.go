package traffic

import (
	"sara/internal/dma"
	"sara/internal/sim"
	"sara/internal/txn"
)

// DisplaySource models the display controller's read path: an LCD panel
// drains a read buffer at a constant rate while the DMA refills it from
// DRAM so the buffer never runs empty (Section 3.2, Eqn. 3). Health is the
// refill rate versus the panel's read rate, observable through the buffer
// occupancy level.
type DisplaySource struct {
	name   string
	engine *dma.Engine

	// DrainPerCycle is the panel's constant read rate in bytes/cycle.
	DrainPerCycle float64
	// BufBytes is the read buffer capacity.
	BufBytes float64
	// ReqSize is the refill transaction size.
	ReqSize uint32

	str *stream

	occupancy     float64
	inflightBytes float64
	drainCarry    float64

	// UnderrunCycles counts cycles the panel wanted data from an empty
	// buffer — each one is a visible artifact on a real panel.
	UnderrunCycles uint64
	// RefilledBytes is the cumulative refill volume.
	RefilledBytes uint64
}

// NewDisplaySource builds a display refill source over region r. The
// buffer starts at the 50% initial level the paper describes.
func NewDisplaySource(name string, e *dma.Engine, r Region,
	drainPerCycle, bufBytes float64, reqSize uint32) *DisplaySource {
	s := &DisplaySource{
		name:          name,
		engine:        e,
		DrainPerCycle: drainPerCycle,
		BufBytes:      bufBytes,
		ReqSize:       reqSize,
		str:           newStream(r, reqSize),
		occupancy:     bufBytes / 2,
	}
	e.OnComplete(func(t *txn.Transaction, now sim.Cycle) {
		s.inflightBytes -= float64(t.Size)
		s.occupancy += float64(t.Size)
		if s.occupancy > s.BufBytes {
			s.occupancy = s.BufBytes
		}
		s.RefilledBytes += uint64(t.Size)
	})
	return s
}

// Name returns the source label.
func (s *DisplaySource) Name() string { return s.name }

// Occupancy reports the buffer fill fraction for the occupancy meter.
func (s *DisplaySource) Occupancy() float64 {
	if s.BufBytes == 0 {
		return 0
	}
	return s.occupancy / s.BufBytes
}

// Tick drains the panel side and issues refill reads to keep the buffer
// full, accounting for refills already in flight.
func (s *DisplaySource) Tick(now sim.Cycle) {
	s.drainCarry += s.DrainPerCycle
	if s.drainCarry >= 1 {
		take := float64(uint64(s.drainCarry))
		s.drainCarry -= take
		if s.occupancy >= take {
			s.occupancy -= take
		} else {
			s.occupancy = 0
			s.UnderrunCycles++
		}
	}
	for s.occupancy+s.inflightBytes+float64(s.ReqSize) <= s.BufBytes {
		if !s.engine.Enqueue(txn.Read, s.str.next(), s.ReqSize) {
			break
		}
		s.inflightBytes += float64(s.ReqSize)
	}
}

// CameraSource models the camera front end: the image sensor fills a write
// buffer at a constant rate and the DMA drains it into DRAM. Health is the
// DMA's drain rate versus the sensor's fill rate; if the DMA falls behind,
// the buffer overflows and sensor data is lost.
type CameraSource struct {
	name   string
	engine *dma.Engine

	// FillPerCycle is the sensor's constant write rate in bytes/cycle.
	FillPerCycle float64
	// BufBytes is the write buffer capacity.
	BufBytes float64
	// ReqSize is the drain transaction size.
	ReqSize uint32

	str *stream

	occupancy     float64
	inflightBytes float64

	// OverflowBytes counts sensor bytes dropped because the buffer was full.
	OverflowBytes float64
	// DrainedBytes is the cumulative DMA write volume.
	DrainedBytes uint64
}

// NewCameraSource builds a camera drain source over region r. The buffer
// starts at the 50% initial level.
func NewCameraSource(name string, e *dma.Engine, r Region,
	fillPerCycle, bufBytes float64, reqSize uint32) *CameraSource {
	s := &CameraSource{
		name:         name,
		engine:       e,
		FillPerCycle: fillPerCycle,
		BufBytes:     bufBytes,
		ReqSize:      reqSize,
		str:          newStream(r, reqSize),
		occupancy:    bufBytes / 2,
	}
	e.OnComplete(func(t *txn.Transaction, now sim.Cycle) {
		s.inflightBytes -= float64(t.Size)
		s.DrainedBytes += uint64(t.Size)
		// The completed write frees its bytes in the sensor buffer.
		s.occupancy -= float64(t.Size)
		if s.occupancy < 0 {
			s.occupancy = 0
		}
	})
	return s
}

// Name returns the source label.
func (s *CameraSource) Name() string { return s.name }

// Occupancy reports the buffer fill fraction.
func (s *CameraSource) Occupancy() float64 {
	if s.BufBytes == 0 {
		return 0
	}
	return s.occupancy / s.BufBytes
}

// Tick fills the sensor side and issues drain writes.
func (s *CameraSource) Tick(now sim.Cycle) {
	s.occupancy += s.FillPerCycle
	if s.occupancy > s.BufBytes {
		s.OverflowBytes += s.occupancy - s.BufBytes
		s.occupancy = s.BufBytes
	}
	// Drain whatever has accumulated beyond the requests already in
	// flight; occupancy is decremented when the write completes, so the
	// in-flight volume must be subtracted from the drainable amount.
	for s.occupancy-s.inflightBytes >= float64(s.ReqSize) {
		if !s.engine.Enqueue(txn.Write, s.str.next(), s.ReqSize) {
			break
		}
		s.inflightBytes += float64(s.ReqSize)
	}
}
