package traffic

import (
	"sara/internal/dma"
	"sara/internal/sim"
	"sara/internal/txn"
)

// DisplaySource models the display controller's read path: an LCD panel
// drains a read buffer at a constant rate while the DMA refills it from
// DRAM so the buffer never runs empty (Section 3.2, Eqn. 3). Health is the
// refill rate versus the panel's read rate, observable through the buffer
// occupancy level.
//
// The panel drain is integrated in Q32 fixed point keyed off the absolute
// cycle count, so the source can be ticked at any subset of cycles (the
// idle-skipping kernel exploits this) and still reproduce the cycle-by-
// cycle evolution exactly, including underrun accounting.
type DisplaySource struct {
	name   string
	engine *dma.Engine

	// DrainPerCycle is the panel's constant read rate in bytes/cycle.
	DrainPerCycle float64
	// BufBytes is the read buffer capacity.
	BufBytes float64
	// ReqSize is the refill transaction size.
	ReqSize uint32

	str *stream

	drainFP    uint64 // Q32 bytes/cycle
	bufFP      uint64 // Q32 buffer capacity
	reqFP      uint64 // Q32 refill transaction size
	occFP      uint64 // Q32 current buffer fill
	carryFP    uint64 // sub-byte drain not yet taken, < 1 byte
	inflightFP uint64 // Q32 bytes of refills in flight
	drained    sim.Cycle

	// UnderrunCycles counts cycles the panel wanted data from an empty
	// buffer — each one is a visible artifact on a real panel.
	UnderrunCycles uint64
	// RefilledBytes is the cumulative refill volume.
	RefilledBytes uint64
}

// NewDisplaySource builds a display refill source over region r. The
// buffer starts at the 50% initial level the paper describes.
func NewDisplaySource(name string, e *dma.Engine, r Region,
	drainPerCycle, bufBytes float64, reqSize uint32) *DisplaySource {
	s := &DisplaySource{
		name:          name,
		engine:        e,
		DrainPerCycle: drainPerCycle,
		BufBytes:      bufBytes,
		ReqSize:       reqSize,
		str:           newStream(r, reqSize),
		drainFP:       toFP(drainPerCycle),
		bufFP:         toFP(bufBytes),
		reqFP:         bytesFP(reqSize),
	}
	s.occFP = s.bufFP / 2
	e.OnComplete(func(t *txn.Transaction, now sim.Cycle) {
		s.integrateTo(now)
		sz := bytesFP(t.Size)
		s.inflightFP -= sz
		s.occFP += sz
		if s.occFP > s.bufFP {
			s.occFP = s.bufFP
		}
		s.RefilledBytes += uint64(t.Size)
	})
	return s
}

// Name returns the source label.
func (s *DisplaySource) Name() string { return s.name }

// Occupancy reports the buffer fill fraction as of the last integration
// point (exact during any executed cycle, which is when the urgency probe
// and tests read it).
func (s *DisplaySource) Occupancy() float64 {
	if s.bufFP == 0 {
		return 0
	}
	return float64(s.occFP) / float64(s.bufFP)
}

// OccupancyAt reports the buffer fill fraction at cycle now, integrating
// any pending drain first. The occupancy meter uses it so that sampling
// events observe the same value whether or not the kernel skipped the
// preceding cycles.
func (s *DisplaySource) OccupancyAt(now sim.Cycle) float64 {
	s.integrateTo(now)
	return s.Occupancy()
}

// integrateTo advances the panel drain so that `total` single-cycle drain
// steps have been applied since the start of the run. It reproduces the
// per-cycle accounting exactly for any step partition.
func (s *DisplaySource) integrateTo(total sim.Cycle) {
	if total <= s.drained || s.drainFP == 0 {
		if total > s.drained {
			s.drained = total
		}
		return
	}
	n := uint64(total - s.drained)
	s.drained = total

	c0, d := s.carryFP, s.drainFP
	sum := c0 + d*n
	take := sum >> fpShift // whole bytes the panel reads over the gap
	s.carryFP = sum & fpFrac
	if take == 0 {
		return
	}
	if takeFP := take << fpShift; s.occFP >= takeFP {
		s.occFP -= takeFP
		return
	}
	// The buffer runs dry inside this gap. Cycle i (1-based) extracts
	// extr(i)-extr(i-1) bytes where extr(i) = floor((c0+i*d)/1B); the
	// first cycle whose cumulative extraction exceeds the covered whole
	// bytes q zeroes the buffer and counts an underrun, as does every
	// later cycle that extracts at least one byte.
	q := s.occFP >> fpShift
	first := ceilDiv((q+1)<<fpShift-c0, d)
	var ur uint64
	if d >= fpOne {
		ur = n - first + 1 // every cycle extracts at least one byte
	} else {
		ur = ((c0 + n*d) >> fpShift) - ((c0 + (first-1)*d) >> fpShift)
	}
	s.UnderrunCycles += ur
	s.occFP = 0
}

// NextActivity implements sim.Idler: the source acts when one more refill
// fits in the buffer, which — absent completions, which arrive as kernel
// events — happens only as the panel drains.
//
//sara:hotpath
func (s *DisplaySource) NextActivity(now sim.Cycle) (sim.Cycle, bool) {
	if s.occFP+s.inflightFP+s.reqFP <= s.bufFP {
		if s.engine.PendingSpace() > 0 {
			return now, true
		}
		// The DMA queue is stuffed; it drains only through executed
		// cycles (injection or completions), which re-query this hint.
		return 0, false
	}
	if s.drainFP == 0 || s.inflightFP+s.reqFP > s.bufFP {
		// Draining alone can never open enough space; only completions
		// (events) change that.
		return 0, false
	}
	// A tick at cycle c integrates the drain through c+1, so enough space
	// opens at the first c with c+1-drained >= steps. The bound is
	// anchored at the drain cursor, not now: a fast-forward probe may
	// query while the integration lags now, and a now-relative answer
	// would raise the cached wake past the true cycle (see
	// RateSource.NextActivity).
	needFP := s.occFP + s.inflightFP + s.reqFP - s.bufFP
	needBytes := ceilDiv(needFP, fpOne)
	steps := ceilDiv(needBytes<<fpShift-s.carryFP, s.drainFP)
	if steps == 0 {
		steps = 1
	}
	at := s.drained + sim.Cycle(steps) - 1
	if at < now {
		at = now
	}
	return at, true
}

// SettleRun implements sim.Settler: a run horizon can cut a dormant
// stretch short, leaving the panel drain integrated only up to the last
// tick or occupancy probe. Flushing the integration to the horizon makes
// the final UnderrunCycles exact; in the stepped reference modes the
// final tick already integrated this far, so it is a no-op.
func (s *DisplaySource) SettleRun(end sim.Cycle) { s.integrateTo(end) }

// Tick drains the panel side and issues refill reads to keep the buffer
// full, accounting for refills already in flight.
func (s *DisplaySource) Tick(now sim.Cycle) {
	s.integrateTo(now + 1)
	// The pending-space check comes first so a full DMA queue never burns
	// a stream offset on a failed enqueue — blocked cycles must leave no
	// trace, or fast-forwarding over them would not be equivalent.
	for s.occFP+s.inflightFP+s.reqFP <= s.bufFP && s.engine.PendingSpace() > 0 {
		s.engine.Enqueue(txn.Read, s.str.next(), s.ReqSize)
		s.inflightFP += s.reqFP
	}
}

// CameraSource models the camera front end: the image sensor fills a write
// buffer at a constant rate and the DMA drains it into DRAM. Health is the
// DMA's drain rate versus the sensor's fill rate; if the DMA falls behind,
// the buffer overflows and sensor data is lost.
//
// Like DisplaySource, the sensor fill is integrated in Q32 fixed point so
// ticking over gaps reproduces per-cycle evolution exactly.
type CameraSource struct {
	name   string
	engine *dma.Engine

	// FillPerCycle is the sensor's constant write rate in bytes/cycle.
	FillPerCycle float64
	// BufBytes is the write buffer capacity.
	BufBytes float64
	// ReqSize is the drain transaction size.
	ReqSize uint32

	str *stream

	fillFP     uint64 // Q32 bytes/cycle
	bufFP      uint64
	reqFP      uint64
	occFP      uint64
	inflightFP uint64
	overflowFP uint64
	filled     sim.Cycle

	// DrainedBytes is the cumulative DMA write volume.
	DrainedBytes uint64
}

// NewCameraSource builds a camera drain source over region r. The buffer
// starts at the 50% initial level.
func NewCameraSource(name string, e *dma.Engine, r Region,
	fillPerCycle, bufBytes float64, reqSize uint32) *CameraSource {
	s := &CameraSource{
		name:         name,
		engine:       e,
		FillPerCycle: fillPerCycle,
		BufBytes:     bufBytes,
		ReqSize:      reqSize,
		str:          newStream(r, reqSize),
		fillFP:       toFP(fillPerCycle),
		bufFP:        toFP(bufBytes),
		reqFP:        bytesFP(reqSize),
	}
	s.occFP = s.bufFP / 2
	e.OnComplete(func(t *txn.Transaction, now sim.Cycle) {
		s.integrateTo(now)
		sz := bytesFP(t.Size)
		s.inflightFP -= sz
		s.DrainedBytes += uint64(t.Size)
		// The completed write frees its bytes in the sensor buffer.
		if s.occFP >= sz {
			s.occFP -= sz
		} else {
			s.occFP = 0
		}
	})
	return s
}

// Name returns the source label.
func (s *CameraSource) Name() string { return s.name }

// OverflowBytes reports the sensor bytes dropped because the buffer was
// full.
func (s *CameraSource) OverflowBytes() float64 { return fromFP(s.overflowFP) }

// Occupancy reports the buffer fill fraction as of the last integration
// point.
func (s *CameraSource) Occupancy() float64 {
	if s.bufFP == 0 {
		return 0
	}
	return float64(s.occFP) / float64(s.bufFP)
}

// OccupancyAt reports the buffer fill fraction at cycle now, integrating
// any pending sensor fill first (used by the occupancy meter).
func (s *CameraSource) OccupancyAt(now sim.Cycle) float64 {
	s.integrateTo(now)
	return s.Occupancy()
}

// integrateTo advances the sensor fill so that `total` single-cycle fill
// steps have been applied since the start of the run. Clamping at the
// buffer capacity is linear, so one batched step is exactly the sum of
// the per-cycle steps.
func (s *CameraSource) integrateTo(total sim.Cycle) {
	if total <= s.filled {
		return
	}
	n := uint64(total - s.filled)
	s.filled = total
	if s.fillFP == 0 {
		return
	}
	s.occFP += s.fillFP * n
	if s.occFP > s.bufFP {
		s.overflowFP += s.occFP - s.bufFP
		s.occFP = s.bufFP
	}
}

// NextActivity implements sim.Idler: the source acts when a full drain
// request has accumulated beyond what is already in flight.
//
//sara:hotpath
func (s *CameraSource) NextActivity(now sim.Cycle) (sim.Cycle, bool) {
	need := s.inflightFP + s.reqFP
	if s.occFP >= need {
		if s.engine.PendingSpace() > 0 {
			return now, true
		}
		return 0, false
	}
	if s.fillFP == 0 || need > s.bufFP {
		// The buffer cannot accumulate enough while this much is in
		// flight; completions (events) re-trigger evaluation.
		return 0, false
	}
	// Absolute bound anchored at the fill cursor (see the display source's
	// NextActivity for why now-relative answers are unsound here).
	steps := ceilDiv(need-s.occFP, s.fillFP)
	if steps == 0 {
		steps = 1
	}
	at := s.filled + sim.Cycle(steps) - 1
	if at < now {
		at = now
	}
	return at, true
}

// SettleRun implements sim.Settler: flush the sensor-fill integration to
// the run horizon so the final OverflowBytes accounting is exact even
// when the source was dormant at the end of the run (see
// DisplaySource.SettleRun).
func (s *CameraSource) SettleRun(end sim.Cycle) { s.integrateTo(end) }

// Tick fills the sensor side and issues drain writes.
func (s *CameraSource) Tick(now sim.Cycle) {
	s.integrateTo(now + 1)
	// Drain whatever has accumulated beyond the requests already in
	// flight; occupancy is decremented when the write completes, so the
	// in-flight volume must be subtracted from the drainable amount. The
	// pending-space check comes first so a blocked cycle never burns a
	// stream offset (see DisplaySource.Tick).
	for s.occFP >= s.inflightFP+s.reqFP && s.engine.PendingSpace() > 0 {
		s.engine.Enqueue(txn.Write, s.str.next(), s.ReqSize)
		s.inflightFP += s.reqFP
	}
}
