package traffic

import (
	"sara/internal/dma"
	"sara/internal/sim"
	"sara/internal/txn"
)

// FrameSource models a bursty frame-based engine: all of a frame's data is
// available at the start of the frame period, and the engine transfers it
// as fast as the memory system allows (video codec, rotator, image
// processor, GPU and JPEG behave this way; see Section 4.1). Its health is
// frame progress versus reference progress (Eqn. 2).
type FrameSource struct {
	name   string
	engine *dma.Engine

	// BytesPerFrame is the data volume each frame moves.
	BytesPerFrame uint64
	// Period is the frame period in cycles.
	Period sim.Cycle
	// ReqSize is the per-transaction size (one DRAM burst).
	ReqSize uint32
	// ReadFrac is the fraction of requests that are reads.
	ReadFrac float64
	// RefFactor scales the reference progress slope (Fig. 4(b)).
	RefFactor float64
	// StartOffset delays the first frame, de-phasing multiple sources.
	StartOffset sim.Cycle

	rng    *sim.Rand
	str    *stream
	picker kindPicker

	frameStart  sim.Cycle
	issuedBytes uint64
	doneBytes   uint64
	started     bool

	// FramesCompleted and FramesMissed count frames that finished their
	// transfer before/after the period ended.
	FramesCompleted uint64
	FramesMissed    uint64
}

// NewFrameSource builds a bursty frame source over region r driving e.
func NewFrameSource(name string, e *dma.Engine, rng *sim.Rand, r Region,
	bytesPerFrame uint64, period sim.Cycle, reqSize uint32, readFrac, refFactor float64) *FrameSource {
	s := &FrameSource{
		name:          name,
		engine:        e,
		BytesPerFrame: bytesPerFrame,
		Period:        period,
		ReqSize:       reqSize,
		ReadFrac:      readFrac,
		RefFactor:     refFactor,
		rng:           rng,
		str:           newStream(r, reqSize),
		picker:        kindPicker{readFrac: readFrac, rng: rng},
	}
	e.OnComplete(func(t *txn.Transaction, now sim.Cycle) {
		s.doneBytes += uint64(t.Size)
	})
	// The frame-rate-based QoS baseline marks transactions urgent when the
	// core has fallen behind its reference progress. The DMA probes this
	// at injection time with the injection cycle: under the active-ticker
	// list the source may not have been ticked that cycle, so the
	// reference line is evaluated from now, not from source-local state.
	e.SetUrgentProbe(func(now sim.Cycle) bool {
		p, _ := s.Progress()
		return p < s.referenceAt(now)
	})
	return s
}

// Name returns the source label.
func (s *FrameSource) Name() string { return s.name }

// NextActivity implements sim.Idler: a frame source is busy while it still
// has frame bytes to hand to the DMA, and otherwise sleeps until its next
// frame boundary (or its initial start offset). Completions that land in
// between arrive as kernel events and do not need the source awake.
//
//sara:hotpath
func (s *FrameSource) NextActivity(now sim.Cycle) (sim.Cycle, bool) {
	if !s.started {
		if s.StartOffset > now {
			return s.StartOffset, true
		}
		return now, true
	}
	if s.issuedBytes < s.BytesPerFrame && s.engine.PendingSpace() > 0 {
		return now, true
	}
	// Frame fully handed to the DMA, or the DMA queue is full (it drains
	// only through executed cycles): sleep until the frame boundary.
	return s.frameStart + s.Period, true
}

// referenceAt computes the reference progress line at cycle now.
func (s *FrameSource) referenceAt(now sim.Cycle) float64 {
	if now < s.frameStart {
		return 0
	}
	ref := float64(now-s.frameStart) / float64(s.Period)
	if s.RefFactor > 0 {
		ref *= s.RefFactor
	}
	if ref > 1 {
		ref = 1
	}
	return ref
}

// Progress reports frame progress in [0,1] and the frame start cycle; it
// feeds meter.FrameProgressMeter.
func (s *FrameSource) Progress() (float64, sim.Cycle) {
	if !s.started || s.BytesPerFrame == 0 {
		// Before the engine's first frame there is nothing due, so the
		// core is healthy by definition.
		return 1, s.frameStart
	}
	p := float64(s.doneBytes) / float64(s.BytesPerFrame)
	if p > 1 {
		p = 1
	}
	return p, s.frameStart
}

// Tick starts frames on period boundaries and enqueues the remaining frame
// bytes as fast as the DMA accepts them.
func (s *FrameSource) Tick(now sim.Cycle) {
	if !s.started {
		if now < s.StartOffset {
			return
		}
		s.started = true
		s.frameStart = now
	}
	if now-s.frameStart >= s.Period {
		if s.doneBytes >= s.BytesPerFrame {
			s.FramesCompleted++
		} else {
			s.FramesMissed++
		}
		s.frameStart = now
		s.issuedBytes = 0
		s.doneBytes = 0
	}
	for s.issuedBytes < s.BytesPerFrame && s.engine.PendingSpace() > 0 {
		if !s.engine.Enqueue(s.picker.pick(), s.str.next(), s.ReqSize) {
			break
		}
		s.issuedBytes += uint64(s.ReqSize)
	}
}
