// Package traffic implements the per-core memory traffic generators that
// substitute for the paper's proprietary next-generation MPSoC traces.
// Each source models one DMA's demand shape from the camcorder use case
// (Fig. 2): bursty whole-frame transfers (video codec, rotator, image
// processor, JPEG, GPU), constant-rate buffered streams (display refill,
// camera sensor), sporadic latency-sensitive accesses (DSP, audio),
// steady bandwidth streams (WiFi, USB), periodic work chunks with
// deadlines (GPS, modem), and random CPU background traffic.
package traffic

import (
	"sara/internal/dma"
	"sara/internal/sim"
	"sara/internal/txn"
)

// Source drives one DMA engine. Tick is called on every executed cycle,
// before the DMA injects; the kernel may fast-forward over cycles the
// NextActivity hint declares quiescent, so sources integrate time from
// the cycle number rather than counting Tick calls.
//
// Under the kernel's push-based wake heap a source's hint is re-queried
// only when its cached wake surfaces, so the two external events that can
// move a source's next activity EARLIER must re-arm its kernel wake. Both
// are observed by the DMA engine the source feeds, which owns the re-arms
// (see dma.Engine.BindSourceWake): a pending-queue pop from full (every
// hint here consults PendingSpace), and — for the occupancy sources,
// whose hints read in-flight bytes — a completion delivery. Everything
// else about a source's schedule is self-timed from its own state, which
// only its own Tick mutates, so no further wiring is needed.
type Source interface {
	// Name labels the source (usually the DMA name).
	Name() string
	// Tick generates requests for cycle now.
	Tick(now sim.Cycle)
	// NextActivity reports the source's next self-generated work, per
	// the sim.Idler contract. Embedding it in the interface guarantees
	// every assembled system supports idle skipping.
	sim.Idler
}

// Region is the physical address range a DMA walks. Regions are assigned
// disjointly per DMA by the SoC assembly so cores never alias rows.
type Region struct {
	Base txn.Addr
	Size uint64
}

// stream walks a region sequentially in req-sized steps, wrapping at the
// end. Sequential walks give the high row-buffer locality streaming
// engines have in practice.
type stream struct {
	region Region
	offset uint64
	req    uint64
}

func newStream(r Region, reqSize uint32) *stream {
	return &stream{region: r, req: uint64(reqSize)}
}

// next returns the next sequential address.
func (s *stream) next() txn.Addr {
	a := s.region.Base + txn.Addr(s.offset)
	s.offset += s.req
	if s.offset+s.req > s.region.Size {
		s.offset = 0
	}
	return a
}

// randomIn returns a burst-aligned random address within the region,
// which defeats row-buffer locality (used by DSP/audio/CPU-miss traffic).
func randomIn(rng *sim.Rand, r Region, reqSize uint32) txn.Addr {
	slots := r.Size / uint64(reqSize)
	if slots == 0 {
		return r.Base
	}
	return r.Base + txn.Addr(uint64(rng.Intn(int(slots)))*uint64(reqSize))
}

// kindPicker chooses read vs write according to a read fraction.
type kindPicker struct {
	readFrac float64
	rng      *sim.Rand
}

func (k kindPicker) pick() txn.Kind {
	if k.readFrac >= 1 {
		return txn.Read
	}
	if k.readFrac <= 0 {
		return txn.Write
	}
	if k.rng.Bool(k.readFrac) {
		return txn.Read
	}
	return txn.Write
}

// engineFor is the narrow slice of dma.Engine the sources use; it exists
// to keep the sources trivially testable with a fake.
type engineFor interface {
	Enqueue(kind txn.Kind, addr txn.Addr, size uint32) bool
	PendingSpace() int
	Outstanding() int
}

var _ engineFor = (*dma.Engine)(nil)
