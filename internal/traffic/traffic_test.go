package traffic

import (
	"testing"

	"sara/internal/dma"
	"sara/internal/meter"
	"sara/internal/noc"
	"sara/internal/sim"
	"sara/internal/txn"
)

// newChunkMeter builds a progress-less chunk meter for source tests.
func newChunkMeter(_ *testing.T, deadline sim.Cycle) *meter.ChunkMeter {
	return meter.NewChunkMeter(deadline, nil)
}

// harness wires one DMA through a single-port router into a collecting
// sink and completes every granted transaction after a fixed latency —
// a minimal memory system with configurable service rate.
type harness struct {
	engine *dma.Engine
	router *noc.Router
	nextID uint64

	latency  sim.Cycle
	inflight []pendingTxn
	served   uint64
}

type pendingTxn struct {
	t  *txn.Transaction
	at sim.Cycle
}

func newHarness(window int, latency sim.Cycle) *harness {
	h := &harness{latency: latency}
	sink := sinkFunc(func(t *txn.Transaction, now sim.Cycle) {
		h.served++
		h.inflight = append(h.inflight, pendingTxn{t: t, at: now + h.latency})
	})
	h.router = noc.NewRouter("t", noc.Params{PortDepth: 16, Arb: noc.ArbFCFS}, 1, []noc.Sink{sink}, nil)
	h.engine = dma.New(dma.Config{
		Name: "t", Core: "T", Class: txn.ClassMedia, Window: window,
	}, 0, &h.nextID, h.router.Port(0), 0)
	return h
}

// step advances one cycle.
func (h *harness) step(now sim.Cycle, src Source) {
	src.Tick(now)
	h.engine.Tick(now)
	h.router.Tick(now)
	keep := h.inflight[:0]
	for _, p := range h.inflight {
		if p.at <= now {
			h.engine.Deliver(p.t, now)
		} else {
			keep = append(keep, p)
		}
	}
	h.inflight = keep
}

type sinkFunc func(t *txn.Transaction, now sim.Cycle)

func (f sinkFunc) CanAccept(*txn.Transaction) bool          { return true }
func (f sinkFunc) Accept(t *txn.Transaction, now sim.Cycle) { f(t, now) }

func region() Region { return Region{Base: 0, Size: 1 << 22} }

func TestFrameSourceCompletesFrames(t *testing.T) {
	h := newHarness(8, 20)
	rng := sim.NewRand(1)
	src := NewFrameSource("f", h.engine, rng, region(), 16*128, 2000, 128, 1, 1)
	for now := sim.Cycle(0); now < 6000; now++ {
		h.step(now, src)
	}
	if src.FramesCompleted < 2 {
		t.Fatalf("completed %d frames, want >= 2", src.FramesCompleted)
	}
	if src.FramesMissed != 0 {
		t.Fatalf("missed %d frames with an idle memory system", src.FramesMissed)
	}
	p, _ := src.Progress()
	if p < 0 || p > 1 {
		t.Fatalf("progress %v out of range", p)
	}
}

func TestFrameSourceMissesWhenStarved(t *testing.T) {
	// Latency so high the frame volume cannot complete in a period.
	h := newHarness(1, 1900)
	rng := sim.NewRand(1)
	src := NewFrameSource("f", h.engine, rng, region(), 64*128, 2000, 128, 1, 1)
	for now := sim.Cycle(0); now < 8000; now++ {
		h.step(now, src)
	}
	if src.FramesMissed == 0 {
		t.Fatal("starved frame source missed no frames")
	}
}

func TestDisplaySourceUnderrun(t *testing.T) {
	h := newHarness(4, 3000) // refill far too slow
	src := NewDisplaySource("d", h.engine, region(), 1.0, 4096, 128)
	for now := sim.Cycle(0); now < 6000; now++ {
		h.step(now, src)
	}
	if src.UnderrunCycles == 0 {
		t.Fatal("starved display never underran")
	}
	if occ := src.Occupancy(); occ > 0.1 {
		t.Fatalf("starved display occupancy %.2f, want near 0", occ)
	}
}

func TestDisplaySourceKeepsUp(t *testing.T) {
	h := newHarness(16, 20)
	src := NewDisplaySource("d", h.engine, region(), 0.5, 8192, 128)
	for now := sim.Cycle(0); now < 20000; now++ {
		h.step(now, src)
	}
	if src.UnderrunCycles != 0 {
		t.Fatalf("healthy display underran %d cycles", src.UnderrunCycles)
	}
	if occ := src.Occupancy(); occ < 0.8 {
		t.Fatalf("healthy display occupancy %.2f, want near full", occ)
	}
}

func TestCameraSourceOverflow(t *testing.T) {
	h := newHarness(2, 4000) // drain too slow
	src := NewCameraSource("c", h.engine, region(), 1.0, 4096, 128)
	for now := sim.Cycle(0); now < 10000; now++ {
		h.step(now, src)
	}
	if src.OverflowBytes() == 0 {
		t.Fatal("starved camera never overflowed")
	}
}

func TestCameraSourceKeepsUp(t *testing.T) {
	h := newHarness(16, 20)
	src := NewCameraSource("c", h.engine, region(), 0.5, 8192, 128)
	for now := sim.Cycle(0); now < 20000; now++ {
		h.step(now, src)
	}
	if src.OverflowBytes() != 0 {
		t.Fatalf("healthy camera overflowed %.0f bytes", src.OverflowBytes())
	}
	if occ := src.Occupancy(); occ > 0.2 {
		t.Fatalf("healthy camera occupancy %.2f, want near empty", occ)
	}
}

func TestSporadicSourceRate(t *testing.T) {
	h := newHarness(8, 10)
	rng := sim.NewRand(2)
	src := NewSporadicSource("s", h.engine, rng, region(), 100, 128, 1)
	const horizon = 100000
	for now := sim.Cycle(0); now < horizon; now++ {
		h.step(now, src)
	}
	got := h.engine.Stats().Completed
	want := float64(horizon) / 100
	if float64(got) < 0.85*want || float64(got) > 1.15*want {
		t.Fatalf("sporadic completions %d, want ~%.0f", got, want)
	}
	if src.Dropped() != 0 {
		t.Fatalf("dropped %d requests with an idle system", src.Dropped())
	}
}

func TestRateSourceDeliversTarget(t *testing.T) {
	h := newHarness(16, 20)
	rng := sim.NewRand(3)
	src := NewRateSource("r", h.engine, rng, region(), 2.0, 128, 4, 0.5)
	const horizon = 50000
	for now := sim.Cycle(0); now < horizon; now++ {
		h.step(now, src)
	}
	bytes := h.engine.Stats().BytesCompleted
	want := 2.0 * horizon
	if float64(bytes) < 0.9*want || float64(bytes) > 1.1*want {
		t.Fatalf("rate source moved %d bytes, want ~%.0f", bytes, want)
	}
}

func TestChunkSourceDeadlines(t *testing.T) {
	h := newHarness(8, 10)
	rng := sim.NewRand(4)
	cm := newChunkMeter(t, 1000)
	src := NewChunkSource("g", h.engine, rng, region(), 8*128, 2000, 128, 1, cm)
	for now := sim.Cycle(0); now < 10000; now++ {
		h.step(now, src)
	}
	if src.ChunksDone == 0 {
		t.Fatal("no chunks completed")
	}
	if src.ChunksMissed+src.ChunksOverrun != 0 {
		t.Fatalf("missed %d / overran %d chunks on an idle system",
			src.ChunksMissed, src.ChunksOverrun)
	}
}

func TestCPUSourceLocalityStaysInRegion(t *testing.T) {
	h := newHarness(8, 10)
	rng := sim.NewRand(5)
	src := NewCPUSource("cpu", h.engine, rng, region(), 1.0, 128, 0.7, 0.6)
	var bad bool
	h.engine.OnComplete(func(tr *txn.Transaction, now sim.Cycle) {
		if uint64(tr.Addr) >= region().Size {
			bad = true
		}
	})
	for now := sim.Cycle(0); now < 20000; now++ {
		h.step(now, src)
	}
	if bad {
		t.Fatal("CPU source escaped its region")
	}
	if h.engine.Stats().Completed == 0 {
		t.Fatal("CPU source produced nothing")
	}
}

func TestStreamWraps(t *testing.T) {
	s := newStream(Region{Base: 0, Size: 512}, 128)
	seen := map[txn.Addr]int{}
	for i := 0; i < 12; i++ {
		seen[s.next()]++
	}
	for addr, n := range seen {
		if uint64(addr)+128 > 512 {
			t.Fatalf("stream address %#x out of region", uint64(addr))
		}
		if n == 0 {
			t.Fatal("impossible")
		}
	}
}
