package traffic

import "math"

// The rate-driven sources (display drain, camera fill, token buckets)
// integrate fractional bytes-per-cycle rates over time. They do it in Q32
// fixed point rather than float64 because integer accumulation is exactly
// partition-independent: folding N cycles in one step is bit-identical to
// N single-cycle steps, regardless of where the simulation kernel happens
// to break the gap. That property is what lets the idle-skipping kernel
// fast-forward over quiescent stretches without perturbing results — the
// equivalence tests compare a skipped run against a cycle-stepped one and
// demand identical statistics.
const (
	fpShift = 32
	fpOne   = uint64(1) << fpShift
	fpFrac  = fpOne - 1
)

// toFP converts a non-negative byte quantity or rate to Q32.
func toFP(v float64) uint64 {
	if v <= 0 {
		return 0
	}
	return uint64(math.Round(v * float64(fpOne)))
}

// fromFP converts a Q32 quantity back to float64 (for reporting only).
func fromFP(v uint64) float64 { return float64(v) / float64(fpOne) }

// bytesFP converts a whole-byte count to Q32.
func bytesFP(n uint32) uint64 { return uint64(n) << fpShift }

// ceilDiv returns ceil(a/b); b must be positive.
func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }
