package traffic

import (
	"sara/internal/dma"
	"sara/internal/sim"
	"sara/internal/txn"
)

// CPUSource models the CPU cluster's background cache-miss traffic: a
// rate-limited stream whose addresses mix short sequential runs (spatial
// locality of cache-line fills along a miss stream) with random jumps.
// The CPU has no hard QoS target in the camcorder use case; it provides
// the realistic background pressure the paper's traffic model includes.
type CPUSource struct {
	name   string
	engine *dma.Engine

	// RatePerCycle is the average demand in bytes/cycle.
	RatePerCycle float64
	// ReqSize is the transaction size.
	ReqSize uint32
	// ReadFrac is the fraction of requests that are reads.
	ReadFrac float64
	// Locality is the probability that the next access continues the
	// current sequential run instead of jumping to a random address.
	Locality float64

	rng    *sim.Rand
	region Region
	picker kindPicker
	cursor txn.Addr
	tokens float64
}

// NewCPUSource builds a CPU background source over region r.
func NewCPUSource(name string, e *dma.Engine, rng *sim.Rand, r Region,
	ratePerCycle float64, reqSize uint32, readFrac, locality float64) *CPUSource {
	return &CPUSource{
		name:         name,
		engine:       e,
		RatePerCycle: ratePerCycle,
		ReqSize:      reqSize,
		ReadFrac:     readFrac,
		Locality:     locality,
		rng:          rng,
		region:       r,
		picker:       kindPicker{readFrac: readFrac, rng: rng},
		cursor:       r.Base,
	}
}

// Name returns the source label.
func (s *CPUSource) Name() string { return s.name }

// Tick emits rate-funded requests along the locality-mixed address walk.
func (s *CPUSource) Tick(now sim.Cycle) {
	s.tokens += s.RatePerCycle
	for s.tokens >= float64(s.ReqSize) {
		addr := s.nextAddr()
		if !s.engine.Enqueue(s.picker.pick(), addr, s.ReqSize) {
			if s.tokens > 8*float64(s.ReqSize) {
				s.tokens = 8 * float64(s.ReqSize)
			}
			return
		}
		s.tokens -= float64(s.ReqSize)
	}
}

func (s *CPUSource) nextAddr() txn.Addr {
	if s.rng.Bool(s.Locality) {
		s.cursor += txn.Addr(s.ReqSize)
		if uint64(s.cursor-s.region.Base)+uint64(s.ReqSize) > s.region.Size {
			s.cursor = s.region.Base
		}
		return s.cursor
	}
	s.cursor = randomIn(s.rng, s.region, s.ReqSize)
	return s.cursor
}
