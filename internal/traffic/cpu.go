package traffic

import (
	"sara/internal/dma"
	"sara/internal/sim"
	"sara/internal/txn"
)

// CPUSource models the CPU cluster's background cache-miss traffic: a
// rate-limited stream whose addresses mix short sequential runs (spatial
// locality of cache-line fills along a miss stream) with random jumps.
// The CPU has no hard QoS target in the camcorder use case; it provides
// the realistic background pressure the paper's traffic model includes.
type CPUSource struct {
	name   string
	engine *dma.Engine

	// RatePerCycle is the average demand in bytes/cycle.
	RatePerCycle float64
	// ReqSize is the transaction size.
	ReqSize uint32
	// ReadFrac is the fraction of requests that are reads.
	ReadFrac float64
	// Locality is the probability that the next access continues the
	// current sequential run instead of jumping to a random address.
	Locality float64

	rng    *sim.Rand
	region Region
	picker kindPicker
	cursor txn.Addr

	rateFP   uint64 // Q32 bytes/cycle
	reqFP    uint64
	tokensFP uint64
	funded   sim.Cycle
	// saturated marks a tick that ended against a full DMA queue; the
	// next tick clamps retroactively over the un-ticked stretch (see
	// RateSource.saturated).
	saturated bool
}

// NewCPUSource builds a CPU background source over region r.
func NewCPUSource(name string, e *dma.Engine, rng *sim.Rand, r Region,
	ratePerCycle float64, reqSize uint32, readFrac, locality float64) *CPUSource {
	return &CPUSource{
		name:         name,
		engine:       e,
		RatePerCycle: ratePerCycle,
		ReqSize:      reqSize,
		ReadFrac:     readFrac,
		Locality:     locality,
		rng:          rng,
		region:       r,
		picker:       kindPicker{readFrac: readFrac, rng: rng},
		cursor:       r.Base,
		rateFP:       toFP(ratePerCycle),
		reqFP:        bytesFP(reqSize),
	}
}

// Name returns the source label.
func (s *CPUSource) Name() string { return s.name }

// integrateTo accumulates tokens so that `total` single-cycle fills have
// happened since the start of the run.
func (s *CPUSource) integrateTo(total sim.Cycle) {
	if total <= s.funded {
		return
	}
	s.tokensFP += s.rateFP * uint64(total-s.funded)
	s.funded = total
}

// NextActivity implements sim.Idler: the source acts on the first cycle
// whose token fill funds one request. The bound is absolute, anchored at
// the funding cursor rather than now, so a probe on lazily-integrated
// state cannot raise the cached wake past the true fill cycle (see
// RateSource.NextActivity).
//
//sara:hotpath
func (s *CPUSource) NextActivity(now sim.Cycle) (sim.Cycle, bool) {
	if s.tokensFP >= s.reqFP {
		if s.engine.PendingSpace() > 0 {
			return now, true
		}
		return 0, false
	}
	if s.rateFP == 0 {
		return 0, false
	}
	steps := ceilDiv(s.reqFP-s.tokensFP, s.rateFP)
	if steps == 0 {
		steps = 1
	}
	at := s.funded + sim.Cycle(steps) - 1
	if at < now {
		at = now
	}
	return at, true
}

// Tick emits rate-funded requests along the locality-mixed address walk.
// The random walk advances only for requests actually enqueued, and the
// saturation cap composes as min(tokens + n*rate, cap), so a tick after n
// fast-forwarded blocked cycles is bit-identical to n blocked
// single-cycle ticks.
func (s *CPUSource) Tick(now sim.Cycle) {
	if s.saturated {
		// Batched version of the per-cycle saturation clamp (see
		// RateSource.Tick for the composition argument).
		s.integrateTo(now)
		if s.tokensFP > 8*s.reqFP {
			s.tokensFP = 8 * s.reqFP
		}
		s.saturated = false
	}
	s.integrateTo(now + 1)
	for s.tokensFP >= s.reqFP {
		if s.engine.PendingSpace() == 0 {
			if s.tokensFP > 8*s.reqFP {
				s.tokensFP = 8 * s.reqFP
			}
			s.saturated = true
			return
		}
		s.engine.Enqueue(s.picker.pick(), s.nextAddr(), s.ReqSize)
		s.tokensFP -= s.reqFP
	}
}

func (s *CPUSource) nextAddr() txn.Addr {
	if s.rng.Bool(s.Locality) {
		s.cursor += txn.Addr(s.ReqSize)
		if uint64(s.cursor-s.region.Base)+uint64(s.ReqSize) > s.region.Size {
			s.cursor = s.region.Base
		}
		return s.cursor
	}
	s.cursor = randomIn(s.rng, s.region, s.ReqSize)
	return s.cursor
}
