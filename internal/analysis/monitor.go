package analysis

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"

	"sara/internal/sim"
)

// Snapshot is the live view of one in-flight run at a window boundary:
// the monitor's unit of currency, also usable directly via
// Options.Publish.
type Snapshot struct {
	Cycle         sim.Cycle          `json:"cycle"`
	Samples       int                `json:"samples"`
	WorstNPI      float64            `json:"worst_npi"`
	BandwidthGBps float64            `json:"bandwidth_gbps"`
	BlackoutDuty  float64            `json:"blackout_duty"`
	NoCStallFrac  float64            `json:"noc_stall_frac"`
	Backpressure  float64            `json:"backpressure"`
	NPI           map[string]float64 `json:"npi"`
	RouterStall   map[string]float64 `json:"router_stall"`
}

// Monitor is the lightweight HTTP live monitor for an in-flight sweep.
// Runs register through StartRun, publish Snapshots from their analyzer's
// window sampler, and report completion; the monitor serves progress and
// the latest snapshots as JSON:
//
//	GET /            human-oriented text index
//	GET /api/status  {"planned":N,"running":N,"done":N,"failed":N}
//	GET /api/runs    [{"label":...,"state":...,"snapshot":{...}}, ...]
//	GET /api/run?label=L   one run's entry
//
// All methods are safe for concurrent use; a nil *Monitor (monitoring
// disabled) accepts every call as a no-op, so callers never need to
// branch.
type Monitor struct {
	mu      sync.Mutex
	planned int
	order   []string
	runs    map[string]*RunStatus
	ln      net.Listener
	srv     *http.Server
}

// RunStatus is one run's monitored state.
type RunStatus struct {
	Label    string    `json:"label"`
	State    string    `json:"state"` // "running", "done" or "failed"
	Snapshot *Snapshot `json:"snapshot,omitempty"`
}

// NewMonitor returns a monitor with no listener; call Start to serve.
func NewMonitor() *Monitor {
	return &Monitor{runs: make(map[string]*RunStatus)}
}

// Start listens on addr (host:port; ":0" picks a free port — see Addr)
// and serves the monitor endpoints until Close.
func (m *Monitor) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("analysis: monitor listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", m.handleIndex)
	mux.HandleFunc("/api/status", m.handleStatus)
	mux.HandleFunc("/api/runs", m.handleRuns)
	mux.HandleFunc("/api/run", m.handleRun)
	m.mu.Lock()
	m.ln = ln
	m.srv = &http.Server{Handler: mux}
	m.mu.Unlock()
	go m.srv.Serve(ln)
	return nil
}

// Addr reports the listener's address (useful with ":0"), or "" before
// Start.
func (m *Monitor) Addr() string {
	if m == nil {
		return ""
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Close shuts the HTTP server down. Safe on a nil or never-started
// monitor.
func (m *Monitor) Close() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	srv := m.srv
	m.srv, m.ln = nil, nil
	m.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// AddPlanned raises the planned-run count /api/status reports against.
func (m *Monitor) AddPlanned(n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.planned += n
	m.mu.Unlock()
}

// StartRun registers a run as in-flight and returns its publish handle.
// Re-registering a label (a retried cell) resets its entry.
func (m *Monitor) StartRun(label string) *RunHandle {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	if _, ok := m.runs[label]; !ok {
		m.order = append(m.order, label)
	}
	m.runs[label] = &RunStatus{Label: label, State: "running"}
	m.mu.Unlock()
	return &RunHandle{m: m, label: label}
}

// RunHandle publishes one run's snapshots and final state. A nil handle
// (no monitor) accepts every call as a no-op.
type RunHandle struct {
	m     *Monitor
	label string
}

// Publish records snap as the run's latest live view.
func (h *RunHandle) Publish(snap Snapshot) {
	if h == nil {
		return
	}
	h.m.mu.Lock()
	if r := h.m.runs[h.label]; r != nil {
		r.Snapshot = &snap
	}
	h.m.mu.Unlock()
}

// Finish marks the run done (or failed).
func (h *RunHandle) Finish(ok bool) {
	if h == nil {
		return
	}
	state := "done"
	if !ok {
		state = "failed"
	}
	h.m.mu.Lock()
	if r := h.m.runs[h.label]; r != nil {
		r.State = state
	}
	h.m.mu.Unlock()
}

// status is the /api/status payload.
type status struct {
	Planned int `json:"planned"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
}

func (m *Monitor) snapshotStatus() status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := status{Planned: m.planned}
	for _, l := range m.order {
		switch m.runs[l].State {
		case "running":
			st.Running++
		case "done":
			st.Done++
		case "failed":
			st.Failed++
		}
	}
	return st
}

func (m *Monitor) snapshotRuns() []*RunStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*RunStatus, 0, len(m.order))
	for _, l := range m.order {
		r := *m.runs[l]
		if r.Snapshot != nil {
			snap := *r.Snapshot
			r.Snapshot = &snap
		}
		out = append(out, &r)
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (m *Monitor) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, m.snapshotStatus())
}

func (m *Monitor) handleRuns(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, m.snapshotRuns())
}

func (m *Monitor) handleRun(w http.ResponseWriter, req *http.Request) {
	label := req.URL.Query().Get("label")
	m.mu.Lock()
	r, ok := m.runs[label]
	var cp RunStatus
	if ok {
		cp = *r
		if cp.Snapshot != nil {
			snap := *cp.Snapshot
			cp.Snapshot = &snap
		}
	}
	m.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("unknown run %q", label), http.StatusNotFound)
		return
	}
	writeJSON(w, &cp)
}

func (m *Monitor) handleIndex(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	st := m.snapshotStatus()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "sara sweep monitor\n\nplanned %d  running %d  done %d  failed %d\n\n",
		st.Planned, st.Running, st.Done, st.Failed)
	for _, r := range m.snapshotRuns() {
		if r.Snapshot != nil {
			fmt.Fprintf(w, "%-8s %s  cycle %d  worstNPI %.3f  bw %.2f GB/s\n",
				r.State, r.Label, r.Snapshot.Cycle, r.Snapshot.WorstNPI, r.Snapshot.BandwidthGBps)
		} else {
			fmt.Fprintf(w, "%-8s %s\n", r.State, r.Label)
		}
	}
	fmt.Fprint(w, "\nendpoints: /api/status /api/runs /api/run?label=L\n")
}
