package analysis

import (
	"sara/internal/noc"
	"sara/internal/sim"
)

// EdgeCounts accumulates one named endpoint's trace-edge events since the
// last Reset: switch-allocation grants, credit-side pops, pops that found
// the FIFO full (the backpressure releases), and stall cycles. Endpoints
// are whatever names arrive on the edges — routers, plus the "mc<ch>"
// names the SoC wiring reports controller queue releases under.
type EdgeCounts struct {
	Grants   uint64
	Credits  uint64
	FullPops uint64
	Stalls   uint64
}

// EdgeTap subscribes to the NoC grant/credit/stall edges through the
// multiplexing hook registries and counts events per endpoint name. It is
// the edge layer the Analyzer's per-router backpressure numbers come
// from, exported so tests can drive it against a bare router with
// hand-computable traffic. The edges are process-global: one live tap per
// process, detached via Close.
type EdgeTap struct {
	byName map[string]*EdgeCounts
	detach []func()
}

// TapRouters subscribes a tap counting events for the given endpoint
// names; events for other names are ignored.
func TapRouters(names ...string) *EdgeTap {
	t := &EdgeTap{byName: make(map[string]*EdgeCounts, len(names))}
	for _, n := range names {
		t.byName[n] = &EdgeCounts{}
	}
	t.detach = append(t.detach,
		noc.HookGrant(func(name string, now sim.Cycle, port, out int, id uint64) {
			if c := t.byName[name]; c != nil {
				c.Grants++
			}
		}),
		noc.HookCredit(func(name string, now sim.Cycle, port int, wasFull bool) {
			if c := t.byName[name]; c != nil {
				c.Credits++
				if wasFull {
					c.FullPops++
				}
			}
		}),
		noc.HookStall(func(name string, now sim.Cycle, n uint64, backfill bool) {
			if c := t.byName[name]; c != nil {
				c.Stalls += n
			}
		}),
	)
	return t
}

// Counts returns the live counter cell for name (nil when untapped). The
// cell is updated in place by the edges; read it only between kernel
// steps.
func (t *EdgeTap) Counts(name string) *EdgeCounts { return t.byName[name] }

// Reset zeroes every counter cell — the window boundary.
func (t *EdgeTap) Reset() {
	for _, c := range t.byName {
		*c = EdgeCounts{}
	}
}

// Close detaches the tap from the edges.
func (t *EdgeTap) Close() {
	for _, d := range t.detach {
		d()
	}
	t.detach = nil
}
