package analysis_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"sara/internal/analysis"
	"sara/internal/core"
)

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestMonitorServesLiveRun probes the HTTP monitor over real TCP while a
// simulation is mid-flight: the run is advanced a few analyzer windows
// and paused (not finished), and the endpoints must already serve its
// live NPI/backpressure snapshot with state "running". Deterministic —
// the simulation runs on the test goroutine, so there is no race between
// progress and the probe.
func TestMonitorServesLiveRun(t *testing.T) {
	mon := analysis.NewMonitor()
	if err := mon.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	base := "http://" + mon.Addr()

	mon.AddPlanned(1)
	h := mon.StartRun("case A / policy qos")
	sys := core.Build(fastCfg())
	az := analysis.Attach(sys, analysis.Options{Window: 1024, Publish: h.Publish})
	defer az.Detach()
	sys.Run(8 * 1024) // several windows in; the run is still in flight

	var st struct {
		Planned int `json:"planned"`
		Running int `json:"running"`
		Done    int `json:"done"`
	}
	getJSON(t, base+"/api/status", &st)
	if st.Planned != 1 || st.Running != 1 || st.Done != 0 {
		t.Fatalf("mid-run status %+v, want planned 1 running 1 done 0", st)
	}

	var runs []analysis.RunStatus
	getJSON(t, base+"/api/runs", &runs)
	if len(runs) != 1 || runs[0].State != "running" {
		t.Fatalf("mid-run /api/runs = %+v, want one running entry", runs)
	}
	snap := runs[0].Snapshot
	if snap == nil {
		t.Fatal("running entry has no live snapshot after 8 windows")
	}
	if snap.Cycle == 0 || snap.Samples == 0 {
		t.Fatalf("snapshot not live: cycle %d, samples %d", snap.Cycle, snap.Samples)
	}
	if len(snap.NPI) == 0 {
		t.Fatal("live snapshot has no per-core NPI map")
	}
	if len(snap.RouterStall) == 0 {
		t.Fatal("live snapshot has no per-router stall map")
	}
	if snap.Backpressure < 0 {
		t.Fatalf("negative backpressure %v", snap.Backpressure)
	}

	var one analysis.RunStatus
	getJSON(t, base+"/api/run?label=case+A+%2F+policy+qos", &one)
	if one.State != "running" || one.Snapshot == nil {
		t.Fatalf("/api/run = %+v, want the running entry with its snapshot", one)
	}

	resp, err := http.Get(base + "/api/run?label=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown label: status %d, want 404", resp.StatusCode)
	}

	// Finish the run and let more windows pass: status flips to done and
	// the last snapshot stays served.
	sys.Run(2 * 1024)
	h.Finish(true)
	getJSON(t, base+"/api/status", &st)
	if st.Running != 0 || st.Done != 1 {
		t.Fatalf("post-run status %+v, want running 0 done 1", st)
	}

	resp, err = http.Get(base + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "sara sweep monitor") {
		t.Fatalf("index page unrecognizable:\n%s", body[:n])
	}
}

// TestNilMonitorIsInert pins the nil-object contract the exp harness and
// CLIs rely on: with monitoring disabled every call must be a no-op, so
// no caller ever branches.
func TestNilMonitorIsInert(t *testing.T) {
	var mon *analysis.Monitor
	mon.AddPlanned(3)
	if got := mon.Addr(); got != "" {
		t.Fatalf("nil monitor has address %q", got)
	}
	if err := mon.Close(); err != nil {
		t.Fatalf("nil monitor close: %v", err)
	}
	h := mon.StartRun("x")
	if h != nil {
		t.Fatal("nil monitor returned a run handle")
	}
	h.Publish(analysis.Snapshot{})
	h.Finish(true)
}
