package analysis_test

import (
	"testing"

	"sara/internal/analysis"
	"sara/internal/config"
	"sara/internal/core"
	"sara/internal/dma"
	"sara/internal/memctrl"
	"sara/internal/noc"
	"sara/internal/sim"
	"sara/internal/txn"
)

func fastCfg(opts ...config.Option) core.Config {
	return config.Camcorder(config.CaseA, append([]config.Option{config.WithScaleDiv(512)}, opts...)...)
}

// toggleSink is a noc.Sink whose acceptance the test flips by hand.
type toggleSink struct {
	got  int
	full bool
}

func (s *toggleSink) CanAccept(*txn.Transaction) bool { return !s.full }
func (s *toggleSink) Accept(t *txn.Transaction, now sim.Cycle) {
	s.got++
}

// TestEdgeTapWindowedGolden drives a bare two-deep router through the
// exact edge path the analyzer's backpressure numbers come from and
// checks every window against hand-computed grant/credit/full-pop/stall
// counts.
func TestEdgeTapWindowedGolden(t *testing.T) {
	sink := &toggleSink{}
	p := noc.Params{PortDepth: 2, HopLatency: 0, RespLatency: 12, Arb: noc.ArbFCFS}
	r := noc.NewRouter("g", p, 1, []noc.Sink{sink}, nil)

	tap := analysis.TapRouters("g")
	defer tap.Close()
	c := tap.Counts("g")
	if c == nil {
		t.Fatal("tapped router has no counter cell")
	}
	if tap.Counts("other") != nil {
		t.Fatal("untapped name has a counter cell")
	}

	// Window 1: fill the port (depth 2), then drain it. The first pop
	// leaves a full FIFO, so it is the window's one backpressure release.
	r.Port(0).Push(&txn.Transaction{ID: 1}, 0, 0)
	r.Port(0).Push(&txn.Transaction{ID: 2}, 0, 0)
	r.Tick(1)
	r.Tick(2)
	want := analysis.EdgeCounts{Grants: 2, Credits: 2, FullPops: 1, Stalls: 0}
	if *c != want {
		t.Fatalf("window 1 counts %+v, want %+v", *c, want)
	}
	if got := r.Forwarded(); got != 2 {
		t.Fatalf("router forwarded %d, want 2", got)
	}
	tap.Reset()

	// Window 2: a ready head blocked on a full sink stalls the switch
	// every cycle; unblocking grants it (a pop of a non-full FIFO, so a
	// credit but no backpressure release).
	sink.full = true
	r.Port(0).Push(&txn.Transaction{ID: 3}, 3, 3)
	r.Tick(3)
	r.Tick(4)
	want = analysis.EdgeCounts{Stalls: 2}
	if *c != want {
		t.Fatalf("window 2 (blocked) counts %+v, want %+v", *c, want)
	}
	sink.full = false
	r.Tick(5)
	want = analysis.EdgeCounts{Grants: 1, Credits: 1, FullPops: 0, Stalls: 2}
	if *c != want {
		t.Fatalf("window 2 (drained) counts %+v, want %+v", *c, want)
	}
	if got := r.Stalls(); got != 2 {
		t.Fatalf("tap stalls diverge from router counter: tap %d, router %d", c.Stalls, got)
	}
	if sink.got != 3 {
		t.Fatalf("sink accepted %d packets, want 3", sink.got)
	}
}

// Compact event records for the behavior differential. Stall events are
// deliberately absent: stall accrual is batched accounting whose event
// chunking depends on when settles run (the analyzer's sampler adds
// settle points), so only its total is comparable, via Router.Stalls.
type grantEv struct {
	name      string
	now       sim.Cycle
	port, out int
	id        uint64
}
type creditEv struct {
	name    string
	now     sim.Cycle
	port    int
	wasFull bool
}
type injectEv struct {
	now    sim.Cycle
	source int
	id     uint64
	addr   uint64
}
type cmdEv struct {
	ch   int
	now  sim.Cycle
	id   uint64
	kind byte
}

type traceLog struct {
	grants  []grantEv
	credits []creditEv
	injects []injectEv
	cmds    []cmdEv
}

type runOutcome struct {
	log       *traceLog
	completed uint64
	bandwidth float64
	minNPI    map[string]float64
	stalls    map[string]uint64
	forwarded map[string]uint64
}

// tracedRun runs one frame of case A with the legacy SetDebugX observers
// installed, optionally with an edge-layer analyzer attached alongside
// them through the multiplexing registries.
func tracedRun(analyze bool) runOutcome {
	lg := &traceLog{}
	noc.SetDebugGrant(func(name string, now sim.Cycle, port, out int, id uint64) {
		lg.grants = append(lg.grants, grantEv{name, now, port, out, id})
	})
	defer noc.SetDebugGrant(nil)
	noc.SetDebugCredit(func(name string, now sim.Cycle, port int, wasFull bool) {
		lg.credits = append(lg.credits, creditEv{name, now, port, wasFull})
	})
	defer noc.SetDebugCredit(nil)
	dma.SetDebugInject(func(now sim.Cycle, source int, id uint64, addr uint64) {
		lg.injects = append(lg.injects, injectEv{now, source, id, addr})
	})
	defer dma.SetDebugInject(nil)
	memctrl.SetDebugTrace(func(ch int, now sim.Cycle, id uint64, kind byte) {
		lg.cmds = append(lg.cmds, cmdEv{ch, now, id, kind})
	})
	defer memctrl.SetDebugTrace(nil)

	sys := core.Build(fastCfg())
	if analyze {
		az := analysis.Attach(sys, analysis.Options{Window: 2048, Edges: true})
		defer az.Detach()
	}
	sys.RunFrames(1)

	out := runOutcome{
		log:       lg,
		completed: sys.CompletedTransactions(),
		bandwidth: sys.DRAM().AverageBandwidthGBps(sys.Now()),
		minNPI:    sys.MinNPIByCore(0),
		stalls:    map[string]uint64{},
		forwarded: map[string]uint64{},
	}
	sys.Kernel().Settle()
	for _, r := range sys.Routers() {
		out.stalls[r.Name()] = r.Stalls()
		out.forwarded[r.Name()] = r.Forwarded()
	}
	return out
}

// TestAnalyzerDoesNotChangeBehavior is the enabled-vs-disabled
// differential: the same configuration runs once bare and once with an
// edge-layer analyzer attached, with the legacy trace observers installed
// in both runs (so it also proves a test observer and the analyzer
// coexist on the same edges). Every behavioral event stream and every
// aggregate must be bit-identical.
func TestAnalyzerDoesNotChangeBehavior(t *testing.T) {
	bare := tracedRun(false)
	analyzed := tracedRun(true)

	if n, m := len(bare.log.grants), len(analyzed.log.grants); n != m {
		t.Fatalf("grant trace length %d vs %d", n, m)
	}
	for i := range bare.log.grants {
		if bare.log.grants[i] != analyzed.log.grants[i] {
			t.Fatalf("grant %d: %+v vs %+v", i, bare.log.grants[i], analyzed.log.grants[i])
		}
	}
	if n, m := len(bare.log.credits), len(analyzed.log.credits); n != m {
		t.Fatalf("credit trace length %d vs %d", n, m)
	}
	for i := range bare.log.credits {
		if bare.log.credits[i] != analyzed.log.credits[i] {
			t.Fatalf("credit %d: %+v vs %+v", i, bare.log.credits[i], analyzed.log.credits[i])
		}
	}
	if n, m := len(bare.log.injects), len(analyzed.log.injects); n != m {
		t.Fatalf("inject trace length %d vs %d", n, m)
	}
	for i := range bare.log.injects {
		if bare.log.injects[i] != analyzed.log.injects[i] {
			t.Fatalf("inject %d: %+v vs %+v", i, bare.log.injects[i], analyzed.log.injects[i])
		}
	}
	if n, m := len(bare.log.cmds), len(analyzed.log.cmds); n != m {
		t.Fatalf("command trace length %d vs %d", n, m)
	}
	for i := range bare.log.cmds {
		if bare.log.cmds[i] != analyzed.log.cmds[i] {
			t.Fatalf("command %d: %+v vs %+v", i, bare.log.cmds[i], analyzed.log.cmds[i])
		}
	}

	if bare.completed != analyzed.completed {
		t.Errorf("completed %d vs %d", bare.completed, analyzed.completed)
	}
	if bare.bandwidth != analyzed.bandwidth {
		t.Errorf("bandwidth %v vs %v", bare.bandwidth, analyzed.bandwidth)
	}
	for core, npi := range bare.minNPI {
		if got := analyzed.minNPI[core]; got != npi {
			t.Errorf("%s min NPI %v vs %v", core, npi, got)
		}
	}
	for name, n := range bare.stalls {
		if got := analyzed.stalls[name]; got != n {
			t.Errorf("%s stalls %d vs %d", name, n, got)
		}
	}
	for name, n := range bare.forwarded {
		if got := analyzed.forwarded[name]; got != n {
			t.Errorf("%s forwarded %d vs %d", name, n, got)
		}
	}
}

// TestAnalyzerReportAgainstLegacyTrace runs one analyzed frame and checks
// the report's per-router edge totals and series shape against the legacy
// observers running alongside.
func TestAnalyzerReportAgainstLegacyTrace(t *testing.T) {
	grants := map[string]uint64{}
	fullPops := map[string]uint64{}
	noc.SetDebugGrant(func(name string, now sim.Cycle, port, out int, id uint64) {
		grants[name]++
	})
	defer noc.SetDebugGrant(nil)
	noc.SetDebugCredit(func(name string, now sim.Cycle, port int, wasFull bool) {
		if wasFull {
			fullPops[name]++
		}
	})
	defer noc.SetDebugCredit(nil)

	sys := core.Build(fastCfg())
	az := analysis.Attach(sys, analysis.Options{Window: 2048, Edges: true})
	sys.RunFrames(1)
	az.Detach()
	rep := az.Report()

	if rep.Samples == 0 || !rep.Edges {
		t.Fatalf("report: samples %d, edges %v; want sampled edge-layer report", rep.Samples, rep.Edges)
	}
	if len(rep.Routers) == 0 || len(rep.Engines) == 0 || len(rep.Channels) == 0 {
		t.Fatalf("report missing sections: %d routers, %d engines, %d channels",
			len(rep.Routers), len(rep.Engines), len(rep.Channels))
	}
	for _, r := range rep.Routers {
		// The analyzer's totals only cover closed windows; events after
		// the last window boundary are in neither, so compare <=, and
		// exactly when the run length is a window multiple.
		if r.Grants > grants[r.Name] {
			t.Errorf("router %s: analyzer grants %d > legacy trace %d", r.Name, r.Grants, grants[r.Name])
		}
		if r.FullPops > fullPops[r.Name] {
			t.Errorf("router %s: analyzer full pops %d > legacy trace %d", r.Name, r.FullPops, fullPops[r.Name])
		}
		if r.StallFrac.Len() != rep.Samples || r.Backpressure.Len() != rep.Samples {
			t.Errorf("router %s: series lengths %d/%d, want %d samples",
				r.Name, r.StallFrac.Len(), r.Backpressure.Len(), rep.Samples)
		}
	}
	sysSamples := rep.System.WorstNPI.Len()
	if sysSamples != rep.Samples {
		t.Fatalf("system series has %d points, want %d", sysSamples, rep.Samples)
	}
	for i, cyc := range rep.System.WorstNPI.Cycles {
		if rep.System.Backpressure.Cycles[i] != cyc {
			t.Fatalf("system series sample cycles diverge at %d", i)
		}
	}
	// Whole-run grant totals must match exactly once the final partial
	// window is accounted: sum the analyzer's windows plus the legacy
	// trace restricted to closed windows is overkill — instead check that
	// at least one router saw traffic through both layers.
	var sawTraffic bool
	for _, r := range rep.Routers {
		if r.Grants > 0 && grants[r.Name] > 0 {
			sawTraffic = true
		}
	}
	if !sawTraffic {
		t.Fatal("no router saw traffic through both the analyzer and the legacy trace")
	}
}

// TestAnalyzerSamplingAllocations guards the enabled sampling path: with
// a sampling-only analyzer attached (no edges, no publisher), a window's
// sample must cost nothing beyond amortized series growth. The budget of
// 32 allocations per 1000-cycle window absorbs the occasional slice
// doubling across the analyzer's ~150 series; a per-event or per-sample
// allocation (map, closure, boxing) would blow far past it.
func TestAnalyzerSamplingAllocations(t *testing.T) {
	sys := core.Build(fastCfg())
	analysis.Attach(sys, analysis.Options{Window: 1000})
	sys.RunFrames(1) // warm up pools and series capacity

	allocs := testing.AllocsPerRun(50, func() {
		sys.Run(1000) // exactly one analyzer window per run
	})
	if allocs > 32 {
		t.Fatalf("analyzed steady state allocates %.1f times per window, want <= 32", allocs)
	}
}
