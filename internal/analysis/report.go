package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"sara/internal/stats"
)

// Report is the serialized outcome of one analyzed run: windowed
// stats.Series for the system roll-up, every router (with per-port
// buffer-occupancy series), every DMA engine and every DRAM channel, plus
// edge-layer totals. All series share the same sample cycles, so any
// subset can go straight through stats.WriteCSV.
type Report struct {
	Window  uint64 `json:"window_cycles"`
	Samples int    `json:"samples"`
	Edges   bool   `json:"edges_enabled"`

	System   SystemReport     `json:"system"`
	Routers  []*RouterReport  `json:"routers"`
	Engines  []*EngineReport  `json:"engines"`
	Channels []*ChannelReport `json:"channels"`
}

// SystemReport is the run-wide roll-up: worst-core NPI, DRAM bandwidth,
// refresh-blackout duty, mean router stall fraction, backpressure event
// rate, and the refresh/contention split of the NPI shortfall
// (meter.StallAttribution applied per window).
type SystemReport struct {
	WorstNPI        *stats.Series `json:"worst_npi"`
	BandwidthGBps   *stats.Series `json:"bandwidth_gbps"`
	BlackoutDuty    *stats.Series `json:"blackout_duty"`
	NoCStallFrac    *stats.Series `json:"noc_stall_frac"`
	Backpressure    *stats.Series `json:"backpressure"`
	RefreshShare    *stats.Series `json:"refresh_share"`
	ContentionShare *stats.Series `json:"contention_share"`
}

// RouterReport is one router's windowed view. Backpressure counts
// full-FIFO pops (pops that returned a credit upstream) per cycle and is
// only populated by the edge layer; occupancy series are instantaneous
// samples at the window boundary.
type RouterReport struct {
	Name         string          `json:"name"`
	StallFrac    *stats.Series   `json:"stall_frac"`
	GrantRate    *stats.Series   `json:"grant_rate"`
	Backpressure *stats.Series   `json:"backpressure"`
	Occupancy    *stats.Series   `json:"occupancy"`
	Ports        []*stats.Series `json:"ports"`
	Grants       uint64          `json:"grants,omitempty"`
	Credits      uint64          `json:"credits,omitempty"`
	FullPops     uint64          `json:"full_pops,omitempty"`
}

// EngineReport is one DMA engine's windowed view.
type EngineReport struct {
	Label            string        `json:"label"`
	NPI              *stats.Series `json:"npi,omitempty"`
	InjectRate       *stats.Series `json:"inject_rate"`
	InjectStallFrac  *stats.Series `json:"inject_stall_frac"`
	PendingOccupancy *stats.Series `json:"pending_occupancy"`
}

// ChannelReport is one DRAM channel's windowed view.
type ChannelReport struct {
	Channel      int           `json:"channel"`
	BlackoutDuty *stats.Series `json:"blackout_duty"`
	CASRate      *stats.Series `json:"cas_rate"`
}

// Report assembles the accumulated windows into a serializable Report.
// Call it after the run (the final partial window is not closed; Detach
// first if the edge subscriptions should be released).
func (a *Analyzer) Report() *Report {
	rep := &Report{
		Window:  uint64(a.window),
		Samples: a.samples,
		Edges:   a.edges,
		System: SystemReport{
			WorstNPI:        a.worstNPI,
			BandwidthGBps:   a.bandwidth,
			BlackoutDuty:    a.blackout,
			NoCStallFrac:    a.stallFrac,
			Backpressure:    a.backpressure,
			RefreshShare:    a.refreshShare,
			ContentionShare: a.contentionShare,
		},
	}
	for _, p := range a.routers {
		rep.Routers = append(rep.Routers, &RouterReport{
			Name:         p.name,
			StallFrac:    p.stallFrac,
			GrantRate:    p.grantRate,
			Backpressure: p.backpressure,
			Occupancy:    p.occupancy,
			Ports:        p.ports,
			Grants:       p.totGrants,
			Credits:      p.totCredits,
			FullPops:     p.totFullPops,
		})
	}
	for _, e := range a.engines {
		rep.Engines = append(rep.Engines, &EngineReport{
			Label:            e.u.Label(),
			NPI:              e.npi,
			InjectRate:       e.injectRate,
			InjectStallFrac:  e.stallFrac,
			PendingOccupancy: e.pendingOcc,
		})
	}
	for _, c := range a.channels {
		rep.Channels = append(rep.Channels, &ChannelReport{
			Channel:      c.ch,
			BlackoutDuty: c.blackout,
			CASRate:      c.casRate,
		})
	}
	return rep
}

// WriteCSV writes the report's system-level series side by side (cycle,
// worst_npi, bandwidth_gbps, blackout_duty, noc_stall_frac, backpressure,
// refresh_share, contention_share).
func (r *Report) WriteCSV(w io.Writer) error {
	s := r.System
	return stats.WriteCSV(w, s.WorstNPI, s.BandwidthGBps, s.BlackoutDuty,
		s.NoCStallFrac, s.Backpressure, s.RefreshShare, s.ContentionShare)
}

// WriteReportsJSON writes the labeled reports as one indented JSON object
// keyed by run label.
func WriteReportsJSON(w io.Writer, reports map[string]*Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}

// WriteReportsCSV writes each labeled report's system-level CSV in label
// order, separated by `# <label>` comment lines so a sweep's runs land in
// one file without losing their identity.
func WriteReportsCSV(w io.Writer, reports map[string]*Report) error {
	labels := make([]string, 0, len(reports))
	for l := range reports {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		if _, err := fmt.Fprintf(w, "# %s\n", l); err != nil {
			return err
		}
		if err := reports[l].WriteCSV(w); err != nil {
			return fmt.Errorf("analysis: report %q: %w", l, err)
		}
	}
	return nil
}
