// Package analysis is the always-available observability layer over a
// running simulation: per-port and per-buffer occupancy/backpressure
// analyzers plus a grant/credit/REF stall-attribution aggregator, in the
// style of akita's buffer/port analyzers and monitoring service. An
// Analyzer attaches to an assembled core.System, samples it on a fixed
// window from a recurring kernel event (settling batched dormant-cycle
// accounting first, so windowed numbers are exact even for components the
// active-ticker list never ticked), and aggregates everything into
// stats.Series for JSON/CSV export and the live HTTP Monitor.
//
// Two layers feed the windows. The sampling layer reads per-system
// counters (router stall/forward totals, engine stats, DRAM channel
// stats, meter NPIs) and is safe to run on many systems in parallel. The
// edge layer additionally subscribes to the trace-hook edges
// (noc grant/credit/stall, dma inject, memctrl command) through the
// multiplexing hook registries, which are process-global — enable it
// (Options.Edges) only when a single simulation runs at a time. Both
// layers are strictly observational: attaching an analyzer must not
// change simulated behavior, and with no analyzer attached the hook
// pointers stay nil so the simulation hot paths keep their zero-cost
// disabled-path guarantee.
package analysis

import (
	"sort"
	"strconv"

	"sara/internal/core"
	"sara/internal/dma"
	"sara/internal/dram"
	"sara/internal/memctrl"
	"sara/internal/meter"
	"sara/internal/noc"
	"sara/internal/sim"
	"sara/internal/stats"
)

// Options configures an Analyzer.
type Options struct {
	// Window is the aggregation period in cycles; 0 picks four NPI
	// sampling periods (4 × Config.SampleEvery).
	Window sim.Cycle
	// Edges subscribes the analyzer to the process-global trace-hook
	// edges for per-event grant/credit/backpressure/command counts.
	// Leave it off when several simulations run concurrently in one
	// process — the edges cannot tell them apart.
	Edges bool
	// Publish, when non-nil, receives a live Snapshot at every window
	// boundary (the HTTP monitor's feed).
	Publish func(Snapshot)
}

// Analyzer aggregates windowed observability statistics for one System.
type Analyzer struct {
	sys     *core.System
	window  sim.Cycle
	edges   bool
	publish func(Snapshot)
	detach  []func()
	closed  bool

	routers   []*routerProbe
	byName    map[string]*routerProbe
	engines   []*engineProbe
	channels  []*channelProbe
	mcByName  map[string]*channelProbe
	lastDRAM  dram.Stats
	lastCycle sim.Cycle
	samples   int

	// system-level windowed series (all sampled at the same cycles)
	worstNPI        *stats.Series
	bandwidth       *stats.Series
	blackout        *stats.Series
	stallFrac       *stats.Series
	backpressure    *stats.Series
	refreshShare    *stats.Series
	contentionShare *stats.Series
}

type routerProbe struct {
	r    *noc.Router
	name string

	// ec is the edge-layer window counter cell (Edges only, nil otherwise)
	ec *EdgeCounts
	// sampling-layer cursors into the router's settled totals
	lastStalls, lastForwarded uint64

	totGrants, totCredits, totFullPops uint64

	stallFrac    *stats.Series
	grantRate    *stats.Series
	backpressure *stats.Series
	occupancy    *stats.Series   // mean port occupancy
	ports        []*stats.Series // per-port (per-buffer) occupancy
}

type engineProbe struct {
	u *core.Unit

	injects uint64 // edge-layer window counter (Edges only)
	last    dma.Stats

	npi        *stats.Series
	injectRate *stats.Series
	stallFrac  *stats.Series // inject-stall cycles per window cycle
	pendingOcc *stats.Series // pending-queue occupancy
}

type channelProbe struct {
	ch int

	// edge-layer window counters (Edges only)
	act, pre, cas, ref uint64
	// mcEC counts the controller queue releases TraceCredit reports under
	// this channel's "mc<ch>" name (Edges only, nil otherwise)
	mcEC *EdgeCounts

	blackout *stats.Series
	casRate  *stats.Series
}

// Attach builds an Analyzer over sys and schedules its windowed sampler
// on the system's kernel. Attach before running; the sampler fires every
// opt.Window cycles from the current clock. Call Detach when done so the
// process-global edges are released for the next simulation.
func Attach(sys *core.System, opt Options) *Analyzer {
	w := opt.Window
	if w == 0 {
		w = 4 * sys.Config().SampleEvery
	}
	if w == 0 {
		w = 4096
	}
	a := &Analyzer{
		sys:     sys,
		window:  w,
		edges:   opt.Edges,
		publish: opt.Publish,
		byName:  make(map[string]*routerProbe),

		worstNPI:        &stats.Series{Name: "worst_npi"},
		bandwidth:       &stats.Series{Name: "bandwidth_gbps"},
		blackout:        &stats.Series{Name: "blackout_duty"},
		stallFrac:       &stats.Series{Name: "noc_stall_frac"},
		backpressure:    &stats.Series{Name: "backpressure"},
		refreshShare:    &stats.Series{Name: "refresh_share"},
		contentionShare: &stats.Series{Name: "contention_share"},
	}
	for _, r := range sys.Routers() {
		p := &routerProbe{
			r:    r,
			name: r.Name(),

			lastStalls:    r.Stalls(),
			lastForwarded: r.Forwarded(),
			stallFrac:     &stats.Series{Name: r.Name() + ".stall_frac"},
			grantRate:     &stats.Series{Name: r.Name() + ".grant_rate"},
			backpressure:  &stats.Series{Name: r.Name() + ".backpressure"},
			occupancy:     &stats.Series{Name: r.Name() + ".occupancy"},
		}
		for i := 0; i < r.NPorts(); i++ {
			p.ports = append(p.ports, &stats.Series{Name: r.Name() + ".port" + itoa(i) + ".occupancy"})
		}
		a.routers = append(a.routers, p)
		a.byName[p.name] = p
	}
	for _, u := range sys.Units() {
		e := &engineProbe{
			u:          u,
			last:       u.Engine.Stats(),
			injectRate: &stats.Series{Name: u.Label() + ".inject_rate"},
			stallFrac:  &stats.Series{Name: u.Label() + ".inject_stall_frac"},
			pendingOcc: &stats.Series{Name: u.Label() + ".pending_occupancy"},
		}
		// The CPU cluster has no QoS meter; its probe reports rates only.
		if u.Meter != nil {
			e.npi = &stats.Series{Name: u.Label() + ".npi"}
		}
		a.engines = append(a.engines, e)
	}
	nch := sys.Config().DRAM.Geometry.Channels
	a.mcByName = make(map[string]*channelProbe, nch)
	for ch := 0; ch < nch; ch++ {
		p := &channelProbe{
			ch:       ch,
			blackout: &stats.Series{Name: "ch" + itoa(ch) + ".blackout_duty"},
			casRate:  &stats.Series{Name: "ch" + itoa(ch) + ".cas_rate"},
		}
		a.channels = append(a.channels, p)
		a.mcByName["mc"+itoa(ch)] = p
	}
	a.lastDRAM = sys.DRAM().Stats()
	a.lastCycle = sys.Now()

	if a.edges {
		a.subscribe()
	}
	sys.Kernel().Every(a.window, a.sample)
	return a
}

// subscribe installs the edge-layer hook subscriptions through the
// multiplexing registries, so any legacy SetDebugX observer a test
// installed keeps seeing the same events. The NoC edges go through an
// EdgeTap (one cell per router plus one per controller queue name); the
// dma and memctrl edges index probes directly.
func (a *Analyzer) subscribe() {
	mcNames := make([]string, 0, len(a.mcByName))
	for n := range a.mcByName {
		mcNames = append(mcNames, n)
	}
	sort.Strings(mcNames)
	names := make([]string, 0, len(a.routers)+len(mcNames))
	for _, p := range a.routers {
		names = append(names, p.name)
	}
	names = append(names, mcNames...)
	tap := TapRouters(names...)
	for _, p := range a.routers {
		p.ec = tap.Counts(p.name)
	}
	for _, n := range mcNames {
		a.mcByName[n].mcEC = tap.Counts(n)
	}
	a.detach = append(a.detach, tap.Close,
		dma.HookInject(func(now sim.Cycle, source int, id uint64, addr uint64) {
			if source >= 0 && source < len(a.engines) {
				a.engines[source].injects++
			}
		}),
		memctrl.HookTrace(func(ch int, now sim.Cycle, id uint64, kind byte) {
			if ch < 0 || ch >= len(a.channels) {
				return
			}
			c := a.channels[ch]
			switch kind {
			case 'A':
				c.act++
			case 'P':
				c.pre++
			case 'C':
				c.cas++
			case 'R':
				c.ref++
			}
		}),
	)
}

// Detach releases the analyzer's edge subscriptions. The windowed sampler
// event keeps firing but becomes a no-op; detach once the run is over.
func (a *Analyzer) Detach() {
	for _, d := range a.detach {
		d()
	}
	a.detach = nil
	a.closed = true
}

// Window reports the aggregation period.
func (a *Analyzer) Window() sim.Cycle { return a.window }

// Samples reports how many windows have been aggregated so far.
func (a *Analyzer) Samples() int { return a.samples }

// sample closes the current window at cycle now: settle batched
// accounting, append one point to every series, reset the window
// counters, and feed the publisher. It runs as a kernel event, before any
// ticker of cycle now.
func (a *Analyzer) sample(now sim.Cycle) {
	if a.closed || now == a.lastCycle {
		return
	}
	a.sys.Kernel().Settle()
	win := float64(now - a.lastCycle)

	// NoC routers: stall fraction and grant rate from settled counters,
	// backpressure from the edge layer, occupancy sampled instantaneously.
	var sumStall, sumFull float64
	for _, p := range a.routers {
		stalls := p.r.Stalls()
		fwd := p.r.Forwarded()
		sf := float64(stalls-p.lastStalls) / win
		gr := float64(fwd-p.lastForwarded) / win
		p.lastStalls, p.lastForwarded = stalls, fwd
		var bp float64
		if p.ec != nil {
			gr = float64(p.ec.Grants) / win
			bp = float64(p.ec.FullPops) / win
			p.totGrants += p.ec.Grants
			p.totCredits += p.ec.Credits
			p.totFullPops += p.ec.FullPops
			*p.ec = EdgeCounts{}
		}
		var occ float64
		for i, s := range p.ports {
			po := p.r.Port(i)
			o := float64(po.Len()) / float64(po.Depth())
			s.Append(now, o)
			occ += o
		}
		occ /= float64(len(p.ports))
		p.stallFrac.Append(now, sf)
		p.grantRate.Append(now, gr)
		p.backpressure.Append(now, bp)
		p.occupancy.Append(now, occ)
		sumStall += sf
		sumFull += bp
	}

	// DMA engines: NPI from the meters, rates from settled engine stats.
	worst, haveNPI := 0.0, false
	for _, e := range a.engines {
		st := e.u.Engine.Stats()
		if e.npi != nil {
			npi := e.u.Meter.NPI(now)
			if !haveNPI || npi < worst {
				worst, haveNPI = npi, true
			}
			e.npi.Append(now, npi)
		}
		inj := float64(st.Injected-e.last.Injected) / win
		if a.edges {
			inj = float64(e.injects) / win
		}
		e.injectRate.Append(now, inj)
		e.stallFrac.Append(now, float64(st.InjectStalls-e.last.InjectStalls)/win)
		depth := e.u.Engine.Pending() + e.u.Engine.PendingSpace()
		e.pendingOcc.Append(now, float64(e.u.Engine.Pending())/float64(depth))
		e.last = st
		e.injects = 0
	}

	// DRAM channels: command mix and refresh blackout per window.
	d := a.sys.DRAM()
	cur := d.Stats()
	geo := a.sys.Config().DRAM.Geometry
	trfc := float64(a.sys.Config().DRAM.Refresh.TRFC)
	var refTot uint64
	for ch, c := range a.channels {
		cs, last := cur.Channels[ch], a.lastDRAM.Channels[ch]
		refs := cs.Refreshes - last.Refreshes
		cas := cs.ReadBursts + cs.WriteBursts - last.ReadBursts - last.WriteBursts
		if a.edges {
			refs, cas = c.ref, c.cas
		}
		refTot += refs
		c.blackout.Append(now, float64(refs)*trfc/(win*float64(geo.Ranks)))
		c.casRate.Append(now, float64(cas)/win)
		c.act, c.pre, c.cas, c.ref = 0, 0, 0, 0
		if c.mcEC != nil {
			*c.mcEC = EdgeCounts{}
		}
	}

	// System roll-up and stall attribution.
	bw := d.BandwidthOverWindowGBps(a.lastDRAM, a.lastCycle, now)
	duty := float64(refTot) * trfc / (win * float64(geo.Channels*geo.Ranks))
	nocStall := sumStall / float64(len(a.routers))
	refresh, contention := meter.StallAttribution(worst, duty)
	a.worstNPI.Append(now, worst)
	a.bandwidth.Append(now, bw)
	a.blackout.Append(now, duty)
	a.stallFrac.Append(now, nocStall)
	a.backpressure.Append(now, sumFull)
	a.refreshShare.Append(now, refresh)
	a.contentionShare.Append(now, contention)

	a.lastDRAM = cur
	a.lastCycle = now
	a.samples++

	if a.publish != nil {
		a.publish(a.snapshot(now, worst, bw, duty, nocStall, sumFull))
	}
}

// snapshot assembles the live view the monitor serves. It allocates, so
// it only runs when a publisher is installed.
func (a *Analyzer) snapshot(now sim.Cycle, worst, bw, duty, stall, bp float64) Snapshot {
	s := Snapshot{
		Cycle:         now,
		Samples:       a.samples,
		WorstNPI:      worst,
		BandwidthGBps: bw,
		BlackoutDuty:  duty,
		NoCStallFrac:  stall,
		Backpressure:  bp,
		NPI:           make(map[string]float64, len(a.engines)),
		RouterStall:   make(map[string]float64, len(a.routers)),
	}
	for _, e := range a.engines {
		if e.npi != nil {
			s.NPI[e.u.Label()] = e.npi.Values[len(e.npi.Values)-1]
		}
	}
	for _, p := range a.routers {
		s.RouterStall[p.name] = p.stallFrac.Values[len(p.stallFrac.Values)-1]
	}
	return s
}

func itoa(n int) string { return strconv.Itoa(n) }
