// Package core assembles the full SARA system: it builds the DRAM, the
// per-channel memory controllers, the two-level on-chip network, one DMA
// engine per configured core DMA with its traffic source, performance
// meter and priority adapter, and orchestrates the per-cycle pipeline.
// This package is the paper's primary contribution realized as a library:
// distributed self-monitoring (meters), distributed priority-based
// adaptation (adapters + LUTs) and distributed system response
// (priority-aware NoC and memory controller).
package core

import (
	"sara/internal/dram"
	"sara/internal/memctrl"
	"sara/internal/noc"
	"sara/internal/sim"
	"sara/internal/txn"
)

// SourceKind selects a traffic generator shape.
type SourceKind uint8

const (
	// SrcFrame is a bursty whole-frame transfer engine (codec, rotator,
	// image processor, GPU, JPEG). Meter: frame progress (Eqn. 2).
	SrcFrame SourceKind = iota
	// SrcDisplay is a constant-rate read-buffer refill engine.
	// Meter: buffer occupancy / refill rate (Eqn. 3).
	SrcDisplay
	// SrcCamera is a constant-rate write-buffer drain engine.
	// Meter: buffer occupancy / drain rate.
	SrcCamera
	// SrcSporadic is a latency-sensitive sporadic engine (DSP, audio).
	// Meter: average latency vs limit (Eqn. 1).
	SrcSporadic
	// SrcRate is a steady bandwidth engine (WiFi, USB).
	// Meter: achieved vs target bandwidth.
	SrcRate
	// SrcChunk is a periodic work-chunk engine with a processing-time
	// deadline (GPS, modem). Meter: deadline / completion time.
	SrcChunk
	// SrcCPU is rate-limited random background traffic with no QoS target.
	SrcCPU
)

// String names the source kind.
func (k SourceKind) String() string {
	switch k {
	case SrcFrame:
		return "frame"
	case SrcDisplay:
		return "display"
	case SrcCamera:
		return "camera"
	case SrcSporadic:
		return "sporadic"
	case SrcRate:
		return "rate"
	case SrcChunk:
		return "chunk"
	case SrcCPU:
		return "cpu"
	}
	return "unknown"
}

// SourceSpec parameterizes a traffic source in real-time units; the
// builder converts to cycles and bytes using the DRAM clock and the
// configured time scale.
type SourceSpec struct {
	Kind SourceKind
	// RateBps is the average demand in bytes per second of real time.
	// For SrcFrame it determines bytes per frame; for SrcChunk, bytes per
	// chunk; for buffered sources, the fill/drain rate; for SrcRate and
	// SrcCPU, the token rate; for SrcSporadic, the average request rate.
	RateBps float64
	// ReadFrac is the read share of the traffic (1 = all reads).
	ReadFrac float64
	// ReqSize overrides the per-transaction size; 0 selects one DRAM burst.
	ReqSize uint32
	// RefFactor scales a frame source's reference progress slope.
	RefFactor float64
	// BurstReqs batches a rate source's emissions (bulk-transfer style).
	BurstReqs int
	// Locality is a CPU source's sequential-run probability.
	Locality float64
	// BufSeconds sizes a display/camera buffer in seconds of traffic at
	// RateBps (scaled); 0 selects a default of 2 adaptation intervals.
	BufSeconds float64
	// LatencyLimit is a sporadic source's average-latency QoS limit in
	// cycles (Eqn. 1).
	LatencyLimit sim.Cycle
	// ChunkPeriodFrac is a chunk source's arrival period as a fraction of
	// the frame period (default 0.25).
	ChunkPeriodFrac float64
	// Scatter randomizes a chunk source's addresses (defeats row locality).
	Scatter bool
	// DeadlineFrac is a chunk's deadline as a fraction of its period
	// (default 0.6).
	DeadlineFrac float64
	// StartOffsetFrac delays the source's start by this fraction of the
	// frame period, de-phasing bursty engines.
	StartOffsetFrac float64
}

// DMASpec is one DMA of one core.
type DMASpec struct {
	// Core is the owning core's name as reported in the figures
	// ("Display", "Image Proc.", ...).
	Core string
	// DMA is the engine suffix ("rd", "wr", ""); the full label is
	// "Core/DMA".
	DMA string
	// Class routes the DMA to its memory-controller queue.
	Class txn.Class
	// Source is the traffic shape.
	Source SourceSpec
	// Window bounds outstanding transactions (0 selects a default by
	// source kind).
	Window int
	// Critical marks cores whose NPI the experiment figures track.
	Critical bool
	// LUTBounds overrides the default NPI-to-priority table.
	LUTBounds []float64
}

// Label returns the full DMA name.
func (d DMASpec) Label() string {
	if d.DMA == "" {
		return d.Core
	}
	return d.Core + "/" + d.DMA
}

// Config is the whole-system configuration.
type Config struct {
	// Seed drives every random stream in the run.
	Seed uint64
	// DRAM is the device configuration (Table 1).
	DRAM dram.Config
	// Policy is the arbitration policy used by both the memory
	// controllers and the NoC arbiters.
	Policy memctrl.PolicyKind
	// Delta is Policy 2's row-buffer threshold (paper: 6).
	Delta txn.Priority
	// AgingT is the starvation limit in cycles (paper: 10000).
	AgingT sim.Cycle
	// QueueCaps splits the 42 controller entries across the five queues.
	QueueCaps memctrl.QueueCaps
	// NoC holds the network parameters; Arb is overridden from Policy.
	NoC noc.Params
	// PriorityBits is k; priorities span 0..2^k-1 (paper: 3).
	PriorityBits int
	// AdaptInterval is the adaptation period in cycles.
	AdaptInterval sim.Cycle
	// RealFrameSeconds is the unscaled frame period (1/30 s).
	RealFrameSeconds float64
	// ScaleDiv shrinks the simulated frame period and all per-frame data
	// volumes by this factor, keeping rates and latencies unchanged.
	ScaleDiv int
	// SampleEvery is the NPI sampling period for the figure time series.
	SampleEvery sim.Cycle
	// DMAs lists every DMA in the system.
	DMAs []DMASpec
	// DomainWorkers selects the domain-parallel kernel: with a value >= 2
	// (and a partitionable topology — see Partition), Build shards the
	// SoC into one domain per memory channel and runs them on that many
	// goroutines, synchronized at conservative-lookahead epoch barriers.
	// 0 or 1 selects the serial kernel. Results are bit-identical across
	// worker counts on the partitioned topology; see BuildParallel for
	// how the partitioned topology relates to the serial one.
	DomainWorkers int
}

// FramePeriod reports the scaled frame period in cycles.
func (c Config) FramePeriod() sim.Cycle {
	return c.DRAM.CyclesFromSeconds(c.RealFrameSeconds / float64(c.ScaleDiv))
}

// ScaledBps converts a real-time byte rate into the scaled simulation's
// bytes-per-cycle (rates are invariant under time scaling).
func (c Config) ScaledBps(bps float64) float64 {
	return c.DRAM.BytesPerCycle(bps)
}

// SARAEnabled reports whether the configured policy uses the dynamic
// priorities (Policy 1 or Policy 2); baseline policies run with the
// adapters disabled, matching the paper's comparisons.
func (c Config) SARAEnabled() bool {
	return c.Policy == memctrl.QoS || c.Policy == memctrl.QoSRB
}

// NoCArb maps the memory-controller policy onto the NoC arbitration kind:
// priority policies use priority arbitration, the frame-rate baseline its
// urgency arbitration, round-robin stays round-robin, and FCFS/FR-FCFS use
// FCFS in the network (row-buffer state is invisible to routers).
func (c Config) NoCArb() noc.ArbKind {
	switch c.Policy {
	case memctrl.RR:
		return noc.ArbRR
	case memctrl.FrameRate:
		return noc.ArbFrameRate
	case memctrl.QoS, memctrl.QoSRB:
		return noc.ArbPriority
	default:
		return noc.ArbFCFS
	}
}
