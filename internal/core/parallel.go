// Domain-parallel System construction and run control: one simulation
// run sharded across cores, one domain per memory channel, synchronized
// with conservative-lookahead epoch barriers (classic conservative PDES,
// in the style of akita's barrier-synchronized parallel engine).
//
// # Topology
//
// BuildParallel splits the SoC at construction time. Domain d owns
// channel d: its memory controller, a full-geometry DRAM instance with
// only channel d attached (so rank refresh phases match the device
// layout and the unused channels' counters stay zero), and the subset of
// the DMA roster assigned to it (round-robin per class group, so every
// domain carries a balanced mix of direct/media/system traffic — the
// address interleave spreads every unit's accesses uniformly over all
// channels, so any balanced assignment is equivalent). Each domain runs
// its own sim.Kernel — wake heap, active-ticker list, idle skipping,
// all unchanged — on its own goroutine.
//
// The serial root router is split per domain: domain d's root has one
// output per channel, routed by the same address interleave as the
// serial system. The output for the domain's own channel feeds a new
// per-channel ingress router ("chan d") directly; every other output is
// a crossLink — a bounded inter-domain mailbox ring. The chan router has
// one input port per source domain and is the single feeder of the
// memory controller, so local and remote traffic merge through ordinary
// deterministic NoC arbitration.
//
// # Lookahead and the epoch loop
//
// The epoch length is noc.Params.CrossDomainLatency (link hop + the
// one-cycle injection stage of the receiving port), computed from the
// config — never hardcoded. A packet a domain grants at cycle t cannot
// become visible to another domain before t + lookahead, so domains
// advance through a fixed epoch grid (0, L, 2L, ...) and exchange
// mailboxes only at grid boundaries:
//
//	for now < horizon:
//	  if now is on the grid: apply inbound mailboxes; barrier
//	  run own domains to min(next grid point, horizon); barrier
//
// The two barriers per epoch separate the mailbox-write phase (runs)
// from the mailbox-read phase (applies), so rings are plain memory — the
// barrier's atomic generation counter is the only synchronization, and
// `go test -race` over the differential suite is the proof.
//
// # Determinism
//
// Applies walk source domains in index order and rings in FIFO order,
// so cross-domain packets enter ports — and response events enter the
// event heap — in an order that depends only on the simulation state,
// never on goroutine scheduling. Worker counts only change which
// goroutine runs a domain, not any order the simulation observes:
// results are bit-identical across worker counts, and workers=1 is the
// serial execution of this topology. (The split topology itself is not
// cycle-identical to the single-root serial system: the per-channel
// ingress stage adds a hop on the request path. Equivalence is therefore
// defined — and fuzz-tested — across worker counts on the partitioned
// topology, while the serial kernel remains the default and the
// reference.)
//
// # Credits
//
// Cross-domain backpressure is credit-based like every other link:
// a crossLink starts with one credit per slot of its remote ingress
// port, spends one per accepted packet, and earns them back from the
// remote port's pops. Returned credits become visible at the next epoch
// boundary (noc.Port.OnPop counts them on the remote side; the apply
// phase banks them and wakes the sender's root router), which is
// conservative, deterministic, and independent of worker count.
package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"sara/internal/dram"
	"sara/internal/memctrl"
	"sara/internal/noc"
	"sara/internal/sim"
	"sara/internal/txn"
)

// PartitionPlan describes how BuildParallel shards a config: one domain
// per memory channel, each unit assigned to exactly one domain, and the
// conservative lookahead every domain may run ahead of the others.
type PartitionPlan struct {
	// Domains is the domain count (the channel count).
	Domains int
	// Lookahead is the epoch length: the minimum latency of any
	// cross-domain interaction, derived from the NoC config.
	Lookahead sim.Cycle
	// UnitDomain maps each DMA spec index to its owning domain.
	UnitDomain []int
}

// Partition derives the domain partition for cfg, reporting ok=false
// when the topology cannot be sharded: fewer than two channels (nothing
// to split), no DMAs, or a response latency shorter than the lookahead
// (a completion could then become visible to its owner before the next
// barrier, which the conservative exchange cannot deliver in time).
// Unpartitionable configs degrade gracefully to the serial kernel.
func Partition(cfg Config) (PartitionPlan, bool) {
	channels := cfg.DRAM.Geometry.Channels
	look := cfg.NoC.CrossDomainLatency()
	if channels < 2 || len(cfg.DMAs) == 0 || cfg.NoC.RespLatency < look {
		return PartitionPlan{}, false
	}
	plan := PartitionPlan{
		Domains:    channels,
		Lookahead:  look,
		UnitDomain: make([]int, len(cfg.DMAs)),
	}
	// Round-robin within each class group: the serial topology groups
	// media and system cores behind aggregation routers, so spreading
	// each group evenly keeps every domain's router tree the same shape.
	var perClass [3]int
	for i, spec := range cfg.DMAs {
		g := 0
		switch spec.Class {
		case txn.ClassMedia:
			g = 1
		case txn.ClassSystem:
			g = 2
		}
		plan.UnitDomain[i] = perClass[g] % channels
		perClass[g]++
	}
	return plan, true
}

// BuildParallel assembles the domain-parallel System on the given number
// of worker goroutines. workers is clamped to a divisor of the domain
// count in 1..Domains, so every worker owns the same number of domains;
// workers=1 runs the partitioned topology serially on the caller's
// goroutine and is the bit-identity reference for every other count
// (capping workers never changes results, only wall-clock). An
// unpartitionable cfg falls back to the serial Build, unchanged.
func BuildParallel(cfg Config, workers int) *System {
	if _, ok := Partition(cfg); !ok {
		return buildSerial(cfg)
	}
	return buildParallel(cfg, workers)
}

// xferEntry is one mailbox slot: a transaction and the cycle it becomes
// visible on the receiving side.
type xferEntry struct {
	t   *txn.Transaction
	due sim.Cycle
}

// xferRing is a pre-sized mailbox: written by the owning domain during
// the run phase, fully drained by the receiving domain during the apply
// phase, so it is plain memory with barrier-ordered access and never
// allocates after construction.
type xferRing struct {
	buf []xferEntry
	n   int
}

//sara:hotpath
func (r *xferRing) push(t *txn.Transaction, due sim.Cycle) {
	if r.n == len(r.buf) {
		panic(fmt.Sprintf("core: mailbox overflow (%d slots)", len(r.buf))) //sara:alloc-ok invariant-violation panic path
	}
	r.buf[r.n] = xferEntry{t: t, due: due}
	r.n++
}

// crossLink is the egress half of a cross-domain request link: a
// noc.CreditSink the sending domain's root router grants into. Accept
// stamps the packet with the link latency and files it in the mailbox;
// the receiving domain pushes it into its channel-ingress port at the
// next barrier. credits mirrors the free slots of that remote port.
type crossLink struct {
	ring    xferRing
	credits int
	lat     sim.Cycle // CrossDomainLatency: hop + injection stage
	waker   noc.Waker // the sending root router, wired via OnCredit
}

//sara:hotpath
func (c *crossLink) CanAccept(*txn.Transaction) bool { return c.credits > 0 }

//sara:hotpath
func (c *crossLink) Accept(t *txn.Transaction, now sim.Cycle) {
	c.credits--
	c.ring.push(t, now+c.lat)
}

// OnCredit implements noc.CreditSink; credits return through the epoch
// exchange (the sender lives on another goroutine), which wakes w.
func (c *crossLink) OnCredit(w noc.Waker) {
	if c.waker != nil {
		panic("core: cross-domain link already credit-wired")
	}
	c.waker = w
}

// parDomain is one per-channel domain: its own kernel, DRAM instance,
// controller, router tree, transaction pool and ID space, plus the
// outbound mailbox state other domains read at barriers.
type parDomain struct {
	idx    int
	kernel *sim.Kernel
	dram   *dram.DRAM
	ctrl   *memctrl.Controller
	units  []*Unit // this domain's subset, in global spec order

	mediaRouter *noc.Router
	sysRouter   *noc.Router
	rootRouter  *noc.Router
	chanRouter  *noc.Router
	inPort      []*noc.Port // chanRouter ports, indexed by source domain

	pool   txn.Pool
	nextID uint64
	// deliver is the long-lived completion event function (one per
	// domain, so AtArg never captures a transaction in a closure).
	deliver func(now sim.Cycle, arg any)

	// Outbound state, indexed by destination domain (self entries idle):
	// cross[c] carries requests this domain's root grants toward channel
	// c; respOut[o] carries completions owned by domain o; credFor[o]
	// counts pops of this domain's ingress port fed by o — credits owed
	// back to o, banked at o's next apply.
	cross   []*crossLink
	respOut []xferRing
	credFor []uint32
}

// errParAborted is the error every worker except the one that failed
// returns when the epoch barrier is aborted mid-run.
var errParAborted = errors.New("core: parallel run aborted by another worker")

// parRun is the epoch engine of a domain-parallel System: the domains,
// the worker pool and barrier, and the watchdog state evaluated at epoch
// boundaries.
type parRun struct {
	sys     *System
	cfg     Config
	plan    PartitionPlan
	domains []*parDomain
	workers int
	owned   [][]*parDomain // owned[w]: the domains worker w advances
	bar     *sim.Barrier
	epoch   sim.Cycle

	started  bool
	cmd      []chan sim.Cycle // per extra worker: next segment horizon
	wg       sync.WaitGroup
	errs     []error
	poisoned error

	// Watchdog state (checked runs only, evaluated by worker 0 at epoch
	// boundaries — the only instants every domain is quiescent).
	wd          *sim.Watchdog
	checked     bool
	nowBase     sim.Cycle
	skipBase    []uint64
	nextCheckAt sim.Cycle
	lastProg    uint64
	progAt      uint64 // executed count at the last progress change
}

// buildParallel assembles the partitioned System. cfg must be
// partitionable (Build and BuildParallel check before dispatching here).
func buildParallel(cfg Config, workers int) *System {
	validate(cfg)
	plan, ok := Partition(cfg)
	if !ok {
		panic("core: buildParallel on unpartitionable config")
	}
	nd := plan.Domains
	if workers < 1 {
		workers = 1
	}
	if workers > nd {
		workers = nd
	}
	for nd%workers != 0 {
		workers--
	}

	s := &System{cfg: cfg, byLabel: make(map[string]*Unit)}
	p := &parRun{
		sys:      s,
		cfg:      cfg,
		plan:     plan,
		domains:  make([]*parDomain, nd),
		workers:  workers,
		bar:      sim.NewBarrier(workers),
		epoch:    plan.Lookahead,
		cmd:      make([]chan sim.Cycle, workers),
		errs:     make([]error, workers),
		skipBase: make([]uint64, nd),
	}
	s.par = p

	nocParams := cfg.NoC
	nocParams.Arb = cfg.NoCArb()
	rng := sim.NewRand(cfg.Seed)
	burst := uint32(cfg.DRAM.Geometry.BurstBytes(cfg.DRAM.Timing))

	// Pass 1: domains with their channel-side machinery (controller,
	// DRAM instance, ingress router, completion routing).
	for d := 0; d < nd; d++ {
		dom := &parDomain{
			idx:    d,
			kernel: &sim.Kernel{},
			dram:   dram.New(cfg.DRAM),
			// Per-domain ID spaces: the top byte is the domain, so IDs
			// stay globally unique and deterministic without a shared
			// counter (FCFS arbitration breaks arrival ties by ID).
			nextID:  uint64(d+1) << 56,
			inPort:  make([]*noc.Port, nd),
			cross:   make([]*crossLink, nd),
			respOut: make([]xferRing, nd),
			credFor: make([]uint32, nd),
		}
		p.domains[d] = dom

		ctrl := memctrl.New(memctrl.Config{
			Channel:   d,
			Policy:    cfg.Policy,
			Delta:     cfg.Delta,
			AgingT:    cfg.AgingT,
			QueueCaps: cfg.QueueCaps,
		}, dom.dram)
		dom.ctrl = ctrl
		s.ctrls = append(s.ctrls, ctrl)

		// The channel ingress router: one port per source domain, single
		// output into the controller. It is the only feeder of the
		// controller, so the mcSink credit wiring stays single-owner.
		dom.chanRouter = noc.NewRouter(fmt.Sprintf("chan%d", d), nocParams, nd,
			[]noc.Sink{mcSink{ctrl: ctrl}}, nil)
		for a := 0; a < nd; a++ {
			dom.inPort[a] = dom.chanRouter.Port(a)
			if a != d {
				// Count pops so the sending domain earns its credits
				// back at the next barrier.
				src, ownDom := a, dom
				dom.inPort[a].OnPop(func(now sim.Cycle) { ownDom.credFor[src]++ })
			}
		}

		dd := dom
		dom.deliver = func(now sim.Cycle, arg any) {
			t := arg.(*txn.Transaction)
			s.units[t.Source].Engine.Deliver(t, now)
		}
		resp := cfg.NoC.RespLatency
		ctrl.OnComplete = func(t *txn.Transaction, done sim.Cycle) {
			owner := plan.UnitDomain[t.Source]
			if owner == dd.idx {
				dd.kernel.AtArg(done+resp, dd.deliver, t)
				return
			}
			dd.respOut[owner].push(t, done+resp)
		}
	}

	// Pass 2: per-domain router trees and egress links.
	portOf := make(map[int]*noc.Port, len(cfg.DMAs))
	for d, dom := range p.domains {
		var direct, media, system []int
		for i, spec := range cfg.DMAs {
			if plan.UnitDomain[i] != d {
				continue
			}
			switch spec.Class {
			case txn.ClassMedia:
				media = append(media, i)
			case txn.ClassSystem:
				system = append(system, i)
			default:
				direct = append(direct, i)
			}
		}
		if len(direct)+len(media)+len(system) == 0 {
			continue // no units: this domain only serves remote traffic
		}

		outs := make([]noc.Sink, nd)
		for c := 0; c < nd; c++ {
			if c == d {
				outs[c] = noc.PortSink{Port: dom.inPort[d], Hop: nocParams.HopLatency}
				continue
			}
			cl := &crossLink{
				ring:    xferRing{buf: make([]xferEntry, nocParams.PortDepth)},
				credits: nocParams.PortDepth,
				lat:     nocParams.CrossDomainLatency(),
			}
			dom.cross[c] = cl
			outs[c] = cl
		}

		rootPorts := len(direct)
		if len(media) > 0 {
			rootPorts++
		}
		if len(system) > 0 {
			rootPorts++
		}
		mapper := dom.dram.Mapper()
		dom.rootRouter = noc.NewRouter(fmt.Sprintf("root.d%d", d), nocParams, rootPorts, outs,
			func(t *txn.Transaction) int { return mapper.Channel(t.Addr) })

		next := 0
		for _, i := range direct {
			portOf[i] = dom.rootRouter.Port(next)
			next++
		}
		if len(media) > 0 {
			sink := noc.PortSink{Port: dom.rootRouter.Port(next), Hop: nocParams.HopLatency}
			next++
			dom.mediaRouter = noc.NewRouter(fmt.Sprintf("media.d%d", d), nocParams, len(media), []noc.Sink{sink}, nil)
			for pi, i := range media {
				portOf[i] = dom.mediaRouter.Port(pi)
			}
		}
		if len(system) > 0 {
			sink := noc.PortSink{Port: dom.rootRouter.Port(next), Hop: nocParams.HopLatency}
			dom.sysRouter = noc.NewRouter(fmt.Sprintf("system.d%d", d), nocParams, len(system), []noc.Sink{sink}, nil)
			for pi, i := range system {
				portOf[i] = dom.sysRouter.Port(pi)
			}
		}
	}

	// Pass 3: units in global spec order (so txn.Source indexes s.units
	// and address regions match the serial layout), each built against
	// its owning domain's pool and ID counter.
	for i, spec := range cfg.DMAs {
		if _, dup := s.byLabel[spec.Label()]; dup {
			panic(fmt.Sprintf("core: duplicate DMA label %q", spec.Label()))
		}
		dom := p.domains[plan.UnitDomain[i]]
		u := buildUnit(unitDeps{cfg: cfg, pool: &dom.pool, nextID: &dom.nextID},
			i, spec, portOf[i], rng.Fork(uint64(i)), burst)
		s.units = append(s.units, u)
		s.byLabel[u.Label()] = u
		dom.units = append(dom.units, u)
	}

	// Response mailboxes: sized to the owner's total transaction window
	// (a domain can never owe more completions than the owner has in
	// flight), so pushes never allocate and overflow is an invariant trip.
	for _, dom := range p.domains {
		var slots int
		for _, u := range dom.units {
			w := u.Spec.Window
			if w <= 0 {
				w = defaultWindow(u.Spec.Source.Kind)
			}
			slots += w
		}
		for _, src := range p.domains {
			if src != dom && slots > 0 {
				src.respOut[dom.idx].buf = make([]xferEntry, slots)
			}
		}
	}

	// Pass 4: per-domain registration, mirroring the serial pipeline
	// order (sources, engines, aggregation routers, root, channel
	// ingress, controller) so co-due ticks execute identically.
	for _, dom := range p.domains {
		srcWakes := make([]sim.WakeHandle, len(dom.units))
		for i, u := range dom.units {
			srcWakes[i] = dom.kernel.Register(u.Source)
		}
		for i, u := range dom.units {
			dom.kernel.Register(u.Engine)
			kind := u.Spec.Source.Kind
			u.Engine.BindSourceWake(srcWakes[i], kind == SrcDisplay || kind == SrcCamera)
		}
		if dom.mediaRouter != nil {
			dom.kernel.Register(dom.mediaRouter)
		}
		if dom.sysRouter != nil {
			dom.kernel.Register(dom.sysRouter)
		}
		if dom.rootRouter != nil {
			dom.kernel.Register(dom.rootRouter)
		}
		dom.kernel.Register(dom.chanRouter)
		dom.kernel.Register(dom.ctrl)

		units := dom.units
		dom.kernel.Every(cfg.AdaptInterval, func(now sim.Cycle) {
			for _, u := range units {
				if u.Adapter != nil {
					u.Adapter.Tick(now)
				}
			}
		})
		dom.kernel.Every(cfg.SampleEvery, func(now sim.Cycle) {
			for _, u := range units {
				if u.Meter != nil && u.Series != nil {
					u.Series.Append(now, u.Meter.NPI(now))
				}
			}
		})
	}

	// Static worker assignment: worker w owns domains w, w+workers, ...
	// (workers divides the domain count, so shares are equal).
	p.owned = make([][]*parDomain, workers)
	for d, dom := range p.domains {
		w := d % workers
		p.owned[w] = append(p.owned[w], dom)
	}
	return s
}

// now reports the system clock: every domain kernel agrees between run
// segments, so domain 0 speaks for all.
func (p *parRun) now() sim.Cycle { return p.domains[0].kernel.Now() }

// routers lists every router, per domain in domain order.
func (p *parRun) routers() []*noc.Router {
	var out []*noc.Router
	for _, dom := range p.domains {
		if dom.mediaRouter != nil {
			out = append(out, dom.mediaRouter)
		}
		if dom.sysRouter != nil {
			out = append(out, dom.sysRouter)
		}
		if dom.rootRouter != nil {
			out = append(out, dom.rootRouter)
		}
		out = append(out, dom.chanRouter)
	}
	return out
}

// dramStats merges the per-domain device snapshots (each domain only
// touches its own channel, so the merge is exact).
func (p *parRun) dramStats() dram.Stats {
	parts := make([]dram.Stats, len(p.domains))
	for i, dom := range p.domains {
		parts[i] = dom.dram.Stats()
	}
	return dram.MergeStats(parts...)
}

// setWatchdog installs wd and resets the boundary-check baselines.
func (p *parRun) setWatchdog(wd *sim.Watchdog) {
	p.wd = wd
	p.nowBase = p.now()
	for i, dom := range p.domains {
		p.skipBase[i] = dom.kernel.SkippedCycles()
	}
	p.nextCheckAt = 0
	p.progAt = 0
	if wd != nil && wd.Progress != nil {
		p.lastProg = wd.Progress()
	}
}

// executedCycles approximates the executed (non-skipped) cycle count
// across all domains since the watchdog was armed. Only called at epoch
// boundaries, where every domain's counters are quiescent.
func (p *parRun) executedCycles(now sim.Cycle) uint64 {
	var executed uint64
	for i, dom := range p.domains {
		executed += uint64(now-p.nowBase) - (dom.kernel.SkippedCycles() - p.skipBase[i])
	}
	return executed
}

// checkWatchdog runs the boundary watchdog checks (worker 0, checked
// runs only). The parked-deadlock probe of the serial watchdog has no
// safe multi-kernel analogue, so livelock detection here rests on the
// progress budget and the wall-clock deadline; both read only quiescent
// state (no domain runs during the apply phase).
func (p *parRun) checkWatchdog(now sim.Cycle) error {
	wd := p.wd
	if wd == nil || !p.checked {
		return nil
	}
	executed := p.executedCycles(now)
	if wd.MaxExecuted > 0 && executed > wd.MaxExecuted {
		return p.deadlock(now, executed, fmt.Sprintf("cycle budget exceeded (%d executed cycles)", wd.MaxExecuted))
	}
	if now < p.nextCheckAt {
		return nil
	}
	every := wd.CheckEvery
	if every == 0 {
		every = 4096
	}
	p.nextCheckAt = now + sim.Cycle(every)
	//sara:wallclock the watchdog's deadline check is about the host clock by design
	if !wd.Deadline.IsZero() && time.Now().After(wd.Deadline) {
		return p.deadlock(now, executed, fmt.Sprintf("wall-clock deadline exceeded (%s)", wd.Deadline.Format(time.RFC3339)))
	}
	if wd.Progress != nil && wd.ProgressBudget > 0 {
		if prog := wd.Progress(); prog != p.lastProg {
			p.lastProg = prog
			p.progAt = executed
		} else if executed-p.progAt > wd.ProgressBudget {
			return p.deadlock(now, executed, fmt.Sprintf("no progress in %d executed cycles", executed-p.progAt))
		}
	}
	return nil
}

// deadlock builds the watchdog trip error (no per-idler dump: the wake
// heaps live across several kernels; the reason plus counts identify
// the trip, and a serial re-run of the repro line gives the full dump).
func (p *parRun) deadlock(now sim.Cycle, executed uint64, reason string) error {
	e := &sim.DeadlockError{Reason: reason, Now: now, Executed: executed}
	if p.wd.Outstanding != nil {
		e.Outstanding = p.wd.Outstanding()
	}
	return e
}

// run advances every domain to horizon. Worker 0 is the caller; workers
// 1..n-1 are persistent goroutines spawned on first use and parked on
// their command channel between segments. A worker error (panic,
// watchdog trip) aborts the barrier so every worker unwinds; the run is
// then poisoned — the mailbox exchange stopped mid-epoch, so the
// simulation state is no longer consistent and further runs refuse.
func (p *parRun) run(horizon sim.Cycle, checked bool) error {
	if p.poisoned != nil {
		if !checked {
			panic(p.poisoned)
		}
		return p.poisoned
	}
	p.checked = checked
	if !p.started {
		for w := 1; w < p.workers; w++ {
			p.cmd[w] = make(chan sim.Cycle)
			go p.workerLoop(w)
		}
		p.started = true
	}
	p.wg.Add(p.workers - 1)
	for w := 1; w < p.workers; w++ {
		p.cmd[w] <- horizon
	}
	p.errs[0] = p.worker(0, horizon)
	p.wg.Wait()

	var err error
	for _, e := range p.errs {
		if e != nil && !errors.Is(e, errParAborted) {
			err = e
			break
		}
	}
	if err == nil {
		for _, e := range p.errs {
			if e != nil {
				err = e
				break
			}
		}
	}
	if err != nil {
		p.poisoned = err
		if !checked {
			if pe, ok := err.(*sim.PanicError); ok {
				panic(pe.Value)
			}
			panic(err)
		}
		return err
	}
	return nil
}

// workerLoop is the persistent body of an extra worker: run a segment
// per command, then park. It lives for the life of the System.
func (p *parRun) workerLoop(w int) {
	for horizon := range p.cmd[w] {
		p.errs[w] = p.worker(w, horizon)
		p.wg.Done()
	}
}

// worker advances this worker's domains to horizon through the epoch
// grid. Every worker executes the same control flow from the same
// (now, horizon) pair, so they agree on the barrier count per segment.
// Like Kernel.Run, this is the segment driver, not the hot path itself:
// the per-cycle machinery it invokes (Kernel.Step and the active list)
// and the per-epoch exchange (apply, Barrier.Wait, the mailbox rings)
// carry their own //sara:hotpath marks, while the driver keeps the cold
// containment work — the recover, the watchdog, error formatting.
func (p *parRun) worker(w int, horizon sim.Cycle) (err error) {
	defer func() {
		if r := recover(); r != nil {
			p.bar.Abort()
			err = &sim.PanicError{Value: r, Stack: debug.Stack()} //sara:alloc-ok panic containment path
		}
	}()
	mine := p.owned[w]
	clock := mine[0].kernel
	for {
		now := clock.Now()
		if now >= horizon {
			return nil
		}
		if now%p.epoch == 0 {
			if w == 0 {
				if werr := p.checkWatchdog(now); werr != nil {
					p.bar.Abort()
					return werr
				}
			}
			for _, dom := range mine {
				p.apply(dom, now)
			}
			if !p.bar.Wait() {
				return errParAborted
			}
		}
		end := now + (p.epoch - now%p.epoch)
		if end > horizon {
			end = horizon
		}
		for _, dom := range mine {
			dom.kernel.Run(end)
		}
		if !p.bar.Wait() {
			return errParAborted
		}
	}
}

// apply drains every mailbox targeting dom at an epoch boundary:
// requests into the channel-ingress ports, completions into the event
// heap, returned credits into the egress links. Source domains are
// walked in index order and rings in FIFO order, so the outcome depends
// only on simulation state — this is the determinism pivot of the whole
// design. All mailbox memory it touches was written before the previous
// barrier and is not rewritten until the next one.
//
//sara:hotpath
func (p *parRun) apply(dom *parDomain, now sim.Cycle) {
	for a, src := range p.domains {
		if a == dom.idx {
			continue
		}
		if cl := src.cross[dom.idx]; cl != nil {
			for i := 0; i < cl.ring.n; i++ {
				e := cl.ring.buf[i]
				dom.inPort[a].Push(e.t, e.due, e.due)
			}
			cl.ring.n = 0
		}
	}
	for _, src := range p.domains {
		if src == dom {
			continue
		}
		ring := &src.respOut[dom.idx]
		for i := 0; i < ring.n; i++ {
			e := ring.buf[i]
			dom.kernel.AtArg(e.due, dom.deliver, e.t) //sara:alloc-ok pointer payload into the event heap; the backing array is amortized and pre-warmed after the first frame
		}
		ring.n = 0
	}
	for a, rem := range p.domains {
		if a == dom.idx {
			continue
		}
		if n := rem.credFor[dom.idx]; n != 0 {
			rem.credFor[dom.idx] = 0
			cl := dom.cross[a]
			cl.credits += int(n)
			cl.waker.Wake(now)
		}
	}
}
