package core_test

import (
	"testing"

	"sara/internal/config"
	"sara/internal/core"
	"sara/internal/memctrl"
	"sara/internal/txn"
)

func fastCfg(opts ...config.Option) core.Config {
	return config.Camcorder(config.CaseA, append([]config.Option{config.WithScaleDiv(512)}, opts...)...)
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, float64) {
		sys := core.Build(fastCfg())
		sys.RunFrames(1)
		var completed uint64
		for _, u := range sys.Units() {
			completed += u.Engine.Stats().Completed
		}
		return completed, sys.DRAM().AverageBandwidthGBps(sys.Now())
	}
	c1, b1 := run()
	c2, b2 := run()
	if c1 != c2 || b1 != b2 {
		t.Fatalf("non-deterministic: (%d, %v) vs (%d, %v)", c1, b1, c2, b2)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	s1 := core.Build(fastCfg(config.WithSeed(1)))
	s2 := core.Build(fastCfg(config.WithSeed(2)))
	s1.RunFrames(1)
	s2.RunFrames(1)
	var c1, c2 uint64
	for _, u := range s1.Units() {
		c1 += u.Engine.Stats().Completed
	}
	for _, u := range s2.Units() {
		c2 += u.Engine.Stats().Completed
	}
	if c1 == c2 {
		t.Log("identical completion counts across seeds (possible but unlikely); checking latency")
		var l1, l2 uint64
		for _, u := range s1.Units() {
			l1 += u.Engine.Stats().TotalLatency
		}
		for _, u := range s2.Units() {
			l2 += u.Engine.Stats().TotalLatency
		}
		if l1 == l2 {
			t.Fatal("different seeds produced identical systems")
		}
	}
}

func TestUnitLookup(t *testing.T) {
	sys := core.Build(fastCfg())
	if _, ok := sys.Unit("Display"); !ok {
		t.Fatal("Display unit missing")
	}
	if _, ok := sys.Unit("Rotator/rd"); !ok {
		t.Fatal("Rotator/rd unit missing")
	}
	if _, ok := sys.Unit("nope"); ok {
		t.Fatal("bogus unit found")
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	cfg := fastCfg()
	cfg.DMAs = append(cfg.DMAs, cfg.DMAs[0])
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate DMA label accepted")
		}
	}()
	core.Build(cfg)
}

func TestInvalidConfigPanics(t *testing.T) {
	for name, mutate := range map[string]func(*core.Config){
		"zero scale":    func(c *core.Config) { c.ScaleDiv = 0 },
		"bits too big":  func(c *core.Config) { c.PriorityBits = 9 },
		"zero adapt":    func(c *core.Config) { c.AdaptInterval = 0 },
		"zero sampling": func(c *core.Config) { c.SampleEvery = 0 },
	} {
		name, mutate := name, mutate
		t.Run(name, func(t *testing.T) {
			cfg := fastCfg()
			mutate(&cfg)
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted", name)
				}
			}()
			core.Build(cfg)
		})
	}
}

func TestConservationOfTransactions(t *testing.T) {
	// Every injected transaction is either completed or still somewhere in
	// flight; nothing is lost or duplicated.
	sys := core.Build(fastCfg())
	sys.RunFrames(2)
	for _, u := range sys.Units() {
		st := u.Engine.Stats()
		if st.Completed > st.Injected {
			t.Fatalf("%s completed %d > injected %d", u.Label(), st.Completed, st.Injected)
		}
		inFlight := st.Injected - st.Completed
		if inFlight != uint64(u.Engine.Outstanding()) {
			t.Fatalf("%s in-flight mismatch: %d vs outstanding %d",
				u.Label(), inFlight, u.Engine.Outstanding())
		}
	}
}

func TestBaselinePoliciesDisableAdaptation(t *testing.T) {
	sys := core.Build(fastCfg(config.WithPolicy(memctrl.FCFS)))
	sys.RunFrames(1)
	for _, u := range sys.Units() {
		if u.Adapter != nil && u.Adapter.Current() != 0 {
			t.Fatalf("%s has priority %d under FCFS, want 0 (SARA disabled)",
				u.Label(), u.Adapter.Current())
		}
	}
}

func TestSARAAdaptsPriorities(t *testing.T) {
	sys := core.Build(fastCfg(config.WithPolicy(memctrl.QoS)))
	sys.RunFrames(2)
	levelsUsed := 0
	for _, u := range sys.Units() {
		if u.Adapter == nil {
			continue
		}
		h := u.Adapter.Histogram()
		for lvl := 1; lvl < h.Levels(); lvl++ {
			if h.Fraction(lvl) > 0 {
				levelsUsed++
			}
		}
	}
	if levelsUsed == 0 {
		t.Fatal("no DMA ever left priority 0 under SARA")
	}
}

func TestMinNPIByCoreTakesWorstDMA(t *testing.T) {
	sys := core.Build(fastCfg())
	sys.RunFrames(1)
	min := sys.MinNPIByCore(0)
	if len(min) == 0 {
		t.Fatal("no NPI data")
	}
	// The rotator reports one value for its two DMAs.
	if _, ok := min["Rotator"]; !ok {
		t.Fatal("Rotator missing from per-core summary")
	}
	if _, ok := min["Rotator/rd"]; ok {
		t.Fatal("per-DMA label leaked into per-core summary")
	}
}

func TestCriticalCores(t *testing.T) {
	sys := core.Build(fastCfg())
	crits := sys.CriticalCores()
	want := map[string]bool{"Display": true, "Camera": true, "GPS": true, "DSP": true}
	seen := map[string]bool{}
	for _, c := range crits {
		seen[c] = true
	}
	for c := range want {
		if !seen[c] {
			t.Errorf("critical core %s missing (got %v)", c, crits)
		}
	}
}

func TestQueueClassesReachDRAM(t *testing.T) {
	sys := core.Build(fastCfg())
	sys.RunFrames(1)
	var perClass [txn.NumClasses]uint64
	for _, ctrl := range sys.Controllers() {
		st := ctrl.Stats()
		for i := 0; i < txn.NumClasses; i++ {
			perClass[i] += st.PerClass[i]
		}
	}
	for i, n := range perClass {
		if n == 0 {
			t.Errorf("queue class %v served no transactions", txn.Class(i))
		}
	}
}
