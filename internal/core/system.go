package core

import (
	"fmt"
	"math"

	"sara/internal/adapt"
	"sara/internal/dma"
	"sara/internal/dram"
	"sara/internal/memctrl"
	"sara/internal/meter"
	"sara/internal/noc"
	"sara/internal/sim"
	"sara/internal/stats"
	"sara/internal/traffic"
	"sara/internal/txn"
)

// Unit is one assembled DMA: engine, traffic source, meter, adapter and
// the sampled NPI time series.
type Unit struct {
	Spec    DMASpec
	Engine  *dma.Engine
	Source  traffic.Source
	Meter   meter.Meter
	Adapter *adapt.Adapter
	Series  *stats.Series
}

// Label returns the unit's full DMA name.
func (u *Unit) Label() string { return u.Spec.Label() }

// System is a fully wired MPSoC memory subsystem. It comes in two
// shapes: the serial kernel (one sim.Kernel driving everything; par is
// nil) and the domain-parallel kernel built by BuildParallel (one kernel
// per memory-channel domain advancing in lookahead epochs; kernel, dram
// and the router fields are nil and par holds the domains). The
// run-control and statistics methods work identically on both.
type System struct {
	cfg    Config
	kernel *sim.Kernel
	dram   *dram.DRAM
	ctrls  []*memctrl.Controller
	units  []*Unit

	mediaRouter *noc.Router
	sysRouter   *noc.Router
	rootRouter  *noc.Router

	nextID  uint64
	byLabel map[string]*Unit
	pool    txn.Pool

	par *parRun
}

// mcSink adapts a memory controller into a NoC sink with credit returns:
// a CAS that frees a slot in a full class queue wakes the root router,
// which can grant into the slot from the next cycle on (the controller
// ticks after the router, so the freed slot is usable at now+1). Accept
// is also the enqueue edge of the controller's per-bank candidate
// buckets: Enqueue files the transaction into its bank bucket and resets
// the controller's dormancy window, so a packet granted mid-quiescence
// is scheduled on the very next executed cycle (see memctrl/bucket.go).
type mcSink struct {
	ctrl *memctrl.Controller
}

func (s mcSink) CanAccept(t *txn.Transaction) bool { return s.ctrl.SpaceFor(t.Class) }
func (s mcSink) Accept(t *txn.Transaction, now sim.Cycle) {
	s.ctrl.Enqueue(t, now)
}

// OnCredit implements noc.CreditSink. A controller has exactly one
// upstream router; wiring a second would silently steal the first one's
// credit wakes and break skip-vs-step equivalence, so it panics instead.
func (s mcSink) OnCredit(w noc.Waker) {
	if s.ctrl.OnRelease != nil {
		panic(fmt.Sprintf("core: controller %d already credit-wired", s.ctrl.Config().Channel))
	}
	name := fmt.Sprintf("mc%d", s.ctrl.Config().Channel)
	s.ctrl.OnRelease = func(class txn.Class, now sim.Cycle) {
		noc.TraceCredit(name, now, int(class), true)
		w.Wake(now + 1)
	}
}

// regionBytes is the address space carved out per DMA. 16 MiB spans many
// rows and banks, so distinct DMAs interleave realistically.
const regionBytes = 16 << 20

// Build assembles a System from cfg. It panics on malformed
// configurations (configs are code, not user input). With
// cfg.DomainWorkers >= 2 and a partitionable topology it builds the
// domain-parallel system (see BuildParallel); otherwise — including
// every unpartitionable topology — it degrades gracefully to the serial
// kernel, unchanged.
func Build(cfg Config) *System {
	if cfg.DomainWorkers > 1 {
		if _, ok := Partition(cfg); ok {
			return buildParallel(cfg, cfg.DomainWorkers)
		}
	}
	return buildSerial(cfg)
}

// validate panics on malformed configurations (shared by both builders).
func validate(cfg Config) {
	if err := cfg.DRAM.Validate(); err != nil {
		panic(err)
	}
	if cfg.ScaleDiv <= 0 {
		panic("core: ScaleDiv must be positive")
	}
	if cfg.PriorityBits <= 0 || cfg.PriorityBits > 4 {
		panic("core: PriorityBits must be in 1..4")
	}
	if cfg.AdaptInterval == 0 || cfg.SampleEvery == 0 {
		panic("core: AdaptInterval and SampleEvery must be set")
	}
}

// buildSerial assembles the single-kernel System.
func buildSerial(cfg Config) *System {
	validate(cfg)

	s := &System{
		cfg:     cfg,
		kernel:  &sim.Kernel{},
		dram:    dram.New(cfg.DRAM),
		byLabel: make(map[string]*Unit),
	}
	mapper := s.dram.Mapper()
	rng := sim.NewRand(cfg.Seed)

	// Memory controllers, one per channel, completing into the response
	// delay pipe. One long-lived deliver function plus a per-event
	// transaction pointer keeps the completion path allocation-free
	// (a closure capturing t would allocate on every completion).
	deliver := func(now sim.Cycle, arg any) {
		t := arg.(*txn.Transaction)
		s.units[t.Source].Engine.Deliver(t, now)
	}
	mcSinks := make([]noc.Sink, cfg.DRAM.Geometry.Channels)
	for ch := 0; ch < cfg.DRAM.Geometry.Channels; ch++ {
		mcCfg := memctrl.Config{
			Channel:   ch,
			Policy:    cfg.Policy,
			Delta:     cfg.Delta,
			AgingT:    cfg.AgingT,
			QueueCaps: cfg.QueueCaps,
		}
		ctrl := memctrl.New(mcCfg, s.dram)
		ctrl.OnComplete = func(t *txn.Transaction, done sim.Cycle) {
			s.kernel.AtArg(done+cfg.NoC.RespLatency, deliver, t)
		}
		s.ctrls = append(s.ctrls, ctrl)
		mcSinks[ch] = mcSink{ctrl: ctrl}
	}

	// Partition DMAs into the Fig. 1 topology: CPU/GPU/DSP direct to the
	// root router; media and system cores behind aggregation routers.
	var direct, media, system []int
	for i, spec := range cfg.DMAs {
		switch spec.Class {
		case txn.ClassMedia:
			media = append(media, i)
		case txn.ClassSystem:
			system = append(system, i)
		default:
			direct = append(direct, i)
		}
	}

	nocParams := cfg.NoC
	nocParams.Arb = cfg.NoCArb()

	rootPorts := len(direct)
	if len(media) > 0 {
		rootPorts++
	}
	if len(system) > 0 {
		rootPorts++
	}
	s.rootRouter = noc.NewRouter("root", nocParams, rootPorts, mcSinks,
		func(t *txn.Transaction) int { return mapper.Channel(t.Addr) })

	portOf := make(map[int]*noc.Port, len(cfg.DMAs))
	next := 0
	for _, i := range direct {
		portOf[i] = s.rootRouter.Port(next)
		next++
	}
	if len(media) > 0 {
		sink := noc.PortSink{Port: s.rootRouter.Port(next), Hop: nocParams.HopLatency}
		next++
		s.mediaRouter = noc.NewRouter("media", nocParams, len(media), []noc.Sink{sink}, nil)
		for pi, i := range media {
			portOf[i] = s.mediaRouter.Port(pi)
		}
	}
	if len(system) > 0 {
		sink := noc.PortSink{Port: s.rootRouter.Port(next), Hop: nocParams.HopLatency}
		s.sysRouter = noc.NewRouter("system", nocParams, len(system), []noc.Sink{sink}, nil)
		for pi, i := range system {
			portOf[i] = s.sysRouter.Port(pi)
		}
	}

	// DMAs, sources, meters and adapters.
	burst := uint32(cfg.DRAM.Geometry.BurstBytes(cfg.DRAM.Timing))
	for i, spec := range cfg.DMAs {
		if _, dup := s.byLabel[spec.Label()]; dup {
			panic(fmt.Sprintf("core: duplicate DMA label %q", spec.Label()))
		}
		u := buildUnit(unitDeps{cfg: cfg, pool: &s.pool, nextID: &s.nextID},
			i, spec, portOf[i], rng.Fork(uint64(i)), burst)
		s.units = append(s.units, u)
		s.byLabel[u.Label()] = u
	}

	// Per-cycle pipeline order: sources generate, DMAs inject, aggregation
	// routers forward, root router delivers into the controllers, and the
	// controllers issue DRAM commands. Every component is registered
	// directly (not through TickFunc) so it carries its sim.Idler hint
	// and the kernel can fast-forward over system-wide quiescence.
	// Registration also binds the push-based wake wiring: engines,
	// routers and controllers receive their kernel wake handles through
	// sim.WakeBinder, and each engine additionally gets its source's
	// handle — the engine is the component that observes the two events
	// that can move a source's next activity earlier (a pending-queue pop
	// from full, a completion delivery), so it owns those re-arms.
	srcWakes := make([]sim.WakeHandle, len(s.units))
	for i, u := range s.units {
		srcWakes[i] = s.kernel.Register(u.Source)
	}
	for i, u := range s.units {
		s.kernel.Register(u.Engine)
		// Only the occupancy-tracking sources consult completion-mutated
		// state (buffer in-flight bytes) in their activity hints; the
		// rest need no per-delivery re-arm.
		kind := u.Spec.Source.Kind
		u.Engine.BindSourceWake(srcWakes[i], kind == SrcDisplay || kind == SrcCamera)
	}
	if s.mediaRouter != nil {
		s.kernel.Register(s.mediaRouter)
	}
	if s.sysRouter != nil {
		s.kernel.Register(s.sysRouter)
	}
	s.kernel.Register(s.rootRouter)
	for _, c := range s.ctrls {
		s.kernel.Register(c)
	}

	// Adaptation and NPI sampling.
	s.kernel.Every(cfg.AdaptInterval, func(now sim.Cycle) {
		for _, u := range s.units {
			if u.Adapter != nil {
				u.Adapter.Tick(now)
			}
		}
	})
	s.kernel.Every(cfg.SampleEvery, func(now sim.Cycle) {
		for _, u := range s.units {
			if u.Meter != nil && u.Series != nil {
				u.Series.Append(now, u.Meter.NPI(now))
			}
		}
	})
	return s
}

// unitDeps are the shared-state dependencies of buildUnit: the config
// plus the transaction pool and ID counter the unit's engine draws from.
// The serial builder passes the System's own pool/counter; the parallel
// builder passes the owning domain's, so each domain allocates and IDs
// transactions without cross-domain sharing.
type unitDeps struct {
	cfg    Config
	pool   *txn.Pool
	nextID *uint64
}

// buildUnit assembles one DMA with its source, meter and adapter. idx is
// the unit's global spec index — it becomes txn.Transaction.Source and
// the unit's address-region selector, so it must be spec order even when
// domains build disjoint subsets.
func buildUnit(b unitDeps, idx int, spec DMASpec, port *noc.Port, rng *sim.Rand, burst uint32) *Unit {
	cfg := b.cfg
	src := spec.Source
	if src.ReqSize == 0 {
		src.ReqSize = burst
	}
	window := spec.Window
	if window <= 0 {
		window = defaultWindow(src.Kind)
	}
	engine := dma.New(dma.Config{
		Name:   spec.Label(),
		Core:   spec.Core,
		Class:  spec.Class,
		Window: window,
		Pool:   b.pool,
	}, idx, b.nextID, port, cfg.NoC.HopLatency)

	region := traffic.Region{
		Base: txn.Addr(uint64(idx) * regionBytes),
		Size: regionBytes,
	}
	framePeriod := cfg.FramePeriod()
	bpc := cfg.ScaledBps(src.RateBps) // bytes per cycle at this rate
	meterWindow := 8 * cfg.AdaptInterval

	u := &Unit{Spec: spec, Engine: engine}
	switch src.Kind {
	case SrcFrame:
		bytesPerFrame := roundTo(bpc*float64(framePeriod), src.ReqSize)
		fs := traffic.NewFrameSource(spec.Label(), engine, rng, region,
			bytesPerFrame, framePeriod, src.ReqSize, src.ReadFrac, src.RefFactor)
		fs.StartOffset = sim.Cycle(src.StartOffsetFrac * float64(framePeriod))
		u.Source = fs
		u.Meter = meter.NewFrameProgressMeter(framePeriod, src.RefFactor, fs.Progress)

	case SrcDisplay:
		bufBytes := bufferBytes(cfg, src, bpc)
		ds := traffic.NewDisplaySource(spec.Label(), engine, region, bpc, bufBytes, src.ReqSize)
		u.Source = ds
		u.Meter = meter.NewOccupancyMeter(bpc, meterWindow, bufBytes, false, ds.OccupancyAt)
		// The frame-rate baseline treats a draining real-time buffer as an
		// urgent media core. The probe integrates to now+1 — the same point
		// the source's own tick would have reached had it run this cycle —
		// so the answer is identical whether or not the active-ticker list
		// skipped the source.
		engine.SetUrgentProbe(func(now sim.Cycle) bool { return ds.OccupancyAt(now+1) < 0.55 })

	case SrcCamera:
		bufBytes := bufferBytes(cfg, src, bpc)
		cs := traffic.NewCameraSource(spec.Label(), engine, region, bpc, bufBytes, src.ReqSize)
		u.Source = cs
		u.Meter = meter.NewOccupancyMeter(bpc, meterWindow, bufBytes, true, cs.OccupancyAt)
		engine.SetUrgentProbe(func(now sim.Cycle) bool { return cs.OccupancyAt(now+1) > 0.45 })

	case SrcSporadic:
		meanGap := float64(src.ReqSize) / bpc
		ss := traffic.NewSporadicSource(spec.Label(), engine, rng, region,
			meanGap, src.ReqSize, src.ReadFrac)
		u.Source = ss
		limit := src.LatencyLimit
		if limit == 0 {
			limit = 500
		}
		lm := meter.NewLatencyMeter(limit, 0.25)
		engine.OnComplete(func(t *txn.Transaction, now sim.Cycle) {
			lm.Observe(t.Latency())
		})
		u.Meter = lm

	case SrcRate:
		rs := traffic.NewRateSource(spec.Label(), engine, rng, region,
			bpc, src.ReqSize, src.BurstReqs, src.ReadFrac)
		u.Source = rs
		// Bandwidth meters average over a longer window so bulk-transfer
		// lumpiness does not read as QoS noise.
		bm := meter.NewBandwidthMeter(bpc, 2*meterWindow)
		engine.OnComplete(func(t *txn.Transaction, now sim.Cycle) {
			bm.ObserveBytes(now, int(t.Size))
		})
		u.Meter = bm

	case SrcChunk:
		periodFrac := src.ChunkPeriodFrac
		if periodFrac <= 0 {
			periodFrac = 0.25
		}
		deadlineFrac := src.DeadlineFrac
		if deadlineFrac <= 0 {
			deadlineFrac = 0.6
		}
		period := sim.Cycle(periodFrac * float64(framePeriod))
		chunkBytes := roundTo(bpc*float64(period), src.ReqSize)
		// The progress probe is wired after the source exists; the meter
		// tolerates a nil probe in the interim.
		cm := meter.NewChunkMeter(sim.Cycle(deadlineFrac*float64(period)), nil)
		csrc := traffic.NewChunkSource(spec.Label(), engine, rng, region,
			chunkBytes, period, src.ReqSize, src.ReadFrac, cm)
		csrc.Scatter = src.Scatter
		cm.SetProgress(csrc.ChunkProgress)
		csrc.StartOffset = sim.Cycle(src.StartOffsetFrac * float64(framePeriod))
		u.Source = csrc
		u.Meter = cm

	case SrcCPU:
		locality := src.Locality
		if locality == 0 {
			locality = 0.5
		}
		u.Source = traffic.NewCPUSource(spec.Label(), engine, rng, region,
			bpc, src.ReqSize, src.ReadFrac, locality)
		u.Meter = nil // the CPU has no QoS target in this use case

	default:
		panic(fmt.Sprintf("core: unknown source kind %v", src.Kind))
	}

	if u.Meter != nil {
		u.Series = &stats.Series{Name: spec.Label()}
		lut := adapt.DefaultLUT(cfg.PriorityBits)
		if len(spec.LUTBounds) > 0 {
			lut = adapt.NewLUT(spec.LUTBounds)
		}
		u.Adapter = adapt.New(spec.Label(), u.Meter, lut, engine, cfg.AdaptInterval)
		u.Adapter.SetEnabled(cfg.SARAEnabled())
	}
	return u
}

// bufferBytes sizes a display/camera buffer: either BufSeconds of traffic
// (scaled) or a default of 16 adaptation intervals.
func bufferBytes(cfg Config, src SourceSpec, bpc float64) float64 {
	var bufCycles float64
	if src.BufSeconds > 0 {
		bufCycles = float64(cfg.DRAM.CyclesFromSeconds(src.BufSeconds / float64(cfg.ScaleDiv)))
	} else {
		bufCycles = 16 * float64(cfg.AdaptInterval)
	}
	buf := bpc * bufCycles
	min := 8 * float64(src.ReqSize)
	if buf < min {
		buf = min
	}
	return buf
}

func defaultWindow(k SourceKind) int {
	switch k {
	case SrcFrame:
		return 16
	case SrcDisplay, SrcCamera:
		return 8
	case SrcSporadic:
		return 4
	case SrcRate:
		return 8
	case SrcChunk:
		return 8
	case SrcCPU:
		return 8
	}
	return 8
}

// roundTo rounds v up to a whole number of reqSize units (at least one).
func roundTo(v float64, reqSize uint32) uint64 {
	n := uint64(math.Ceil(v / float64(reqSize)))
	if n == 0 {
		n = 1
	}
	return n * uint64(reqSize)
}

// --- accessors and run control ---

// Kernel exposes the simulation kernel (tests drive it directly). It is
// nil on a domain-parallel System, which has one kernel per domain; use
// the System-level run control and statistics methods instead.
func (s *System) Kernel() *sim.Kernel { return s.kernel }

// DRAM exposes the device model. It is nil on a domain-parallel System,
// which has one instance per domain; use DRAMStats, RowHitRate,
// RefreshDuty and BandwidthOverWindowGBps, which work on both shapes.
func (s *System) DRAM() *dram.DRAM { return s.dram }

// Controllers exposes the per-channel memory controllers (in channel
// order on both the serial and the domain-parallel System).
func (s *System) Controllers() []*memctrl.Controller { return s.ctrls }

// Routers exposes the NoC routers in tick order (aggregation routers
// first, root last; on the domain-parallel System, per domain in domain
// order with the channel ingress router after each domain's root); the
// equivalence tests compare their statistics across kernel modes.
func (s *System) Routers() []*noc.Router {
	if s.par != nil {
		return s.par.routers()
	}
	var out []*noc.Router
	if s.mediaRouter != nil {
		out = append(out, s.mediaRouter)
	}
	if s.sysRouter != nil {
		out = append(out, s.sysRouter)
	}
	return append(out, s.rootRouter)
}

// Domains reports the number of per-channel domains: 0 on the serial
// kernel, the channel count on a domain-parallel System.
func (s *System) Domains() int {
	if s.par == nil {
		return 0
	}
	return len(s.par.domains)
}

// DomainWorkers reports the goroutine count a domain-parallel System
// runs on (0 on the serial kernel). It can be lower than requested: the
// worker count is clamped to a divisor of the domain count so every
// worker owns the same number of domains.
func (s *System) DomainWorkers() int {
	if s.par == nil {
		return 0
	}
	return s.par.workers
}

// DRAMStats snapshots the per-channel DRAM counters, merging across
// domains on a domain-parallel System.
func (s *System) DRAMStats() dram.Stats {
	if s.par == nil {
		return s.dram.Stats()
	}
	return s.par.dramStats()
}

// RowHitRate reports the device-wide row-buffer hit rate.
func (s *System) RowHitRate() float64 { return s.DRAMStats().RowHitRate() }

// RefreshDuty reports the fraction of rank-cycles up to now spent in a
// tRFC refresh blackout.
func (s *System) RefreshDuty(now sim.Cycle) float64 {
	return dram.RefreshDutyOf(s.cfg.DRAM, s.DRAMStats(), now)
}

// BandwidthOverWindowGBps reports bytes moved since the before snapshot
// divided by the window length, in GB/s.
func (s *System) BandwidthOverWindowGBps(before dram.Stats, from, to sim.Cycle) float64 {
	return dram.BandwidthOverWindowOf(s.cfg.DRAM, before, s.DRAMStats(), from, to)
}

// SkippedCycles reports how many cycles idle skipping fast-forwarded
// over (summed across domains on a domain-parallel System).
func (s *System) SkippedCycles() uint64 {
	if s.par == nil {
		return s.kernel.SkippedCycles()
	}
	var n uint64
	for _, d := range s.par.domains {
		n += d.kernel.SkippedCycles()
	}
	return n
}

// Units exposes every assembled DMA.
func (s *System) Units() []*Unit { return s.units }

// Unit looks a unit up by its full label ("Display", "Rotator/rd", ...).
func (s *System) Unit(label string) (*Unit, bool) {
	u, ok := s.byLabel[label]
	return u, ok
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Now reports the current cycle. On a domain-parallel System every
// domain kernel agrees on the cycle between Run calls (they rendezvous
// at the run horizon), so domain 0's clock is the system clock.
func (s *System) Now() sim.Cycle {
	if s.par != nil {
		return s.par.now()
	}
	return s.kernel.Now()
}

// Run advances the simulation by n cycles.
func (s *System) Run(n sim.Cycle) {
	if s.par != nil {
		s.par.run(s.par.now()+n, false)
		return
	}
	s.kernel.RunFor(n)
}

// RunFrames advances the simulation by k frame periods.
func (s *System) RunFrames(k int) {
	s.Run(sim.Cycle(k) * s.cfg.FramePeriod())
}

// RunChecked advances the simulation by n cycles with failures contained:
// panics raised anywhere in the system surface as a *sim.PanicError, and
// any watchdog installed with SetWatchdog bounds the run (see
// sim.Kernel.RunChecked). On a domain-parallel System a worker panic or
// watchdog trip aborts the epoch barrier, so every worker unwinds and
// the first error is returned.
func (s *System) RunChecked(n sim.Cycle) error {
	if s.par != nil {
		return s.par.run(s.par.now()+n, true)
	}
	return s.kernel.RunForChecked(n)
}

// RunFramesChecked is RunChecked over k frame periods.
func (s *System) RunFramesChecked(k int) error {
	return s.RunChecked(sim.Cycle(k) * s.cfg.FramePeriod())
}

// SetWatchdog installs wd, defaulting its Outstanding and Progress
// probes to the system-level ones (in-flight transactions and completed
// transactions) when unset, so callers only pick budgets. On a
// domain-parallel System the watchdog is evaluated by worker 0 at epoch
// boundaries — the only points where every domain is quiescent — so
// CheckEvery is effectively the epoch length and the parked-deadlock
// check is subsumed by the progress budget.
func (s *System) SetWatchdog(wd *sim.Watchdog) {
	if wd != nil {
		if wd.Outstanding == nil {
			wd.Outstanding = s.Outstanding
		}
		if wd.Progress == nil {
			wd.Progress = s.CompletedTransactions
		}
	}
	if s.par != nil {
		s.par.setWatchdog(wd)
		return
	}
	s.kernel.SetWatchdog(wd)
}

// Outstanding counts transactions that are in flight somewhere in the
// system — generated but not yet completed, including requests still in
// DMA pending queues. A fully parked wake heap with Outstanding > 0 is
// a deadlock (a component dropped a transaction); the kernel watchdog
// uses this probe to detect it.
func (s *System) Outstanding() uint64 {
	var n uint64
	for _, u := range s.units {
		st := u.Engine.Stats()
		n += st.Generated - st.Completed
	}
	return n
}

// CompletedTransactions sums completions across every DMA — the default
// forward-progress counter for the watchdog.
func (s *System) CompletedTransactions() uint64 {
	var n uint64
	for _, u := range s.units {
		n += u.Engine.Stats().Completed
	}
	return n
}

// MinNPIByCore reports, for every metered core, the minimum NPI sample at
// or after cycle from, taking the worst DMA of each core. This is the
// "did the core ever fall below target" statistic behind Figs. 5, 6 and 9.
func (s *System) MinNPIByCore(from sim.Cycle) map[string]float64 {
	out := make(map[string]float64)
	for _, u := range s.units {
		if u.Series == nil {
			continue
		}
		min := math.Inf(1)
		for i, c := range u.Series.Cycles {
			if c >= from && u.Series.Values[i] < min {
				min = u.Series.Values[i]
			}
		}
		if math.IsInf(min, 1) {
			continue
		}
		if cur, ok := out[u.Spec.Core]; !ok || min < cur {
			out[u.Spec.Core] = min
		}
	}
	return out
}

// CriticalCores lists the distinct core names marked Critical, in spec
// order.
func (s *System) CriticalCores() []string {
	var names []string
	seen := make(map[string]bool)
	for _, u := range s.units {
		if u.Spec.Critical && !seen[u.Spec.Core] {
			seen[u.Spec.Core] = true
			names = append(names, u.Spec.Core)
		}
	}
	return names
}

// PriorityHistogramByCore merges the adapter time-at-level histograms of
// all DMAs belonging to core (Fig. 7).
func (s *System) PriorityHistogramByCore(core string) *stats.LevelHistogram {
	merged := stats.NewLevelHistogram(1 << s.cfg.PriorityBits)
	for _, u := range s.units {
		if u.Spec.Core != core || u.Adapter == nil {
			continue
		}
		h := u.Adapter.Histogram()
		for lvl := 0; lvl < h.Levels(); lvl++ {
			frac := h.Fraction(lvl)
			if frac > 0 {
				merged.Add(lvl, uint64(frac*1e6))
			}
		}
	}
	return merged
}
