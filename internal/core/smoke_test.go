package core_test

import (
	"testing"

	"sara/internal/config"
	"sara/internal/core"
	"sara/internal/memctrl"
)

// TestSmokeCaseA builds the full Case A system and runs one frame at a
// coarse scale, checking that traffic flows end to end.
func TestSmokeCaseA(t *testing.T) {
	for _, p := range memctrl.AllPolicies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := config.Camcorder(config.CaseA, config.WithPolicy(p), config.WithScaleDiv(256))
			sys := core.Build(cfg)
			sys.RunFrames(1)

			var completed uint64
			for _, u := range sys.Units() {
				completed += u.Engine.Stats().Completed
			}
			if completed == 0 {
				t.Fatalf("policy %v: no transactions completed", p)
			}
			bw := sys.DRAM().AverageBandwidthGBps(sys.Now())
			t.Logf("policy %v: completed=%d bandwidth=%.2f GB/s rowhit=%.2f",
				p, completed, bw, sys.DRAM().RowHitRate())
			if bw <= 1 {
				t.Errorf("policy %v: implausibly low bandwidth %.2f GB/s", p, bw)
			}
			min := sys.MinNPIByCore(sys.Config().FramePeriod() / 4)
			for core, v := range min {
				t.Logf("  min NPI %-12s %.3f", core, v)
			}
		})
	}
}
