package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces bit-identical replayability inside the module:
// simulation results and serialized reports may depend only on the
// configuration and seed, never on the host. Three hazards are flagged:
//
//   - time.Now: wall-clock reads. The sim.Watchdog host deadlines are the
//     sanctioned exceptions, allowlisted line by line with
//     //sara:wallclock <reason>.
//   - the global math/rand stream: process-wide, seed-shared state; every
//     stochastic draw must come from a sim.Rand forked from the run seed.
//   - range over a map: Go randomizes iteration order per run, so any map
//     range whose effects are order-sensitive de-syncs replays and
//     shuffles serialized output. Two idioms are recognized as
//     order-insensitive and stay legal: collecting keys/values into a
//     slice that the same function subsequently sorts, and resetting or
//     deleting every entry. Everything else needs sorted-key iteration or
//     a //sara:maprange-ok justification.
func Determinism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "flag wall-clock reads, global math/rand and order-sensitive map iteration in module code",
		Run:  runDeterminism,
	}
}

func runDeterminism(p *Pass) error {
	if !p.InModule(p.Pkg.Path()) {
		return nil
	}
	for _, f := range p.SourceFiles() {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				p.checkDeterministicCall(n)
			case *ast.RangeStmt:
				p.checkMapRange(n, stack)
			}
			return true
		})
	}
	return nil
}

func (p *Pass) checkDeterministicCall(call *ast.CallExpr) {
	fn, ok := p.ObjectOf(call.Fun).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	switch {
	case path == "time" && fn.Name() == "Now":
		p.Reportf(call.Pos(), VerbWallclock,
			"time.Now reads the wall clock: simulation state and reports must derive from sim.Cycle (or justify a host deadline with //sara:wallclock)")
	case path == "math/rand" || path == "math/rand/v2":
		sig := fn.Type().(*types.Signature)
		if sig.Recv() != nil || strings.HasPrefix(fn.Name(), "New") {
			return
		}
		p.Reportf(call.Pos(), "",
			"math/rand.%s draws from the process-global stream: fork a sim.Rand from the run seed instead", fn.Name())
	}
}

func (p *Pass) checkMapRange(rng *ast.RangeStmt, stack []ast.Node) {
	t := p.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if p.benignCollect(rng, stack) || benignReset(rng) {
		return
	}
	p.Reportf(rng.For, VerbMaprangeOK,
		"range over map has nondeterministic iteration order: iterate sorted keys (or justify an order-insensitive loop with //sara:maprange-ok)")
}

// benignCollect recognizes the key-collection idiom: a single-statement
// body `s = append(s, k)` (or v) whose slice is passed to a sort.* or
// slices.* call later in the same function — the canonical
// collect-then-sort pattern the fix guidance recommends.
func (p *Pass) benignCollect(rng *ast.RangeStmt, stack []ast.Node) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if b, ok := p.ObjectOf(call.Fun).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	obj := p.Info.Uses[dst]
	if obj == nil {
		obj = p.Info.Defs[dst]
	}
	if obj == nil {
		return false
	}

	// The slice must be sorted after the loop, inside the enclosing
	// function.
	var encl ast.Node
	for i := len(stack) - 1; i >= 0 && encl == nil; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			encl = stack[i]
		}
	}
	if encl == nil {
		return false
	}
	sorted := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if pp := fn.Pkg().Path(); pp != "sort" && pp != "slices" {
			return true
		}
		for _, a := range call.Args {
			ast.Inspect(a, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					sorted = true
				}
				return !sorted
			})
		}
		return !sorted
	})
	return sorted
}

// benignReset recognizes bodies whose every statement only zeroes or
// deletes entries — order-insensitive by construction.
func benignReset(rng *ast.RangeStmt) bool {
	if len(rng.Body.List) == 0 {
		return true // `for range m {}` observes nothing
	}
	for _, st := range rng.Body.List {
		switch st := st.(type) {
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "delete" {
				return false
			}
		case *ast.AssignStmt:
			if st.Tok != token.ASSIGN || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return false
			}
			switch ast.Unparen(st.Lhs[0]).(type) {
			case *ast.IndexExpr, *ast.StarExpr:
			default:
				return false
			}
			if !zeroish(st.Rhs[0]) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// zeroish matches reset right-hand sides: literals, nil/true/false, and
// empty composite literals (T{}).
func zeroish(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return e.Name == "nil" || e.Name == "true" || e.Name == "false"
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	}
	return false
}
