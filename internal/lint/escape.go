package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// EscapeIndex cross-checks the compiler's own escape analysis
// (go build -gcflags=-m) against //sara:hotpath extents: hotpathalloc is
// a conservative syntactic screen, the compiler is the precise second
// opinion, and `saravet -escape` is where the two meet. Any
// "escapes to heap" / "moved to heap" diagnostic landing inside an
// annotated function's line range — minus lines carrying a
// //sara:alloc-ok justification — is a finding.
type EscapeIndex struct {
	ranges  []FuncRange
	allocOK map[string]map[int]bool
	// cold marks lines inside panic(...) arguments: they only execute on
	// a dying simulation, so their escapes are exempt — the same rule the
	// syntactic hotpathalloc analyzer applies.
	cold map[string]map[int]bool
}

// FuncRange is the source extent of one //sara:hotpath function.
type FuncRange struct {
	File       string
	Start, End int
	Key        string
}

// NewEscapeIndex returns an empty index.
func NewEscapeIndex() *EscapeIndex {
	return &EscapeIndex{
		allocOK: map[string]map[int]bool{},
		cold:    map[string]map[int]bool{},
	}
}

// AddFiles records the //sara:hotpath extents and //sara:alloc-ok lines
// of a package's non-test files.
func (ix *EscapeIndex) AddFiles(fset *token.FileSet, files []*ast.File) {
	for _, f := range files {
		if isTestFile(fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc, VerbHotpath) {
				continue
			}
			start := fset.Position(fd.Pos())
			start.Filename = absPath(start.Filename)
			key := fd.Name.Name
			if fd.Recv != nil {
				key = recvTypeName(fd) + "." + key
			}
			ix.ranges = append(ix.ranges, FuncRange{
				File:  start.Filename,
				Start: start.Line,
				End:   fset.Position(fd.End()).Line,
				Key:   key,
			})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPanicCall(call) {
				return true
			}
			p := fset.Position(call.Pos())
			file := absPath(p.Filename)
			m := ix.cold[file]
			if m == nil {
				m = map[int]bool{}
				ix.cold[file] = m
			}
			for line := p.Line; line <= fset.Position(call.End()).Line; line++ {
				m[line] = true
			}
			return true
		})
		for _, g := range f.Comments {
			for _, c := range g.List {
				d, ok := parseDirective(c)
				if !ok || d.verb != VerbAllocOK {
					continue
				}
				p := fset.Position(c.Pos())
				p.Filename = absPath(p.Filename)
				m := ix.allocOK[p.Filename]
				if m == nil {
					m = map[int]bool{}
					ix.allocOK[p.Filename] = m
				}
				// A directive covers its own line and, standing alone,
				// the line below — same reach as Pass suppression.
				m[p.Line] = true
				m[p.Line+1] = true
			}
		}
	}
}

// escapeLine matches one compiler diagnostic: file:line:col: message.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// Check scans `go build -m` output (compiler diagnostics arrive on
// stderr, file paths relative to the build's working directory, which dir
// names) and returns the escapes inside hot-path functions.
func (ix *EscapeIndex) Check(output []byte, dir string) []Diagnostic {
	var out []Diagnostic
	sc := bufio.NewScanner(bytes.NewReader(output))
	for sc.Scan() {
		m := escapeLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		file = absPath(file)
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		fr, ok := ix.lookup(file, line)
		if !ok || ix.allocOK[file][line] || ix.cold[file][line] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Analyzer: "escape",
			Message:  fmt.Sprintf("%s in hot-path function %s (compiler escape analysis)", msg, fr.Key),
		})
	}
	SortDiagnostics(out)
	return out
}

// absPath normalizes a file path so loader positions (absolute) and
// compiler diagnostics (relative to the build directory) compare equal.
func absPath(p string) string {
	if abs, err := filepath.Abs(p); err == nil {
		return abs
	}
	return p
}

func (ix *EscapeIndex) lookup(file string, line int) (FuncRange, bool) {
	for _, fr := range ix.ranges {
		if fr.File == file && fr.Start <= line && line <= fr.End {
			return fr, true
		}
	}
	return FuncRange{}, false
}
