package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

const escapeSrc = `package p

//sara:hotpath
func Hot() *int {
	if bad() {
		panic("boom")
	}
	x := 40
	y := 2 //sara:alloc-ok justified escape
	_ = y
	return &x
}

func bad() bool { return false }

func Cold() *int {
	z := 1
	return &z
}
`

func TestEscapeIndex(t *testing.T) {
	fset := token.NewFileSet()
	name := filepath.Join("fix", "esc.go")
	f, err := parser.ParseFile(fset, name, escapeSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewEscapeIndex()
	ix.AddFiles(fset, []*ast.File{f})

	// Compiler output uses paths relative to the build dir; the index
	// must match them against the (absolute) parsed positions anyway.
	out := []byte(strings.Join([]string{
		"./esc.go:11:2: moved to heap: x",        // inside Hot, no suppression -> finding
		"./esc.go:9:2: moved to heap: y",         // alloc-ok line -> suppressed
		"./esc.go:6:9: \"boom\" escapes to heap", // panic argument -> cold, suppressed
		"./esc.go:17:2: moved to heap: z",        // outside any hot-path function
		"./esc.go:11:2: can inline Hot",          // not an escape message
	}, "\n"))
	ds := ix.Check(out, "fix")
	if len(ds) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(ds), ds)
	}
	d := ds[0]
	if d.Analyzer != "escape" || d.Pos.Line != 11 {
		t.Fatalf("unexpected finding %+v", d)
	}
	if !strings.Contains(d.Message, "moved to heap: x in hot-path function Hot") {
		t.Fatalf("unexpected message %q", d.Message)
	}
}
