// Package lint is saravet's repo-aware static-analysis suite: a small
// go/analysis-style framework (the toolchain image carries no
// golang.org/x/tools, so the Analyzer/Pass shape is reimplemented on the
// standard library's go/ast + go/types) plus the four analyzers that turn
// this repo's dynamically-enforced invariants into `go vet`-time errors:
//
//   - hotpathalloc: functions annotated //sara:hotpath — the kernel step
//     loop, the subsystem Ticks, every NextActivity — and everything they
//     transitively call inside the module must be allocation-free.
//   - wakebound: NextActivity/Wake implementations must not derive
//     now-relative bounds from mutable receiver state (the PR 7 stale
//     lazy-cursor wake-bug class).
//   - hookdiscipline: the package-level trace-hook fast-path pointers
//     (noc/dma/memctrl debugX) may only be rewired through the
//     sim.HookList registry, never assigned directly.
//   - determinism: simulation and report code must not consult wall-clock
//     time, the global math/rand stream, or unsorted map iteration.
//
// A fifth analyzer, directive, validates the //sara: comment vocabulary
// itself, so a typoed suppression fails loudly instead of silently
// allowlisting nothing.
//
// Escape hatches are per-line comment directives carrying a justification
// (see directive.go); the directive analyzer rejects a justification-less
// suppression as malformed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, resolved to a concrete source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one static check, the stdlib-shaped analogue of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// All returns the full saravet suite in its fixed run order.
func All() []*Analyzer {
	return []*Analyzer{
		Directive(),
		HotPathAlloc(),
		WakeBound(),
		HookDiscipline(),
		Determinism(),
	}
}

// Facts is the cross-package knowledge one package's pass exports for its
// dependents, serialized as JSON into go vet's .vetx slot (or carried
// in-process by the standalone driver). Hotpath holds the FuncKey of
// every //sara:hotpath-annotated function, so a caller package can verify
// that the module-internal functions its own hot paths invoke are
// themselves under the allocation-free contract.
type Facts struct {
	Hotpath []string `json:"hotpath,omitempty"`
}

// Has reports whether key is in the exported hotpath set.
func (f *Facts) Has(key string) bool {
	if f == nil {
		return false
	}
	for _, k := range f.Hotpath {
		if k == key {
			return true
		}
	}
	return false
}

// ScanFacts extracts the facts a package exports from its syntax alone:
// the FuncKey of every //sara:hotpath-annotated declaration in non-test
// files. Being purely syntactic keeps fact extraction possible for
// packages the driver never type-checks (dependency-only module packages
// in a narrowed run, VetxOnly vet units).
func ScanFacts(fset *token.FileSet, files []*ast.File) Facts {
	var facts Facts
	for _, f := range files {
		if isTestFile(fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc, VerbHotpath) {
				continue
			}
			key := fd.Name.Name
			if fd.Recv != nil {
				key = recvTypeName(fd) + "." + key
			}
			facts.Hotpath = append(facts.Hotpath, key)
		}
	}
	sort.Strings(facts.Hotpath)
	return facts
}

// FuncKey names a function or method the way Facts records it:
// "Recv.Name" with any pointer stripped from the receiver, or "Name" for
// a plain function.
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// Pass carries one package's syntax, types and cross-package facts
// through the analyzer suite.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Module is the module path; analyzers that scope themselves to
	// module-internal code (determinism, hotpathalloc's cross-package
	// rule) treat an empty Module as "everything is in scope", which the
	// fixture tests rely on.
	Module string

	// Facts maps dependency import paths to their exported facts. A
	// missing entry means "no facts" — a hot-path call into such a
	// package is flagged, never silently trusted.
	Facts map[string]*Facts

	current *Analyzer
	dirs    *directiveIndex
	diags   []Diagnostic
}

// InModule reports whether import path is inside the analyzed module.
func (p *Pass) InModule(path string) bool {
	if p.Module == "" {
		return true
	}
	return path == p.Module || strings.HasPrefix(path, p.Module+"/")
}

// SourceFiles yields the non-test files of the pass. The suite's
// contracts cover simulator and tool code; _test.go files host the
// differential harnesses and may use wall clocks, math/rand and scratch
// allocation freely.
func (p *Pass) SourceFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		out = append(out, f)
	}
	return out
}

func isTestFile(fset *token.FileSet, f *ast.File) bool {
	name := fset.Position(f.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

// Reportf records a finding at pos unless a suppression directive for
// verb is attached to that line (verb "" means the finding has no escape
// hatch). Findings in _test.go files are dropped wholesale.
func (p *Pass) Reportf(pos token.Pos, verb string, format string, args ...any) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if verb != "" && p.directives().suppressed(position, verb) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.current.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) directives() *directiveIndex {
	if p.dirs == nil {
		p.dirs = indexDirectives(p.Fset, p.Files)
	}
	return p.dirs
}

// TypeOf is a nil-tolerant Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves the object behind a call's function expression:
// the *types.Func for static calls and method calls, a *types.Builtin
// for builtins, a *types.TypeName for conversions, nil for indirect
// calls through function values.
func (p *Pass) ObjectOf(fun ast.Expr) types.Object {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[f]
	case *ast.SelectorExpr:
		return p.Info.Uses[f.Sel]
	}
	return nil
}

// RunPackage runs the analyzer suite over the pass and returns the
// findings sorted by position.
func RunPackage(p *Pass, analyzers []*Analyzer) ([]Diagnostic, error) {
	for _, a := range analyzers {
		p.current = a
		if err := a.Run(p); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, p.Pkg.Path(), err)
		}
	}
	SortDiagnostics(p.diags)
	return p.diags, nil
}

// SortDiagnostics orders findings by (file, line, column, analyzer,
// message) so saravet's output — and therefore CI logs and the CLI tests
// — is deterministic by construction.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
