// Package det exercises determinism: wall-clock reads, the global
// math/rand stream and order-sensitive map iteration.
package det

import (
	"math/rand"
	"sort"
	"time"
)

var counts = map[string]int{}

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func deadline() time.Time {
	return time.Now().Add(time.Second) //sara:wallclock host watchdog deadline, not simulated time
}

func draw() int {
	return rand.Intn(6) // want "math/rand.Intn draws from the process-global stream"
}

func seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(6)
}

// Benign: keys are collected, then sorted in the same function.
func dump() []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Benign: deleting every entry is order-insensitive.
func reset() {
	for k := range counts {
		delete(counts, k)
	}
}

// Benign: zeroing every entry is order-insensitive.
func zero() {
	for k := range counts {
		counts[k] = 0
	}
}

func total() int {
	sum := 0
	for _, v := range counts { // want "range over map has nondeterministic iteration order"
		sum += v
	}
	return sum
}

func skip() int {
	n := 0
	for k, v := range counts { //sara:maprange-ok summing is order-insensitive
		n += len(k) + v
	}
	return n
}
