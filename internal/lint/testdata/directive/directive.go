// Package directive exercises the //sara: vocabulary checks: unknown
// verbs, missing justifications, hotpath arguments and hotpath placement.
package directive

//sara:typo some justification
// want-1 "unknown //sara: directive \"typo\""

//sara:alloc-ok
// want-1 "//sara:alloc-ok requires a justification"

//sara:hotpath because-it-is-hot
// want-1 "//sara:hotpath takes no argument"

//sara:hotpath
// want-1 "misplaced //sara:hotpath"

//sara:hotpath
func annotated() int {
	return state //sara:alloc-ok well-formed trailing suppression
}

var state = 1 //sara:wallclock well-formed, wrong verb is not directive's concern

//sara:bound-ok the absolute bound is recomputed by the caller every probe
func other() int { return state }
