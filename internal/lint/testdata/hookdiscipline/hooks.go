// Package hooks exercises hookdiscipline: debugX fast-path pointers may
// only be rewired through the registry.
package hooks

type StallFn func(int)

var debugStall StallFn

var notHook StallFn

type HookList struct{}

func (h *HookList) Attach(fn StallFn, target *StallFn) {}

var stallHooks HookList

// Legal: handing the slot to the registry.
func hookStall(fn StallFn) {
	stallHooks.Attach(fn, &debugStall)
}

// Illegal: a direct write clobbers every registered observer.
func sneaky(fn StallFn) {
	debugStall = fn // want "direct write to trace-hook pointer debugStall"
}

// Illegal: the slot's address escaping can be written anywhere.
func leak() *StallFn {
	return &debugStall // want "address of trace-hook pointer debugStall escapes the registry"
}

// Non-hook function vars are unrestricted.
func fine(fn StallFn) {
	notHook = fn
	_ = &notHook
}

// A justified direct write stays possible for fixture plumbing.
func reset() {
	debugStall = nil //sara:hook-ok fixture reset outside any simulated run
}
