// Package dep provides cross-package callees for the hotpath fixture:
// Fast is under the hot-path contract, Slow is not.
package dep

var state int

//sara:hotpath
func Fast() { state++ }

func Slow() { state-- }
