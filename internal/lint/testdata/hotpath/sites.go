package hot

type point struct{ x, y int }

//sara:hotpath
func (r *ring) flush(dst []byte) {
	m := map[int]int{} // want "map literal allocates"
	s := []int{1}      // want "slice literal allocates"
	p := &point{1, 2}  // want "address of composite literal may escape to the heap"
	_, _, _ = m, s, p

	f := func() int { return r.n } // want "func literal captures variables and allocates a closure"
	g := func(x int) int { return x }
	_, _ = f, g

	b := []byte(r.name) // want "string-to-slice conversion allocates"
	t := string(dst)    // want "to-string conversion allocates"
	_, _ = b, t

	go r.helper()    // want "go statement allocates a goroutine"
	defer r.helper() // want "defer may allocate and delays the hot path"

	h := r.helper // want "method value binds its receiver and allocates"
	_ = h

	scratch := make([]int, 0, 8) //sara:alloc-ok pre-sized scratch the compiler keeps on the stack
	_ = scratch
	_ = point{r.n, r.n} // plain composite literal without & stays on the stack
}
