// Package hot exercises hotpathalloc: allocation sites in annotated
// functions, transitive same-package callees and the cross-package fact
// rule.
package hot

import "example.com/hot/dep"

type Cycle uint64

type ring struct {
	buf  []int
	n    int
	name string
}

//sara:hotpath
func (r *ring) Step(now Cycle) {
	r.helper()
	dep.Fast()
	dep.Slow()                 // want "call to example.com/hot/dep.Slow, which is not //sara:hotpath"
	r.buf = make([]int, 8)     // want "make allocates"
	r.buf = append(r.buf, r.n) // want "append may grow its backing array"
	_ = new(int)               // want "new allocates"
}

// helper is pulled into the hot closure by Step's call.
func (r *ring) helper() {
	r.name = r.name + "x" // want "string concatenation allocates"
}

// notHot is outside the closure: allocations are legal here.
func notHot() []int {
	return make([]int, 4)
}
