package hot

import "fmt"

type adder interface{ add(int) }

type counter struct{ v int }

func (c counter) add(x int) { _ = c.v + x }

var sink adder

//sara:hotpath
func (c *counter) tick(a adder) {
	a.add(c.v)                // interface method calls are not traced
	sink = c                  // pointer into interface: stored directly, no boxing
	sink = *c                 // want "value boxed into interface on assignment"
	var box interface{} = c.v // want "value boxed into interface on declaration"
	_ = box
	c.log()
}

// log is in the hot closure via tick.
func (c *counter) log() {
	fmt.Println(c.v) // want "call to fmt.Println allocates" "argument boxed into interface"
	if c.v < 0 {
		panic(fmt.Sprintf("negative counter %d", c.v)) // exempt: panicking runs are dead
	}
}
