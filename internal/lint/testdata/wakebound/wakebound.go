// Package wb exercises wakebound: NextActivity/Wake bounds must be
// absolute, never now + (mutable receiver state).
package wb

type Cycle uint64

type src struct {
	funded Cycle
	rate   Cycle
}

// The PR 7 bug shape: a now-relative bound computed from a cursor that
// may be stale.
func (s *src) NextActivity(now Cycle) Cycle {
	return now + s.rate // want "now-relative wake bound derived from receiver state in src.NextActivity"
}

type cur struct {
	cursor Cycle
	step   Cycle
}

// Sound: the bound is anchored at the cursor in absolute time and only
// clamped up to now.
func (c *cur) NextActivity(now Cycle) Cycle {
	at := c.cursor + c.step
	if at < now {
		at = now
	}
	return at
}

// Constant offsets from now are legal.
func (c *cur) Wake(now Cycle) Cycle {
	return now + 1
}

// Taint propagates through locals and compound assignment.
func (s *src) Wake(now Cycle) Cycle {
	lag := s.rate * 2
	deadline := now
	deadline += lag // want "now-relative wake bound derived from receiver state in src.Wake"
	return deadline
}

type mix struct{ off Cycle }

func (m *mix) NextActivity(now Cycle) Cycle {
	return now + m.off //sara:bound-ok off is immutable after construction, so the bound cannot go stale
}

// Methods with other names are out of scope.
func (s *src) estimate(now Cycle) Cycle {
	return now + s.rate
}
