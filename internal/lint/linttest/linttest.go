// Package linttest runs analyzers over small fixture packages and checks
// their findings against expectations embedded in the fixtures
// themselves, in the style of golang.org/x/tools' analysistest (which the
// toolchain image does not carry): a comment `// want "regexp"` on a line
// declares that exactly one diagnostic matching the regexp must be
// reported on that line, multiple quoted regexps declare multiple
// diagnostics, and any unmatched finding or leftover expectation fails
// the test.
//
// A fixture is a directory holding one package; immediate subdirectories
// are dependency packages, typechecked first and importable from the root
// package as Module + "/" + name. Hot-path facts are scanned from every
// fixture package, so cross-package //sara:hotpath contracts can be
// exercised without a driver.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"sara/internal/lint"
)

// Config adjusts how a fixture is loaded.
type Config struct {
	// Module is the fixture's module path; the root package takes this
	// path and subdirectory packages Module + "/" + name. Empty means the
	// directory base name, with lint.Pass.Module left empty (all import
	// paths count as module-internal).
	Module string
	// Facts are merged over the facts scanned from the fixture packages,
	// for simulating dependencies that exist only as export knowledge.
	Facts map[string]*lint.Facts
}

// Run applies the analyzers to the fixture at dir with a default Config.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	RunWith(t, Config{}, dir, analyzers...)
}

// RunWith applies the analyzers to the fixture at dir and reports every
// mismatch between findings and `// want` expectations via t.Errorf.
func RunWith(t *testing.T, cfg Config, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	facts := map[string]*lint.Facts{}
	for path, f := range cfg.Facts { //sara:maprange-ok map-to-map copy with distinct keys is order-insensitive
		facts[path] = f
	}

	rootPath := cfg.Module
	if rootPath == "" {
		rootPath = filepath.Base(dir)
	}

	deps := map[string]*types.Package{}
	imp := &fixtureImporter{deps: deps}
	var diags []lint.Diagnostic
	var files []*ast.File

	check := func(path, dir string) *types.Package {
		t.Helper()
		pkgFiles := parseDir(t, fset, dir)
		files = append(files, pkgFiles...)
		scanned := lint.ScanFacts(fset, pkgFiles)
		if _, ok := facts[path]; !ok {
			facts[path] = &scanned
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, pkgFiles, info)
		if err != nil {
			t.Fatalf("typecheck %s: %v", path, err)
		}
		pass := &lint.Pass{
			Fset:   fset,
			Files:  pkgFiles,
			Pkg:    tpkg,
			Info:   info,
			Module: cfg.Module,
			Facts:  facts,
		}
		ds, err := lint.RunPackage(pass, analyzers)
		if err != nil {
			t.Fatalf("run %s: %v", path, err)
		}
		diags = append(diags, ds...)
		return tpkg
	}

	for _, sub := range subdirs(t, dir) {
		path := rootPath + "/" + sub
		deps[path] = check(path, filepath.Join(dir, sub))
	}
	check(rootPath, dir)

	compare(t, fset, files, diags)
}

// fixtureImporter resolves sibling fixture packages from the typechecked
// set and everything else (stdlib) through the toolchain's default
// importer.
type fixtureImporter struct {
	deps map[string]*types.Package
}

func (f *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := f.deps[path]; ok {
		return pkg, nil
	}
	return importer.Default().Import(path)
}

func parseDir(t *testing.T, fset *token.FileSet, dir string) []*ast.File {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture: no Go files in %s", dir)
	}
	return files
}

func subdirs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// expectation is one `// want` regexp anchored to a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// wantRE accepts `// want "re"` and an optional line offset — `// want-1
// "re"` anchors the expectation one line above the comment, which is how
// fixtures attach expectations to diagnostics reported on a standalone
// directive comment's own line.
var wantRE = regexp.MustCompile(`//\s*want([+-]\d+)?((?:\s+"(?:[^"\\]|\\.)*")+)`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func parseExpectations(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					off, err := strconv.Atoi(m[1])
					if err != nil {
						t.Fatalf("%s: bad want offset %q", pos, m[1])
					}
					line += off
				}
				for _, q := range quotedRE.FindAllString(m[2], -1) {
					text, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, text, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: line, re: re})
				}
			}
		}
	}
	return out
}

func compare(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	wants := parseExpectations(t, fset, files)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.used || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Analyzer + ": " + d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}
