package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HookDiscipline guards the zero-cost trace-edge contract. Each
// observability edge in noc, dma and memctrl is one package-level
// function pointer (debugStall, debugGrant, debugInject, debugTrace, ...)
// that the hot path nil-checks; the sim.HookList registry is the only
// legal writer, rebuilding the pointer to nil / the sole subscriber / a
// fan-out closure as observers attach and detach. A direct assignment
// anywhere — including the declaring package's own convenience code —
// clobbers every registered observer and breaks the nil-when-unsubscribed
// guarantee the steady-state alloc gates measure, so it is flagged; the
// pointer's address may only be taken as an Attach argument.
func HookDiscipline() *Analyzer {
	return &Analyzer{
		Name: "hookdiscipline",
		Doc:  "flag writes to trace-hook fast-path pointers outside the sim.HookList registry",
		Run:  runHookDiscipline,
	}
}

// hookVar reports whether obj is a trace-hook fast-path pointer: a
// package-level var of function type following the repo's debugX naming
// convention.
func hookVar(p *Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() != p.Pkg.Scope() {
		return false
	}
	if !strings.HasPrefix(v.Name(), "debug") {
		return false
	}
	_, ok = v.Type().Underlying().(*types.Signature)
	return ok
}

func runHookDiscipline(p *Pass) error {
	for _, f := range p.SourceFiles() {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					if obj := p.Info.Uses[id]; obj != nil && hookVar(p, obj) {
						p.Reportf(id.Pos(), VerbHookOK,
							"direct write to trace-hook pointer %s: subscribe through the sim.HookList registry (Hook%s/SetDebug%s) so the nil-when-unsubscribed guarantee survives",
							obj.Name(), hookEdgeName(obj.Name()), hookEdgeName(obj.Name()))
					}
				}
			case *ast.UnaryExpr:
				if n.Op != token.AND {
					return true
				}
				id, ok := ast.Unparen(n.X).(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.Info.Uses[id]
				if obj == nil || !hookVar(p, obj) {
					return true
				}
				if !isAttachArg(n, stack) {
					p.Reportf(n.OpPos, VerbHookOK,
						"address of trace-hook pointer %s escapes the registry: only HookList.Attach may rewire it", obj.Name())
				}
			}
			return true
		})
	}
	return nil
}

// isAttachArg reports whether the &hook expression is an argument of a
// HookList.Attach call — the one sanctioned way to hand the fast-path
// slot to the registry.
func isAttachArg(n ast.Node, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Attach" {
		return false
	}
	for _, a := range call.Args {
		if a == n {
			return true
		}
	}
	return false
}

// hookEdgeName derives the edge's public name from the pointer name:
// debugStall -> Stall.
func hookEdgeName(name string) string {
	return strings.TrimPrefix(name, "debug")
}
