package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WakeBound rejects the PR 7 wake-bug class statically. The sim.Idler
// soundness rule requires NextActivity answers to be absolute: a
// component whose lazy integration lags `now` must anchor its bound at
// its cursor (cursor + steps - 1, clamped up to now), never return
// `now + f(cursor)` — the heap-top probe RAISES cached entries from these
// answers, so a now-relative bound computed from a stale cursor parks the
// component past its true wake and the active-ticker list never recovers.
//
// The analyzer applies intra-procedural taint inside every NextActivity
// and Wake method: receiver state (any field read, any receiver method
// result) is tainted, taint propagates through assignments in source
// order, and any `now + tainted` addition — with `now` the method's Cycle
// parameter or a local derived from it — is flagged. Constant offsets
// (now + 1) stay legal. A sound-by-other-means bound carries a
// //sara:bound-ok justification.
func WakeBound() *Analyzer {
	return &Analyzer{
		Name: "wakebound",
		Doc:  "flag now-relative wake bounds derived from mutable receiver state in NextActivity/Wake",
		Run:  runWakeBound,
	}
}

func runWakeBound(p *Pass) error {
	for _, f := range p.SourceFiles() {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if fd.Name.Name != "NextActivity" && fd.Name.Name != "Wake" {
				continue
			}
			p.checkWakeBounds(fd)
		}
	}
	return nil
}

func (p *Pass) checkWakeBounds(fd *ast.FuncDecl) {
	recv := p.receiverObj(fd)
	now := p.cycleParamObj(fd)
	if now == nil {
		return
	}

	// tainted holds locals transitively derived from receiver state;
	// nowish holds locals derived from the now parameter.
	tainted := map[types.Object]bool{}
	nowish := map[types.Object]bool{now: true}

	usesAny := func(e ast.Expr, set map[types.Object]bool, also types.Object) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return !found
			}
			obj := p.Info.Uses[id]
			if obj == nil {
				return true
			}
			if set[obj] || (also != nil && obj == also) {
				found = true
			}
			return !found
		})
		return found
	}
	taintedExpr := func(e ast.Expr) bool { return usesAny(e, tainted, recv) }
	nowExpr := func(e ast.Expr) bool { return usesAny(e, nowish, nil) }

	flag := func(pos token.Pos) {
		p.Reportf(pos, VerbBoundOK,
			"now-relative wake bound derived from receiver state in %s.%s: anchor the bound at the cursor in absolute time (sim.Idler soundness rule) or justify with //sara:bound-ok",
			recvTypeName(fd), fd.Name.Name)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Propagate taint before judging: x := now is nowish,
			// x := s.cursor is tainted, x := now + s.cursor flags below.
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := p.Info.Defs[id]
					if obj == nil {
						obj = p.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					if taintedExpr(rhs) {
						tainted[obj] = true
					}
					if nowExpr(rhs) {
						nowish[obj] = true
					}
				}
			}
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 &&
				nowExpr(n.Lhs[0]) && taintedExpr(n.Rhs[0]) {
				flag(n.TokPos)
			}
		case *ast.BinaryExpr:
			if n.Op != token.ADD {
				return true
			}
			if (nowExpr(n.X) && taintedExpr(n.Y)) || (nowExpr(n.Y) && taintedExpr(n.X)) {
				flag(n.OpPos)
			}
		}
		return true
	})
}

func (p *Pass) receiverObj(fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return p.Info.Defs[fd.Recv.List[0].Names[0]]
}

// cycleParamObj finds the method's simulated-time parameter: the first
// parameter whose (possibly aliased) named type is called Cycle.
func (p *Pass) cycleParamObj(fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		t := p.TypeOf(field.Type)
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Name() != "Cycle" {
			continue
		}
		if len(field.Names) == 0 {
			return nil
		}
		return p.Info.Defs[field.Names[0]]
	}
	return nil
}

func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}
