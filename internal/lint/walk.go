package lint

import "go/ast"

// walkStack traverses root in ast.Inspect order while maintaining the
// ancestor stack (stack[len-1] is n's parent). fn returning false prunes
// the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Pruned: the corresponding nil pop never arrives, so do not
			// push either.
			return false
		}
		stack = append(stack, n)
		return true
	})
}
