// Package load turns Go package patterns into typechecked lint.Pass
// inputs without golang.org/x/tools. It shells out to the go command the
// same way go vet's driver does — `go list -export -e -json -deps`
// resolves patterns, file lists and, crucially, gc export data for every
// dependency — then parses and typechecks only the module's own packages
// against that export data. Dependencies are never typechecked from
// source: a lookup-based gc importer reads the compiler's export files,
// which the build cache makes essentially free.
//
// Module packages that are pulled in as dependencies of a narrowed
// pattern (for example `saravet ./internal/noc` pulling in internal/sim)
// are parsed but not typechecked: hot-path facts are syntactic
// (lint.ScanFacts), so the cross-package contract stays enforceable
// without paying for a full load of the module.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"sara/internal/lint"
)

// Package is one module package ready for analysis. Dependency-only
// packages (parsed for facts, not typechecked) have Analyze == false and
// nil Types/Info.
type Package struct {
	Path    string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Analyze bool
}

// Result is a loaded module slice: the shared FileSet, the module path,
// the packages in `go list -deps` order (dependencies first), and the
// syntactic facts of every module package encountered.
type Result struct {
	Fset     *token.FileSet
	Module   string
	Packages []*Package
	Facts    map[string]*lint.Facts
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct {
		Err string
	}
	DepsErrors []struct {
		Err string
	}
}

// Patterns loads the packages matching patterns (default ./...) relative
// to dir. Build or typecheck failures abort the load: saravet refuses to
// report a partial picture of a tree that does not compile.
func Patterns(dir string, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Fset:  token.NewFileSet(),
		Facts: map[string]*lint.Facts{},
	}
	exports := map[string]string{}
	redirect := map[string]string{}
	var loadErrs []string
	for _, lp := range listed {
		if lp.Module != nil && lp.Module.Main {
			res.Module = lp.Module.Path
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		for src, resolved := range lp.ImportMap { //sara:maprange-ok one build resolves a source path to one target, so merge order is immaterial
			redirect[src] = resolved
		}
		if lp.Error != nil {
			loadErrs = append(loadErrs, strings.TrimSpace(lp.Error.Err))
		}
	}
	if len(loadErrs) > 0 {
		sort.Strings(loadErrs)
		return nil, fmt.Errorf("load: %s", strings.Join(loadErrs, "\n"))
	}

	imp := &exportImporter{
		gc: importer.ForCompiler(res.Fset, "gc", func(path string) (io.ReadCloser, error) {
			if r, ok := redirect[path]; ok {
				path = r
			}
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}),
	}

	for _, lp := range listed {
		if res.Module == "" || !inModule(res.Module, lp.ImportPath) {
			continue
		}
		pkg := &Package{
			Path:    lp.ImportPath,
			Dir:     lp.Dir,
			Analyze: !lp.DepOnly,
		}
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(res.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("load %s: %w", lp.ImportPath, err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		facts := lint.ScanFacts(res.Fset, pkg.Files)
		res.Facts[lp.ImportPath] = &facts

		if pkg.Analyze {
			if err := typecheck(res.Fset, pkg, imp); err != nil {
				return nil, err
			}
		}
		res.Packages = append(res.Packages, pkg)
	}
	return res, nil
}

func typecheck(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			errs = append(errs, err.Error())
		},
	}
	tpkg, _ := conf.Check(pkg.Path, fset, pkg.Files, info)
	if len(errs) > 0 {
		return fmt.Errorf("typecheck %s: %s", pkg.Path, strings.Join(errs, "\n"))
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// exportImporter wraps the lookup-based gc importer with the unsafe
// special case the compiler handles internally.
type exportImporter struct {
	gc types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.Import(path)
}

func inModule(module, path string) bool {
	return path == module || strings.HasPrefix(path, module+"/")
}

// goList runs `go list -export -e -json -deps` and decodes the JSON
// stream. CGO_ENABLED=0 keeps cgo variants (and therefore a C toolchain)
// out of the dependency closure.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list: %s", msg)
	}
	var out []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}
