package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"reflect"
	"testing"

	"sara/internal/lint"
	"sara/internal/lint/linttest"
)

func TestDirective(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "directive"), lint.Directive())
}

func TestHotPathAlloc(t *testing.T) {
	linttest.RunWith(t, linttest.Config{Module: "example.com/hot"},
		filepath.Join("testdata", "hotpath"), lint.HotPathAlloc())
}

func TestWakeBound(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "wakebound"), lint.WakeBound())
}

func TestHookDiscipline(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "hookdiscipline"), lint.HookDiscipline())
}

func TestDeterminism(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "determinism"), lint.Determinism())
}

func TestScanFacts(t *testing.T) {
	const src = `package p

//sara:hotpath
func Plain() {}

//sara:hotpath
func (k *Kernel) Step() {}

//sara:hotpath
func (h Heap[T]) Top() {}

func unmarked() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	facts := lint.ScanFacts(fset, []*ast.File{f})
	want := []string{"Heap.Top", "Kernel.Step", "Plain"}
	if !reflect.DeepEqual(facts.Hotpath, want) {
		t.Fatalf("ScanFacts = %v, want %v", facts.Hotpath, want)
	}
	for _, k := range want {
		if !facts.Has(k) {
			t.Errorf("Has(%q) = false", k)
		}
	}
	if facts.Has("unmarked") {
		t.Error("Has(unmarked) = true")
	}

	// Annotations in _test.go files never become facts.
	tf, err := parser.ParseFile(fset, "p_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if got := lint.ScanFacts(fset, []*ast.File{tf}); len(got.Hotpath) != 0 {
		t.Fatalf("ScanFacts over _test.go = %v, want empty", got.Hotpath)
	}
}

func TestSortDiagnostics(t *testing.T) {
	pos := func(file string, line, col int) token.Position {
		return token.Position{Filename: file, Line: line, Column: col}
	}
	ds := []lint.Diagnostic{
		{Pos: pos("b.go", 1, 1), Analyzer: "x", Message: "m"},
		{Pos: pos("a.go", 9, 2), Analyzer: "x", Message: "m"},
		{Pos: pos("a.go", 9, 1), Analyzer: "z", Message: "m"},
		{Pos: pos("a.go", 9, 1), Analyzer: "y", Message: "m"},
	}
	lint.SortDiagnostics(ds)
	got := make([]string, len(ds))
	for i, d := range ds {
		got[i] = d.String()
	}
	want := []string{
		"a.go:9:1: y: m",
		"a.go:9:1: z: m",
		"a.go:9:2: x: m",
		"b.go:1:1: x: m",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}
