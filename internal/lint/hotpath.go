package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the repo's 0 allocs/op contract statically. A
// function annotated //sara:hotpath — and every function it transitively
// calls within its package — must be free of syntactic allocation sites:
// make, new, append growth, capturing closures, interface boxing, fmt
// calls, string concatenation, map/slice literals, go and defer
// statements. Calls that cross into another module package must target a
// function that is itself //sara:hotpath (verified by that package's own
// pass and exported as a fact), so the contract composes module-wide from
// local reasoning — the way //go:nosplit does.
//
// The check is deliberately conservative: an append into a pre-sized
// scratch slice or a &T{} that the compiler keeps on the stack are
// flagged and carry a //sara:alloc-ok justification; `saravet -escape`
// runs the compiler's own escape analysis as the precise second opinion,
// and the -benchmem CI gate measures the steady state. Calls through
// interfaces (Ticker.Tick, Idler.NextActivity) are not traced — the
// concrete implementations carry their own //sara:hotpath marks, which is
// exactly what the annotation pass dogfoods.
//
// Expressions inside a panic(...) argument are exempt: a panicking run is
// already dead, and the kernel's invariant panics format their reports.
func HotPathAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotpathalloc",
		Doc:  "flag allocation sites reachable from //sara:hotpath functions",
		Run:  runHotPath,
	}
}

func runHotPath(p *Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	var funcs []*types.Func // declaration order, for deterministic output
	var roots []*types.Func
	for _, f := range p.SourceFiles() {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[obj] = fd
			funcs = append(funcs, obj)
			if hasDirective(fd.Doc, VerbHotpath) {
				roots = append(roots, obj)
			}
		}
	}

	// Transitive same-package closure over statically resolvable calls.
	inClosure := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if inClosure[fn] {
			return
		}
		inClosure[fn] = true
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// A panic argument only runs on a dying simulation; functions
			// reachable solely from there are cold, not hot.
			if isPanicCall(call) {
				return false
			}
			if callee, ok := p.ObjectOf(call.Fun).(*types.Func); ok {
				if _, local := decls[callee]; local {
					visit(callee)
				}
			}
			return true
		})
	}
	for _, r := range roots {
		visit(r)
	}

	for _, fn := range funcs {
		if inClosure[fn] {
			p.checkAllocFree(decls[fn], fn)
		}
	}
	return nil
}

// checkAllocFree walks one closure member's body and reports every
// syntactic allocation site.
func (p *Pass) checkAllocFree(fd *ast.FuncDecl, fn *types.Func) {
	where := FuncKey(fn)
	report := func(pos token.Pos, format string, args ...any) {
		args = append(args, where)
		p.Reportf(pos, VerbAllocOK, format+" in hot-path function %s", args...)
	}

	// sigs tracks the innermost function literal's signature so return
	// statements check against the right result types.
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if insidePanic(stack) {
			return true
		}
		// The panic call itself is exempt too (boxing into panic's any
		// parameter); its children are covered by the stack check above.
		if call, ok := n.(*ast.CallExpr); ok && isPanicCall(call) {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			p.checkCall(n, report)
		case *ast.CompositeLit:
			p.checkCompositeLit(n, stack, report)
		case *ast.FuncLit:
			p.checkFuncLit(n, report)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(p.TypeOf(n)) {
				report(n.OpPos, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(p.TypeOf(n.Lhs[0])) {
				report(n.TokPos, "string concatenation allocates")
			}
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				p.checkAssignBoxing(n, report)
			}
		case *ast.ValueSpec:
			p.checkValueSpecBoxing(n, report)
		case *ast.ReturnStmt:
			p.checkReturnBoxing(n, fd, stack, report)
		case *ast.GoStmt:
			report(n.Go, "go statement allocates a goroutine")
		case *ast.DeferStmt:
			report(n.Defer, "defer may allocate and delays the hot path")
		case *ast.SelectorExpr:
			p.checkMethodValue(n, stack, report)
		}
		return true
	})
}

// insidePanic reports whether the walk is inside a panic(...) argument.
func insidePanic(stack []ast.Node) bool {
	for _, a := range stack {
		if call, ok := a.(*ast.CallExpr); ok && isPanicCall(call) {
			return true
		}
	}
	return false
}

func isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (p *Pass) checkCall(call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	// Conversions T(x) — the type may be a named Ident or a type
	// expression like []byte, which no object resolves.
	if tv, ok := p.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			p.checkConversion(tv.Type, call.Args[0], call.Pos(), report)
		}
		return
	}
	switch obj := p.ObjectOf(call.Fun).(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			report(call.Pos(), "make allocates")
		case "new":
			report(call.Pos(), "new allocates (or escapes)")
		case "append":
			report(call.Pos(), "append may grow its backing array")
		}
	case *types.Func:
		pkg := obj.Pkg()
		if pkg != nil && pkg != p.Pkg {
			path := pkg.Path()
			switch {
			case path == "fmt":
				report(call.Pos(), "call to fmt.%s allocates", obj.Name())
			case p.Module != "" && p.InModule(path) && !isInterfaceMethod(obj):
				if !p.Facts[path].Has(FuncKey(obj)) {
					report(call.Pos(), "call to %s.%s, which is not //sara:hotpath", path, FuncKey(obj))
				}
			}
		}
	}
	p.checkCallArgBoxing(call, report)
}

// checkCallArgBoxing flags concrete non-pointer-shaped values passed into
// interface-typed parameters — each such argument is boxed on the heap.
func (p *Pass) checkCallArgBoxing(call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	sig, ok := p.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis != token.NoPos {
				// s... passes the slice through; no per-element boxing.
				continue
			}
			pt = params.At(n - 1).Type().(*types.Slice).Elem()
		case i < n:
			pt = params.At(i).Type()
		default:
			continue
		}
		if p.boxes(pt, arg) {
			report(arg.Pos(), "argument boxed into interface %s", pt)
		}
	}
}

func (p *Pass) checkAssignBoxing(n *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		if p.boxes(p.TypeOf(n.Lhs[i]), rhs) {
			report(rhs.Pos(), "value boxed into interface on assignment")
		}
	}
}

func (p *Pass) checkValueSpecBoxing(n *ast.ValueSpec, report func(token.Pos, string, ...any)) {
	if n.Type == nil {
		return
	}
	t := p.TypeOf(n.Type)
	for _, v := range n.Values {
		if p.boxes(t, v) {
			report(v.Pos(), "value boxed into interface on declaration")
		}
	}
}

func (p *Pass) checkReturnBoxing(n *ast.ReturnStmt, fd *ast.FuncDecl, stack []ast.Node, report func(token.Pos, string, ...any)) {
	sig := p.enclosingSignature(fd, stack)
	if sig == nil || sig.Results().Len() != len(n.Results) {
		return
	}
	for i, r := range n.Results {
		if p.boxes(sig.Results().At(i).Type(), r) {
			report(r.Pos(), "return value boxed into interface")
		}
	}
}

// enclosingSignature resolves the signature governing a return statement:
// the innermost enclosing func literal, or the declaration itself.
func (p *Pass) enclosingSignature(fd *ast.FuncDecl, stack []ast.Node) *types.Signature {
	for i := len(stack) - 1; i >= 0; i-- {
		if fl, ok := stack[i].(*ast.FuncLit); ok {
			sig, _ := p.TypeOf(fl).(*types.Signature)
			return sig
		}
	}
	if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
		return obj.Type().(*types.Signature)
	}
	return nil
}

func (p *Pass) checkConversion(target types.Type, arg ast.Expr, pos token.Pos, report func(token.Pos, string, ...any)) {
	at := p.TypeOf(arg)
	if at == nil {
		return
	}
	if isString(target) {
		if s, ok := at.Underlying().(*types.Slice); ok && isByteOrRune(s.Elem()) {
			report(pos, "[]byte/[]rune-to-string conversion allocates")
		}
		return
	}
	if s, ok := target.Underlying().(*types.Slice); ok && isByteOrRune(s.Elem()) && isString(at) {
		report(pos, "string-to-slice conversion allocates")
		return
	}
	if p.boxes(target, arg) {
		report(pos, "conversion boxes value into interface %s", target)
	}
}

func (p *Pass) checkCompositeLit(n *ast.CompositeLit, stack []ast.Node, report func(token.Pos, string, ...any)) {
	t := p.TypeOf(n)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		report(n.Pos(), "map literal allocates")
	case *types.Slice:
		report(n.Pos(), "slice literal allocates")
	default:
		if len(stack) > 0 {
			if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
				report(u.OpPos, "address of composite literal may escape to the heap")
			}
		}
	}
}

func (p *Pass) checkFuncLit(n *ast.FuncLit, report func(token.Pos, string, ...any)) {
	captures := false
	ast.Inspect(n.Body, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level state is addressed statically, not captured.
		if v.Parent() == p.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		// Declared outside the literal's own body/params => captured.
		if v.Pos() < n.Pos() || v.Pos() > n.End() {
			captures = true
		}
		return true
	})
	if captures {
		report(n.Pos(), "func literal captures variables and allocates a closure")
	}
}

// checkMethodValue flags x.M used as a value (not called): binding the
// receiver allocates a closure.
func (p *Pass) checkMethodValue(se *ast.SelectorExpr, stack []ast.Node, report func(token.Pos, string, ...any)) {
	sel := p.Info.Selections[se]
	if sel == nil || sel.Kind() != types.MethodVal {
		return
	}
	if len(stack) > 0 {
		if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == se {
			return
		}
	}
	report(se.Sel.Pos(), "method value binds its receiver and allocates")
}

// boxes reports whether assigning arg into an lhs of type target boxes a
// concrete value on the heap: target is an interface, arg's type is
// concrete, and the value is not pointer-shaped (pointers, channels, maps
// and funcs are stored in the interface word directly).
func (p *Pass) boxes(target types.Type, arg ast.Expr) bool {
	if target == nil {
		return false
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := p.Info.Types[arg]
	if !ok || tv.IsNil() {
		return false
	}
	at := tv.Type
	if at == nil {
		return false
	}
	switch at.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if at.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRune(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Byte || b.Kind() == types.Uint8 ||
		b.Kind() == types.Rune || b.Kind() == types.Int32
}
