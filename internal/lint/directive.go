package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //sara: directive vocabulary. Every suppression verb requires a
// justification — the directive analyzer rejects a bare one — so each
// escape hatch doubles as its own audit trail.
//
//	//sara:hotpath              on a function declaration's doc comment:
//	                            the function (and everything it calls
//	                            inside the module) is under the
//	                            allocation-free hot-path contract.
//	//sara:alloc-ok <reason>    suppress a hotpathalloc finding on this line.
//	//sara:bound-ok <reason>    suppress a wakebound finding on this line.
//	//sara:hook-ok <reason>     suppress a hookdiscipline finding on this line.
//	//sara:maprange-ok <reason> suppress a determinism map-iteration finding.
//	//sara:wallclock <reason>   allow a time.Now on this line (watchdog
//	                            deadlines are about the host, not the
//	                            simulated clock).
//
// A directive suppresses findings on its own line and, when it stands on
// a line of its own, on the line directly below it.
const (
	VerbHotpath    = "hotpath"
	VerbAllocOK    = "alloc-ok"
	VerbBoundOK    = "bound-ok"
	VerbHookOK     = "hook-ok"
	VerbMaprangeOK = "maprange-ok"
	VerbWallclock  = "wallclock"
)

// directivePrefix is what marks a comment as part of the vocabulary.
const directivePrefix = "//sara:"

// reasonRequired reports whether verb must carry a justification.
func reasonRequired(verb string) bool { return verb != VerbHotpath }

func knownVerb(verb string) bool {
	switch verb {
	case VerbHotpath, VerbAllocOK, VerbBoundOK, VerbHookOK, VerbMaprangeOK, VerbWallclock:
		return true
	}
	return false
}

// directive is one parsed //sara: comment.
type directive struct {
	verb   string
	reason string
	pos    token.Pos
}

// parseDirective splits one comment's text, returning ok=false for
// comments outside the vocabulary.
func parseDirective(c *ast.Comment) (directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return directive{}, false
	}
	rest := c.Text[len(directivePrefix):]
	verb, reason, _ := strings.Cut(rest, " ")
	return directive{verb: verb, reason: strings.TrimSpace(reason), pos: c.Pos()}, true
}

// hasDirective reports whether the doc comment group carries verb.
func hasDirective(doc *ast.CommentGroup, verb string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if d, ok := parseDirective(c); ok && d.verb == verb {
			return true
		}
	}
	return false
}

// directiveIndex resolves suppression lookups: for each file, the set of
// verbs present on each line.
type directiveIndex struct {
	// byFile maps filename -> line -> verbs on that line.
	byFile map[string]map[int][]string
	// all retains every parsed directive for the directive analyzer.
	all []directive
}

func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{byFile: map[string]map[int][]string{}}
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				idx.all = append(idx.all, d)
				p := fset.Position(c.Pos())
				lines := idx.byFile[p.Filename]
				if lines == nil {
					lines = map[int][]string{}
					idx.byFile[p.Filename] = lines
				}
				lines[p.Line] = append(lines[p.Line], d.verb)
			}
		}
	}
	return idx
}

// suppressed reports whether a finding at pos is covered by a verb
// directive on the same line or the line directly above.
func (idx *directiveIndex) suppressed(pos token.Position, verb string) bool {
	lines := idx.byFile[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, v := range lines[l] {
			if v == verb {
				return true
			}
		}
	}
	return false
}

// Directive validates the //sara: vocabulary itself: unknown verbs,
// suppressions without a justification, and //sara:hotpath comments that
// are not the doc comment of a function declaration (a hotpath mark that
// annotates nothing silently enforces nothing).
func Directive() *Analyzer {
	return &Analyzer{
		Name: "saradirective",
		Doc:  "validate //sara: directive spelling, placement and required justifications",
		Run:  runDirective,
	}
}

func runDirective(p *Pass) error {
	for _, f := range p.SourceFiles() {
		// The doc-comment groups of function declarations, where
		// //sara:hotpath is legal.
		funcDocs := map[*ast.CommentGroup]bool{}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = true
			}
		}
		for _, g := range f.Comments {
			for _, c := range g.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				switch {
				case !knownVerb(d.verb):
					p.Reportf(c.Pos(), "",
						"unknown //sara: directive %q (known: hotpath, alloc-ok, bound-ok, hook-ok, maprange-ok, wallclock)", d.verb)
				case reasonRequired(d.verb) && d.reason == "":
					p.Reportf(c.Pos(), "",
						"//sara:%s requires a justification: //sara:%s <reason>", d.verb, d.verb)
				case d.verb == VerbHotpath && d.reason != "":
					p.Reportf(c.Pos(), "",
						"//sara:hotpath takes no argument (found %q)", d.reason)
				case d.verb == VerbHotpath && !funcDocs[g]:
					p.Reportf(c.Pos(), "",
						"misplaced //sara:hotpath: must be in the doc comment of a function declaration")
				}
			}
		}
	}
	return nil
}
