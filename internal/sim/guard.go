// Run-loop guardrails: a watchdog on the kernel's run loop that detects
// livelock (a cycle budget on executed cycles, a progress budget on an
// externally supplied counter, and parked-at-never deadlock with work
// outstanding) plus wall-clock timeouts, and a checked run entry point
// that converts both watchdog trips and internal invariant panics into
// typed errors at the run boundary instead of spinning or crashing the
// whole process.
//
// Everything here is strictly off the steady-state path: Run and Step are
// untouched, and RunChecked with a nil watchdog degenerates to Run plus a
// single deferred recover, so the 0 allocs/op benchmarks are unaffected.

package sim

import (
	"fmt"
	"runtime/debug"
	"strings"
	"time"
)

// Watchdog bounds a kernel run. The zero value of each field disables
// that check; a zero-value Watchdog as a whole only buys panic
// containment (which RunChecked provides with a nil watchdog too).
type Watchdog struct {
	// MaxExecuted aborts the run after this many executed (non-skipped)
	// cycles. With idle skipping active, executed cycles measure actual
	// work, so a run that should be mostly quiescent but spins busy every
	// cycle trips this budget long before its horizon.
	MaxExecuted uint64
	// Deadline aborts the run when wall-clock time passes it. The clock
	// is sampled every CheckEvery executed cycles, so a run overshoots
	// the deadline by at most one check interval of simulation work (or
	// by however long a single Tick blocks — cooperative, like all Go
	// timeouts without preemption).
	Deadline time.Time
	// CheckEvery is the number of executed cycles between the periodic
	// checks (deadline, progress, parked-deadlock); 0 selects 4096.
	CheckEvery uint64
	// Outstanding reports how much work is still in flight (for a SoC
	// run: transactions generated but not yet completed). When it is
	// non-nil and reports > 0 while the wake heap is fully parked at
	// never with no events pending, the run can provably never act
	// again — the watchdog aborts with a DeadlockError instead of
	// fast-forwarding to the horizon and returning silently-truncated
	// results.
	Outstanding func() uint64
	// Progress, with ProgressBudget, is the no-progress livelock
	// detector: if Progress() does not change for ProgressBudget
	// executed cycles, the run is declared stuck. The counter can be
	// anything monotonic that moves when real work happens (completed
	// transactions, issued DRAM commands).
	Progress       func() uint64
	ProgressBudget uint64
}

// defaultCheckEvery is the periodic-check cadence when CheckEvery is 0.
const defaultCheckEvery = 4096

// IdlerState is one registered idler's wake state in a DeadlockError
// diagnostic dump: its cached wake-heap bound and its live NextActivity
// answer at the moment the watchdog tripped.
type IdlerState struct {
	// ID is the idler's wake-heap id (registration order among idlers).
	ID int
	// Name labels the component: its Name() or Label() if it has one,
	// otherwise its Go type.
	Name string
	// CachedWake is the wake heap's cached lower bound; Parked means the
	// entry sits at never (the component reported it will not act again
	// without external input).
	CachedWake Cycle
	Parked     bool
	// Hint and HintOK are the component's live NextActivity answer.
	Hint   Cycle
	HintOK bool
}

// DeadlockError reports a watchdog trip: the run was aborted because it
// provably or heuristically stopped making progress. It carries the
// per-idler wake-state dump so a parked or spinning component can be
// identified without re-running under a debugger.
type DeadlockError struct {
	// Reason is a one-line diagnosis ("cycle budget exceeded", ...).
	Reason string
	// Now and Executed locate the trip in simulated time.
	Now      Cycle
	Executed uint64
	// Outstanding is the watchdog's Outstanding() answer at the trip
	// (0 if no probe was configured).
	Outstanding uint64
	// Idlers is the wake-state dump, in wake-heap id order.
	Idlers []IdlerState
}

// Error summarizes the trip and appends the wake-state dump.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %s at cycle %d (%d executed, %d outstanding)",
		e.Reason, e.Now, e.Executed, e.Outstanding)
	for _, st := range e.Idlers {
		wake := fmt.Sprint(st.CachedWake)
		if st.Parked {
			wake = "never"
		}
		hint := "never"
		if st.HintOK {
			hint = fmt.Sprint(st.Hint)
		}
		fmt.Fprintf(&b, "\n  idler %2d %-24s cached=%s live=%s", st.ID, st.Name, wake, hint)
	}
	return b.String()
}

// PanicError wraps a panic recovered at the run boundary — an internal
// invariant trip (double wire, heap corruption), a component bug, or an
// injected fault — as an error, so one bad run in a sweep reports instead
// of taking the process down.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error reports the panic value (the stack is carried separately so
// callers control how much of it they print).
func (e *PanicError) Error() string { return fmt.Sprintf("sim: run panicked: %v", e.Value) }

// Unwrap exposes a panic value that was itself an error (such as an
// *InvariantError), so errors.As sees through the recovery.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// InvariantError is the panic value used by the kernel's own invariant
// checks (Register after start, zero-period Every). Surfacing them as a
// typed value lets RunChecked callers distinguish "the kernel caught a
// misuse" from an arbitrary component panic.
type InvariantError struct{ Msg string }

// Error returns the invariant message.
func (e *InvariantError) Error() string { return e.Msg }

// invariant builds the typed panic value for kernel invariant trips.
func invariant(msg string) *InvariantError { return &InvariantError{Msg: msg} }

// SetWatchdog installs (or, with nil, removes) the run watchdog and
// resets its counters. The watchdog only acts through RunChecked; plain
// Run ignores it, keeping the benchmark hot loop byte-identical.
func (k *Kernel) SetWatchdog(wd *Watchdog) {
	k.wd = wd
	k.executed = 0
	k.wdCountdown = 0
	k.progressAt = 0
	if wd != nil && wd.Progress != nil {
		k.lastProgress = wd.Progress()
	}
}

// ExecutedCycles reports how many cycles the guarded run loop has
// executed since the watchdog was armed (0 under plain Run).
func (k *Kernel) ExecutedCycles() uint64 { return k.executed }

// RunChecked advances the simulation like Run, but contains failures:
// any panic raised by an event, a ticker or the kernel's own invariant
// checks is recovered into a *PanicError, and if a watchdog is installed
// the run is additionally bounded by its budgets, returning a
// *DeadlockError when one trips. A nil error means the horizon was
// reached normally.
func (k *Kernel) RunChecked(horizon Cycle) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if k.wd == nil {
		k.Run(horizon)
		return nil
	}
	return k.runGuarded(horizon)
}

// RunForChecked is RunChecked over a relative span.
func (k *Kernel) RunForChecked(n Cycle) error { return k.RunChecked(k.now + n) }

// runGuarded is Run's loop with the watchdog checks woven in: the cycle
// budget every executed cycle (one compare), the clock/progress/deadlock
// checks every CheckEvery executed cycles, and a final parked-deadlock
// check before declaring the horizon reached.
func (k *Kernel) runGuarded(horizon Cycle) error {
	wd := k.wd
	every := wd.CheckEvery
	if every == 0 {
		every = defaultCheckEvery
	}
	skip := k.IdleSkipActive()
	for k.now < horizon {
		k.Step()
		k.executed++
		if wd.MaxExecuted > 0 && k.executed > wd.MaxExecuted {
			return k.deadlock(fmt.Sprintf("cycle budget exceeded (%d executed cycles)", wd.MaxExecuted))
		}
		if k.wdCountdown == 0 {
			k.wdCountdown = every
			if err := k.wdCheck(); err != nil {
				return err
			}
		}
		k.wdCountdown--
		if skip && k.now < horizon {
			k.fastForward(horizon)
		}
	}
	// The horizon was reached: flush batched dormant-cycle bookkeeping
	// exactly as plain Run does (mid-run deadlock returns skip this — a
	// tripped run's stats are diagnostic, not results).
	k.settleRun()
	// A fully parked system fast-forwards to the horizon almost
	// instantly, so the periodic check may never have seen it; catch the
	// silent-truncation case on the way out.
	return k.checkParked()
}

// wdCheck runs the periodic (per-CheckEvery) watchdog checks.
func (k *Kernel) wdCheck() error {
	wd := k.wd
	//sara:wallclock the watchdog's deadline check is about the host clock by design
	if !wd.Deadline.IsZero() && time.Now().After(wd.Deadline) {
		return k.deadlock(fmt.Sprintf("wall-clock deadline exceeded (%s)", wd.Deadline.Format(time.RFC3339)))
	}
	if wd.Progress != nil && wd.ProgressBudget > 0 {
		if p := wd.Progress(); p != k.lastProgress {
			k.lastProgress = p
			k.progressAt = k.executed
		} else if k.executed-k.progressAt > wd.ProgressBudget {
			return k.deadlock(fmt.Sprintf("no progress in %d executed cycles", k.executed-k.progressAt))
		}
	}
	return k.checkParked()
}

// checkParked detects the provable deadlock: every idler parked at
// never, no event pending, and the outstanding probe reporting work
// still in flight — nothing can ever act again, yet the run is not done.
func (k *Kernel) checkParked() error {
	wd := k.wd
	if wd.Outstanding == nil || len(k.events) > 0 {
		return nil
	}
	for _, at := range k.wakes.at {
		if at != never {
			return nil
		}
	}
	if n := wd.Outstanding(); n > 0 {
		return k.deadlock(fmt.Sprintf("all %d idlers parked with %d transactions outstanding", len(k.idlers), n))
	}
	return nil
}

// deadlock builds a DeadlockError with the current wake-state dump.
func (k *Kernel) deadlock(reason string) *DeadlockError {
	e := &DeadlockError{
		Reason:   reason,
		Now:      k.now,
		Executed: k.executed,
		Idlers:   k.idlerDump(),
	}
	if k.wd.Outstanding != nil {
		e.Outstanding = k.wd.Outstanding()
	}
	return e
}

// idlerDump snapshots every idler's cached wake bound and live hint.
// Error path only; allocation here is fine.
func (k *Kernel) idlerDump() []IdlerState {
	out := make([]IdlerState, len(k.idlers))
	for i, id := range k.idlers {
		st := IdlerState{ID: i, Name: idlerName(id), CachedWake: k.wakes.at[i]}
		st.Parked = st.CachedWake == never
		st.Hint, st.HintOK = id.NextActivity(k.now)
		out[i] = st
	}
	return out
}

// idlerName labels a component for the diagnostic dump.
func idlerName(v any) string {
	switch n := v.(type) {
	case interface{ Name() string }:
		return n.Name()
	case interface{ Label() string }:
		return n.Label()
	}
	return fmt.Sprintf("%T", v)
}
