package sim

import "math"

// Rand is a small deterministic pseudo-random generator (splitmix64).
// Every traffic source owns its own Rand derived from the system seed, so
// adding or removing a core never perturbs the streams of the others —
// a property the reproducibility tests rely on.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Fork derives an independent stream labeled by id. Streams with different
// ids (or from different parents) are statistically independent.
func (r *Rand) Fork(id uint64) *Rand {
	// Mix the id through one splitmix64 round of the parent state so forks
	// of forks stay decorrelated.
	return NewRand(mix64(r.state ^ mix64(id+0x9e3779b97f4a7c15)))
}

func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m,
// i.e. the gap between events of a Bernoulli process. It is used for
// sporadic (DSP/audio-like) inter-arrival times. The result is at least 1.
func (r *Rand) Geometric(m float64) uint64 {
	if m <= 1 {
		return 1
	}
	p := 1.0 / m
	// Inverse-CDF sampling; u in (0,1].
	u := 1.0 - r.Float64()
	return 1 + uint64(math.Log(u)/math.Log(1.0-p))
}
