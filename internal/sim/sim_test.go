package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelTickOrder(t *testing.T) {
	var k Kernel
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Register(TickFunc(func(Cycle) { order = append(order, i) }))
	}
	k.Step()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("tick order %v, want [0 1 2]", order)
	}
}

func TestKernelRegisterAfterStartPanics(t *testing.T) {
	var k Kernel
	k.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Register after start")
		}
	}()
	k.Register(TickFunc(func(Cycle) {}))
}

func TestKernelEventsFireInOrder(t *testing.T) {
	var k Kernel
	var fired []Cycle
	k.At(5, func(now Cycle) { fired = append(fired, now) })
	k.At(2, func(now Cycle) { fired = append(fired, now) })
	k.At(2, func(now Cycle) { fired = append(fired, now+100) }) // same-cycle tiebreak by schedule order
	k.Run(10)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if fired[0] != 2 || fired[1] != 102 || fired[2] != 5 {
		t.Fatalf("fire order %v, want [2 102 5]", fired)
	}
}

func TestKernelEventBeforeTickers(t *testing.T) {
	var k Kernel
	var log []string
	k.Register(TickFunc(func(Cycle) { log = append(log, "tick") }))
	k.At(0, func(Cycle) { log = append(log, "event") })
	k.Step()
	if log[0] != "event" || log[1] != "tick" {
		t.Fatalf("order %v, want event before tick", log)
	}
}

func TestKernelAfterAndEvery(t *testing.T) {
	var k Kernel
	var at []Cycle
	k.After(3, func(now Cycle) { at = append(at, now) })
	k.Every(4, func(now Cycle) { at = append(at, now) })
	k.Run(13)
	want := []Cycle{3, 4, 8, 12}
	if len(at) != len(want) {
		t.Fatalf("fired at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	}
}

func TestKernelEveryZeroPanics(t *testing.T) {
	var k Kernel
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Every(0)")
		}
	}()
	k.Every(0, func(Cycle) {})
}

func TestPastEventFiresNextStep(t *testing.T) {
	var k Kernel
	k.Run(10)
	fired := false
	k.At(3, func(Cycle) { fired = true })
	k.Step()
	if !fired {
		t.Fatal("past-due event did not fire on next step")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRandForkIndependence(t *testing.T) {
	r := NewRand(7)
	a, b := r.Fork(1), r.Fork(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collided %d times", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Intn(0)")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandGeometricMean(t *testing.T) {
	r := NewRand(11)
	const mean = 50.0
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		g := r.Geometric(mean)
		if g < 1 {
			t.Fatalf("geometric sample %d below 1", g)
		}
		sum += float64(g)
	}
	got := sum / n
	if got < 0.9*mean || got > 1.1*mean {
		t.Fatalf("geometric mean %.1f, want ~%.0f", got, mean)
	}
}

func TestRandGeometricDegenerate(t *testing.T) {
	r := NewRand(1)
	if g := r.Geometric(0.5); g != 1 {
		t.Fatalf("Geometric(0.5) = %d, want 1", g)
	}
}

func TestRandBoolProbability(t *testing.T) {
	r := NewRand(3)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) frequency %.3f, want ~0.30", frac)
	}
}
