package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelTickOrder(t *testing.T) {
	var k Kernel
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Register(TickFunc(func(Cycle) { order = append(order, i) }))
	}
	k.Step()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("tick order %v, want [0 1 2]", order)
	}
}

func TestKernelRegisterAfterStartPanics(t *testing.T) {
	var k Kernel
	k.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Register after start")
		}
	}()
	k.Register(TickFunc(func(Cycle) {}))
}

func TestKernelEventsFireInOrder(t *testing.T) {
	var k Kernel
	var fired []Cycle
	k.At(5, func(now Cycle) { fired = append(fired, now) })
	k.At(2, func(now Cycle) { fired = append(fired, now) })
	k.At(2, func(now Cycle) { fired = append(fired, now+100) }) // same-cycle tiebreak by schedule order
	k.Run(10)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if fired[0] != 2 || fired[1] != 102 || fired[2] != 5 {
		t.Fatalf("fire order %v, want [2 102 5]", fired)
	}
}

func TestKernelEventBeforeTickers(t *testing.T) {
	var k Kernel
	var log []string
	k.Register(TickFunc(func(Cycle) { log = append(log, "tick") }))
	k.At(0, func(Cycle) { log = append(log, "event") })
	k.Step()
	if log[0] != "event" || log[1] != "tick" {
		t.Fatalf("order %v, want event before tick", log)
	}
}

func TestKernelAfterAndEvery(t *testing.T) {
	var k Kernel
	var at []Cycle
	k.After(3, func(now Cycle) { at = append(at, now) })
	k.Every(4, func(now Cycle) { at = append(at, now) })
	k.Run(13)
	want := []Cycle{3, 4, 8, 12}
	if len(at) != len(want) {
		t.Fatalf("fired at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	}
}

func TestKernelEveryZeroPanics(t *testing.T) {
	var k Kernel
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Every(0)")
		}
	}()
	k.Every(0, func(Cycle) {})
}

func TestPastEventFiresNextStep(t *testing.T) {
	var k Kernel
	k.Run(10)
	fired := false
	k.At(3, func(Cycle) { fired = true })
	k.Step()
	if !fired {
		t.Fatal("past-due event did not fire on next step")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRandForkIndependence(t *testing.T) {
	r := NewRand(7)
	a, b := r.Fork(1), r.Fork(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collided %d times", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Intn(0)")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandGeometricMean(t *testing.T) {
	r := NewRand(11)
	const mean = 50.0
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		g := r.Geometric(mean)
		if g < 1 {
			t.Fatalf("geometric sample %d below 1", g)
		}
		sum += float64(g)
	}
	got := sum / n
	if got < 0.9*mean || got > 1.1*mean {
		t.Fatalf("geometric mean %.1f, want ~%.0f", got, mean)
	}
}

func TestRandGeometricDegenerate(t *testing.T) {
	r := NewRand(1)
	if g := r.Geometric(0.5); g != 1 {
		t.Fatalf("Geometric(0.5) = %d, want 1", g)
	}
}

func TestRandBoolProbability(t *testing.T) {
	r := NewRand(3)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) frequency %.3f, want ~0.30", frac)
	}
}

// fakeIdler is a ticker with a scripted wake schedule.
type fakeIdler struct {
	wakes  []Cycle // sorted cycles at which it has work
	ticked []Cycle // cycles at which Tick observed work
}

func (f *fakeIdler) Tick(now Cycle) {
	for len(f.wakes) > 0 && f.wakes[0] <= now {
		if f.wakes[0] == now {
			f.ticked = append(f.ticked, now)
		}
		f.wakes = f.wakes[1:]
	}
}

func (f *fakeIdler) NextActivity(now Cycle) (Cycle, bool) {
	if len(f.wakes) == 0 {
		return 0, false
	}
	if f.wakes[0] <= now {
		return now, true
	}
	return f.wakes[0], true
}

func TestKernelIdleSkipJumpsToNextActivity(t *testing.T) {
	var k Kernel
	f := &fakeIdler{wakes: []Cycle{3, 100, 5000}}
	k.Register(f)
	if !k.IdleSkipActive() {
		t.Fatal("idle skip should be active with only Idler tickers")
	}
	k.Run(10000)
	if k.Now() != 10000 {
		t.Fatalf("final cycle %d, want 10000", k.Now())
	}
	want := []Cycle{3, 100, 5000}
	if len(f.ticked) != len(want) {
		t.Fatalf("ticked at %v, want %v", f.ticked, want)
	}
	for i := range want {
		if f.ticked[i] != want[i] {
			t.Fatalf("ticked at %v, want %v", f.ticked, want)
		}
	}
	if k.SkippedCycles() == 0 {
		t.Fatal("no cycles skipped across a 10000-cycle idle run")
	}
	if executed := uint64(k.Now()) - k.SkippedCycles(); executed > 10 {
		t.Fatalf("executed %d cycles, want only the scheduled wakes (plus cycle 0)", executed)
	}
}

func TestKernelIdleSkipBoundedByEvents(t *testing.T) {
	var k Kernel
	f := &fakeIdler{wakes: []Cycle{9000}}
	k.Register(f)
	var fired []Cycle
	k.Every(1000, func(now Cycle) { fired = append(fired, now) })
	k.Run(4500)
	want := []Cycle{1000, 2000, 3000, 4000}
	if len(fired) != len(want) {
		t.Fatalf("events fired at %v, want %v", fired, want)
	}
}

func TestKernelOpaqueTickerDisablesSkip(t *testing.T) {
	var k Kernel
	k.Register(&fakeIdler{})
	k.Register(TickFunc(func(Cycle) {}))
	if k.IdleSkipActive() {
		t.Fatal("TickFunc is opaque; skipping must be disabled")
	}
	k.Run(100)
	if k.SkippedCycles() != 0 {
		t.Fatalf("skipped %d cycles with an opaque ticker registered", k.SkippedCycles())
	}
}

func TestKernelSetIdleSkipOff(t *testing.T) {
	var k Kernel
	k.Register(&fakeIdler{wakes: []Cycle{50}})
	k.SetIdleSkip(false)
	k.Run(100)
	if k.SkippedCycles() != 0 {
		t.Fatalf("skipped %d cycles with skipping disabled", k.SkippedCycles())
	}
}

func TestKernelAtArg(t *testing.T) {
	var k Kernel
	payload := new(int)
	*payload = 7
	var got int
	k.AtArg(5, func(now Cycle, arg any) { got = *arg.(*int) + int(now) }, payload)
	k.Run(10)
	if got != 12 {
		t.Fatalf("AtArg callback got %d, want 12", got)
	}
}

func TestKernelAtArgOrderedWithAt(t *testing.T) {
	var k Kernel
	var order []string
	k.At(3, func(Cycle) { order = append(order, "a") })
	k.AtArg(3, func(Cycle, any) { order = append(order, "b") }, nil)
	k.At(3, func(Cycle) { order = append(order, "c") })
	k.Run(5)
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("same-cycle mixed events fired as %v, want [a b c]", order)
	}
}

func TestKernelNextWake(t *testing.T) {
	var k Kernel
	k.Register(&fakeIdler{wakes: []Cycle{40}})
	k.At(25, func(Cycle) {})
	if got := k.NextWake(1000); got != 25 {
		t.Fatalf("NextWake = %d, want 25 (event before ticker wake)", got)
	}
	k.Run(30)
	if got := k.NextWake(1000); got != 40 {
		t.Fatalf("NextWake = %d, want 40 (ticker wake)", got)
	}
	if got := k.NextWake(35); got != 35 {
		t.Fatalf("NextWake = %d, want horizon cap 35", got)
	}
}

// cachedSleeper models a component that caches its wake cycle instead of
// recomputing it per query — the noc.Router idiom. Its NextActivity is a
// pure read of the cache; Rearm is the external wake propagation, and —
// per the push-based contract — it forwards every external re-arm to the
// kernel wake handle received through BindWake.
type cachedSleeper struct {
	wakeAt Cycle
	wake   WakeHandle
	acted  []Cycle
}

const sleeperNever = ^Cycle(0)

func (s *cachedSleeper) BindWake(h WakeHandle) { s.wake = h }

func (s *cachedSleeper) Rearm(at Cycle) {
	if at < s.wakeAt {
		s.wakeAt = at
	}
	s.wake.Rearm(at)
}

func (s *cachedSleeper) Tick(now Cycle) {
	if now >= s.wakeAt {
		s.acted = append(s.acted, now)
		s.wakeAt = sleeperNever
	}
}

func (s *cachedSleeper) NextActivity(now Cycle) (Cycle, bool) {
	if s.wakeAt == sleeperNever {
		return 0, false
	}
	if s.wakeAt <= now {
		return now, true
	}
	return s.wakeAt, true
}

// TestKernelReArmedWakeHonored pins the push-based wake-propagation
// contract for components that cache their next activity: when an
// external event lands mid-sleep and re-arms an EARLIER wake through the
// component's WakeHandle, the kernel must execute the re-armed cycle —
// including reviving an entry that had parked at never. The skipping run
// must act on exactly the same cycles as the cycle-stepped reference.
func TestKernelReArmedWakeHonored(t *testing.T) {
	run := func(skip bool) []Cycle {
		var k Kernel
		s := &cachedSleeper{wakeAt: 900}
		k.Register(s)
		// The upstream injections: at cycle 50 something lands in the
		// sleeper's queue that advances its next action to cycle 55
		// (ahead of the cached 900), and after the cache is consumed a
		// second injection at 300 arms a fresh wake.
		k.At(50, func(now Cycle) { s.Rearm(now + 5) })
		k.At(300, func(now Cycle) { s.Rearm(now + 10) })
		k.SetIdleSkip(skip)
		k.Run(1000)
		return s.acted
	}
	ref, fast := run(false), run(true)
	want := []Cycle{55, 310}
	if len(ref) != len(want) || ref[0] != want[0] || ref[1] != want[1] {
		t.Fatalf("reference acted at %v, want %v", ref, want)
	}
	if len(fast) != len(ref) {
		t.Fatalf("skipping acted at %v, reference at %v", fast, ref)
	}
	for i := range ref {
		if fast[i] != ref[i] {
			t.Fatalf("skipping acted at %v, reference at %v", fast, ref)
		}
	}
}

// busyBurst is busy every cycle in [0, busyUntil), then has one final
// wake at lateWake.
type busyBurst struct {
	busyUntil Cycle
	lateWake  Cycle
	acted     []Cycle
}

func (b *busyBurst) Tick(now Cycle) {
	if now < b.busyUntil || now == b.lateWake {
		b.acted = append(b.acted, now)
	}
}

func (b *busyBurst) NextActivity(now Cycle) (Cycle, bool) {
	if now < b.busyUntil {
		return now, true
	}
	if now <= b.lateWake {
		return b.lateWake, true
	}
	return 0, false
}

// TestKernelBusyLatch pins the busy-streak latch: a sustained busy burst
// must execute every cycle (identically to the stepped reference), the
// probe-free latched cycles included, and once the burst ends the kernel
// must still discover the idle stretch and skip it — at most busyLatchMax
// cycles late.
func TestKernelBusyLatch(t *testing.T) {
	run := func(skip bool) (acted []Cycle, skipped uint64) {
		var k Kernel
		b := &busyBurst{busyUntil: 100, lateWake: 5000}
		k.Register(b)
		k.SetIdleSkip(skip)
		k.Run(6000)
		return b.acted, k.SkippedCycles()
	}
	ref, _ := run(false)
	fast, skipped := run(true)
	if len(ref) != len(fast) {
		t.Fatalf("acted %d cycles skipping, %d stepped", len(fast), len(ref))
	}
	for i := range ref {
		if ref[i] != fast[i] {
			t.Fatalf("action %d at cycle %d skipping, %d stepped", i, fast[i], ref[i])
		}
	}
	// The idle stretch (100..5000) must still be skipped, minus at most
	// busyLatchMax latched cycles at its head.
	if skipped < 4900-2*busyLatchMax {
		t.Fatalf("skipped only %d cycles; the latch must not defeat idle skipping", skipped)
	}
}

func TestEventHeapManyEvents(t *testing.T) {
	var k Kernel
	r := NewRand(9)
	var fired []Cycle
	for i := 0; i < 500; i++ {
		at := Cycle(r.Intn(2000))
		k.At(at, func(now Cycle) { fired = append(fired, now) })
	}
	k.Run(2001)
	if len(fired) != 500 {
		t.Fatalf("fired %d events, want 500", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events fired out of order at %d: %d after %d", i, fired[i], fired[i-1])
		}
	}
}

// unboundSleeper is the negative control for the push contract: it caches
// its wake like cachedSleeper but never forwards re-arms to the kernel.
type unboundSleeper struct {
	cachedSleeper
}

func (s *unboundSleeper) BindWake(WakeHandle) {} // deliberately dropped

func (s *unboundSleeper) Rearm(at Cycle) {
	if at < s.wakeAt {
		s.wakeAt = at
	}
}

// TestWakeHeapRequiresRearm documents the contract inversion: a cached
// component whose external wakes are NOT pushed through its WakeHandle is
// handled correctly by the SetForcePoll linear reference (which re-reads
// every hint each executed cycle) but missed by the active-list kernel —
// that gap is exactly why BindWake forwarding is mandatory, and why the
// differential suites run the poll reference against the active list.
func TestWakeHeapRequiresRearm(t *testing.T) {
	run := func(poll bool) []Cycle {
		SetForcePoll(poll)
		defer SetForcePoll(false)
		var k Kernel
		s := &unboundSleeper{}
		s.wakeAt = sleeperNever
		k.Register(s)
		anchor := &fakeIdler{wakes: []Cycle{990}} // keeps the run alive past the re-arm
		k.Register(anchor)
		k.At(50, func(now Cycle) { s.Rearm(now + 5) })
		k.Run(1000)
		return s.acted
	}
	if got := run(true); len(got) != 1 || got[0] != 55 {
		t.Fatalf("poll reference acted at %v, want [55]", got)
	}
	// Under the active list the unbound sleeper's kernel entry stays
	// parked at never, so it is never ticked again and never acts at all —
	// not even late. (Before the active list it would have acted 935
	// cycles late, at the anchor's executed cycle 990; now the dropped
	// re-arm silences it completely, which is the equivalence bug the
	// contract forbids.)
	if got := run(false); len(got) != 0 {
		t.Fatalf("active list acted at %v for an unbound sleeper, want no acts at all", got)
	}
}

// TestKernelRearmOutOfRangePanics pins the Rearm wiring check: an
// out-of-range idler id is a silently missed wake waiting to happen, so
// it must die with a typed *InvariantError instead of being dropped.
func TestKernelRearmOutOfRangePanics(t *testing.T) {
	var k Kernel
	k.Register(&fakeIdler{wakes: []Cycle{5}})
	for _, id := range []int{-1, 1, 99} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Rearm(%d) did not panic", id)
				}
				if _, ok := r.(*InvariantError); !ok {
					t.Fatalf("Rearm(%d) panicked with %T (%v), want *InvariantError", id, r, r)
				}
			}()
			k.Rearm(id, 10)
		}()
	}
	// In-range re-arms still work after the checks.
	k.Rearm(0, 3)
	if k.wakes.at[0] != 0 { // initial cached wake is 0; 3 is an ignored increase
		t.Fatalf("valid Rearm broke the cached wake: %d", k.wakes.at[0])
	}
}

// tickCounter counts raw Tick calls on top of fakeIdler's scripted acts,
// exposing the active list's fan-out directly.
type tickCounter struct {
	fakeIdler
	ticks int
}

func (c *tickCounter) Tick(now Cycle) {
	c.ticks++
	c.fakeIdler.Tick(now)
}

// TestActiveListSkipsDormantTickers pins the tentpole property: on
// executed cycles, components whose cached wake is in the future are not
// ticked at all. A component busy every cycle keeps the run executing,
// while a mostly-dormant neighbor must see only its scheduled wakes (plus
// the initial validation tick), not the busy component's ~1000 cycles —
// and must still act on exactly the cycles the stepped reference acts on.
func TestActiveListSkipsDormantTickers(t *testing.T) {
	run := func(skip bool) (acted []Cycle, ticks int) {
		var k Kernel
		busy := &busyBurst{busyUntil: 1000, lateWake: 1000}
		dormant := &tickCounter{fakeIdler: fakeIdler{wakes: []Cycle{200, 600}}}
		k.Register(busy)
		k.Register(dormant)
		k.SetIdleSkip(skip)
		k.Run(1000)
		return dormant.ticked, dormant.ticks
	}
	refActed, refTicks := run(false)
	fastActed, fastTicks := run(true)
	if len(refActed) != 2 || len(fastActed) != 2 ||
		refActed[0] != fastActed[0] || refActed[1] != fastActed[1] {
		t.Fatalf("acted at %v (stepped %v), want [200 600] in both modes", fastActed, refActed)
	}
	if refTicks != 1000 {
		t.Fatalf("stepped reference ticked the dormant idler %d times, want 1000", refTicks)
	}
	if fastTicks > 3 {
		t.Fatalf("active list ticked the dormant idler %d times, want <= 3 (its wakes plus initial validation)", fastTicks)
	}
}

// orderIdler records its tag into a shared log on each scripted wake.
type orderIdler struct {
	wakes []Cycle
	tag   int
	log   *[]int
}

func (o *orderIdler) Tick(now Cycle) {
	if len(o.wakes) > 0 && o.wakes[0] == now {
		*o.log = append(*o.log, o.tag)
		o.wakes = o.wakes[1:]
	}
}

func (o *orderIdler) NextActivity(now Cycle) (Cycle, bool) {
	if len(o.wakes) == 0 {
		return 0, false
	}
	if o.wakes[0] <= now {
		return now, true
	}
	return o.wakes[0], true
}

// TestActiveListPreservesRegistrationOrder pins the co-due ordering
// guarantee the SoC pipeline depends on: when several components are due
// on the same cycle, the active list ticks them in registration order,
// exactly like the stepped reference.
func TestActiveListPreservesRegistrationOrder(t *testing.T) {
	run := func(skip bool) []int {
		var k Kernel
		var log []int
		// All three co-due at 100 and 500; tags registered 0,1,2.
		for tag := 0; tag < 3; tag++ {
			k.Register(&orderIdler{wakes: []Cycle{100, 500}, tag: tag, log: &log})
		}
		k.SetIdleSkip(skip)
		k.Run(1000)
		return log
	}
	ref, fast := run(false), run(true)
	want := []int{0, 1, 2, 0, 1, 2}
	if len(ref) != len(want) || len(fast) != len(want) {
		t.Fatalf("co-due logs: stepped %v, active %v, want %v", ref, fast, want)
	}
	for i := range want {
		if ref[i] != want[i] || fast[i] != want[i] {
			t.Fatalf("co-due logs: stepped %v, active %v, want %v", ref, fast, want)
		}
	}
}

// settleRecorder records every SettleRun call the kernel makes.
type settleRecorder struct {
	fakeIdler
	settles []Cycle
}

func (s *settleRecorder) SettleRun(end Cycle) { s.settles = append(s.settles, end) }

// TestKernelSettlesOnRunExit pins the Settler hook: every Run segment —
// in every kernel mode — ends with SettleRun(horizon) so batched
// dormant-cycle bookkeeping can be flushed even when the active list
// never ticked the component again.
func TestKernelSettlesOnRunExit(t *testing.T) {
	for _, skip := range []bool{true, false} {
		var k Kernel
		s := &settleRecorder{fakeIdler: fakeIdler{wakes: []Cycle{10}}}
		k.Register(s)
		k.SetIdleSkip(skip)
		k.Run(100)
		k.RunFor(50)
		if len(s.settles) != 2 || s.settles[0] != 100 || s.settles[1] != 150 {
			t.Fatalf("skip=%v: SettleRun calls %v, want [100 150]", skip, s.settles)
		}
	}
}

// TestWakeHeapDecreaseKey exercises the indexed heap directly: re-arms
// are decrease-key (position-tracked, no duplicate entries), increases
// go through fix, and the top always tracks the minimum cached wake.
func TestWakeHeapDecreaseKey(t *testing.T) {
	var h wakeHeap
	for id := 0; id < 8; id++ {
		h.add(id)
		h.fix(id, Cycle(100+10*id))
	}
	if top := h.entries[0]; top.id != 0 || top.at != 100 {
		t.Fatalf("top (%d, %d), want (0, 100)", top.id, top.at)
	}
	// Decrease-key a deep entry to the top.
	h.fix(7, 5)
	if top := h.entries[0]; top.id != 7 || top.at != 5 {
		t.Fatalf("after decrease-key top (%d, %d), want (7, 5)", top.id, top.at)
	}
	// Increase it past everyone; the old minimum resurfaces.
	h.fix(7, 1000)
	if top := h.entries[0]; top.id != 0 || top.at != 100 {
		t.Fatalf("after increase top (%d, %d), want (0, 100)", top.id, top.at)
	}
	// pos must track every move, and the mirrored keys must agree.
	for i, e := range h.entries {
		if h.pos[e.id] != int32(i) {
			t.Fatalf("pos[%d] = %d, want %d", e.id, h.pos[e.id], i)
		}
		if h.at[e.id] != e.at {
			t.Fatalf("at[%d] = %d, entry holds %d", e.id, h.at[e.id], e.at)
		}
	}
	// Kernel.Rearm ignores increases (lazy): the cached bound only drops.
	var k Kernel
	k.Register(&fakeIdler{wakes: []Cycle{500}})
	k.Rearm(0, 50)
	if k.wakes.at[0] != 0 { // initial cached wake is 0 (due immediately)
		t.Fatalf("Rearm raised a cached wake to %d; increases must be lazy", k.wakes.at[0])
	}
}

// TestWakeHeapNeverIsNotUnregister pins the park-at-never semantics: an
// idler that reports ok=false stays in the heap (its entry is parked at
// never, not removed) and a later Rearm revives it.
func TestWakeHeapNeverIsNotUnregister(t *testing.T) {
	var k Kernel
	s := &cachedSleeper{wakeAt: sleeperNever} // never acts on its own
	k.Register(s)
	anchor := &fakeIdler{wakes: []Cycle{10, 2000}}
	k.Register(anchor)
	k.Run(100) // validates s once: entry parks at never
	if got := k.wakes.at[0]; got != never {
		t.Fatalf("dormant sleeper cached wake %d, want never", got)
	}
	k.At(300, func(now Cycle) { s.Rearm(now + 7) })
	k.Run(1500)
	if len(s.acted) != 1 || s.acted[0] != 307 {
		t.Fatalf("revived sleeper acted at %v, want [307]", s.acted)
	}
}

// TestKernelRegistrationOrderIrrelevantForSkipping pins the fix for the
// old one-time idler reversal in Run: fast-forward targets come off the
// wake heap, so registration order affects tick order (as documented)
// and nothing else.
func TestKernelRegistrationOrderIrrelevantForSkipping(t *testing.T) {
	mk := func(reverse bool) (acted [][]Cycle, skipped uint64) {
		var k Kernel
		a := &fakeIdler{wakes: []Cycle{5, 40, 700}}
		b := &fakeIdler{wakes: []Cycle{40, 300}}
		c := &cachedSleeper{wakeAt: 90}
		if reverse {
			k.Register(c)
			k.Register(b)
			k.Register(a)
		} else {
			k.Register(a)
			k.Register(b)
			k.Register(c)
		}
		k.Run(1000)
		return [][]Cycle{a.ticked, b.ticked, c.acted}, k.SkippedCycles()
	}
	fwd, fs := mk(false)
	rev, rs := mk(true)
	if fs != rs {
		t.Fatalf("skipped cycles differ with registration order: %d vs %d", fs, rs)
	}
	for i := range fwd {
		if len(fwd[i]) != len(rev[i]) {
			t.Fatalf("idler %d acted %v vs %v across registration orders", i, fwd[i], rev[i])
		}
		for j := range fwd[i] {
			if fwd[i][j] != rev[i][j] {
				t.Fatalf("idler %d acted %v vs %v across registration orders", i, fwd[i], rev[i])
			}
		}
	}
}

// TestWakeHeapMatchesPoll is the kernel-level differential property: a
// random population of self-timed idlers (stale-early cached bounds
// after every act) and cached sleepers re-armed by random external
// events must act on exactly the same cycles — and skip exactly the same
// stretches — under the wake heap as under the SetForcePoll linear
// reference and the cycle-stepped run.
func TestWakeHeapMatchesPoll(t *testing.T) {
	const horizon = 3000
	type mode int
	const (
		stepped mode = iota
		pollSkip
		heapSkip
	)
	run := func(seed uint64, m mode) (acted [][]Cycle, skipped uint64, now Cycle) {
		SetForcePoll(m == pollSkip)
		defer SetForcePoll(false)
		rng := NewRand(seed)
		var k Kernel
		k.SetIdleSkip(m != stepped)

		nFake := 1 + rng.Intn(4)
		nSleep := 1 + rng.Intn(4)
		var report []func() []Cycle
		for i := 0; i < nFake; i++ {
			var wakes []Cycle
			at := Cycle(0)
			for j := 0; j < 1+rng.Intn(12); j++ {
				at += Cycle(1 + rng.Intn(500))
				wakes = append(wakes, at)
			}
			f := &fakeIdler{wakes: wakes}
			k.Register(f)
			report = append(report, func() []Cycle { return f.ticked })
		}
		for i := 0; i < nSleep; i++ {
			s := &cachedSleeper{wakeAt: sleeperNever}
			if rng.Bool(0.5) {
				s.wakeAt = Cycle(rng.Intn(horizon))
			}
			k.Register(s)
			for j := 0; j < rng.Intn(6); j++ {
				at := Cycle(rng.Intn(horizon))
				delay := Cycle(rng.Intn(40))
				k.At(at, func(now Cycle) { s.Rearm(now + delay) })
			}
			report = append(report, func() []Cycle { return s.acted })
		}
		k.Run(horizon)
		acted = make([][]Cycle, len(report))
		for i, f := range report {
			acted[i] = f()
		}
		return acted, k.SkippedCycles(), k.Now()
	}
	prop := func(seed uint64) bool {
		ref, _, refNow := run(seed, stepped)
		poll, pollSkipped, pollNow := run(seed, pollSkip)
		heap, heapSkipped, heapNow := run(seed, heapSkip)
		if refNow != pollNow || refNow != heapNow {
			t.Errorf("seed %#x: final cycles %d / %d / %d", seed, refNow, pollNow, heapNow)
			return false
		}
		same := func(a, b [][]Cycle) bool {
			for i := range a {
				if len(a[i]) != len(b[i]) {
					return false
				}
				for j := range a[i] {
					if a[i][j] != b[i][j] {
						return false
					}
				}
			}
			return true
		}
		if !same(ref, poll) {
			t.Errorf("seed %#x: poll reference diverged from stepped run: %v vs %v", seed, poll, ref)
			return false
		}
		if !same(ref, heap) {
			t.Errorf("seed %#x: wake heap diverged from stepped run: %v vs %v", seed, heap, ref)
			return false
		}
		if pollSkipped != heapSkipped {
			t.Errorf("seed %#x: poll skipped %d cycles, heap skipped %d — the heap target must equal the swept minimum",
				seed, pollSkipped, heapSkipped)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestWakeHeapInvariant fuzzes interleaved decrease-keys (rearm) and
// arbitrary key moves (fix, the validation pass): after every operation
// batch the heap must satisfy the min-heap invariant with consistent
// position tracking and key mirroring. An earlier revision buffered the
// rearm sifts into a probe-time integration pass; this fuzz caught that
// one sift per dirty id cannot restore the invariant under simultaneous
// decreases, which is why re-arms now sift immediately.
func TestWakeHeapInvariant(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := NewRand(seed)
		var h wakeHeap
		n := 2 + rng.Intn(40)
		for id := 0; id < n; id++ {
			h.add(id)
			h.fix(id, Cycle(rng.Intn(1000)))
		}
		for round := 0; round < 6; round++ {
			for i := 0; i < 1+rng.Intn(2*n); i++ {
				h.rearm(rng.Intn(n), Cycle(rng.Intn(1000)))
			}
			for i := range h.entries {
				e := h.entries[i]
				if p := (i - 1) / 2; i > 0 && h.entries[p].at > e.at {
					t.Errorf("seed %#x round %d: heap violation at %d: parent %d > child %d",
						seed, round, i, h.entries[p].at, e.at)
					return false
				}
				if h.pos[e.id] != int32(i) || h.at[e.id] != e.at {
					t.Errorf("seed %#x round %d: bookkeeping broken for id %d", seed, round, e.id)
					return false
				}
			}
			// Raises (the validation pass) interleave with the next round.
			for i := 0; i < rng.Intn(n); i++ {
				h.fix(rng.Intn(n), Cycle(rng.Intn(1500)))
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
