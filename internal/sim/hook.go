package sim

// HookList is the subscriber registry behind one multiplexed trace hook.
// Subsystems (noc, dma, memctrl) expose their trace edges as a single
// package-level function pointer that the hot path nil-checks; HookList
// keeps that fast path intact while letting several observers — the
// equivalence tests' legacy SetDebugX installers and the analysis layer —
// coexist on the same edge. Attach rebuilds the fast-path pointer to nil
// (no subscribers: the disabled path stays zero-cost), the sole
// subscriber (no indirection beyond the original single-hook design), or
// a fan-out closure over a snapshot of the list.
//
// Registration is not synchronized: attach and detach from the goroutine
// that owns the simulation, never concurrently with a running kernel.
type HookList[F any] struct {
	subs []*F
}

// Attach subscribes fn to the edge whose fast-path pointer is *target and
// returns its detach function. fanout must build a single F that calls
// each element of its argument in order; it is only consulted when two or
// more subscribers are live. Detach is idempotent and detach order is
// independent of attach order.
func (l *HookList[F]) Attach(fn F, target *F, fanout func([]F) F) (detach func()) {
	slot := &fn
	l.subs = append(l.subs, slot)
	l.rebuild(target, fanout)
	return func() {
		for i, s := range l.subs {
			if s == slot {
				l.subs = append(l.subs[:i], l.subs[i+1:]...)
				break
			}
		}
		l.rebuild(target, fanout)
	}
}

func (l *HookList[F]) rebuild(target *F, fanout func([]F) F) {
	switch len(l.subs) {
	case 0:
		var zero F
		*target = zero
	case 1:
		*target = *l.subs[0]
	default:
		fns := make([]F, len(l.subs))
		for i, s := range l.subs {
			fns[i] = *s
		}
		*target = fanout(fns)
	}
}
