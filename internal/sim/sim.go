// Package sim provides the cycle-driven simulation kernel used by every
// other subsystem: a cycle counter, a deterministic random-number generator,
// and a lightweight event scheduler for things that happen at known future
// cycles (frame boundaries, adaptation ticks, aging sweeps).
//
// One simulator cycle corresponds to one DRAM command-clock cycle. All
// components tick in this single clock domain; cross-domain effects (e.g.
// the LCD panel draining its read buffer in wall-clock time) are expressed
// as rates converted to bytes-per-cycle at configuration time.
package sim

import "container/heap"

// Cycle is a point in simulated time, measured in DRAM command-clock cycles.
type Cycle uint64

// Ticker is a component that advances by one cycle at a time.
type Ticker interface {
	// Tick advances the component to cycle now. The kernel calls Tick
	// exactly once per cycle, in registration order.
	Tick(now Cycle)
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now Cycle)

// Tick calls f(now).
func (f TickFunc) Tick(now Cycle) { f(now) }

// event is a scheduled callback.
type event struct {
	at  Cycle
	seq uint64 // tie-break so same-cycle events fire in schedule order
	fn  func(now Cycle)
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Kernel owns the clock, the ordered ticker list and the event queue.
// The zero value is ready to use.
type Kernel struct {
	now     Cycle
	tickers []Ticker
	events  eventQueue
	seq     uint64
	started bool
}

// Now reports the current cycle.
func (k *Kernel) Now() Cycle { return k.now }

// Register appends t to the per-cycle tick list. Components are ticked in
// registration order, which the SoC assembly uses to realize the pipeline
// order sources -> DMAs -> NoC -> MC -> DRAM -> responses -> adapters.
// Register panics if the simulation has already started, because inserting
// a ticker mid-run would silently skip its earlier cycles.
func (k *Kernel) Register(t Ticker) {
	if k.started {
		panic("sim: Register after simulation started")
	}
	k.tickers = append(k.tickers, t)
}

// At schedules fn to run at cycle at, before that cycle's tickers. If at is
// in the past the event fires on the next Step.
func (k *Kernel) At(at Cycle, fn func(now Cycle)) {
	k.seq++
	heap.Push(&k.events, &event{at: at, seq: k.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (k *Kernel) After(delay Cycle, fn func(now Cycle)) {
	k.At(k.now+delay, fn)
}

// Every schedules fn at period, 2*period, ... relative to the current cycle.
// It reschedules itself forever; the run simply ends when Run's horizon is
// reached.
func (k *Kernel) Every(period Cycle, fn func(now Cycle)) {
	if period == 0 {
		panic("sim: Every with zero period")
	}
	var rearm func(now Cycle)
	rearm = func(now Cycle) {
		fn(now)
		k.At(now+period, rearm)
	}
	k.At(k.now+period, rearm)
}

// Step advances the simulation by exactly one cycle: due events first, then
// every registered ticker.
func (k *Kernel) Step() {
	k.started = true
	for len(k.events) > 0 && k.events[0].at <= k.now {
		e := heap.Pop(&k.events).(*event)
		e.fn(k.now)
	}
	for _, t := range k.tickers {
		t.Tick(k.now)
	}
	k.now++
}

// Run advances the simulation until the clock reaches horizon (exclusive).
func (k *Kernel) Run(horizon Cycle) {
	for k.now < horizon {
		k.Step()
	}
}

// RunFor advances the simulation by n cycles.
func (k *Kernel) RunFor(n Cycle) { k.Run(k.now + n) }
