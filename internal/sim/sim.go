// Package sim provides the simulation kernel used by every other
// subsystem: a cycle counter, a deterministic random-number generator,
// and a lightweight event scheduler for things that happen at known future
// cycles (frame boundaries, adaptation ticks, aging sweeps).
//
// One simulator cycle corresponds to one DRAM command-clock cycle. All
// components tick in this single clock domain; cross-domain effects (e.g.
// the LCD panel draining its read buffer in wall-clock time) are expressed
// as rates converted to bytes-per-cycle at configuration time.
//
// The kernel is event-driven with idle skipping: components that implement
// the optional Idler interface report when they next have work, and the
// kernel fast-forwards the clock over stretches where every component is
// quiescent and no event is due, instead of stepping cycle by cycle
// through dead time.
//
// Wake scheduling is push-based: the kernel keeps an indexed min-heap of
// per-idler cached wake cycles, components re-arm their heap entry through
// the WakeHandle returned by Register whenever an external action moves
// their next activity to an earlier cycle, and the fast-forward target is
// read off the heap top instead of polling every idler's hint each
// executed cycle.
//
// Executed cycles use the same heap as an active-ticker list: a component
// is ticked iff its cached wake is at or before the current cycle, and its
// entry is re-keyed to its exact next activity right after the tick, so
// dormant components are not even called. This changes the Ticker contract
// from "ticked every executed cycle" to "ticked every cycle it may act",
// which imposes two obligations on components:
//
//   - Every external action that could make a dormant component act this
//     cycle or earlier than its cached wake must re-arm the kernel entry
//     at the moment it happens (see Idler), not at the component's next
//     tick — there may not be one.
//
//   - Per-cycle bookkeeping that a stepped run would accrue on dormant
//     ticks (stall counters, buffer occupancy integration) must be derived
//     from elapsed time on the next real tick (the batched-settle pattern)
//     and, because a run can end mid-dormancy, also settled at the run
//     horizon via the optional Settler interface.
//
// Two reference modes bypass the active list for the differential suites:
// SetIdleSkip(false) restores full cycle-by-cycle stepping (every ticker
// ticked every cycle, in registration order), and SetForcePoll replaces
// both the active list and the heap-driven fast-forward with the legacy
// linear NextActivity sweep. Among co-due tickers the active list
// preserves registration order — the SoC pipeline order sources -> DMA ->
// NoC -> MC -> DRAM -> adapters — so all three modes execute the same
// cycles' work in the same order.
package sim

import "fmt"

// Cycle is a point in simulated time, measured in DRAM command-clock cycles.
type Cycle uint64

// never marks an unarmed wake-heap entry: the idler reported it will not
// act again without external input, so only a Rearm can revive it.
const never = ^Cycle(0)

// Ticker is a component that advances by one cycle at a time.
type Ticker interface {
	// Tick advances the component to cycle now. In the stepped and
	// force-poll reference modes the kernel calls Tick exactly once per
	// ticker per executed cycle, in registration order. In the default
	// active-list mode a ticker is only called on cycles its cached wake
	// covers (wake <= now); dormant components are skipped entirely.
	// Components must therefore derive elapsed time from now rather than
	// counting Tick calls, and must keep their cached wake a sound lower
	// bound on their next action (see Idler).
	Tick(now Cycle)
}

// Settler is an optional Ticker extension for components that batch
// per-cycle bookkeeping (stall counters, occupancy integration) across
// dormant stretches and settle it on their next tick. Because the
// active-ticker list may leave such a component un-ticked from its last
// wake to the end of a run, the kernel calls SettleRun(end) when Run
// reaches its horizon, where end is the first cycle NOT simulated (the
// horizon). SettleRun must bring all externally observable statistics to
// exactly the state a stepped run would have after its final tick at
// end-1, and must be idempotent: it runs in every kernel mode and at the
// end of every Run segment, including segments where the component was
// ticked at end-1 already.
type Settler interface {
	SettleRun(end Cycle)
}

// Idler is an optional Ticker extension that enables idle skipping. A
// ticker that implements it promises that, absent any new input from the
// rest of the system (events, other components' actions), its Tick will
// not act on the system — enqueue requests, forward packets, issue
// commands, or mutate externally observable counters — at any cycle
// strictly before the reported activity cycle.
//
// The contract is push-based. The kernel caches each idler's most recent
// hint in an indexed wake heap and does NOT re-query every hint after
// every executed cycle; it re-queries an idler only right after ticking
// it (the active-list re-key) or when its cached entry reaches the heap
// top during a fast-forward probe. The cached entry is therefore required
// to be a sound LOWER bound on the idler's true next activity at all
// times — doubly important under the active list, where a too-late bound
// does not merely skip a cycle but skips the component's Tick on cycles
// other components execute. The responsibility splits in two:
//
//   - Re-arm is mandatory on external wakes. Whenever another component's
//     action could advance this idler's next action to an EARLIER cycle
//     than its cached entry — an upstream injection landing in its queue
//     mid-sleep, a downstream credit return unblocking it, a completion
//     freeing its window — the component performing the action (or the
//     wiring between them, see noc.Waker and dma.Engine) must call
//     WakeHandle.Rearm with the new wake cycle during the executed cycle
//     in which the action happens. Re-arming earlier than necessary is
//     always safe: the kernel executes a cycle that turns out to be
//     uneventful, re-validates the hint, and goes back to sleep. Failing
//     to re-arm lets the kernel skip past the action and breaks
//     simulation equivalence.
//
//   - Lazy increase is always safe. When an idler's next activity moves
//     LATER (it consumed its queue, its tokens drained), it does not need
//     to tell the kernel: the stale too-early entry merely surfaces at
//     the heap top, the kernel re-queries NextActivity once, and the
//     entry sinks to its correct place. An idler that reports ok=false
//     parks at the heap bottom but is never unregistered — a later Rearm
//     revives it.
//
// NextActivity itself must remain cheap and pure: it is the validation
// query for the heap top, and (under SetForcePoll) the per-cycle linear
// reference. Components that cache their wake cycle should answer from
// the cache in O(1). The answer must be sound in ABSOLUTE time: a
// component whose lazy integration lags `now` (a token bucket whose
// funded cursor is behind, a buffer whose drain cursor is behind) must
// anchor its bound at that cursor — e.g. cursor + steps - 1, clamped up
// to now — never `now + steps` computed from stale state. The heap-top
// probe RAISES entries from these answers; a bound even one cycle too
// late starves the component permanently. This rule is enforced
// statically: the wakebound analyzer in cmd/saravet flags NextActivity
// and Wake implementations that add mutable receiver state to `now`,
// unless the site carries a //sara:bound-ok justification (see the
// "Static analysis" section of the README).
type Idler interface {
	// NextActivity reports the earliest cycle >= now at which the
	// component may act on the system, or ok=false if it will never act
	// again without external input.
	NextActivity(now Cycle) (at Cycle, ok bool)
}

// WakeBinder is an optional interface for Idlers that participate in
// push-based wake scheduling: Register hands the component its WakeHandle
// so the component (and the wiring around it) can re-arm its kernel wake
// when an external action moves its next activity earlier.
type WakeBinder interface {
	// BindWake receives the component's wake handle at registration time.
	BindWake(h WakeHandle)
}

// WakeHandle re-arms one registered idler's cached wake cycle in the
// kernel's wake heap. The zero value is inert (Rearm is a no-op), so
// components can hold a handle unconditionally and be driven either by a
// kernel or standalone in unit tests.
type WakeHandle struct {
	k  *Kernel
	id int
}

// Rearm lowers the idler's cached wake to at if the cached value is
// later (decrease-key). Raising a cached wake is impossible by design:
// increases are reconciled lazily when the entry reaches the heap top,
// so a spurious early Rearm can cost an uneventful executed cycle but
// can never lose a wake.
//
//sara:hotpath
func (h WakeHandle) Rearm(at Cycle) {
	if h.k == nil {
		return
	}
	h.k.Rearm(h.id, at)
}

// TickFunc adapts a function to the Ticker interface. It does not
// implement Idler, so registering one disables idle skipping for the
// whole kernel (the kernel cannot prove anything about opaque functions).
type TickFunc func(now Cycle)

// Tick calls f(now).
func (f TickFunc) Tick(now Cycle) { f(now) }

// event is a scheduled callback. Exactly one of fn and argFn is set;
// argFn carries a caller-supplied payload so hot paths (transaction
// completion) can schedule a single long-lived function with a pointer
// argument instead of allocating a fresh closure per event.
type event struct {
	at    Cycle
	seq   uint64 // tie-break so same-cycle events fire in schedule order
	fn    func(now Cycle)
	argFn func(now Cycle, arg any)
	arg   any
}

// eventHeap is a min-heap of events ordered by (at, seq), stored by value
// in a plain slice. Push and pop sift manually instead of going through
// container/heap, which would box every element in an interface and
// allocate on the steady-state completion path.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // clear callback/payload references for the GC
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && q.less(l, s) {
			s = l
		}
		if r < n && q.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		q[i], q[s] = q[s], q[i]
		i = s
	}
	return top
}

// wakeEntry is one idler's slot in the wake heap; keys live inline so
// sift compares and swaps stay within one contiguous array.
type wakeEntry struct {
	at Cycle
	id int32
}

type wakeHeap struct {
	// entries is the heap itself; keys live inline so sift compares and
	// swaps stay within one contiguous array instead of chasing three.
	entries []wakeEntry
	// at mirrors each id's cached wake and pos tracks each id's index in
	// entries, making rearm an O(1) no-op test and fix an O(log n)
	// position-tracked sift instead of a duplicate-entry push (which
	// would allocate on the steady-state wake path).
	at  []Cycle
	pos []int32
}

// add registers a new idler with an immediately-due wake (cycle 0), so
// the first fast-forward probe validates every hint once. The new entry
// is sifted into place so the invariant holds even when entries were
// re-keyed between adds.
func (h *wakeHeap) add(id int) {
	h.at = append(h.at, 0)
	h.entries = append(h.entries, wakeEntry{at: 0, id: int32(id)})
	h.pos = append(h.pos, int32(len(h.entries)-1))
	h.siftUp(len(h.entries) - 1)
}

// rearm lowers id's cached wake (decrease-key); at values at or above
// the cached bound are dropped without touching the heap.
func (h *wakeHeap) rearm(id int, at Cycle) {
	if at >= h.at[id] {
		return
	}
	h.fix(id, at)
}

// fix sets id's cached wake and restores heap order in the appropriate
// direction. The probe's validation pass uses it on an integrated heap.
func (h *wakeHeap) fix(id int, c Cycle) {
	old := h.at[id]
	h.at[id] = c
	h.entries[h.pos[id]].at = c
	if c < old {
		h.siftUp(int(h.pos[id]))
	} else if c > old {
		h.siftDown(int(h.pos[id]))
	}
}

// Rearm buffering note: an earlier revision deferred these sifts into a
// dirty list integrated at probe time; property fuzzing showed one
// siftUp per dirty id cannot restore the invariant under simultaneous
// decreases (a displaced ancestor can land above an already-settled
// dirty entry), so re-arms sift immediately and correctness stays local
// to the two classic operations.

func (h *wakeHeap) siftUp(i int) {
	q := h.entries
	e := q[i]
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if e.at >= q[p].at {
			break
		}
		q[i] = q[p]
		h.pos[q[i].id] = int32(i)
		i = p
		moved = true
	}
	if moved {
		q[i] = e
		h.pos[e.id] = int32(i)
	}
}

func (h *wakeHeap) siftDown(i int) {
	q := h.entries
	n := len(q)
	e := q[i]
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		at := e.at
		if l < n && q[l].at < at {
			s, at = l, q[l].at
		}
		if r < n && q[r].at < at {
			s = r
		}
		if s == i {
			break
		}
		q[i] = q[s]
		h.pos[q[i].id] = int32(i)
		q[s] = e
		h.pos[e.id] = int32(s)
		i = s
	}
}

// forcePoll, when set, replaces the wake-heap fast-forward probe with the
// legacy linear sweep over every idler's NextActivity — the polling
// reference the wake-heap differential tests replay against (tests only;
// not for concurrent use, like noc.SetForceScan).
var forcePoll bool

// SetForcePoll forces the per-cycle linear NextActivity sweep (tests
// only). The sweep and the heap compute the same fast-forward target as
// long as every external wake is re-armed, which is exactly the property
// the differential suites check.
func SetForcePoll(on bool) { forcePoll = on }

// Kernel owns the clock, the ordered ticker list, the event queue and the
// wake heap. The zero value is ready to use, with idle skipping enabled.
type Kernel struct {
	now     Cycle
	tickers []Ticker
	// idlers holds the Idler view of every registered ticker, indexed by
	// wake-heap id. If any ticker does not implement Idler the kernel
	// cannot prove quiescence and opaque is set, which disables skipping
	// entirely.
	idlers []Idler
	wakes  wakeHeap
	// settlers are the registered tickers that batch dormant-cycle
	// bookkeeping; Run calls SettleRun on each when it reaches its
	// horizon so end-of-run statistics are exact even when the active
	// list left a component un-ticked over a trailing dormant stretch.
	settlers []Settler
	opaque   bool
	noSkip   bool
	events   eventHeap
	seq      uint64
	started  bool
	skipped  uint64
	// hot remembers the idlers that most recently reported immediate
	// activity (hot[0] newest); querying them first short-circuits the
	// fast-forward probe on busy stretches, where a small set of
	// components (controllers, routers) trade being the active one cycle
	// to cycle, without touching the wake heap at all. A busy live hint
	// makes the probe's answer "now" regardless of any cached bound, so
	// the shortcut cannot change a skip decision.
	hot [2]int
	// busyStreak counts consecutive fast-forward probes that found
	// immediate activity, and busyLatch is the number of upcoming cycles
	// to execute without probing at all. Under sustained load (the
	// saturated loaded phase) every probe answers "busy now", so the
	// kernel latches busy and amortizes the query cost over the streak.
	// Skipping a probe is observationally identical to probing — the
	// cycle executes either way; only a skip opportunity is deferred, by
	// at most busyLatchMax cycles after the load ends.
	busyStreak uint8
	busyLatch  uint8
	// wd, when non-nil, activates the run-loop guardrails: RunChecked
	// routes through the guarded loop in guard.go instead of Run's hot
	// loop, so a nil watchdog costs nothing on the steady-state path.
	// executed counts executed (non-skipped) cycles since the watchdog
	// was armed; the remaining fields are the watchdog's check cadence
	// and progress bookkeeping (see guard.go).
	wd           *Watchdog
	executed     uint64
	wdCountdown  uint64
	lastProgress uint64
	progressAt   uint64
}

// busyLatchMax bounds the busy latch: at most this many executed cycles
// between fast-forward probes, so an idle transition is never detected
// more than busyLatchMax cycles late.
const busyLatchMax = 8

// Now reports the current cycle.
func (k *Kernel) Now() Cycle { return k.now }

// SkippedCycles reports how many cycles Run fast-forwarded over instead of
// executing. It is a diagnostic: (executed + skipped) == Now() for a run
// started at cycle 0.
func (k *Kernel) SkippedCycles() uint64 { return k.skipped }

// SetIdleSkip enables or disables idle skipping (enabled by default).
// Disabling it forces the reference cycle-by-cycle execution, which the
// equivalence tests compare against.
func (k *Kernel) SetIdleSkip(on bool) { k.noSkip = !on }

// IdleSkipActive reports whether Run may fast-forward: skipping must be
// enabled and every registered ticker must implement Idler.
func (k *Kernel) IdleSkipActive() bool { return !k.noSkip && !k.opaque }

// Register appends t to the per-cycle tick list and returns t's wake
// handle. Components are ticked in registration order, which the SoC
// assembly uses to realize the pipeline order sources -> DMAs -> NoC ->
// MC -> DRAM -> responses -> adapters; the wake heap orders itself by
// cached wake cycle, so registration order never affects fast-forward
// targets. If t implements WakeBinder the handle is also pushed into the
// component here, so assemblies get push wiring for free. Tickers that do
// not implement Idler receive an inert handle (and disable skipping).
// Register panics if the simulation has already started, because
// inserting a ticker mid-run would silently skip its earlier cycles.
func (k *Kernel) Register(t Ticker) WakeHandle {
	if k.started {
		panic(invariant("sim: Register after simulation started"))
	}
	k.tickers = append(k.tickers, t)
	id, ok := t.(Idler)
	if !ok {
		k.opaque = true
		return WakeHandle{}
	}
	h := WakeHandle{k: k, id: len(k.idlers)}
	k.idlers = append(k.idlers, id)
	k.wakes.add(h.id)
	if wb, ok := t.(WakeBinder); ok {
		wb.BindWake(h)
	}
	if s, ok := t.(Settler); ok {
		k.settlers = append(k.settlers, s)
	}
	return h
}

// Rearm lowers idler id's cached wake cycle to at (a decrease-key; see
// wakeHeap.rearm); a cached wake at or before at is left untouched.
// Components normally call this through their WakeHandle. An out-of-range
// id panics with an *InvariantError: a dropped re-arm is a silently
// missed wake — the simulation would diverge, not fail — so bad wiring
// must die loudly instead.
func (k *Kernel) Rearm(id int, at Cycle) {
	if id < 0 || id >= len(k.wakes.at) {
		panic(invariant(fmt.Sprintf(
			"sim: Rearm of unregistered idler id %d (%d idlers registered)",
			id, len(k.wakes.at))))
	}
	k.wakes.rearm(id, at)
}

// At schedules fn to run at cycle at, before that cycle's tickers. If at is
// in the past the event fires on the next Step.
func (k *Kernel) At(at Cycle, fn func(now Cycle)) {
	k.seq++
	k.events.push(event{at: at, seq: k.seq, fn: fn})
}

// AtArg schedules fn(now, arg) at cycle at. It exists for hot paths: a
// single long-lived fn plus a per-event pointer payload schedules without
// allocating, where a fresh closure per event would not.
func (k *Kernel) AtArg(at Cycle, fn func(now Cycle, arg any), arg any) {
	k.seq++
	k.events.push(event{at: at, seq: k.seq, argFn: fn, arg: arg})
}

// After schedules fn to run delay cycles from now.
func (k *Kernel) After(delay Cycle, fn func(now Cycle)) {
	k.At(k.now+delay, fn)
}

// Every schedules fn at period, 2*period, ... relative to the current cycle.
// It reschedules itself forever; the run simply ends when Run's horizon is
// reached.
func (k *Kernel) Every(period Cycle, fn func(now Cycle)) {
	if period == 0 {
		panic(invariant("sim: Every with zero period"))
	}
	var rearm func(now Cycle)
	rearm = func(now Cycle) {
		fn(now)
		k.At(now+period, rearm)
	}
	k.At(k.now+period, rearm)
}

// Step advances the simulation by exactly one cycle: due events first,
// then the registered tickers. In the default active-list mode only due
// tickers — cached wake at or before the current cycle — are called; the
// stepped (SetIdleSkip(false)), opaque and force-poll modes tick every
// ticker. Step never skips a cycle.
//
//sara:hotpath
func (k *Kernel) Step() {
	k.started = true
	for len(k.events) > 0 && k.events[0].at <= k.now {
		e := k.events.pop()
		if e.fn != nil {
			e.fn(k.now)
		} else {
			e.argFn(k.now, e.arg)
		}
	}
	if !k.noSkip && !k.opaque && !forcePoll {
		k.stepActive()
	} else {
		for _, t := range k.tickers {
			t.Tick(k.now)
		}
	}
	k.now++
}

// stepActive is Step's tick loop in active-list mode: walk the tickers in
// registration order, tick only those whose cached wake is due, and
// re-key each ticked entry to its exact next activity. Reading the wake
// bound live (not a snapshot) makes same-cycle forward edges work — a
// source enqueueing into a dormant engine re-arms the engine's entry, and
// the engine, registered later, sees the lowered bound when the walk
// reaches it. Backward same-cycle edges need no tick: a stepped run's
// earlier-registered component had already ticked when the edge fired, so
// both modes first act on it the next cycle (every backward edge re-arms
// at now+1 or via a pre-tick event). Because every ticked entry is
// re-keyed from a live NextActivity query, the heap bounds are exact
// after each active step, and the fast-forward probe computes the same
// skip targets as the force-poll linear sweep.
//
//sara:hotpath
func (k *Kernel) stepActive() {
	now := k.now
	at := k.wakes.at
	for i, t := range k.tickers {
		if at[i] > now {
			continue
		}
		t.Tick(now)
		next, ok := k.idlers[i].NextActivity(now + 1)
		if !ok {
			next = never
		}
		k.wakes.fix(i, next)
	}
}

// Run advances the simulation until the clock reaches horizon (exclusive).
// When idle skipping is active, quiescent stretches — no event due and
// every ticker's cached wake strictly in the future — are fast-forwarded
// instead of executed. On reaching the horizon Run settles every
// registered Settler, so statistics batched across dormant stretches are
// exact even for components the active list never ticked again.
func (k *Kernel) Run(horizon Cycle) {
	skip := k.IdleSkipActive()
	for k.now < horizon {
		k.Step()
		if skip && k.now < horizon {
			k.fastForward(horizon)
		}
	}
	k.settleRun()
}

// Settle flushes every registered Settler's batched dormant-cycle
// bookkeeping through the current clock, exactly as the end of a Run
// segment would. SettleRun implementations are idempotent, so Settle is
// safe mid-run — the analysis sampler calls it from a recurring event so
// windowed stall and occupancy statistics are exact at sample boundaries
// even for components the active list left dormant.
func (k *Kernel) Settle() { k.settleRun() }

// settleRun flushes batched dormant-cycle bookkeeping at the end of a Run
// segment. It runs in every mode: in the stepped and force-poll modes the
// final executed cycle ticked everyone, so each SettleRun is an idempotent
// no-op there.
func (k *Kernel) settleRun() {
	for _, s := range k.settlers {
		s.SettleRun(k.now)
	}
}

// NextWake reports the cycle Run would fast-forward to from the current
// clock — the next due event or the earliest ticker activity — capped at
// horizon. It does not move the clock and always uses the linear poll
// sweep, making it an audit of the live hints (and of the wake heap's
// cached bounds, which may never be later); the equivalence tests use it
// to check Idler hints against actual behavior.
func (k *Kernel) NextWake(horizon Cycle) Cycle {
	return k.nextWakePoll(horizon)
}

// nextWakePoll computes the fast-forward target by the legacy linear
// sweep: the next due event or the earliest ticker activity, capped at
// horizon; k.now means something is due immediately. It is the
// SetForcePoll reference and the NextWake audit.
func (k *Kernel) nextWakePoll(horizon Cycle) Cycle {
	target := horizon
	if len(k.events) > 0 {
		at := k.events[0].at
		if at <= k.now {
			return k.now
		}
		if at < target {
			target = at
		}
	}
	for _, id := range k.idlers {
		next, ok := id.NextActivity(k.now)
		if !ok {
			continue
		}
		if next <= k.now {
			return k.now
		}
		if next < target {
			target = next
		}
	}
	return target
}

// nextWakeHeap computes the fast-forward target from the wake heap: the
// next due event or the heap top, capped at horizon. Only entries whose
// cached wake is at or before the current cycle are re-queried — they
// are either genuinely busy (probe answers "now") or consumed wakes,
// which the query raises to their exact next cycle or parks at never.
// A FUTURE cached wake is trusted without a query: every cached wake is
// a sound lower bound, so skipping to the heap minimum can never skip
// past real activity — at worst a stale-early bound wakes the kernel
// for one uneventful executed cycle, whose probe then raises it. That
// trade (a rare extra cycle instead of validating every future bound
// per probe) is what keeps the probe O(1) once the due entries are
// resolved; under SetForcePoll the linear reference instead computes
// the exact swept minimum, so the poll reference may skip slightly more
// while observable behavior stays bit-identical.
func (k *Kernel) nextWakeHeap(horizon Cycle) Cycle {
	target := horizon
	if len(k.events) > 0 {
		at := k.events[0].at
		if at <= k.now {
			return k.now
		}
		if at < target {
			target = at
		}
	}
	h := &k.wakes
	for len(h.entries) > 0 {
		top := h.entries[0]
		if top.at > k.now {
			// No busy suspicion left: the heap minimum bounds every
			// idler's next activity from below.
			if top.at < target {
				target = top.at
			}
			break
		}
		id := int(top.id)
		at, ok := k.idlers[id].NextActivity(k.now)
		if !ok {
			h.fix(id, never)
			continue
		}
		if at <= k.now {
			// Immediately busy. The stale-low key is left in place — it
			// is still a sound lower bound — and the idler joins the hot
			// set, so sustained load keeps answering from a few live
			// hints without touching the heap at all.
			k.noteHot(id)
			return k.now
		}
		h.fix(id, at)
	}
	return target
}

// fastForward advances the clock to the earliest upcoming activity —
// the next due event or the earliest cached wake — capped at horizon-1 so
// the run's final cycle always executes: in the stepped and force-poll
// modes that last cycle ticks every component and settles bookkeeping
// accrued over a trailing quiescent stretch (the active list instead
// settles via Settler at the horizon, and keeps the same cap so all three
// modes execute — and count as skipped — the same cycles). It returns
// without moving the clock if anything is due now.
func (k *Kernel) fastForward(horizon Cycle) {
	if k.busyLatch > 0 {
		// Provably-safe probe skip: recent back-to-back activity latched
		// busy, so execute this cycle without querying anyone.
		k.busyLatch--
		return
	}
	if len(k.events) > 0 && k.events[0].at <= k.now {
		// An event is due this cycle: provably busy, no idler query needed.
		k.noteBusy()
		return
	}
	for i, h := range k.hot {
		if h >= len(k.idlers) || (i > 0 && h == k.hot[0]) {
			continue
		}
		if next, ok := k.idlers[h].NextActivity(k.now); ok && next <= k.now {
			if i > 0 {
				k.noteHot(h)
			}
			k.noteBusy()
			return
		}
	}
	var target Cycle
	if forcePoll {
		target = k.nextWakePoll(horizon - 1)
	} else {
		target = k.nextWakeHeap(horizon - 1)
	}
	if target > k.now {
		k.busyStreak = 0
		k.skipped += uint64(target - k.now)
		k.now = target
		return
	}
	k.noteBusy()
}

// noteHot promotes id to the front of the hot set (most-recently busy
// first), shifting the newer entries down and evicting the oldest — or
// rotating id forward if it is already present.
func (k *Kernel) noteHot(id int) {
	if k.hot[0] == id {
		return
	}
	j := len(k.hot) - 1
	for i := 1; i < j; i++ {
		if k.hot[i] == id {
			j = i
			break
		}
	}
	copy(k.hot[1:j+1], k.hot[:j])
	k.hot[0] = id
}

// noteBusy records a probe that found immediate activity and arms the
// busy latch once the streak shows sustained load: after n consecutive
// busy probes the next n-1 (capped) cycles execute probe-free.
func (k *Kernel) noteBusy() {
	if k.busyStreak <= busyLatchMax {
		k.busyStreak++
	}
	if k.busyStreak > 1 {
		k.busyLatch = k.busyStreak - 1
	}
}

// RunFor advances the simulation by n cycles.
func (k *Kernel) RunFor(n Cycle) { k.Run(k.now + n) }
