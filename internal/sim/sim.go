// Package sim provides the simulation kernel used by every other
// subsystem: a cycle counter, a deterministic random-number generator,
// and a lightweight event scheduler for things that happen at known future
// cycles (frame boundaries, adaptation ticks, aging sweeps).
//
// One simulator cycle corresponds to one DRAM command-clock cycle. All
// components tick in this single clock domain; cross-domain effects (e.g.
// the LCD panel draining its read buffer in wall-clock time) are expressed
// as rates converted to bytes-per-cycle at configuration time.
//
// The kernel is event-driven with idle skipping: components that implement
// the optional Idler interface report when they next have work, and the
// kernel fast-forwards the clock over stretches where every component is
// quiescent and no event is due, instead of stepping cycle by cycle
// through dead time. Any cycle in which anything at all happens is still
// executed in full — every due event fires, every ticker ticks, in
// registration order — so skipping is observationally identical to
// cycle-by-cycle stepping as long as Idler contracts are honored.
package sim

// Cycle is a point in simulated time, measured in DRAM command-clock cycles.
type Cycle uint64

// Ticker is a component that advances by one cycle at a time.
type Ticker interface {
	// Tick advances the component to cycle now. On every executed cycle
	// the kernel calls Tick exactly once per ticker, in registration
	// order. When idle skipping is active, cycles covered by every
	// ticker's NextActivity hint are not executed at all; components
	// that integrate time (token buckets, buffer drains) must therefore
	// derive elapsed time from now rather than counting Tick calls.
	Tick(now Cycle)
}

// Idler is an optional Ticker extension that enables idle skipping. A
// ticker that implements it promises that, absent any new input from the
// rest of the system (events, other components' actions), its Tick will
// not act on the system — enqueue requests, forward packets, issue
// commands, or mutate externally observable counters — at any cycle
// strictly before the reported activity cycle.
//
// The kernel re-queries the hint after every executed cycle, so the
// promise only needs to hold until something else runs. Reporting an
// earlier cycle than necessary is always safe (the kernel merely executes
// a cycle that turns out to be uneventful); reporting a later cycle than
// the component's true next action breaks simulation equivalence.
//
// Wake propagation: a component may cache its next-activity cycle instead
// of recomputing it per query — but then any other component whose action
// could advance the sleeper's next action to an EARLIER cycle (an
// upstream injection landing in its queue mid-sleep, a downstream credit
// return unblocking it) must re-arm the cached wake during the executed
// cycle in which that action happens (see noc.Waker). The kernel
// re-queries every hint after each executed cycle, and external actions
// only ever happen on executed cycles, so a re-armed earlier wake is
// always observed before any further fast-forwarding. A cached hint that
// nothing re-arms must therefore be a sound lower bound on the
// component's next action given a frozen rest-of-system.
type Idler interface {
	// NextActivity reports the earliest cycle >= now at which the
	// component may act on the system, or ok=false if it will never act
	// again without external input.
	NextActivity(now Cycle) (at Cycle, ok bool)
}

// TickFunc adapts a function to the Ticker interface. It does not
// implement Idler, so registering one disables idle skipping for the
// whole kernel (the kernel cannot prove anything about opaque functions).
type TickFunc func(now Cycle)

// Tick calls f(now).
func (f TickFunc) Tick(now Cycle) { f(now) }

// event is a scheduled callback. Exactly one of fn and argFn is set;
// argFn carries a caller-supplied payload so hot paths (transaction
// completion) can schedule a single long-lived function with a pointer
// argument instead of allocating a fresh closure per event.
type event struct {
	at    Cycle
	seq   uint64 // tie-break so same-cycle events fire in schedule order
	fn    func(now Cycle)
	argFn func(now Cycle, arg any)
	arg   any
}

// eventHeap is a min-heap of events ordered by (at, seq), stored by value
// in a plain slice. Push and pop sift manually instead of going through
// container/heap, which would box every element in an interface and
// allocate on the steady-state completion path.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // clear callback/payload references for the GC
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && q.less(l, s) {
			s = l
		}
		if r < n && q.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		q[i], q[s] = q[s], q[i]
		i = s
	}
	return top
}

// Kernel owns the clock, the ordered ticker list and the event queue.
// The zero value is ready to use, with idle skipping enabled.
type Kernel struct {
	now     Cycle
	tickers []Ticker
	// idlers holds the Idler view of every registered ticker. If any
	// ticker does not implement Idler the kernel cannot prove quiescence
	// and opaque is set, which disables skipping entirely.
	idlers  []Idler
	opaque  bool
	noSkip  bool
	events  eventHeap
	seq     uint64
	started bool
	skipped uint64
	// hot remembers which idler most recently reported immediate
	// activity; checking it first short-circuits the fast-forward query
	// on busy stretches, where the same component stays active for many
	// consecutive cycles.
	hot int
	// busyStreak counts consecutive fast-forward probes that found
	// immediate activity, and busyLatch is the number of upcoming cycles
	// to execute without probing at all. Under sustained load (the
	// saturated loaded phase) every probe answers "busy now", so the
	// kernel latches busy and amortizes the query cost over the streak.
	// Skipping a probe is observationally identical to probing — the
	// cycle executes either way; only a skip opportunity is deferred, by
	// at most busyLatchMax cycles after the load ends.
	busyStreak uint8
	busyLatch  uint8
}

// busyLatchMax bounds the busy latch: at most this many executed cycles
// between fast-forward probes, so an idle transition is never detected
// more than busyLatchMax cycles late.
const busyLatchMax = 8

// Now reports the current cycle.
func (k *Kernel) Now() Cycle { return k.now }

// SkippedCycles reports how many cycles Run fast-forwarded over instead of
// executing. It is a diagnostic: (executed + skipped) == Now() for a run
// started at cycle 0.
func (k *Kernel) SkippedCycles() uint64 { return k.skipped }

// SetIdleSkip enables or disables idle skipping (enabled by default).
// Disabling it forces the reference cycle-by-cycle execution, which the
// equivalence tests compare against.
func (k *Kernel) SetIdleSkip(on bool) { k.noSkip = !on }

// IdleSkipActive reports whether Run may fast-forward: skipping must be
// enabled and every registered ticker must implement Idler.
func (k *Kernel) IdleSkipActive() bool { return !k.noSkip && !k.opaque }

// Register appends t to the per-cycle tick list. Components are ticked in
// registration order, which the SoC assembly uses to realize the pipeline
// order sources -> DMAs -> NoC -> MC -> DRAM -> responses -> adapters.
// Register panics if the simulation has already started, because inserting
// a ticker mid-run would silently skip its earlier cycles.
func (k *Kernel) Register(t Ticker) {
	if k.started {
		panic("sim: Register after simulation started")
	}
	k.tickers = append(k.tickers, t)
	if id, ok := t.(Idler); ok {
		k.idlers = append(k.idlers, id)
	} else {
		k.opaque = true
	}
}

// At schedules fn to run at cycle at, before that cycle's tickers. If at is
// in the past the event fires on the next Step.
func (k *Kernel) At(at Cycle, fn func(now Cycle)) {
	k.seq++
	k.events.push(event{at: at, seq: k.seq, fn: fn})
}

// AtArg schedules fn(now, arg) at cycle at. It exists for hot paths: a
// single long-lived fn plus a per-event pointer payload schedules without
// allocating, where a fresh closure per event would not.
func (k *Kernel) AtArg(at Cycle, fn func(now Cycle, arg any), arg any) {
	k.seq++
	k.events.push(event{at: at, seq: k.seq, argFn: fn, arg: arg})
}

// After schedules fn to run delay cycles from now.
func (k *Kernel) After(delay Cycle, fn func(now Cycle)) {
	k.At(k.now+delay, fn)
}

// Every schedules fn at period, 2*period, ... relative to the current cycle.
// It reschedules itself forever; the run simply ends when Run's horizon is
// reached.
func (k *Kernel) Every(period Cycle, fn func(now Cycle)) {
	if period == 0 {
		panic("sim: Every with zero period")
	}
	var rearm func(now Cycle)
	rearm = func(now Cycle) {
		fn(now)
		k.At(now+period, rearm)
	}
	k.At(k.now+period, rearm)
}

// Step advances the simulation by exactly one cycle: due events first, then
// every registered ticker. Step never skips.
func (k *Kernel) Step() {
	k.started = true
	for len(k.events) > 0 && k.events[0].at <= k.now {
		e := k.events.pop()
		if e.fn != nil {
			e.fn(k.now)
		} else {
			e.argFn(k.now, e.arg)
		}
	}
	for _, t := range k.tickers {
		t.Tick(k.now)
	}
	k.now++
}

// Run advances the simulation until the clock reaches horizon (exclusive).
// When idle skipping is active, quiescent stretches — no event due and
// every ticker's NextActivity strictly in the future — are fast-forwarded
// instead of executed.
func (k *Kernel) Run(horizon Cycle) {
	if !k.started && len(k.idlers) > 1 {
		// Query idlers in reverse registration order: assemblies register
		// pipeline consumers (routers, memory controllers) last, and those
		// are the components most often active — finding a veto early
		// short-circuits the fast-forward probe. The set minimum is order
		// independent, so this is purely a query optimization.
		for i, j := 0, len(k.idlers)-1; i < j; i, j = i+1, j-1 {
			k.idlers[i], k.idlers[j] = k.idlers[j], k.idlers[i]
		}
	}
	skip := k.IdleSkipActive()
	for k.now < horizon {
		k.Step()
		if skip && k.now < horizon {
			k.fastForward(horizon)
		}
	}
}

// NextWake reports the cycle Run would fast-forward to from the current
// clock — the next due event or the earliest ticker activity — capped at
// horizon. It does not move the clock; the equivalence tests use it to
// audit Idler hints against actual behavior.
func (k *Kernel) NextWake(horizon Cycle) Cycle {
	return k.nextWake(horizon, false)
}

// nextWake computes the fast-forward target: the next due event or the
// earliest ticker activity, capped at horizon; k.now means something is
// due immediately. With updateHot it remembers which idler vetoed, so
// the next query can short-circuit on it.
func (k *Kernel) nextWake(horizon Cycle, updateHot bool) Cycle {
	target := horizon
	if len(k.events) > 0 {
		at := k.events[0].at
		if at <= k.now {
			return k.now
		}
		if at < target {
			target = at
		}
	}
	for i, id := range k.idlers {
		next, ok := id.NextActivity(k.now)
		if !ok {
			continue
		}
		if next <= k.now {
			if updateHot {
				k.hot = i
			}
			return k.now
		}
		if next < target {
			target = next
		}
	}
	return target
}

// fastForward advances the clock to the earliest upcoming activity —
// the next due event or the earliest ticker wakeup — capped at
// horizon-1 so the run's final cycle always executes: components defer
// bookkeeping (batched stall counters) to their next Tick, and that
// last tick settles anything accrued over a trailing quiescent stretch.
// It returns without moving the clock if anything is due now.
func (k *Kernel) fastForward(horizon Cycle) {
	if k.busyLatch > 0 {
		// Provably-safe probe skip: recent back-to-back activity latched
		// busy, so execute this cycle without querying anyone.
		k.busyLatch--
		return
	}
	if len(k.events) > 0 && k.events[0].at <= k.now {
		// An event is due this cycle: provably busy, no idler query needed.
		k.noteBusy()
		return
	}
	if h := k.hot; h < len(k.idlers) {
		if next, ok := k.idlers[h].NextActivity(k.now); ok && next <= k.now {
			k.noteBusy()
			return
		}
	}
	target := k.nextWake(horizon-1, true)
	if target > k.now {
		k.busyStreak = 0
		k.skipped += uint64(target - k.now)
		k.now = target
		return
	}
	k.noteBusy()
}

// noteBusy records a probe that found immediate activity and arms the
// busy latch once the streak shows sustained load: after n consecutive
// busy probes the next n-1 (capped) cycles execute probe-free.
func (k *Kernel) noteBusy() {
	if k.busyStreak <= busyLatchMax {
		k.busyStreak++
	}
	if k.busyStreak > 1 {
		k.busyLatch = k.busyStreak - 1
	}
}

// RunFor advances the simulation by n cycles.
func (k *Kernel) RunFor(n Cycle) { k.Run(k.now + n) }
