package sim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// spinner is a pathological ticker that reports work every cycle and
// never accomplishes anything — the livelock the cycle budget exists for.
type spinner struct{ ticks uint64 }

func (s *spinner) Tick(now Cycle)                       { s.ticks++ }
func (s *spinner) NextActivity(now Cycle) (Cycle, bool) { return now, true }
func (s *spinner) Name() string                         { return "spinner" }

// parker reports outstanding work but parks forever: the component
// dropped its transaction on the floor, so no wake will ever revive it.
type parker struct{ outstanding uint64 }

func (p *parker) Tick(now Cycle)                       {}
func (p *parker) NextActivity(now Cycle) (Cycle, bool) { return 0, false }

func TestWatchdogCycleBudget(t *testing.T) {
	var k Kernel
	k.Register(&spinner{})
	k.SetWatchdog(&Watchdog{MaxExecuted: 100})
	err := k.RunChecked(1_000_000)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("RunChecked = %v, want DeadlockError", err)
	}
	if de.Executed != 101 {
		t.Fatalf("tripped after %d executed cycles, want 101", de.Executed)
	}
	if !strings.Contains(de.Error(), "cycle budget") {
		t.Fatalf("reason %q lacks 'cycle budget'", de.Error())
	}
	// The dump names the busy idler and shows a live "now" hint.
	if len(de.Idlers) != 1 || de.Idlers[0].Name != "spinner" {
		t.Fatalf("idler dump %+v, want one entry named spinner", de.Idlers)
	}
	if st := de.Idlers[0]; !st.HintOK || st.Hint != de.Now {
		t.Fatalf("spinner dump hint %+v, want live hint at trip cycle %d", st, de.Now)
	}
}

func TestWatchdogParkedDeadlock(t *testing.T) {
	var k Kernel
	p := &parker{outstanding: 3}
	k.Register(p)
	k.SetWatchdog(&Watchdog{Outstanding: func() uint64 { return p.outstanding }})
	err := k.RunChecked(1_000_000)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("RunChecked = %v, want DeadlockError", err)
	}
	if de.Outstanding != 3 {
		t.Fatalf("outstanding %d, want 3", de.Outstanding)
	}
	if !strings.Contains(de.Error(), "parked") {
		t.Fatalf("reason %q lacks 'parked'", de.Error())
	}
	if len(de.Idlers) != 1 || !de.Idlers[0].Parked {
		t.Fatalf("idler dump %+v, want one parked entry", de.Idlers)
	}

	// Same system with nothing outstanding: the parked heap is a normal
	// end of activity, not a deadlock.
	var k2 Kernel
	p2 := &parker{outstanding: 0}
	k2.Register(p2)
	k2.SetWatchdog(&Watchdog{Outstanding: func() uint64 { return p2.outstanding }})
	if err := k2.RunChecked(1000); err != nil {
		t.Fatalf("drained system tripped the watchdog: %v", err)
	}
}

func TestWatchdogWallClockDeadline(t *testing.T) {
	var k Kernel
	s := &spinner{}
	k.Register(s)
	// A spinner executes every cycle; make each tick cost real time via
	// an event loop that sleeps, so the deadline trips after a few
	// checks rather than after millions of cycles.
	k.Every(1, func(now Cycle) { time.Sleep(200 * time.Microsecond) })
	k.SetWatchdog(&Watchdog{
		Deadline:   time.Now().Add(5 * time.Millisecond),
		CheckEvery: 8,
	})
	err := k.RunChecked(1_000_000)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("RunChecked = %v, want DeadlockError", err)
	}
	if !strings.Contains(de.Error(), "deadline") {
		t.Fatalf("reason %q lacks 'deadline'", de.Error())
	}
}

func TestWatchdogProgressBudget(t *testing.T) {
	var k Kernel
	k.Register(&spinner{})
	var progress uint64
	k.SetWatchdog(&Watchdog{
		Progress:       func() uint64 { return progress },
		ProgressBudget: 50,
		CheckEvery:     1,
	})
	err := k.RunChecked(1_000_000)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("RunChecked = %v, want DeadlockError", err)
	}
	if !strings.Contains(de.Error(), "no progress") {
		t.Fatalf("reason %q lacks 'no progress'", de.Error())
	}

	// A moving counter keeps the same run alive to its horizon.
	var k2 Kernel
	k2.Register(&spinner{})
	k2.SetWatchdog(&Watchdog{
		Progress:       func() uint64 { progress++; return progress },
		ProgressBudget: 50,
		CheckEvery:     1,
	})
	if err := k2.RunChecked(10_000); err != nil {
		t.Fatalf("progressing run tripped the watchdog: %v", err)
	}
}

func TestRunCheckedContainsPanics(t *testing.T) {
	var k Kernel
	k.Register(&fakeIdler{wakes: []Cycle{1, 2, 3}})
	k.At(5, func(now Cycle) { panic("component bug") })
	err := k.RunChecked(100)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("RunChecked = %v, want PanicError", err)
	}
	if pe.Value != "component bug" {
		t.Fatalf("panic value %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError carries no stack")
	}
	// The clock stopped at the failing cycle; the kernel is inspectable.
	if k.Now() != 5 {
		t.Fatalf("clock at %d after contained panic, want 5", k.Now())
	}
}

func TestRunCheckedSurfacesInvariantErrors(t *testing.T) {
	var k Kernel
	k.Register(&fakeIdler{wakes: []Cycle{1}})
	k.At(2, func(now Cycle) { k.Every(0, func(Cycle) {}) })
	err := k.RunChecked(100)
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("RunChecked = %v, want a wrapped InvariantError", err)
	}
	if !strings.Contains(ie.Error(), "zero period") {
		t.Fatalf("invariant message %q", ie.Error())
	}
}

func TestRunCheckedNoWatchdogMatchesRun(t *testing.T) {
	ref, chk := &fakeIdler{wakes: []Cycle{3, 100, 5000}}, &fakeIdler{wakes: []Cycle{3, 100, 5000}}
	var kr, kc Kernel
	kr.Register(ref)
	kc.Register(chk)
	kr.Run(6000)
	if err := kc.RunChecked(6000); err != nil {
		t.Fatal(err)
	}
	if kr.Now() != kc.Now() || kr.SkippedCycles() != kc.SkippedCycles() {
		t.Fatalf("checked run diverged: now %d/%d skipped %d/%d",
			kr.Now(), kc.Now(), kr.SkippedCycles(), kc.SkippedCycles())
	}
	if len(ref.ticked) != len(chk.ticked) {
		t.Fatalf("tick histories differ: %v vs %v", ref.ticked, chk.ticked)
	}
}

// TestWatchdogGuardedMatchesPlainRun pins the central equivalence: the
// guarded loop with generous budgets executes exactly the same schedule
// as the plain loop — the watchdog only observes, never perturbs.
func TestWatchdogGuardedMatchesPlainRun(t *testing.T) {
	ref, chk := &fakeIdler{wakes: []Cycle{3, 100, 5000}}, &fakeIdler{wakes: []Cycle{3, 100, 5000}}
	var kr, kc Kernel
	kr.Register(ref)
	kc.Register(chk)
	kr.Run(6000)
	kc.SetWatchdog(&Watchdog{MaxExecuted: 1 << 40, CheckEvery: 7})
	if err := kc.RunChecked(6000); err != nil {
		t.Fatal(err)
	}
	if kr.Now() != kc.Now() || kr.SkippedCycles() != kc.SkippedCycles() {
		t.Fatalf("guarded run diverged: now %d/%d skipped %d/%d",
			kr.Now(), kc.Now(), kr.SkippedCycles(), kc.SkippedCycles())
	}
	if len(ref.ticked) != len(chk.ticked) {
		t.Fatalf("tick histories differ: %v vs %v", ref.ticked, chk.ticked)
	}
	if kc.ExecutedCycles() == 0 {
		t.Fatal("guarded run reports no executed cycles")
	}
}
