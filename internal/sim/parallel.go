// Domain-parallel run support: the epoch barrier the per-channel domain
// kernels synchronize on (see core.BuildParallel). Each domain runs its
// own *Kernel on its own goroutine and all domains rendezvous twice per
// lookahead epoch — once after the cross-domain mailbox exchange, once
// after the epoch's Run segment — so mailbox memory is only ever touched
// on one side of a barrier (plain fields, no per-packet atomics).
//
// The barrier is a sense-reversing atomic spin barrier, not a sync.Cond:
// an epoch is only a few cycles of simulation (single-digit microseconds
// of work per domain), so parking workers in the scheduler at every
// rendezvous would cost more than the epoch itself. Waiters spin briefly
// and then yield, which keeps the loop correct (if slow) even when
// GOMAXPROCS is smaller than the worker count.

package sim

import (
	"runtime"
	"sync/atomic"
)

// barrierSpins is how many times a waiter polls before yielding the
// processor. Small enough that an oversubscribed host (fewer cores than
// workers) degrades to cooperative scheduling instead of burning a full
// quantum per rendezvous.
const barrierSpins = 128

// Barrier is a reusable sense-reversing spin barrier for n workers.
// Wait blocks until all n workers have arrived, then releases them all;
// the barrier is immediately reusable for the next rendezvous. Abort
// permanently releases every current and future waiter with a false
// return, so a worker that dies (panic, watchdog trip) cannot strand
// the others mid-epoch.
type Barrier struct {
	n       int32
	arrived atomic.Int32
	gen     atomic.Uint32
	aborted atomic.Bool
}

// NewBarrier returns a barrier for n workers (n >= 1).
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic(invariant("sim: barrier needs at least one worker"))
	}
	return &Barrier{n: int32(n)}
}

// Wait blocks until all workers arrive (or the barrier is aborted) and
// reports whether the rendezvous completed normally. The atomic
// generation publish/observe pair is also the happens-before edge the
// domain mailboxes rely on: everything written before a worker's Wait
// is visible to every worker after the matching release.
//
//sara:hotpath
func (b *Barrier) Wait() bool {
	if b.aborted.Load() {
		return false
	}
	g := b.gen.Load()
	if b.arrived.Add(1) == b.n {
		// Last arriver: reset the count before publishing the new
		// generation, so no released waiter can reach its next Wait
		// while the count still holds the old generation's arrivals.
		b.arrived.Store(0)
		b.gen.Add(1)
		return !b.aborted.Load()
	}
	for spins := 0; b.gen.Load() == g; spins++ {
		if b.aborted.Load() {
			return false
		}
		if spins >= barrierSpins {
			runtime.Gosched()
		}
	}
	return !b.aborted.Load()
}

// Abort permanently releases the barrier: every blocked and future Wait
// returns false. Called by a worker that cannot reach its next
// rendezvous (panic unwinding, watchdog trip) before it unwinds.
func (b *Barrier) Abort() { b.aborted.Store(true) }

// Aborted reports whether Abort has been called.
func (b *Barrier) Aborted() bool { return b.aborted.Load() }
