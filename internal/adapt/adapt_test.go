package adapt

import (
	"testing"
	"testing/quick"

	"sara/internal/sim"
	"sara/internal/txn"
)

func TestLUTMapBoundaries(t *testing.T) {
	lut := DefaultLUT(3)
	cases := []struct {
		npi  float64
		want txn.Priority
	}{
		{10.0, 0}, {1.5, 0}, {1.3, 1}, {1.1, 2}, {1.0, 3},
		{0.9, 4}, {0.7, 5}, {0.6, 6}, {0.3, 7}, {0.0, 7}, {-5, 7},
	}
	for _, c := range cases {
		if got := lut.Map(c.npi); got != c.want {
			t.Errorf("Map(%v) = %d, want %d", c.npi, got, c.want)
		}
	}
}

func TestLUTMonotoneProperty(t *testing.T) {
	// Property: a lower NPI never maps to a lower priority (urgency is
	// monotone in unhealthiness), for every quantization.
	for bits := 1; bits <= 4; bits++ {
		lut := DefaultLUT(bits)
		f := func(a, b float64) bool {
			if a > b {
				a, b = b, a
			}
			return lut.Map(a) >= lut.Map(b)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
	}
}

func TestLUTLevels(t *testing.T) {
	for bits := 1; bits <= 4; bits++ {
		if got := DefaultLUT(bits).Levels(); got != 1<<bits {
			t.Fatalf("bits=%d levels=%d, want %d", bits, got, 1<<bits)
		}
	}
}

func TestNewLUTValidation(t *testing.T) {
	for _, bounds := range [][]float64{
		{},
		{1.0, 1.0},
		{0.5, 1.0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLUT(%v) did not panic", bounds)
				}
			}()
			NewLUT(bounds)
		}()
	}
}

func TestLUTHardwareSemantics(t *testing.T) {
	// §3.4: entry p stores the lowest NPI allowed at level p; all levels
	// with bound <= NPI assert and the lowest asserted level wins. An NPI
	// below every finite bound must land on the last level.
	lut := NewLUT([]float64{2.0, 1.0, 0.5, 0.1})
	if got := lut.Map(0.05); got != 3 {
		t.Fatalf("Map(0.05) = %d, want 3 (backlog level admits everything)", got)
	}
	if got := lut.Map(1.2); got != 1 {
		t.Fatalf("Map(1.2) = %d, want 1 (lowest asserted level)", got)
	}
}

// fakeDMA records SetPriority calls.
type fakeDMA struct{ p txn.Priority }

func (f *fakeDMA) SetPriority(p txn.Priority) { f.p = p }

// constMeter yields a settable NPI.
type constMeter struct{ npi float64 }

func (m *constMeter) NPI(sim.Cycle) float64 { return m.npi }

func TestAdapterAppliesPriority(t *testing.T) {
	m := &constMeter{npi: 0.4}
	dst := &fakeDMA{}
	a := New("t", m, DefaultLUT(3), dst, 100)
	a.Tick(100)
	if dst.p != 7 {
		t.Fatalf("priority %d after unhealthy tick, want 7", dst.p)
	}
	if a.Current() != 7 {
		t.Fatalf("Current() = %d, want 7", a.Current())
	}
	m.npi = 2.0
	a.Tick(200)
	if dst.p != 0 {
		t.Fatalf("priority %d after healthy tick, want 0", dst.p)
	}
	h := a.Histogram()
	if h.Total() != 200 {
		t.Fatalf("histogram weight %d, want 200 (two intervals)", h.Total())
	}
	if h.Fraction(7) != 0.5 || h.Fraction(0) != 0.5 {
		t.Fatalf("histogram fractions 7:%v 0:%v, want 0.5 each", h.Fraction(7), h.Fraction(0))
	}
}

func TestAdapterDisabled(t *testing.T) {
	m := &constMeter{npi: 0.1}
	dst := &fakeDMA{p: 5}
	a := New("t", m, DefaultLUT(3), dst, 100)
	a.SetEnabled(false)
	a.Tick(100)
	if dst.p != 0 {
		t.Fatalf("disabled adapter left priority %d, want 0", dst.p)
	}
}

func TestAdapterZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero interval")
		}
	}()
	New("t", &constMeter{}, DefaultLUT(3), &fakeDMA{}, 0)
}
