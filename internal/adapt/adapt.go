// Package adapt implements the priority-based self-adaptation of Sections
// 3.2 and 3.4: the translation of a DMA's NPI value into a relative
// priority level through a small look-up table, hardware-style — one
// register per priority level holding the lowest NPI admitted at that
// level, parallel comparators, lowest asserted level wins.
package adapt

import (
	"fmt"
	"math"

	"sara/internal/meter"
	"sara/internal/sim"
	"sara/internal/stats"
	"sara/internal/txn"
)

// LUT is the NPI-to-priority mapping table. Bounds[p] stores the lowest
// NPI value allowed at priority level p; bounds must be strictly
// decreasing so that exactly the levels p..max are asserted for a given
// NPI, and the lowest asserted level (the least urgent) is adopted.
type LUT struct {
	bounds []float64
}

// NewLUT builds a table from the given bounds. It panics if bounds is
// empty or not strictly decreasing, mirroring the design-time check a
// hardware generator would perform.
func NewLUT(bounds []float64) LUT {
	if len(bounds) == 0 {
		panic("adapt: empty LUT")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] >= bounds[i-1] {
			panic(fmt.Sprintf("adapt: LUT bounds not strictly decreasing at %d: %v", i, bounds))
		}
	}
	cp := append([]float64(nil), bounds...)
	// The highest priority level admits any NPI, so the backlog level's
	// bound is effectively -inf regardless of the configured value.
	cp[len(cp)-1] = math.Inf(-1)
	return LUT{bounds: cp}
}

// DefaultLUT returns the evaluation mapping for k priority bits (2^k
// levels). For k = 3 the bounds are tuned so that a core comfortably above
// target sits at level 0 and a core below half its target saturates at 7,
// matching the adaptation examples of Fig. 4.
func DefaultLUT(bits int) LUT {
	n := 1 << bits
	switch n {
	case 2:
		return NewLUT([]float64{1.0, 0})
	case 4:
		return NewLUT([]float64{1.2, 1.0, 0.7, 0})
	case 8:
		return NewLUT([]float64{1.5, 1.25, 1.1, 1.0, 0.85, 0.7, 0.5, 0})
	case 16:
		return NewLUT([]float64{2.0, 1.7, 1.5, 1.35, 1.25, 1.15, 1.05, 1.0,
			0.92, 0.85, 0.77, 0.7, 0.6, 0.5, 0.35, 0})
	default:
		// Generic geometric spacing between 1.5 and 0.5 around 1.0.
		bounds := make([]float64, n)
		for i := 0; i < n; i++ {
			bounds[i] = 1.5 * math.Pow(0.87, float64(i)*8/float64(n))
		}
		bounds[n-1] = 0
		return NewLUT(bounds)
	}
}

// Levels reports the number of priority levels in the table.
func (l LUT) Levels() int { return len(l.bounds) }

// Bound reports the lowest NPI admitted at level p.
func (l LUT) Bound(p int) float64 { return l.bounds[p] }

// Map translates an NPI value into a priority level: every level whose
// bound is <= npi is asserted, and the lowest asserted level wins (§3.4).
func (l LUT) Map(npi float64) txn.Priority {
	for p, bound := range l.bounds {
		if npi >= bound {
			return txn.Priority(p)
		}
	}
	// Unreachable: the last bound is -inf.
	return txn.Priority(len(l.bounds) - 1)
}

// PrioritySetter receives the adapted priority (implemented by the DMA).
type PrioritySetter interface {
	SetPriority(p txn.Priority)
}

// Adapter periodically re-evaluates one DMA's meter and adjusts the
// priority stamped on its future transactions. It also accumulates the
// time-at-level histogram that Fig. 7 reports.
//
// Adapters ride the kernel's event heap (a periodic sim.Kernel.Every
// schedule), not the wake heap: they are not Idlers, need no WakeHandle,
// and a priority change never moves any component's next-activity cycle
// — it only reorders arbitration among already-scheduled work — so the
// push-based wake contract does not apply to them.
type Adapter struct {
	Name  string
	meter meter.Meter
	lut   LUT
	dma   PrioritySetter

	interval sim.Cycle
	current  txn.Priority
	hist     *stats.LevelHistogram
	enabled  bool
}

// New builds an adapter that maps m through lut into dst every interval
// cycles. Call Tick from a periodic event (the SoC layer wires this).
func New(name string, m meter.Meter, lut LUT, dst PrioritySetter, interval sim.Cycle) *Adapter {
	if interval == 0 {
		panic("adapt: zero adaptation interval")
	}
	return &Adapter{
		Name:     name,
		meter:    m,
		lut:      lut,
		dma:      dst,
		interval: interval,
		hist:     stats.NewLevelHistogram(lut.Levels()),
		enabled:  true,
	}
}

// SetEnabled turns adaptation on or off; when off the DMA keeps priority 0
// (used by the non-SARA baseline policies).
func (a *Adapter) SetEnabled(on bool) {
	a.enabled = on
	if !on {
		a.current = 0
		a.dma.SetPriority(0)
	}
}

// Interval reports the adaptation period in cycles.
func (a *Adapter) Interval() sim.Cycle { return a.interval }

// Current reports the most recently adopted priority level.
func (a *Adapter) Current() txn.Priority { return a.current }

// Histogram returns the time-at-level histogram.
func (a *Adapter) Histogram() *stats.LevelHistogram { return a.hist }

// Tick performs one adaptation step at cycle now.
func (a *Adapter) Tick(now sim.Cycle) {
	if !a.enabled {
		a.hist.Add(0, uint64(a.interval))
		return
	}
	p := a.lut.Map(a.meter.NPI(now))
	a.current = p
	a.dma.SetPriority(p)
	a.hist.Add(int(p), uint64(a.interval))
}
