package exp

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"sara/internal/config"
	"sara/internal/memctrl"
)

// TestSeedFanOutReproducible is the acceptance property of the seed
// fan-out: running the same (case, policy) across N seeds through the
// parallel harness yields per-seed results — and the confidence intervals
// derived from them — identical to serial execution, and the seeds
// genuinely vary the workload.
func TestSeedFanOutReproducible(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}
	serial := FastOptions()
	serial.Workers = 1
	parallel := FastOptions()
	parallel.Workers = 0 // GOMAXPROCS

	s := RunSeeds(config.CaseA, memctrl.QoS, seeds, serial)
	p := RunSeeds(config.CaseA, memctrl.QoS, seeds, parallel)
	if !reflect.DeepEqual(s, p) {
		t.Fatal("seed fan-out results differ between serial and parallel execution")
	}

	sNPI, pNPI := WorstNPISummary(s), WorstNPISummary(p)
	if sNPI != pNPI {
		t.Fatalf("NPI summaries differ: serial %+v, parallel %+v", sNPI, pNPI)
	}
	sBW, pBW := BandwidthSummary(s), BandwidthSummary(p)
	if sBW != pBW {
		t.Fatalf("bandwidth summaries differ: serial %+v, parallel %+v", sBW, pBW)
	}

	if sNPI.N != len(seeds) {
		t.Fatalf("summary over %d runs, want %d", sNPI.N, len(seeds))
	}
	for _, v := range []float64{sNPI.Mean, sNPI.Std, sNPI.CI95, sBW.Mean, sBW.Std, sBW.CI95} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("non-finite or negative summary term: NPI %+v, bandwidth %+v", sNPI, sBW)
		}
	}

	// Distinct seeds must produce distinct workloads — otherwise the CI is
	// a tautology. Bandwidth is the most seed-sensitive scalar.
	varied := false
	for i := 1; i < len(s); i++ {
		if s[i].BandwidthGBps != s[0].BandwidthGBps {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("all seeds produced identical bandwidth; seeds do not vary the workload")
	}

	if out := FormatSeedSummary(s); out == "" {
		t.Fatal("empty seed summary")
	}
}

// TestSeedFanOutRerunIdentity asserts the fan-out is deterministic run to
// run, not just worker-count independent: the CI a CI job records today
// must be the CI it records tomorrow.
func TestSeedFanOutRerunIdentity(t *testing.T) {
	seeds := []uint64{7, 8}
	opt := FastOptions()
	a := WorstNPISummary(RunSeeds(config.CaseB, memctrl.FCFS, seeds, opt))
	b := WorstNPISummary(RunSeeds(config.CaseB, memctrl.FCFS, seeds, opt))
	if a != b {
		t.Fatalf("repeated fan-out summaries differ: %+v vs %+v", a, b)
	}
	if a.Std != 0 && a.CI95 == 0 {
		t.Fatalf("nonzero spread with zero CI: %+v", a)
	}
}

// TestWorstNPISummarySkipsEmptyRuns is the sentinel-leak regression: a
// run with an empty MinNPI map (no metered core produced a sample) must
// not contribute a huge sentinel "worst" to the summary — it is skipped,
// and N reports only contributing runs.
func TestWorstNPISummarySkipsEmptyRuns(t *testing.T) {
	runs := []PolicyRun{
		{MinNPI: map[string]float64{"Display": 1.1, "DSP": 0.9}},
		{MinNPI: map[string]float64{}}, // no samples: must be skipped
		{MinNPI: nil},                  // likewise
		{MinNPI: map[string]float64{"Display": 1.3}},
	}
	s := WorstNPISummary(runs)
	if s.N != 2 {
		t.Fatalf("summary N = %d, want 2 (empty runs skipped)", s.N)
	}
	if want := (0.9 + 1.3) / 2; math.Abs(s.Mean-want) > 1e-12 {
		t.Fatalf("summary mean %v, want %v (a sentinel leaked in)", s.Mean, want)
	}

	// All-empty input degrades to the zero summary, not to NaN or 1e18.
	if s := WorstNPISummary([]PolicyRun{{MinNPI: nil}}); s.N != 0 || s.Mean != 0 {
		t.Fatalf("all-empty summary = %+v, want zero value", s)
	}
}

// TestPerCoreNPISummaries covers the per-core error-bar aggregation the
// seed sweep tables print: stable sorted core order, per-core N counting
// only the runs that measured the core, and correct means.
func TestPerCoreNPISummaries(t *testing.T) {
	runs := []PolicyRun{
		{MinNPI: map[string]float64{"Display": 1.1, "DSP": 0.9}},
		{MinNPI: map[string]float64{"Display": 1.3}}, // DSP unmeasured this seed
		{MinNPI: nil},
	}
	cores, sums := PerCoreNPISummaries(runs)
	if !reflect.DeepEqual(cores, []string{"DSP", "Display"}) {
		t.Fatalf("core order %v, want [DSP Display]", cores)
	}
	if s := sums["Display"]; s.N != 2 || math.Abs(s.Mean-1.2) > 1e-12 {
		t.Fatalf("Display summary %+v, want N=2 mean=1.2", s)
	}
	if s := sums["DSP"]; s.N != 1 || s.Mean != 0.9 || s.CI95 != 0 {
		t.Fatalf("DSP summary %+v, want N=1 mean=0.9", s)
	}
}

// TestFormatSeedSummaryPerCoreRows asserts the seed summary renders the
// per-core error-bar table alongside the aggregate lines.
func TestFormatSeedSummaryPerCoreRows(t *testing.T) {
	seeds := []uint64{1, 2}
	runs := RunSeeds(config.CaseA, memctrl.QoS, seeds, FastOptions())
	out := FormatSeedSummary(runs)
	cores, _ := PerCoreNPISummaries(runs)
	if len(cores) == 0 {
		t.Fatal("no cores measured; the per-core table would be empty")
	}
	for _, core := range cores {
		if !strings.Contains(out, core) {
			t.Fatalf("summary lacks per-core row for %q:\n%s", core, out)
		}
	}
	if !strings.Contains(out, "+/-") {
		t.Fatalf("summary lacks error bars:\n%s", out)
	}
}
