// The run supervisor: every sweep cell — one (case, policy, frequency,
// seed, scale) simulation — runs under containment. A panic anywhere in
// the cell's system is recovered into a typed RunError carrying the exact
// rerun command; wall-clock and cycle budgets bound livelocked cells via
// the kernel watchdog; failed cells are retried deterministically a
// bounded number of times; and the worker pool degrades gracefully — the
// remaining cells complete and the failures ride back on their
// PolicyRun.Err instead of taking the sweep down.
package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"sara/internal/analysis"
	"sara/internal/config"
	"sara/internal/core"
	"sara/internal/memctrl"
	"sara/internal/repro"
	"sara/internal/sim"
)

// Cell identifies one point of a sweep grid. The zero values select the
// case defaults (Scale 0 and 1 both mean the base SoC; DataRateMTps 0
// means the case's data rate).
type Cell struct {
	Case   config.Case        `json:"case"`
	Policy memctrl.PolicyKind `json:"policy"`
	// DataRateMTps overrides the DRAM data rate (the Fig. 7 axis).
	DataRateMTps int `json:"mtps,omitempty"`
	// Seed is the workload seed for this cell (0 means Options.Seed).
	Seed uint64 `json:"seed,omitempty"`
	// Scale is the SoC scale factor (config.ScaleSoC); 0 or 1 is base.
	Scale int `json:"scale,omitempty"`
	// Saturated selects the bandwidth-bound Fig. 8 variant of case A.
	Saturated bool `json:"saturated,omitempty"`
}

// String labels the cell for error messages.
func (c Cell) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "case %s / policy %s / seed %d", c.Case, c.Policy, c.Seed)
	if c.DataRateMTps > 0 {
		fmt.Fprintf(&b, " / %d MT/s", c.DataRateMTps)
	}
	if c.Scale > 1 {
		fmt.Fprintf(&b, " / %dx", c.Scale)
	}
	if c.Saturated {
		b.WriteString(" / saturated")
	}
	return b.String()
}

// normalize fills the cell's defaults from opt so identical runs hash
// identically however they were spelled.
func (c Cell) normalize(opt Options) Cell {
	if c.Seed == 0 {
		c.Seed = opt.Seed
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	return c
}

// Canonical renders every input that determines the cell's result as a
// stable, versioned string — the preimage of the journal key. Bump the
// version when the simulation's observable behavior changes
// incompatibly, so stale journals refuse to resume silently.
func (c Cell) Canonical(opt Options) string {
	opt = opt.apply()
	c = c.normalize(opt)
	s := fmt.Sprintf("v1 case=%s policy=%s mtps=%d seed=%d scale=%d saturated=%t scalediv=%d warmup=%d measure=%d refresh=%t",
		c.Case, c.Policy, c.DataRateMTps, c.Seed, c.Scale, c.Saturated,
		opt.ScaleDiv, opt.WarmupFrames, opt.MeasureFrames, opt.Refresh)
	if opt.DomainWorkers > 1 {
		// The domain-parallel build is a different topology (per-channel
		// ingress routers) with different — though internally
		// worker-count-invariant — results, so it hashes to a different
		// journal key. The goroutine count itself is absent on purpose:
		// it never changes results. Appending keeps every serial-run key
		// stable.
		s += " kernel=domains"
	}
	return s
}

// Key is the canonical config hash journal entries are keyed by.
func (c Cell) Key(opt Options) string {
	sum := sha256.Sum256([]byte(c.Canonical(opt)))
	return hex.EncodeToString(sum[:8])
}

// Repro builds the exact one-line rerun command for this cell.
func (c Cell) Repro(opt Options) string {
	opt = opt.apply()
	c = c.normalize(opt)
	parts := []string{"go", "run", "./cmd/sarasweep", "-sweep", "cell",
		"-case", c.Case.String(),
		"-policy", c.Policy.String(),
		"-seed", fmt.Sprint(c.Seed),
	}
	if c.DataRateMTps > 0 {
		parts = append(parts, "-freq", fmt.Sprint(c.DataRateMTps))
	}
	if c.Scale > 1 {
		parts = append(parts, "-soc-scale", fmt.Sprint(c.Scale))
	}
	if c.Saturated {
		parts = append(parts, "-saturated")
	}
	if opt.Refresh {
		parts = append(parts, "-refresh")
	}
	if opt.ScaleDiv != 256 {
		parts = append(parts, "-scale", fmt.Sprint(opt.ScaleDiv))
	}
	if opt.WarmupFrames > 0 {
		parts = append(parts, "-warmup", fmt.Sprint(opt.WarmupFrames))
	}
	if opt.MeasureFrames != 1 {
		parts = append(parts, "-measure", fmt.Sprint(opt.MeasureFrames))
	}
	if opt.DomainWorkers > 1 {
		parts = append(parts, "-domain-workers", fmt.Sprint(opt.DomainWorkers))
	}
	return repro.Command(parts...)
}

// Config builds the cell's full system configuration. This is the single
// translation from cell identity to core.Config, shared by the sweep
// supervisor and the sarasweep cell command, so a Repro line rebuilds
// exactly the failing system.
func (c Cell) Config(opt Options) core.Config {
	opt = opt.apply()
	c = c.normalize(opt)
	opts := []config.Option{
		config.WithPolicy(c.Policy),
		config.WithScaleDiv(opt.ScaleDiv),
		config.WithSeed(c.Seed),
	}
	if c.DataRateMTps > 0 {
		opts = append(opts, config.WithDataRate(c.DataRateMTps))
	}
	// Refresh last: its cycle conversion must see the final data rate.
	opts = append(opts, config.WithRefresh(opt.Refresh))
	var cfg core.Config
	if c.Saturated {
		cfg = config.Saturated(opts...)
	} else {
		cfg = config.Camcorder(c.Case, opts...)
	}
	if c.Scale > 1 {
		cfg = config.ScaleSoC(cfg, c.Scale)
	}
	return cfg
}

// RunError reports one failed cell: what happened, after how many
// attempts, and the exact command that reruns it. The deterministic
// kernel makes the Repro line strong — a failure that does not reproduce
// there was environmental (and the bounded retry usually absorbed it).
type RunError struct {
	Cell Cell `json:"cell"`
	// Attempts is how many times the cell was run (1 = no retry).
	Attempts int `json:"attempts"`
	// Reason is the failure text: the panic value, the watchdog's
	// diagnosis (with its per-idler wake dump), or "sweep aborted".
	Reason string `json:"reason"`
	// Stack is the recovered goroutine stack for panics.
	Stack string `json:"stack,omitempty"`
	// Repro is the exact one-line rerun command.
	Repro string `json:"repro"`
}

// Error summarizes the failure and ends with the standardized Repro line.
func (e *RunError) Error() string {
	return fmt.Sprintf("cell %s failed after %d attempt(s): %s\n%s",
		e.Cell, e.Attempts, e.Reason, repro.Line(e.Repro))
}

// Failed collects the errors of a supervised result set, in slot order.
func Failed(runs []PolicyRun) []*RunError {
	var errs []*RunError
	for _, r := range runs {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return errs
}

// Watchdog translates the options' budgets into a kernel watchdog armed
// now, or nil when no budget is configured (the zero-cost default).
// Exported for command-line tools that drive systems outside the cell
// supervisor (the ablation sweeps) but want the same -timeout and
// -max-cycles semantics.
func (o Options) Watchdog() *sim.Watchdog {
	if o.Timeout <= 0 && o.MaxCycles == 0 {
		return nil
	}
	wd := &sim.Watchdog{
		MaxExecuted: o.MaxCycles,
		// A tight cadence keeps the timeout granularity well under any
		// sensible budget; one clock read per 64 executed cycles is noise
		// next to the simulation work those cycles do.
		CheckEvery: 64,
	}
	if o.Timeout > 0 {
		wd.Deadline = time.Now().Add(o.Timeout) //sara:wallclock watchdog deadline is a host bound, not simulated time
	}
	return wd
}

// runCell runs one supervised cell: contained, bounded, and retried up
// to opt.Retries extra times. Retries are deterministic — same config,
// same seed — so a reproducible failure fails every attempt and an
// environmental one (OOM-killed neighbor, timeout on a loaded host) gets
// a clean second chance.
func runCell(c Cell, opt Options) PolicyRun {
	c = c.normalize(opt)
	var last *RunError
	for attempt := 0; attempt <= opt.Retries; attempt++ {
		run, rerr := runCellOnce(c, opt, attempt)
		if rerr == nil {
			return run
		}
		rerr.Attempts = attempt + 1
		last = rerr
	}
	return PolicyRun{Case: c.Case, Policy: c.Policy, Err: last}
}

// runCellOnce builds, arms and measures the cell's system once. With
// analysis or monitoring enabled it attaches the analyzer right after the
// build — before any cycle runs — and folds the report into the run.
func runCellOnce(c Cell, opt Options, attempt int) (run PolicyRun, rerr *RunError) {
	var mon *analysis.RunHandle
	defer func() {
		if r := recover(); r != nil {
			rerr = &RunError{
				Cell:   c,
				Reason: fmt.Sprintf("panic: %v", r),
				Stack:  string(debug.Stack()),
				Repro:  c.Repro(opt),
			}
		}
		if rerr != nil {
			mon.Finish(false)
		}
	}()
	cfg := c.Config(opt)
	sys := opt.buildSystem(cfg)
	var az *analysis.Analyzer
	if opt.Analyze || opt.Monitor != nil {
		mon = opt.Monitor.StartRun(c.String())
		aopt := analysis.Options{Window: sim.Cycle(opt.AnalysisWindow), Edges: opt.Analyze}
		if mon != nil {
			aopt.Publish = mon.Publish
		}
		az = analysis.Attach(sys, aopt)
		defer az.Detach()
	}
	if opt.Chaos != nil {
		opt.Chaos(c, attempt).arm(sys)
	}
	if wd := opt.Watchdog(); wd != nil {
		sys.SetWatchdog(wd)
	}
	run, err := measure(sys, cfg, c.Case, opt)
	if err != nil {
		rerr = &RunError{Cell: c, Reason: err.Error(), Repro: c.Repro(opt)}
		if pe, ok := err.(*sim.PanicError); ok {
			rerr.Reason = fmt.Sprintf("panic: %v", pe.Value)
			rerr.Stack = string(pe.Stack)
		}
		return PolicyRun{}, rerr
	}
	if opt.Analyze {
		run.Analysis = az.Report()
	}
	mon.Finish(true)
	return run, nil
}

// RunCells measures every cell of a grid under the supervisor, in slot
// order, fanning across the worker pool. Failed cells carry their
// RunError in PolicyRun.Err while the rest of the grid completes.
//
// With Options.Journal set, completed cells are appended to the journal
// as they finish; with Options.Resume also set, cells already present in
// the journal are served from it instead of re-simulated — bit-identical
// to a fresh run, which the kill-and-resume tests assert. The returned
// error reports journal open/write failures only; the runs themselves
// are always valid.
func RunCells(cells []Cell, opt Options) ([]PolicyRun, error) {
	opt = opt.apply()
	var j *Journal
	var jerr atomic.Value // first journal write error
	if opt.Journal != "" {
		var err error
		j, err = OpenJournal(opt.Journal)
		if err != nil {
			return nil, err
		}
		defer j.Close()
	}
	out := make([]PolicyRun, len(cells))
	opt.Monitor.AddPlanned(len(cells))
	var killed atomic.Bool
	opt.forEach(len(cells), func(i int) {
		c := cells[i].normalize(opt)
		key := c.Key(opt)
		if j != nil && opt.Resume {
			if run, ok := j.Lookup(key); ok {
				run.FromJournal = true
				out[i] = run
				// A journal-served cell never runs; its progress entry
				// goes straight to done.
				opt.Monitor.StartRun(c.String()).Finish(true)
				return
			}
		}
		if killed.Load() {
			// A chaos kill simulates the process dying mid-sweep: cells
			// after the kill point never ran and are reported as such
			// (and, crucially, never journaled).
			out[i] = PolicyRun{Case: c.Case, Policy: c.Policy, Err: &RunError{
				Cell:   c,
				Reason: "sweep aborted before this cell ran",
				Repro:  c.Repro(opt),
			}}
			return
		}
		run := runCell(c, opt)
		if run.Err == nil && j != nil {
			if err := j.Record(key, c, run); err != nil {
				jerr.CompareAndSwap(nil, err)
			}
		}
		if opt.Chaos != nil && opt.Chaos(c, 0).KillSweep {
			killed.Store(true)
		}
		out[i] = run
	})
	if err, ok := jerr.Load().(error); ok {
		return out, err
	}
	return out, nil
}
