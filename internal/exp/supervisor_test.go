package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sara/internal/config"
	"sara/internal/memctrl"
)

// chaosOptions is a reduced-fidelity option set for the fault-injection
// tests: half the default frame length keeps the many sweeps here cheap
// while exercising exactly the production code paths.
func chaosOptions() Options {
	return Options{ScaleDiv: 512, Workers: 1}.apply()
}

// smallGrid is the 2x2 sweep the containment and resume tests run.
func smallGrid() []Cell {
	return []Cell{
		{Case: config.CaseA, Policy: memctrl.FCFS},
		{Case: config.CaseA, Policy: memctrl.QoS},
		{Case: config.CaseB, Policy: memctrl.FCFS},
		{Case: config.CaseB, Policy: memctrl.QoS},
	}
}

// TestPanicContainedToCell injects a panic into one cell of a grid and
// asserts the supervisor converts it into that cell's RunError — with the
// rerun command — while every other cell completes normally.
func TestPanicContainedToCell(t *testing.T) {
	opt := chaosOptions()
	opt.Chaos = func(c Cell, attempt int) Chaos {
		if c.Case == config.CaseA && c.Policy == memctrl.QoS {
			return Chaos{PanicAtCycle: 1000}
		}
		return Chaos{}
	}
	runs, err := RunCells(smallGrid(), opt)
	if err != nil {
		t.Fatalf("RunCells: %v", err)
	}
	fails := Failed(runs)
	if len(fails) != 1 {
		t.Fatalf("want exactly 1 failed cell, got %d", len(fails))
	}
	re := fails[0]
	if !strings.Contains(re.Reason, "injected panic") {
		t.Errorf("reason %q does not name the injected panic", re.Reason)
	}
	if re.Stack == "" {
		t.Error("panic RunError carries no stack")
	}
	if !strings.Contains(re.Repro, "go run ./cmd/sarasweep -sweep cell") ||
		!strings.Contains(re.Repro, "-policy qos") {
		t.Errorf("repro command %q does not rebuild the failing cell", re.Repro)
	}
	if !strings.Contains(re.Error(), "Repro: ") {
		t.Errorf("RunError.Error() lacks the standardized Repro line:\n%s", re.Error())
	}
	for _, r := range runs {
		if r.Err != nil {
			continue
		}
		if r.BandwidthGBps <= 0 || len(r.MinNPI) == 0 {
			t.Errorf("surviving cell %s/%s carries no measurements", r.Case, r.Policy)
		}
	}
	out := FormatRun(runs[1])
	if !strings.Contains(out, "FAILED") || !strings.Contains(out, "Repro: ") {
		t.Errorf("FormatRun of failed cell missing failure/Repro line:\n%s", out)
	}
}

// TestTimeoutBoundsLivelock injects a livelock — an event rescheduling
// itself every cycle while burning wall-clock time — and asserts the
// per-cell timeout aborts it with the watchdog's diagnosis.
func TestTimeoutBoundsLivelock(t *testing.T) {
	opt := chaosOptions()
	opt.Timeout = 150 * time.Millisecond
	opt.Chaos = func(c Cell, attempt int) Chaos {
		return Chaos{HangAtCycle: 200, HangSleep: time.Millisecond}
	}
	start := time.Now()
	run := RunPolicy(config.CaseA, memctrl.FCFS, opt)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("timeout did not bound the hang: took %s", elapsed)
	}
	if run.Err == nil {
		t.Fatal("hung cell reported success")
	}
	if !strings.Contains(run.Err.Reason, "wall-clock deadline exceeded") {
		t.Errorf("reason %q is not the wall-clock diagnosis", run.Err.Reason)
	}
	if !strings.Contains(run.Err.Reason, "idler") {
		t.Errorf("deadline diagnosis lacks the per-idler wake dump: %q", run.Err.Reason)
	}
}

// TestMaxCyclesBudget asserts the deterministic cycle budget trips on a
// run that executes more cycles than allowed.
func TestMaxCyclesBudget(t *testing.T) {
	opt := chaosOptions()
	opt.MaxCycles = 100 // any real frame executes far more
	run := RunPolicy(config.CaseA, memctrl.FCFS, opt)
	if run.Err == nil {
		t.Fatal("cycle budget did not trip")
	}
	if !strings.Contains(run.Err.Reason, "cycle budget exceeded") {
		t.Errorf("reason %q is not the cycle-budget diagnosis", run.Err.Reason)
	}
}

// TestDeterministicRetry asserts the bounded retry reruns a failed cell
// with identical config and seed: a fault present only on the first
// attempt is absorbed, a fault present on every attempt exhausts the
// budget and reports the attempt count.
func TestDeterministicRetry(t *testing.T) {
	opt := chaosOptions()
	opt.Retries = 1
	opt.Chaos = func(c Cell, attempt int) Chaos {
		if attempt == 0 {
			return Chaos{PanicAtCycle: 500} // environmental: first attempt only
		}
		return Chaos{}
	}
	if run := RunPolicy(config.CaseA, memctrl.FCFS, opt); run.Err != nil {
		t.Errorf("retry did not absorb a first-attempt-only fault: %v", run.Err)
	}

	opt.Retries = 2
	opt.Chaos = func(c Cell, attempt int) Chaos {
		return Chaos{PanicAtCycle: 500} // reproducible: every attempt
	}
	run := RunPolicy(config.CaseA, memctrl.FCFS, opt)
	if run.Err == nil {
		t.Fatal("reproducible fault did not fail after retries")
	}
	if run.Err.Attempts != 3 {
		t.Errorf("want 3 attempts (1 + 2 retries), got %d", run.Err.Attempts)
	}
}

// TestKillAndResume is the acceptance test for the checkpoint journal: a
// sweep killed mid-grid resumes from the journal and produces tables
// byte-identical to an uninterrupted sweep.
func TestKillAndResume(t *testing.T) {
	grid := smallGrid()
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")

	// The uninterrupted reference sweep, no journal involved.
	baseOpt := chaosOptions()
	want, err := RunCells(grid, baseOpt)
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}

	// The interrupted sweep: the process "dies" after the third cell
	// completes; the fourth never runs and must not be journaled.
	killOpt := chaosOptions()
	killOpt.Journal = journal
	killOpt.Chaos = func(c Cell, attempt int) Chaos {
		return Chaos{KillSweep: c.Case == config.CaseB && c.Policy == memctrl.FCFS}
	}
	interrupted, err := RunCells(grid, killOpt)
	if err != nil {
		t.Fatalf("interrupted sweep: %v", err)
	}
	if interrupted[3].Err == nil {
		t.Fatal("cell after the kill point ran anyway")
	}
	j, err := OpenJournal(journal)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	if n := j.Len(); n != 3 {
		t.Fatalf("journal holds %d cells after kill, want 3", n)
	}
	j.Close()

	// The resumed sweep: three cells from the journal, one simulated.
	resOpt := chaosOptions()
	resOpt.Journal = journal
	resOpt.Resume = true
	got, err := RunCells(grid, resOpt)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	fromJournal := 0
	for _, r := range got {
		if r.FromJournal {
			fromJournal++
		}
	}
	if fromJournal != 3 {
		t.Errorf("resume served %d cells from the journal, want 3", fromJournal)
	}

	// Byte-identical: the persisted form and every rendered table match
	// the uninterrupted sweep exactly.
	for i := range grid {
		wb, err := json.Marshal(want[i])
		if err != nil {
			t.Fatal(err)
		}
		gb, err := json.Marshal(got[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(wb) != string(gb) {
			t.Errorf("cell %d (%s) not bit-identical after resume:\nwant %s\ngot  %s",
				i, grid[i], wb, gb)
		}
		if fw, fg := FormatRun(want[i]), FormatRun(got[i]); fw != fg {
			t.Errorf("cell %d rendered table differs after resume:\nwant:\n%s\ngot:\n%s", i, fw, fg)
		}
	}
	if fw, fg := FormatSeedSummary(want), FormatSeedSummary(got); fw != fg {
		t.Errorf("seed summary differs after resume:\nwant:\n%s\ngot:\n%s", fw, fg)
	}
}

// TestJournalSkipsTornLine asserts a journal whose final line was cut off
// mid-write (the kill signature) reopens cleanly, dropping only the torn
// entry.
func TestJournalSkipsTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	opt := chaosOptions()
	c1 := Cell{Case: config.CaseA, Policy: memctrl.FCFS}.normalize(opt)
	c2 := Cell{Case: config.CaseB, Policy: memctrl.QoS}.normalize(opt)
	if err := j.Record(c1.Key(opt), c1, PolicyRun{Case: c1.Case, Policy: c1.Policy}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(c2.Key(opt), c2, PolicyRun{Case: c2.Case, Policy: c2.Policy}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a kill mid-write: a truncated third line, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"deadbeef","cell":{"ca`)
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer j2.Close()
	if n := j2.Len(); n != 2 {
		t.Fatalf("torn journal indexed %d cells, want 2", n)
	}
	if _, ok := j2.Lookup(c1.Key(opt)); !ok {
		t.Error("intact first entry lost")
	}
	// The append must start on a fresh line despite the torn tail.
	c3 := Cell{Case: config.CaseA, Policy: memctrl.RR}.normalize(opt)
	if err := j2.Record(c3.Key(opt), c3, PolicyRun{Case: c3.Case, Policy: c3.Policy}); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if n := j3.Len(); n != 3 {
		t.Fatalf("post-torn append indexed %d cells, want 3", n)
	}
}

// TestJournalRejectsCorruptInteriorLine asserts that resume draws a hard
// line between the one tolerated failure mode — a torn final line from a
// kill mid-write — and interior corruption: a bit flip in any
// newline-terminated entry must fail the open with the line's position,
// never silently rerun the cell inside a sweep presented as resumed.
func TestJournalRejectsCorruptInteriorLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	opt := chaosOptions()
	c1 := Cell{Case: config.CaseA, Policy: memctrl.FCFS}.normalize(opt)
	c2 := Cell{Case: config.CaseB, Policy: memctrl.QoS}.normalize(opt)
	if err := j.Record(c1.Key(opt), c1, PolicyRun{Case: c1.Case, Policy: c1.Policy}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(c2.Key(opt), c2, PolicyRun{Case: c2.Case, Policy: c2.Policy}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Flip one bit in the middle of the first entry: `{` (0x7b) becomes
	// `s` (0x73), breaking the JSON while leaving the line structure (and
	// the intact second entry) alone.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != '{' {
		t.Fatalf("journal does not start with an object, got %q", raw[0])
	}
	raw[0] ^= 0x08
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenJournal(path); err == nil {
		t.Fatal("corrupt interior line accepted")
	} else if !strings.Contains(err.Error(), ":1:") {
		t.Errorf("error %q does not name line 1", err)
	}

	// A key-less but well-formed line is foreign data, not a sweep cell:
	// same hard failure, with the position.
	if err := os.WriteFile(path, []byte("{\"cell\":{}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("key-less line accepted")
	} else if !strings.Contains(err.Error(), ":1:") {
		t.Errorf("error %q does not name line 1", err)
	}
}

// TestCellKeyIdentity asserts the canonical config hash separates cells
// that differ in any result-determining input and is stable for
// identically-spelled cells.
func TestCellKeyIdentity(t *testing.T) {
	opt := chaosOptions()
	base := Cell{Case: config.CaseA, Policy: memctrl.FCFS}
	if base.Key(opt) != base.Key(opt) {
		t.Error("key not stable across calls")
	}
	if !strings.HasPrefix(base.Canonical(opt), "v1 ") {
		t.Errorf("canonical preimage not versioned: %q", base.Canonical(opt))
	}
	variants := []Cell{
		{Case: config.CaseB, Policy: memctrl.FCFS},
		{Case: config.CaseA, Policy: memctrl.QoS},
		{Case: config.CaseA, Policy: memctrl.FCFS, DataRateMTps: 1400},
		{Case: config.CaseA, Policy: memctrl.FCFS, Seed: 7},
		{Case: config.CaseA, Policy: memctrl.FCFS, Scale: 2},
		{Case: config.CaseA, Policy: memctrl.FCFS, Saturated: true},
	}
	seen := map[string]string{base.Key(opt): base.String()}
	for _, v := range variants {
		k := v.Key(opt)
		if prev, dup := seen[k]; dup {
			t.Errorf("cells %q and %q share key %s", prev, v, k)
		}
		seen[k] = v.String()
	}
	// Option changes that alter results must also change the key.
	refreshOpt := opt
	refreshOpt.Refresh = true
	if base.Key(opt) == base.Key(refreshOpt) {
		t.Error("refresh toggle does not change the journal key")
	}
	scaleOpt := opt
	scaleOpt.ScaleDiv = 256
	if base.Key(opt) == base.Key(scaleOpt) {
		t.Error("scale-div change does not change the journal key")
	}
}

// TestForEachPanicSafety asserts the worker pool lets every slot finish
// before re-raising a panic from one of them (the unsupervised-path
// safety net).
func TestForEachPanicSafety(t *testing.T) {
	opt := Options{Workers: 4}.apply()
	done := make([]bool, 8)
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		opt.forEach(len(done), func(i int) {
			if i == 2 {
				panic("slot 2 bad")
			}
			done[i] = true
		})
	}()
	if recovered == nil {
		t.Fatal("forEach swallowed the panic")
	}
	for i, ok := range done {
		if i != 2 && !ok {
			t.Errorf("slot %d did not complete after slot 2 panicked", i)
		}
	}
}
