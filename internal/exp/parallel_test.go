package exp

import (
	"reflect"
	"strings"
	"testing"

	"sara/internal/config"
	"sara/internal/memctrl"
)

// TestParallelMatchesSerial asserts the acceptance property of the
// parallel harness: fanning the (case, policy, frequency) runs across
// workers yields results identical to serial execution with the same
// seed — every run owns its own kernel and forked RNG streams.
func TestParallelMatchesSerial(t *testing.T) {
	serial := FastOptions()
	serial.Workers = 1
	parallel := FastOptions()
	parallel.Workers = 0 // GOMAXPROCS

	t.Run("fig5", func(t *testing.T) {
		s, p := Fig5(serial), Fig5(parallel)
		if !reflect.DeepEqual(s, p) {
			t.Fatal("Fig5 parallel results differ from serial")
		}
	})
	t.Run("fig8", func(t *testing.T) {
		s, p := Fig8(serial), Fig8(parallel)
		if !reflect.DeepEqual(s, p) {
			t.Fatal("Fig8 parallel results differ from serial")
		}
	})
	t.Run("fig7", func(t *testing.T) {
		s, p := Fig7(serial), Fig7(parallel)
		if !reflect.DeepEqual(s, p) {
			t.Fatal("Fig7 parallel results differ from serial")
		}
	})
}

// TestEffectiveDomainWorkers pins the shared core budget: the across-run
// fan-out wins the contested cores, the per-run domain count gets the
// remainder, and both floors are 1.
func TestEffectiveDomainWorkers(t *testing.T) {
	cases := []struct{ req, runW, procs, want int }{
		{0, 4, 8, 1},  // serial kernel requested
		{1, 4, 8, 1},  // one worker is the serial execution
		{4, 1, 8, 4},  // whole machine available to the single run
		{4, 2, 8, 4},  // 8 cores / 2 runs: the request exactly fits
		{4, 4, 8, 2},  // across-run fan-out wins: 8/4 leaves 2 per run
		{4, 8, 8, 1},  // fully fanned out: domains degrade to 1
		{4, 16, 8, 1}, // oversubscribed fan-out still floors at 1
		{4, 0, 8, 4},  // unset run workers counts as 1
		{8, 1, 4, 4},  // requested above the machine: capped
		{2, 1, 1, 1},  // single-core host: budget floors at 1
	}
	for _, c := range cases {
		if got := EffectiveDomainWorkers(c.req, c.runW, c.procs); got != c.want {
			t.Errorf("EffectiveDomainWorkers(%d, %d, %d) = %d, want %d",
				c.req, c.runW, c.procs, got, c.want)
		}
	}
}

// TestDomainWorkersBudgetInvariance: the budget caps goroutines, never
// results — a domain-parallel sweep crammed beside a saturating run
// fan-out (1 goroutine per run) matches the same sweep given the whole
// machine, because the partitioned topology is identical either way.
func TestDomainWorkersBudgetInvariance(t *testing.T) {
	lone := FastOptions()
	lone.Workers = 1
	lone.DomainWorkers = 4
	crowded := FastOptions()
	crowded.Workers = 64 // starves the per-run domain budget down to 1
	crowded.DomainWorkers = 4
	a, b := Fig8(lone), Fig8(crowded)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Fig8 results changed with the domain-worker budget")
	}
}

// TestDomainKernelJournalKey: the partitioned build is a different
// topology with different results, so it must hash to a different
// journal key — while the goroutine count, which never changes results,
// must not affect the key. The repro line carries the kernel choice.
func TestDomainKernelJournalKey(t *testing.T) {
	c := Cell{Case: config.CaseA, Policy: memctrl.QoS}
	serial := FastOptions()
	par := FastOptions()
	par.DomainWorkers = 2
	if c.Key(serial) == c.Key(par) {
		t.Fatal("domain-parallel cell hashed to the serial journal key")
	}
	par4 := FastOptions()
	par4.DomainWorkers = 4
	if c.Key(par) != c.Key(par4) {
		t.Fatal("goroutine count changed the journal key")
	}
	if r := c.Repro(par); !strings.Contains(r, "-domain-workers 2") {
		t.Fatalf("repro line misses the kernel choice: %s", r)
	}
	if r := c.Repro(serial); strings.Contains(r, "-domain-workers") {
		t.Fatalf("serial repro line names a domain kernel: %s", r)
	}
}
