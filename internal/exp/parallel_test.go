package exp

import (
	"reflect"
	"testing"
)

// TestParallelMatchesSerial asserts the acceptance property of the
// parallel harness: fanning the (case, policy, frequency) runs across
// workers yields results identical to serial execution with the same
// seed — every run owns its own kernel and forked RNG streams.
func TestParallelMatchesSerial(t *testing.T) {
	serial := FastOptions()
	serial.Workers = 1
	parallel := FastOptions()
	parallel.Workers = 0 // GOMAXPROCS

	t.Run("fig5", func(t *testing.T) {
		s, p := Fig5(serial), Fig5(parallel)
		if !reflect.DeepEqual(s, p) {
			t.Fatal("Fig5 parallel results differ from serial")
		}
	})
	t.Run("fig8", func(t *testing.T) {
		s, p := Fig8(serial), Fig8(parallel)
		if !reflect.DeepEqual(s, p) {
			t.Fatal("Fig8 parallel results differ from serial")
		}
	})
	t.Run("fig7", func(t *testing.T) {
		s, p := Fig7(serial), Fig7(parallel)
		if !reflect.DeepEqual(s, p) {
			t.Fatal("Fig7 parallel results differ from serial")
		}
	})
}
