package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sara/internal/config"
	"sara/internal/memctrl"
	"sara/internal/stats"
)

// RunSeeds measures (tc, policy) once per seed through the supervised
// cell runner, fanning the independent runs across the worker pool. Each
// run owns its own kernel and forked RNG streams, so the result slice —
// and every statistic derived from it — is identical regardless of worker
// count; the seed fan-out tests assert it. With Options.Journal set the
// fan-out checkpoints per seed, like any other cell grid.
func RunSeeds(tc config.Case, policy memctrl.PolicyKind, seeds []uint64, opt Options) []PolicyRun {
	opt = opt.apply()
	cells := make([]Cell, len(seeds))
	for i, s := range seeds {
		cells[i] = Cell{Case: tc, Policy: policy, Seed: s}
	}
	out, _ := RunCells(cells, opt)
	return out
}

// WorstNPISummary aggregates the per-seed worst min-NPI (the scalar the
// figure pass/fail calls key on) into mean / std / 95% CI. Runs whose
// MinNPI map is empty — no metered core produced a sample, e.g. a
// CPU-only roster or a horizon shorter than the sampling period — carry
// no worst NPI and are skipped, rather than poisoning the summary with a
// sentinel; the Summary's N reports how many runs actually contributed.
func WorstNPISummary(runs []PolicyRun) stats.Summary {
	xs := make([]float64, 0, len(runs))
	for _, r := range runs {
		if len(r.MinNPI) == 0 {
			continue
		}
		worst := math.Inf(1)
		for _, v := range r.MinNPI { //sara:maprange-ok min-reduction is order-insensitive
			if v < worst {
				worst = v
			}
		}
		xs = append(xs, worst)
	}
	return stats.Summarize(xs)
}

// BandwidthSummary aggregates the per-seed measured DRAM bandwidth.
func BandwidthSummary(runs []PolicyRun) stats.Summary {
	xs := make([]float64, len(runs))
	for i, r := range runs {
		xs[i] = r.BandwidthGBps
	}
	return stats.Summarize(xs)
}

// PerCoreNPISummaries aggregates, core by core, the across-seed
// distribution of each core's minimum NPI — the error bars behind the
// Fig. 5/6/9-style per-core tables. Cores are returned in sorted order
// for stable output; a core absent from some runs (its meter produced no
// sample there) contributes only the runs that measured it, which the
// per-core Summary.N reports.
func PerCoreNPISummaries(runs []PolicyRun) ([]string, map[string]stats.Summary) {
	vals := map[string][]float64{}
	for _, r := range runs {
		for core, v := range r.MinNPI { //sara:maprange-ok each core's slice gets one sample per run, so per-slice order is run order
			vals[core] = append(vals[core], v)
		}
	}
	cores := make([]string, 0, len(vals))
	for core := range vals {
		cores = append(cores, core)
	}
	sort.Strings(cores)
	out := make(map[string]stats.Summary, len(cores))
	for _, core := range cores {
		out[core] = stats.Summarize(vals[core])
	}
	return cores, out
}

// FormatSeedSummary renders a seed fan-out as one line per metric.
func FormatSeedSummary(runs []PolicyRun) string {
	if len(runs) == 0 {
		return ""
	}
	var b strings.Builder
	npi, bw := WorstNPISummary(runs), BandwidthSummary(runs)
	fmt.Fprintf(&b, "case %s / policy %-9s  %d seeds\n", runs[0].Case, runs[0].Policy, len(runs))
	switch {
	case npi.N == 0:
		// No run produced an NPI sample (no metered core reached the
		// sampling period); zero-value statistics would read as
		// catastrophic starvation, so say "no data" instead.
		fmt.Fprintf(&b, "  worst min NPI  no NPI samples in %d runs\n", len(runs))
	case npi.N < len(runs):
		// Some runs produced no NPI samples; the NPI line covers only
		// the contributors.
		fmt.Fprintf(&b, "  worst min NPI  %6.3f +/- %.3f (std %.3f, %d/%d seeds)\n",
			npi.Mean, npi.CI95, npi.Std, npi.N, len(runs))
	default:
		fmt.Fprintf(&b, "  worst min NPI  %6.3f +/- %.3f (std %.3f)\n", npi.Mean, npi.CI95, npi.Std)
	}
	fmt.Fprintf(&b, "  bandwidth GB/s %6.2f +/- %.2f (std %.2f)\n", bw.Mean, bw.CI95, bw.Std)
	// The per-core table the figures plot, with across-seed error bars:
	// each row is one core's min-NPI mean +/- 95% CI over the seed pool,
	// flagged against the same pass/fail thresholds as a single run.
	cores, sums := PerCoreNPISummaries(runs)
	for _, core := range cores {
		s := sums[core]
		status := "PASS"
		switch {
		case s.Mean < FailNPI:
			status = "FAIL"
		case s.Mean < PassNPI:
			status = "WARN"
		}
		fmt.Fprintf(&b, "    %-14s min NPI %6.3f +/- %.3f (std %.3f, %d seeds)  %s\n",
			core, s.Mean, s.CI95, s.Std, s.N, status)
	}
	return b.String()
}
