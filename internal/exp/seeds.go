package exp

import (
	"fmt"
	"strings"

	"sara/internal/config"
	"sara/internal/memctrl"
	"sara/internal/stats"
)

// RunSeeds measures (tc, policy) once per seed, fanning the independent
// runs across the worker pool. Each run owns its own kernel and forked
// RNG streams, so the result slice — and every statistic derived from it
// — is identical regardless of worker count; the seed fan-out tests
// assert it.
func RunSeeds(tc config.Case, policy memctrl.PolicyKind, seeds []uint64, opt Options) []PolicyRun {
	opt = opt.apply()
	out := make([]PolicyRun, len(seeds))
	opt.forEach(len(seeds), func(i int) {
		o := opt
		o.Seed = seeds[i]
		out[i] = RunPolicy(tc, policy, o)
	})
	return out
}

// WorstNPISummary aggregates the per-seed worst min-NPI (the scalar the
// figure pass/fail calls key on) into mean / std / 95% CI.
func WorstNPISummary(runs []PolicyRun) stats.Summary {
	xs := make([]float64, len(runs))
	for i, r := range runs {
		worst := 1e18
		for _, v := range r.MinNPI {
			if v < worst {
				worst = v
			}
		}
		xs[i] = worst
	}
	return stats.Summarize(xs)
}

// BandwidthSummary aggregates the per-seed measured DRAM bandwidth.
func BandwidthSummary(runs []PolicyRun) stats.Summary {
	xs := make([]float64, len(runs))
	for i, r := range runs {
		xs[i] = r.BandwidthGBps
	}
	return stats.Summarize(xs)
}

// FormatSeedSummary renders a seed fan-out as one line per metric.
func FormatSeedSummary(runs []PolicyRun) string {
	if len(runs) == 0 {
		return ""
	}
	var b strings.Builder
	npi, bw := WorstNPISummary(runs), BandwidthSummary(runs)
	fmt.Fprintf(&b, "case %s / policy %-9s  %d seeds\n", runs[0].Case, runs[0].Policy, npi.N)
	fmt.Fprintf(&b, "  worst min NPI  %6.3f +/- %.3f (std %.3f)\n", npi.Mean, npi.CI95, npi.Std)
	fmt.Fprintf(&b, "  bandwidth GB/s %6.2f +/- %.2f (std %.2f)\n", bw.Mean, bw.CI95, bw.Std)
	return b.String()
}
