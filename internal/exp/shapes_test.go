package exp

import (
	"testing"

	"sara/internal/config"
	"sara/internal/memctrl"
)

// These tests assert the qualitative shapes of the paper's evaluation —
// who fails, who passes, which orderings hold — on the calibrated
// workload. EXPERIMENTS.md records the quantitative values and the known
// deviations.

func TestFig5Shapes(t *testing.T) {
	runs := Fig5(FastOptions())
	byPolicy := map[memctrl.PolicyKind]PolicyRun{}
	for _, r := range runs {
		byPolicy[r.Policy] = r
	}

	fcfs := byPolicy[memctrl.FCFS]
	if fcfs.MinNPI["Display"] >= FailNPI {
		t.Errorf("FCFS: display min NPI %.3f, want a clear failure (paper: 0.13)",
			fcfs.MinNPI["Display"])
	}
	for _, core := range []string{"Image Proc.", "Video Codec", "Rotator", "Camera"} {
		if !fcfs.Passed(core) {
			t.Errorf("FCFS: %s min NPI %.3f, want pass (bursty media grab bandwidth early)",
				core, fcfs.MinNPI[core])
		}
	}

	rr := byPolicy[memctrl.RR]
	if rr.MinNPI["Display"] >= FailNPI || rr.MinNPI["Camera"] >= FailNPI {
		t.Errorf("RR: display %.3f / camera %.3f, want both to fail (paper: <0.1)",
			rr.MinNPI["Display"], rr.MinNPI["Camera"])
	}
	for _, core := range []string{"GPS", "WiFi", "USB", "DSP"} {
		if rr.MinNPI[core] < FailNPI {
			t.Errorf("RR: %s min NPI %.3f, want pass (separate transaction queue)",
				core, rr.MinNPI[core])
		}
	}

	fr := byPolicy[memctrl.FrameRate]
	for _, core := range []string{"Image Proc.", "Video Codec", "Rotator", "Display", "Camera"} {
		if fr.MinNPI[core] < FailNPI {
			t.Errorf("frame-rate QoS: media core %s min NPI %.3f, want pass",
				core, fr.MinNPI[core])
		}
	}

	qos := byPolicy[memctrl.QoS]
	for core, v := range qos.MinNPI {
		if v < PassNPI {
			t.Errorf("priority QoS: %s min NPI %.3f, want every core to pass (the headline result)",
				core, v)
		}
	}
}

func TestFig6Shapes(t *testing.T) {
	runs := Fig6(FastOptions())
	byPolicy := map[memctrl.PolicyKind]PolicyRun{}
	for _, r := range runs {
		byPolicy[r.Policy] = r
	}

	if v := byPolicy[memctrl.FCFS].MinNPI["Display"]; v >= FailNPI {
		t.Errorf("FCFS case B: display min NPI %.3f, want failure", v)
	}
	if v := byPolicy[memctrl.RR].MinNPI["Display"]; v >= FailNPI {
		t.Errorf("RR case B: display min NPI %.3f, want failure", v)
	}
	qos := byPolicy[memctrl.QoS]
	for core, v := range qos.MinNPI {
		if v < PassNPI {
			t.Errorf("priority QoS case B: %s min NPI %.3f, want pass", core, v)
		}
	}
}

func TestFig7Monotonicity(t *testing.T) {
	hists := Fig7(FastOptions())
	if len(hists) != 5 {
		t.Fatalf("got %d frequency points, want 5", len(hists))
	}
	// As frequency drops from 1700 to 1300, low-priority time must shrink
	// and high-priority time must grow (the paper's trend).
	first, last := hists[0], hists[len(hists)-1]
	if first.DataRateMTps != 1700 || last.DataRateMTps != 1300 {
		t.Fatalf("sweep endpoints %d..%d, want 1700..1300", first.DataRateMTps, last.DataRateMTps)
	}
	if last.LowShare() >= first.LowShare() {
		t.Errorf("low-priority share did not shrink: %.3f at 1700 vs %.3f at 1300",
			first.LowShare(), last.LowShare())
	}
	if last.HighShare() <= first.HighShare() {
		t.Errorf("high-priority share did not grow: %.3f at 1700 vs %.3f at 1300",
			first.HighShare(), last.HighShare())
	}
}

func TestFig8Shapes(t *testing.T) {
	results := Fig8(FastOptions())
	bw := map[memctrl.PolicyKind]float64{}
	for _, r := range results {
		bw[r.Policy] = r.BandwidthGBps
		if r.BandwidthGBps < 10 || r.BandwidthGBps > 30 {
			t.Errorf("%v bandwidth %.2f GB/s outside the plausible LPDDR4 band", r.Policy, r.BandwidthGBps)
		}
	}
	// RR shatters row locality: strictly the lowest bandwidth.
	for _, p := range []memctrl.PolicyKind{memctrl.FCFS, memctrl.QoS, memctrl.QoSRB, memctrl.FRFCFS} {
		if bw[memctrl.RR] >= bw[p] {
			t.Errorf("RR bandwidth %.2f not below %v's %.2f", bw[memctrl.RR], p, bw[p])
		}
	}
	// Policy 2 must beat Policy 1 (the row-buffer optimization pays).
	if bw[memctrl.QoSRB] <= bw[memctrl.QoS] {
		t.Errorf("QoS-RB %.2f not above QoS %.2f (paper: +10%%)",
			bw[memctrl.QoSRB], bw[memctrl.QoS])
	}
	// QoS-RB and FR-FCFS land within a few percent of each other
	// (paper: QoS-RB within 1% of FR-FCFS).
	ratio := bw[memctrl.QoSRB] / bw[memctrl.FRFCFS]
	if ratio < 0.93 || ratio > 1.08 {
		t.Errorf("QoS-RB/FR-FCFS bandwidth ratio %.3f, want within a few %% of 1", ratio)
	}
}

func TestFig9Shapes(t *testing.T) {
	runs := Fig9(FastOptions())
	frfcfs, qosrb := runs[0], runs[1]
	if frfcfs.Policy != memctrl.FRFCFS || qosrb.Policy != memctrl.QoSRB {
		t.Fatal("unexpected policy order from Fig9")
	}
	if v := frfcfs.MinNPI["Display"]; v >= FailNPI {
		t.Errorf("FR-FCFS: display min NPI %.3f, want failure (bandwidth at QoS expense)", v)
	}
	for core, v := range qosrb.MinNPI {
		if v < PassNPI {
			t.Errorf("QoS-RB: %s min NPI %.3f, want no QoS degradation", core, v)
		}
	}
	// QoS-RB must not trail FR-FCFS's bandwidth by much while fixing QoS.
	if qosrb.BandwidthGBps < 0.9*frfcfs.BandwidthGBps {
		t.Errorf("QoS-RB bandwidth %.2f far below FR-FCFS %.2f",
			qosrb.BandwidthGBps, frfcfs.BandwidthGBps)
	}
}

func TestDeterminism(t *testing.T) {
	a := RunPolicy(config.CaseA, memctrl.QoS, FastOptions())
	b := RunPolicy(config.CaseA, memctrl.QoS, FastOptions())
	for core, v := range a.MinNPI {
		if b.MinNPI[core] != v {
			t.Fatalf("non-deterministic NPI for %s: %v vs %v", core, v, b.MinNPI[core])
		}
	}
	if a.BandwidthGBps != b.BandwidthGBps {
		t.Fatalf("non-deterministic bandwidth: %v vs %v", a.BandwidthGBps, b.BandwidthGBps)
	}
}

func TestFormatters(t *testing.T) {
	run := RunPolicy(config.CaseA, memctrl.QoS, FastOptions())
	if s := FormatRun(run); len(s) == 0 {
		t.Fatal("empty run report")
	}
	if s := FormatFig7(Fig7(FastOptions())[:1]); len(s) == 0 {
		t.Fatal("empty Fig7 report")
	}
	if s := FormatFig8([]BandwidthResult{{Policy: memctrl.RR, BandwidthGBps: 15}}); len(s) == 0 {
		t.Fatal("empty Fig8 report")
	}
}
