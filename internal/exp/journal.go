// The checkpoint journal: an append-only JSONL file of completed sweep
// cells keyed by their canonical config hash. A sweep interrupted
// mid-grid — killed, OOMed, rebooted — resumes by reopening the journal
// and serving already-completed cells from it; the deterministic kernel
// guarantees the remaining cells reproduce exactly, so a resumed sweep's
// tables are bit-identical to an uninterrupted run. This is the first
// brick of the result store (ROADMAP item 3): identical (config, seed)
// cells are served from disk instead of re-simulated.
package exp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// journalEntry is one line of the journal file.
type journalEntry struct {
	// Key is the cell's canonical config hash (Cell.Key); lookups match
	// on it alone.
	Key string `json:"key"`
	// Cell is the human-readable identity, for auditing journals without
	// the hashing code at hand.
	Cell Cell `json:"cell"`
	// Run is the cell's full result, sufficient to regenerate every
	// table and CSV the sweep produces.
	Run PolicyRun `json:"run"`
}

// Journal is an open checkpoint journal: the parsed index of every
// complete entry in the file plus an append handle for new ones. Safe
// for concurrent use by the worker pool.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]PolicyRun
}

// OpenJournal opens (creating if absent) the journal at path and indexes
// its existing entries. A torn final line — the signature of a kill mid
// write — is tolerated: the fragment is truncated away and the cell it
// would have recorded simply reruns. Any other unparsable line is real
// corruption (bit rot, a partial overwrite, a foreign file) and fails the
// open with the offending line's position: resuming a sweep over silently
// dropped results would mix bit-exact journaled cells with re-simulated
// ones and present the blend as an uninterrupted run.
func OpenJournal(path string) (*Journal, error) {
	done := map[string]PolicyRun{}
	if raw, err := os.ReadFile(path); err == nil {
		if n := len(raw); n > 0 && raw[n-1] != '\n' {
			// Torn tail: drop the fragment on disk too, so the append
			// restarts the entry on a clean line boundary and a later
			// reopen does not mistake the fragment for interior corruption.
			cut := bytes.LastIndexByte(raw, '\n') + 1
			if err := os.Truncate(path, int64(cut)); err != nil {
				return nil, fmt.Errorf("journal: truncate torn tail: %w", err)
			}
			raw = raw[:cut]
		}
		sc := bufio.NewScanner(bytes.NewReader(raw))
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		for lineNo := 1; sc.Scan(); lineNo++ {
			line := sc.Bytes()
			if len(line) == 0 {
				continue // blank repair line from an older torn-tail recovery
			}
			var e journalEntry
			if err := json.Unmarshal(line, &e); err != nil {
				return nil, fmt.Errorf("journal: %s:%d: corrupt entry: %w", path, lineNo, err)
			}
			if e.Key == "" {
				return nil, fmt.Errorf("journal: %s:%d: entry without a cell key", path, lineNo)
			}
			done[e.Key] = e.Run
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("journal: %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{f: f, done: done}, nil
}

// Len reports how many completed cells the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Lookup returns the journaled result for key, if present.
func (j *Journal) Lookup(key string) (PolicyRun, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	run, ok := j.done[key]
	return run, ok
}

// Record appends one completed cell as a single JSONL line and indexes
// it. The line is written atomically with respect to other Record calls;
// O_APPEND plus the lock keeps concurrent workers from interleaving.
func (j *Journal) Record(key string, c Cell, run PolicyRun) error {
	line, err := json.Marshal(journalEntry{Key: key, Cell: c, Run: run})
	if err != nil {
		return fmt.Errorf("journal: encode %s: %w", key, err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("journal: append %s: %w", key, err)
	}
	j.done[key] = run
	return nil
}

// Close releases the append handle; the index stays readable.
func (j *Journal) Close() error { return j.f.Close() }
