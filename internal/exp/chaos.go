// Chaos hooks: deliberate fault injection for the supervisor's own test
// suite. A ChaosFunc decides, per cell and attempt, whether the cell
// panics mid-run, livelocks into the wall-clock timeout, or "kills" the
// sweep after completing (simulating a process death mid-grid, the
// journal's resume case). Production sweeps leave Options.Chaos nil;
// nothing here is on any hot path.
package exp

import (
	"fmt"
	"time"

	"sara/internal/core"
	"sara/internal/sim"
)

// Chaos is one cell's injected-fault plan. The zero value injects
// nothing.
type Chaos struct {
	// PanicAtCycle schedules a panic inside the run at this cycle,
	// exercising the supervisor's containment (0 = off).
	PanicAtCycle sim.Cycle
	// HangAtCycle starts a livelock at this cycle: an event re-schedules
	// itself every cycle while burning HangSleep of wall-clock time per
	// cycle, so the run makes only glacial progress — the shape of a real
	// livelock the wall-clock timeout must bound (0 = off).
	HangAtCycle sim.Cycle
	// HangSleep is the wall-clock cost per hung cycle (default 1ms).
	HangSleep time.Duration
	// KillSweep marks this cell as the sweep's last: after it completes,
	// no further cells are dispatched, as if the process died between
	// cells. Already-completed cells stay in the journal; the rest are
	// reported as not run.
	KillSweep bool
}

// ChaosFunc plans the faults for one cell attempt. Test-only; keep it
// deterministic so retries mean something.
type ChaosFunc func(c Cell, attempt int) Chaos

// arm schedules the plan's in-run faults on the cell's kernel.
func (ch Chaos) arm(sys *core.System) {
	k := sys.Kernel()
	if ch.PanicAtCycle > 0 {
		k.At(ch.PanicAtCycle, func(now sim.Cycle) {
			panic(fmt.Sprintf("chaos: injected panic at cycle %d", now))
		})
	}
	if ch.HangAtCycle > 0 {
		sleep := ch.HangSleep
		if sleep <= 0 {
			sleep = time.Millisecond
		}
		var hang func(now sim.Cycle)
		hang = func(now sim.Cycle) {
			time.Sleep(sleep)
			k.At(now+1, hang)
		}
		k.At(ch.HangAtCycle, hang)
	}
}
