// Package exp is the experiment harness: one runner per table and figure
// of the paper's evaluation section, producing structured results that the
// saraexp command renders as text reports and CSV, and that the benchmark
// and test suites assert shape properties against.
package exp

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sara/internal/analysis"
	"sara/internal/config"
	"sara/internal/core"
	"sara/internal/memctrl"
	"sara/internal/repro"
	"sara/internal/stats"
)

// Options tunes experiment fidelity versus runtime.
type Options struct {
	// ScaleDiv is the time-scaling factor. The default (256) is the
	// calibrated evaluation scale; smaller values lengthen the simulated
	// frame toward the paper's full 33 ms at proportionally higher cost.
	ScaleDiv int
	// WarmupFrames run before measurement starts. The default is 0: the
	// paper's NPI figures plot the use case from its start, where the
	// synchronized frame-start burst is the stress the policies must
	// absorb. Bandwidth experiments (Fig. 8) warm up one frame.
	WarmupFrames int
	// MeasureFrames are the frames whose samples count (default 1; the
	// paper plots one 33 ms frame period).
	MeasureFrames int
	// Seed is the workload seed.
	Seed uint64
	// Refresh enables LPDDR4 all-bank refresh (tREFI/tRFC at the JEDEC
	// defaults for the run's data rate) in every built system, so any
	// figure can be regenerated with refresh pressure included. Off by
	// default, matching the refresh-free baseline.
	Refresh bool
	// Workers bounds the number of (case, policy, frequency) runs
	// executed concurrently: 0 selects GOMAXPROCS, 1 forces serial
	// execution. Every run owns its own kernel, system and forked RNG
	// streams, so results are identical regardless of worker count; the
	// identity tests assert it.
	Workers int
	// DomainWorkers, when >= 2, builds every cell's system with the
	// domain-parallel kernel (core.BuildParallel): one domain per memory
	// channel, run on up to that many goroutines. The partitioned
	// topology is a different system than the serial one — the journal
	// key records it — but its results are identical at every goroutine
	// count, so the budget cap below never changes measurements. The
	// actual goroutine count per run is EffectiveDomainWorkers: the
	// across-run fan-out (Workers) wins the core budget, because
	// embarrassingly parallel runs scale better than intra-run domains.
	// Analyze, Monitor and Chaos hook the serial kernel, so any of them
	// forces the serial build (apply clears this field).
	DomainWorkers int

	// The supervisor knobs below are all zero-cost when left at their
	// zero values: no watchdog is armed, no journal is opened, and runs
	// take the same code path as before (plus one deferred recover per
	// run, not per cycle — the 0 allocs/op gate is unaffected).

	// Timeout bounds each cell's wall-clock time; an overrunning cell is
	// aborted with a DeadlockError carrying the kernel's wake-state dump.
	Timeout time.Duration
	// MaxCycles bounds each cell's executed (non-skipped) cycles — the
	// deterministic livelock budget.
	MaxCycles uint64
	// Retries reruns a failed cell up to this many extra times
	// (deterministic: same config and seed), absorbing environmental
	// failures; a reproducible failure fails every attempt.
	Retries int
	// Journal, when set, is the path of the append-only JSONL checkpoint
	// journal completed cells are recorded in.
	Journal string
	// Resume, with Journal set, serves cells already present in the
	// journal from it instead of re-simulating them.
	Resume bool
	// Chaos injects faults per cell (tests only; see ChaosFunc).
	Chaos ChaosFunc

	// Analyze attaches the stall-attribution analyzers (edge layer
	// included) to every cell and records an analysis.Report in each
	// PolicyRun. The trace-hook edges are process-global, so an analyzed
	// sweep runs its cells serially (apply forces Workers to 1).
	Analyze bool
	// AnalysisWindow overrides the analyzer aggregation window in cycles
	// (0 = four NPI sampling periods).
	AnalysisWindow uint64
	// Monitor, when non-nil, receives each cell's progress and live
	// windowed snapshots. Monitoring alone attaches sampling-only
	// analyzers (no process-global edges), so it composes with parallel
	// workers; combine with Analyze for edge-layer snapshots too.
	Monitor *analysis.Monitor
}

// apply fills defaults.
func (o Options) apply() Options {
	if o.ScaleDiv <= 0 {
		o.ScaleDiv = 256
	}
	if o.MeasureFrames <= 0 {
		o.MeasureFrames = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Analyze {
		// The analyzer's edge layer subscribes to process-global trace
		// edges that cannot tell concurrent systems apart.
		o.Workers = 1
	}
	if o.Analyze || o.Monitor != nil || o.Chaos != nil {
		// Analyzers and chaos arm the serial kernel (sys.Kernel());
		// the domain-parallel build has no single kernel to hook.
		o.DomainWorkers = 0
	}
	return o
}

// EffectiveDomainWorkers caps the per-run domain-worker count so the
// whole sweep stays within the core budget: requested domain workers,
// bounded by maxProcs divided by the across-run fan-out. The across-run
// fan-out wins the contested cores — independent runs scale linearly
// while intra-run domains synchronize every epoch — so an oversubscribed
// sweep degrades each run toward 1 goroutine (which, on the partitioned
// topology, is bit-identical anyway).
func EffectiveDomainWorkers(requested, runWorkers, maxProcs int) int {
	if requested <= 1 {
		return 1
	}
	if runWorkers < 1 {
		runWorkers = 1
	}
	budget := maxProcs / runWorkers
	if budget < 1 {
		budget = 1
	}
	if requested < budget {
		return requested
	}
	return budget
}

// buildSystem builds one run's system under the options' kernel choice:
// the serial kernel by default, the domain-parallel one when
// DomainWorkers requests it (falling back to serial automatically on
// unpartitionable topologies). The goroutine budget is shared with the
// across-run fan-out via EffectiveDomainWorkers; the build keeps the
// partitioned topology even when the budget caps it to one goroutine,
// so results never depend on the host's core count.
func (o Options) buildSystem(cfg core.Config) *core.System {
	if o.DomainWorkers > 1 {
		runWorkers := o.Workers
		if runWorkers <= 0 {
			runWorkers = runtime.GOMAXPROCS(0)
		}
		eff := EffectiveDomainWorkers(o.DomainWorkers, runWorkers, runtime.GOMAXPROCS(0))
		return core.BuildParallel(cfg, eff)
	}
	return core.Build(cfg)
}

// DefaultOptions is the standard experiment fidelity.
func DefaultOptions() Options { return Options{}.apply() }

// forEach runs fn(0..n-1) across the configured number of workers,
// preserving slot order: fn(i) writes only its own result. Runs are
// embarrassingly parallel — each builds a private System — so fan-out
// changes wall-clock time, never results.
func (o Options) forEach(n int, fn func(i int)) {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := int64(-1)
	// A panic inside one slot must not tear down the process before the
	// other workers finish their slots: capture the first one, let every
	// remaining slot complete, then re-raise it on the caller's goroutine.
	// (Supervised runs recover their own panics first; this is the safety
	// net for the unsupervised figure paths.)
	var panicOnce sync.Once
	var panicVal any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicVal = r })
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// FastOptions is an alias of DefaultOptions kept for test readability.
func FastOptions() Options { return Options{}.apply() }

// PassNPI is the threshold for "target performance achieved". The paper
// uses NPI >= 1; we allow 5% measurement-window noise on windowed meters.
const PassNPI = 0.95

// FailNPI marks clear QoS failure.
const FailNPI = 0.8

// PolicyRun is one (test case, policy) simulation outcome. The struct is
// JSON-round-trippable: the checkpoint journal persists it verbatim, and
// a journal-loaded run regenerates every table and CSV bit-identically.
type PolicyRun struct {
	Case   config.Case        `json:"case"`
	Policy memctrl.PolicyKind `json:"policy"`
	// MinNPI is the per-core minimum NPI over the measured frames (worst
	// DMA of each core).
	MinNPI map[string]float64 `json:"min_npi,omitempty"`
	// Series holds the per-DMA NPI time series over the measured frames.
	Series map[string]*stats.Series `json:"series,omitempty"`
	// BandwidthGBps is the average DRAM bandwidth over the measured
	// window.
	BandwidthGBps float64 `json:"bandwidth_gbps"`
	// RowHitRate is the fraction of CAS commands served without a fresh
	// activate, over the whole run.
	RowHitRate float64 `json:"row_hit_rate"`
	// Refreshes counts REF commands issued across all channels (zero when
	// refresh is disabled); RefreshDuty is the fraction of rank-cycles
	// spent in tRFC blackout over the whole run.
	Refreshes   uint64  `json:"refreshes,omitempty"`
	RefreshDuty float64 `json:"refresh_duty,omitempty"`
	// CriticalCores lists the cores the corresponding paper figure plots.
	CriticalCores []string `json:"critical_cores,omitempty"`
	// Analysis carries the windowed observability report when the run
	// executed with Options.Analyze; it round-trips through the journal
	// like every other field.
	Analysis *analysis.Report `json:"analysis,omitempty"`
	// Err, under the run supervisor, reports a contained failure: the
	// cell panicked, timed out or tripped the livelock watchdog. A run
	// with Err set carries no measurements.
	Err *RunError `json:"err,omitempty"`
	// FromJournal marks a run served from the checkpoint journal instead
	// of simulated (resume path; never persisted).
	FromJournal bool `json:"-"`
}

// Passed reports whether core met its target throughout the window.
func (r PolicyRun) Passed(core string) bool { return r.MinNPI[core] >= PassNPI }

// Failures lists critical cores whose minimum NPI fell below FailNPI,
// sorted for stable output.
func (r PolicyRun) Failures() []string {
	var out []string
	for _, c := range r.CriticalCores {
		if r.MinNPI[c] < FailNPI {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// measure runs an already-built (and possibly watchdog-armed) system
// through the warmup and measurement frames, containing failures: a
// watchdog trip or a panic anywhere in the system comes back as an error
// instead of unwinding the worker.
func measure(sys *core.System, cfg core.Config, tc config.Case, opt Options) (PolicyRun, error) {
	if err := sys.RunFramesChecked(opt.WarmupFrames); err != nil {
		return PolicyRun{}, err
	}
	from := sys.Now()
	before := sys.DRAMStats()
	if err := sys.RunFramesChecked(opt.MeasureFrames); err != nil {
		return PolicyRun{}, err
	}
	to := sys.Now()

	// With no warmup the first quarter frame is excluded from the minimum:
	// the windowed meters need that long to prime, and the paper's plots
	// likewise show no sub-1 dips in the first few milliseconds.
	minFrom := from
	if opt.WarmupFrames == 0 {
		minFrom = from + cfg.FramePeriod()/4
	}

	run := PolicyRun{
		Case:          tc,
		Policy:        cfg.Policy,
		MinNPI:        sys.MinNPIByCore(minFrom),
		Series:        make(map[string]*stats.Series),
		BandwidthGBps: sys.BandwidthOverWindowGBps(before, from, to),
		RowHitRate:    sys.RowHitRate(),
		Refreshes:     sys.DRAMStats().Totals().Refreshes,
		RefreshDuty:   sys.RefreshDuty(to),
		CriticalCores: sys.CriticalCores(),
	}
	for _, u := range sys.Units() {
		if u.Series == nil {
			continue
		}
		trimmed := &stats.Series{Name: u.Series.Name}
		for i, c := range u.Series.Cycles {
			if c >= from {
				// Re-base cycles on the measured frame so CSV output
				// matches the paper's 0..33 ms axis.
				trimmed.Append(c-from, u.Series.Values[i])
			}
		}
		run.Series[u.Label()] = trimmed
	}
	return run, nil
}

// RunPolicy measures one test case under one policy, supervised: a
// panicking or livelocked run comes back with PolicyRun.Err set instead
// of crashing the caller.
func RunPolicy(tc config.Case, policy memctrl.PolicyKind, opt Options) PolicyRun {
	opt = opt.apply()
	return runCell(Cell{Case: tc, Policy: policy, Seed: opt.Seed}, opt)
}

// Fig5Policies are the four arbitration policies Fig. 5 compares.
func Fig5Policies() []memctrl.PolicyKind {
	return []memctrl.PolicyKind{memctrl.FCFS, memctrl.RR, memctrl.FrameRate, memctrl.QoS}
}

// runPolicies measures tc under each policy through the supervised cell
// runner, fanning the independent runs across opt.Workers.
func runPolicies(tc config.Case, policies []memctrl.PolicyKind, opt Options) []PolicyRun {
	opt = opt.apply()
	cells := make([]Cell, len(policies))
	for i, p := range policies {
		cells[i] = Cell{Case: tc, Policy: p, Seed: opt.Seed}
	}
	// The journal error (open/write) does not invalidate the runs; the
	// figure helpers keep their historical signature and drop it.
	out, _ := RunCells(cells, opt)
	return out
}

// Fig5 reproduces Fig. 5: NPI of critical cores during one frame of test
// case A under FCFS, round-robin, frame-rate QoS and priority QoS.
func Fig5(opt Options) []PolicyRun {
	return runPolicies(config.CaseA, Fig5Policies(), opt)
}

// Fig6 reproduces Fig. 6: the same comparison for test case B.
func Fig6(opt Options) []PolicyRun {
	return runPolicies(config.CaseB, Fig5Policies(), opt)
}

// FreqHistogram is one bar of Fig. 7: the distribution of the image
// processor's priority levels at a DRAM frequency.
type FreqHistogram struct {
	DataRateMTps int
	// Fraction[p] is the share of time spent at priority level p.
	Fraction []float64
}

// Fig7Frequencies is the sweep of Fig. 7 (MT/s).
func Fig7Frequencies() []int { return []int{1700, 1600, 1500, 1400, 1300} }

// Fig7 reproduces Fig. 7: the image processor's priority-level
// distribution during one frame as DRAM frequency decreases, under the
// priority-based QoS policy.
func Fig7(opt Options) []FreqHistogram {
	opt = opt.apply()
	freqs := Fig7Frequencies()
	out := make([]FreqHistogram, len(freqs))
	opt.forEach(len(freqs), func(i int) {
		mtps := freqs[i]
		cfg := config.Camcorder(config.CaseA,
			config.WithPolicy(memctrl.QoS),
			config.WithScaleDiv(opt.ScaleDiv),
			config.WithSeed(opt.Seed),
			config.WithDataRate(mtps),
			config.WithRefresh(opt.Refresh))
		sys := opt.buildSystem(cfg)
		sys.RunFrames(opt.WarmupFrames + opt.MeasureFrames)
		hist := sys.PriorityHistogramByCore("Image Proc.")
		h := FreqHistogram{DataRateMTps: mtps, Fraction: make([]float64, hist.Levels())}
		for lvl := 0; lvl < hist.Levels(); lvl++ {
			h.Fraction[lvl] = hist.Fraction(lvl)
		}
		out[i] = h
	})
	return out
}

// LowShare sums the fraction of time at priority levels 0..1 (healthy).
func (h FreqHistogram) LowShare() float64 { return h.Fraction[0] + h.Fraction[1] }

// HighShare sums the fraction of time at the top two priority levels.
func (h FreqHistogram) HighShare() float64 {
	n := len(h.Fraction)
	return h.Fraction[n-1] + h.Fraction[n-2]
}

// BandwidthResult is one bar of Fig. 8.
type BandwidthResult struct {
	Policy        memctrl.PolicyKind
	BandwidthGBps float64
	RowHitRate    float64
}

// Fig8Policies are the five policies Fig. 8 compares, in the paper's
// bar order.
func Fig8Policies() []memctrl.PolicyKind {
	return []memctrl.PolicyKind{memctrl.RR, memctrl.FCFS, memctrl.QoS, memctrl.QoSRB, memctrl.FRFCFS}
}

// Fig8 reproduces Fig. 8: average DRAM bandwidth during one frame under
// RR, FCFS, QoS (Policy 1), QoS-RB (Policy 2) and FR-FCFS, on the
// saturated variant of test case A (see config.Saturated).
func Fig8(opt Options) []BandwidthResult {
	opt = opt.apply()
	warmup := opt.WarmupFrames
	if warmup == 0 {
		warmup = 1 // bandwidth comparisons exclude the cold start
	}
	policies := Fig8Policies()
	out := make([]BandwidthResult, len(policies))
	opt.forEach(len(policies), func(i int) {
		p := policies[i]
		cfg := config.Saturated(
			config.WithPolicy(p),
			config.WithScaleDiv(opt.ScaleDiv),
			config.WithSeed(opt.Seed),
			config.WithRefresh(opt.Refresh))
		sys := opt.buildSystem(cfg)
		sys.RunFrames(warmup)
		from := sys.Now()
		before := sys.DRAMStats()
		sys.RunFrames(opt.MeasureFrames)
		out[i] = BandwidthResult{
			Policy:        p,
			BandwidthGBps: sys.BandwidthOverWindowGBps(before, from, sys.Now()),
			RowHitRate:    sys.RowHitRate(),
		}
	})
	return out
}

// Fig9 reproduces Fig. 9: NPI of the critical cores of test case A under
// FR-FCFS versus QoS-RB (Policy 2).
func Fig9(opt Options) []PolicyRun {
	return runPolicies(config.CaseA,
		[]memctrl.PolicyKind{memctrl.FRFCFS, memctrl.QoSRB}, opt)
}

// FormatRun renders a PolicyRun as a small text table. A failed
// (supervised) run renders its failure and the standardized Repro line
// instead of measurements.
func FormatRun(r PolicyRun) string {
	if r.Err != nil {
		var b strings.Builder
		fmt.Fprintf(&b, "case %s / policy %-9s  FAILED after %d attempt(s): %s\n",
			r.Case, r.Policy, r.Err.Attempts, firstLine(r.Err.Reason))
		fmt.Fprintf(&b, "  %s\n", repro.Line(r.Err.Repro))
		return b.String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "case %s / policy %-9s  bw=%5.2f GB/s  rowhit=%.2f",
		r.Case, r.Policy, r.BandwidthGBps, r.RowHitRate)
	if r.Refreshes > 0 {
		fmt.Fprintf(&b, "  refresh=%d (%.1f%% blackout)", r.Refreshes, 100*r.RefreshDuty)
	}
	fmt.Fprintln(&b)
	cores := append([]string(nil), r.CriticalCores...)
	sort.Strings(cores)
	for _, c := range cores {
		status := "PASS"
		switch {
		case r.MinNPI[c] < FailNPI:
			status = "FAIL"
		case r.MinNPI[c] < PassNPI:
			status = "WARN"
		}
		fmt.Fprintf(&b, "  %-14s min NPI %6.3f  %s\n", c, r.MinNPI[c], status)
	}
	return b.String()
}

// firstLine truncates multi-line failure text (a watchdog's wake-state
// dump, say) to its headline for the one-line table row.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " […]"
	}
	return s
}

// FormatFig7 renders the Fig. 7 sweep as horizontal distribution bars.
func FormatFig7(hists []FreqHistogram) string {
	var b strings.Builder
	fmt.Fprintln(&b, "priority-level time share of Image Proc. (level 0..7, left to right)")
	for _, h := range hists {
		fmt.Fprintf(&b, "%4d MT/s |", h.DataRateMTps)
		for lvl, f := range h.Fraction {
			if f >= 0.005 {
				fmt.Fprintf(&b, " %d:%4.1f%%", lvl, 100*f)
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatFig8 renders the Fig. 8 bandwidth bars.
func FormatFig8(rs []BandwidthResult) string {
	var b strings.Builder
	for _, r := range rs {
		bar := strings.Repeat("#", int(r.BandwidthGBps+0.5))
		fmt.Fprintf(&b, "%-9s %6.2f GB/s (rowhit %.2f) %s\n", r.Policy, r.BandwidthGBps, r.RowHitRate, bar)
	}
	return b.String()
}
