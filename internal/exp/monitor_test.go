package exp

import (
	"encoding/json"
	"net/http"
	"testing"

	"sara/internal/analysis"
	"sara/internal/config"
	"sara/internal/memctrl"
)

// TestRunCellsAnalyzesAndMonitors drives the supervised sweep path with
// both observability options on: every completed cell must carry a
// windowed analysis report, and the monitor must have tracked the cells
// through to "done" with their final snapshots still served.
func TestRunCellsAnalyzesAndMonitors(t *testing.T) {
	mon := analysis.NewMonitor()
	if err := mon.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	opt := Options{ScaleDiv: 512, Analyze: true, AnalysisWindow: 2048, Monitor: mon}.apply()
	if opt.Workers != 1 {
		t.Fatalf("Analyze did not serialize workers: %d", opt.Workers)
	}
	cells := []Cell{
		{Case: config.CaseA, Policy: memctrl.FCFS},
		{Case: config.CaseA, Policy: memctrl.QoS},
	}
	runs, err := RunCells(cells, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Err != nil {
			t.Fatalf("cell %v failed: %v", r.Policy, r.Err)
		}
		if r.Analysis == nil {
			t.Fatalf("cell %v has no analysis report", r.Policy)
		}
		if r.Analysis.Samples == 0 || !r.Analysis.Edges {
			t.Fatalf("cell %v report: samples %d edges %v, want sampled edge-layer report",
				r.Policy, r.Analysis.Samples, r.Analysis.Edges)
		}
		if r.Analysis.System.WorstNPI.Len() != r.Analysis.Samples {
			t.Fatalf("cell %v: system series %d points, want %d",
				r.Policy, r.Analysis.System.WorstNPI.Len(), r.Analysis.Samples)
		}
	}

	resp, err := http.Get("http://" + mon.Addr() + "/api/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Planned int `json:"planned"`
		Running int `json:"running"`
		Done    int `json:"done"`
		Failed  int `json:"failed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Planned != 2 || st.Done != 2 || st.Running != 0 || st.Failed != 0 {
		t.Fatalf("final status %+v, want planned 2 done 2", st)
	}

	resp2, err := http.Get("http://" + mon.Addr() + "/api/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var entries []analysis.RunStatus
	if err := json.NewDecoder(resp2.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d monitored runs, want 2", len(entries))
	}
	for _, e := range entries {
		if e.State != "done" {
			t.Fatalf("run %q state %q, want done", e.Label, e.State)
		}
		if e.Snapshot == nil || len(e.Snapshot.NPI) == 0 {
			t.Fatalf("run %q kept no final snapshot", e.Label)
		}
	}
}

// TestPolicyRunAnalysisRoundTripsJSON pins the export contract: an
// analyzed PolicyRun survives a JSON round trip with its report intact
// (the journal and the CLI -analysis-out path both rely on this).
func TestPolicyRunAnalysisRoundTripsJSON(t *testing.T) {
	opt := Options{ScaleDiv: 512, Analyze: true, AnalysisWindow: 4096}.apply()
	run := RunPolicy(config.CaseA, memctrl.QoS, opt)
	if run.Err != nil {
		t.Fatal(run.Err)
	}
	if run.Analysis == nil {
		t.Fatal("analyzed run has no report")
	}
	blob, err := json.Marshal(run)
	if err != nil {
		t.Fatal(err)
	}
	var back PolicyRun
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Analysis == nil {
		t.Fatal("report lost in JSON round trip")
	}
	if back.Analysis.Samples != run.Analysis.Samples ||
		back.Analysis.Window != run.Analysis.Window {
		t.Fatalf("report shape changed in round trip: %d/%d samples, %d/%d window",
			back.Analysis.Samples, run.Analysis.Samples, back.Analysis.Window, run.Analysis.Window)
	}
	if back.Analysis.System.WorstNPI.Len() != run.Analysis.System.WorstNPI.Len() {
		t.Fatal("system series lost in JSON round trip")
	}
}
