// Package dma implements the DMA engines that sit between a core's
// traffic source and the on-chip network. Each DMA keeps a bounded queue
// of generated requests, injects them into its NoC port subject to an
// outstanding-transaction window, stamps every transaction with the
// priority its adapter most recently chose (Section 3.2), and routes
// completion notifications back to the source and the performance meter.
//
// Injection is event-driven: the engine caches its next-injection cycle
// (wakeAt) instead of inspecting its queue, window and port every cycle.
// The three events that can make an injection possible earlier each
// re-arm the cache and the kernel's wake heap: a source enqueue
// (Enqueue, kernel entry only — the live-queue Tick gate needs no cache
// update), a completion freeing a window slot (Deliver), and a credit
// return from the NoC port it injects into (Wake, wired through
// noc.Port.OnCredit). Under the kernel's active-ticker list a dormant
// engine is not ticked at all; in the stepped and force-poll reference
// modes ticks strictly before wakeAt settle the batched stall accounting
// in O(1), and SettleRun flushes the same accounting at the run horizon.
// SetForceScan restores the per-cycle queue inspection as the stepped
// reference for the differential suites.
package dma

import (
	"fmt"

	"sara/internal/noc"
	"sara/internal/sim"
	"sara/internal/txn"
)

// The injection and injection-wake trace edges follow the registry
// contract shared with noc and memctrl (see the hook block in
// internal/noc/noc.go): HookX(fn) subscribes fn alongside other
// observers and returns its detach func, SetDebugX(fn) is the legacy
// single-observer installer on one managed slot, and with no subscribers
// the fast-path pointer is nil so the disabled path stays zero-cost.
// Registration is single-threaded and the edges are process-global.

// InjectFn observes one injection: which engine injected which
// transaction (id, address) into its NoC port at now.
type InjectFn = func(now sim.Cycle, source int, id uint64, addr uint64)

// debugInject, when non-nil, observes every injection.
var debugInject InjectFn

var injectHooks sim.HookList[InjectFn]

// HookInject subscribes fn to the injection edge and returns its detach
// func.
func HookInject(fn InjectFn) (detach func()) {
	return injectHooks.Attach(fn, &debugInject, func(fns []InjectFn) InjectFn {
		return func(now sim.Cycle, source int, id uint64, addr uint64) {
			for _, f := range fns {
				f(now, source, id, addr)
			}
		}
	})
}

var legacyInject func()

// SetDebugInject installs fn as the legacy injection observer (nil
// uninstalls).
func SetDebugInject(fn InjectFn) {
	if fn == nil {
		setLegacy(&legacyInject, nil)
		return
	}
	setLegacy(&legacyInject, func() func() { return HookInject(fn) })
}

// WakeFn observes one injection-wake re-arm of the cached next-injection
// cycle: which engine re-armed to at, and why — 'D' for a completion
// delivery, 'C' for a port credit return. The enqueue edge re-arms only
// the kernel's wake entry, never the cache — the Tick gate reads the
// live queue — so it has no wake to trace.
type WakeFn = func(source int, at sim.Cycle, cause byte)

// debugWake, when non-nil, observes every injection-wake re-arm. The
// re-arm stream is a function of the simulated behavior alone, so it must
// be bit-identical between the idle-skipping run and the stepped
// force-scan reference — a stale or missing wake diverges this trace
// instead of silently stalling a core.
var debugWake WakeFn

var wakeHooks sim.HookList[WakeFn]

// HookWake subscribes fn to the injection-wake edge and returns its
// detach func.
func HookWake(fn WakeFn) (detach func()) {
	return wakeHooks.Attach(fn, &debugWake, func(fns []WakeFn) WakeFn {
		return func(source int, at sim.Cycle, cause byte) {
			for _, f := range fns {
				f(source, at, cause)
			}
		}
	})
}

var legacyWake func()

// SetDebugWake installs fn as the legacy injection-wake observer (nil
// uninstalls).
func SetDebugWake(fn WakeFn) {
	if fn == nil {
		setLegacy(&legacyWake, nil)
		return
	}
	setLegacy(&legacyWake, func() func() { return HookWake(fn) })
}

// setLegacy mirrors noc.setLegacy: detach the previous legacy
// subscription, then install the replacement when attach is non-nil.
func setLegacy(slot *func(), attach func() func()) {
	if *slot != nil {
		(*slot)()
		*slot = nil
	}
	if attach != nil {
		*slot = attach()
	}
}

// forceScan, when set, disables the wakeAt dormancy short-circuit so Tick
// re-inspects the queue, window and port every cycle — the per-cycle
// reference the differential tests compare the event-driven engine
// against (tests only; use with idle skipping disabled, like
// noc.SetForceScan).
var forceScan bool

// SetForceScan forces the per-cycle reference inspection (tests only).
func SetForceScan(on bool) { forceScan = on }

// never marks an unarmed injection wake: nothing can be injected until an
// external event (enqueue, completion, credit) re-arms the engine.
const never = ^sim.Cycle(0)

// CompletionFunc observes a finished transaction.
type CompletionFunc func(t *txn.Transaction, now sim.Cycle)

// request is a generated but not-yet-injected memory request.
type request struct {
	kind txn.Kind
	addr txn.Addr
	size uint32
}

// Config parameterizes one DMA engine.
type Config struct {
	// Name labels the DMA in reports, e.g. "ImageProc-rd".
	Name string
	// Core is the owning core's name; figures aggregate DMAs by core.
	Core string
	// Class selects the memory-controller queue.
	Class txn.Class
	// Window bounds the number of injected-but-incomplete transactions.
	Window int
	// MaxPending bounds the generated-but-not-injected request queue.
	MaxPending int
	// Pool, when set, recycles completed transactions so the steady-state
	// inject/complete path allocates nothing. All engines of one system
	// share a pool; the simulator is single-threaded.
	Pool *txn.Pool
}

// Stats holds the DMA's counters.
type Stats struct {
	Generated      uint64
	Injected       uint64
	Completed      uint64
	BytesCompleted uint64
	// TotalLatency accumulates end-to-end cycles for completed reads and
	// writes, for average-latency reporting.
	TotalLatency uint64
	// InjectStalls counts cycles where a pending request existed but the
	// NoC port was full or the window exhausted.
	InjectStalls uint64
}

// Engine is one DMA unit.
type Engine struct {
	cfg  Config
	id   int
	port *noc.Port
	hop  sim.Cycle

	priority txn.Priority
	// urgent is probed at injection time for the frame-rate baseline; nil
	// means never urgent. It receives the injection cycle: under the
	// active-ticker list the probed source may not have been ticked this
	// cycle, so any time-dependent state it reads must be derived from
	// now rather than from its own last tick.
	urgent func(now sim.Cycle) bool

	pending     []request
	outstanding int
	nextID      *uint64

	// wakeAt is the cached next-injection cycle: Tick runs the injection
	// loop only at or after it, and parks it at never on exit (every way
	// the loop can stop — queue empty, window full, port full — is
	// un-stuck only by a re-arming event). It sits with the other
	// tick-gate fields so the dormant fast path touches one cache line.
	wakeAt sim.Cycle

	// lastTick and stalled batch the InjectStalls accounting across
	// cycles the injection loop did not run (kernel-skipped or dormant):
	// a stalled engine's blockers (full window, full port) cannot change
	// without one of the re-arming events, each of which forces the loop
	// to run on its cycle, so every loop-free cycle in between stalled as
	// well and is counted in one step.
	lastTick sim.Cycle
	stalled  bool

	onComplete []CompletionFunc
	stats      Stats

	// kern and srcWake push re-arms into the kernel wake heap, for this
	// engine and for the traffic source feeding it: a source blocked on
	// a full pending queue, or waiting on completions (display/camera
	// in-flight accounting), would otherwise never be re-validated under
	// push-based wake scheduling. srcWakeOnDeliver marks sources whose
	// activity hint reads completion-mutated state: only those need a
	// source re-arm per delivery; other sources' hints cannot move
	// earlier on a completion, and skipping the re-arm keeps the
	// per-completion path off the wake heap.
	kern             sim.WakeHandle
	srcWake          sim.WakeHandle
	srcWakeOnDeliver bool
}

// New builds a DMA engine. id must be unique per system; nextID is the
// system-wide transaction ID counter; port is the engine's NoC input port
// and hop its injection link latency. The engine registers itself as the
// port's credit sink: a pop of the full port re-arms the injection wake.
func New(cfg Config, id int, nextID *uint64, port *noc.Port, hop sim.Cycle) *Engine {
	if cfg.Window <= 0 {
		panic(fmt.Sprintf("dma %s: window must be positive", cfg.Name))
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 2 * cfg.Window
	}
	e := &Engine{cfg: cfg, id: id, nextID: nextID, port: port, hop: hop}
	port.OnCreditArmed(e)
	return e
}

// Name returns the DMA label.
func (e *Engine) Name() string { return e.cfg.Name }

// Core returns the owning core's name.
func (e *Engine) Core() string { return e.cfg.Core }

// Class returns the memory-controller queue class.
func (e *Engine) Class() txn.Class { return e.cfg.Class }

// ID returns the engine's system-wide index.
func (e *Engine) ID() int { return e.id }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetPriority sets the urgency stamped on future transactions. It
// implements adapt.PrioritySetter.
func (e *Engine) SetPriority(p txn.Priority) { e.priority = p }

// Priority reports the currently stamped priority.
func (e *Engine) Priority() txn.Priority { return e.priority }

// SetUrgentProbe installs the frame-progress urgency probe used by the
// frame-rate-based QoS baseline. The probe is called with the injection
// cycle and must answer from time-correct state (see Engine.urgent).
func (e *Engine) SetUrgentProbe(fn func(now sim.Cycle) bool) { e.urgent = fn }

// OnComplete registers a completion observer (meter, source bookkeeping).
func (e *Engine) OnComplete(fn CompletionFunc) {
	e.onComplete = append(e.onComplete, fn)
}

// BindWake implements sim.WakeBinder: the kernel hands the engine its
// wake handle at registration.
func (e *Engine) BindWake(h sim.WakeHandle) { e.kern = h }

// BindSourceWake installs the wake handle of the traffic source feeding
// this engine (the SoC assembly wires it). The engine re-arms it when the
// pending queue pops from full and — when onDeliver is set, for sources
// whose activity hint reads completion-mutated state — on every
// completion delivery; those are the two events that can move a source's
// next activity earlier.
func (e *Engine) BindSourceWake(h sim.WakeHandle, onDeliver bool) {
	e.srcWake = h
	e.srcWakeOnDeliver = onDeliver
}

// rearm records an injection-wake re-arm: the cached cycle, the wake
// trace, and the engine's kernel wake-heap entry. Both callers must reach
// the kernel under the active-ticker list: a port credit return lands
// after the engine's tick and re-arms the NEXT cycle, and a delivery
// fires before this cycle's ticks on an engine that may be dormant — in
// either case the kernel entry is what gets the engine ticked at all.
func (e *Engine) rearm(at sim.Cycle, cause byte) {
	if debugWake != nil {
		debugWake(e.id, at, cause)
	}
	if at >= e.wakeAt {
		// Already armed at or before at — and the kernel already knows:
		// after a body run wakeAt is never, and the only way it is armed
		// between body runs is a prior kernel-pushed re-arm.
		return
	}
	e.wakeAt = at
	e.kern.Rearm(at)
}

// Wake implements noc.Waker: the credit return of the engine's injection
// port (a pop freeing a slot in the full FIFO, usable from the next cycle
// because the router ticks after the engine). Credits that cannot lead to
// an injection — nothing pending, or the window exhausted — are dropped:
// the enqueue or delivery that clears the other blocker re-arms then.
//
//sara:hotpath
func (e *Engine) Wake(at sim.Cycle) {
	if len(e.pending) == 0 || e.outstanding >= e.cfg.Window {
		return
	}
	e.rearm(at, 'C')
}

// Enqueue adds a request to the pending queue. It reports false when the
// queue is full, letting rate-based sources retry without losing the
// tokens. The cached injection wake needs no re-arm — the engine's Tick
// gate reads the live queue state, so once the engine IS ticked this
// cycle the request is injected (or the stall latched) regardless of
// wakeAt. What the active-ticker list does need is the kernel entry: the
// source enqueues during its own tick, the engine walks later in the
// same cycle, and without a due kernel bound it would not be ticked at
// all. The re-arm is gated on !stalled — a stalled engine's blockers
// (full window, full port) are untouched by an enqueue, its stall
// accounting is settled lazily, and the clearing event re-arms the
// kernel itself — so the saturated hot path stays one flag test.
func (e *Engine) Enqueue(kind txn.Kind, addr txn.Addr, size uint32) bool {
	if len(e.pending) >= e.cfg.MaxPending {
		return false
	}
	e.pending = append(e.pending, request{kind: kind, addr: addr, size: size})
	e.stats.Generated++
	if !e.stalled {
		// First pending work on an un-blocked engine: make it due now.
		// (Repeat enqueues this cycle hit the heap's O(1) early drop.)
		e.kern.Rearm(0)
	}
	return true
}

// PendingSpace reports how many more requests Enqueue will accept.
//
//sara:hotpath
func (e *Engine) PendingSpace() int { return e.cfg.MaxPending - len(e.pending) }

// Pending reports the generated-but-not-injected request count.
func (e *Engine) Pending() int { return len(e.pending) }

// Outstanding reports the injected-but-incomplete transaction count.
func (e *Engine) Outstanding() int { return e.outstanding }

// NextActivity implements sim.Idler as an O(1) read of the cached
// injection wake. The cache is a sound lower bound by construction: the
// injection loop parks it at never only when blocked on events that each
// re-arm it (see wakeAt), so a dormant engine never needs to be polled.
//
//sara:hotpath
func (e *Engine) NextActivity(now sim.Cycle) (sim.Cycle, bool) {
	if e.wakeAt == never {
		return 0, false
	}
	if e.wakeAt <= now {
		return now, true
	}
	return e.wakeAt, true
}

// Tick injects pending requests into the NoC port while the outstanding
// window and port space allow. Strictly before the cached injection wake
// it only settles stall accounting in O(1): the blockers provably cannot
// have changed, because every event that clears one re-arms the wake onto
// its own cycle.
//
//sara:hotpath
func (e *Engine) Tick(now sim.Cycle) {
	if (len(e.pending) == 0 || e.stalled) && now < e.wakeAt && !forceScan {
		// Idle, or dormant while blocked. The live pending check is the
		// enqueue edge: fresh requests on an un-stalled engine can only
		// appear on this very cycle (the source ticked just before), so
		// they route to the injection loop without any re-arm; once the
		// loop has latched a blocker, only the re-arming edges clear it.
		if e.stalled {
			// This cycle stalls too, plus any kernel-skipped stretch
			// since the last settled tick.
			if now > e.lastTick+1 {
				e.stats.InjectStalls += uint64(now - e.lastTick - 1)
			}
			e.stats.InjectStalls++
			e.lastTick = now
		}
		return
	}
	e.wakeAt = never
	if len(e.pending) == 0 && !e.stalled {
		return // nothing to inject, no stall accounting to carry
	}
	if e.stalled && now > e.lastTick+1 {
		// Skipped cycles between the last stalled tick and now: nothing
		// that could unblock the engine moved, so each of them stalled
		// as well.
		e.stats.InjectStalls += uint64(now - e.lastTick - 1)
	}
	e.lastTick = now
	wasPendingFull := len(e.pending) == e.cfg.MaxPending
	stalled := false
	for len(e.pending) > 0 && e.outstanding < e.cfg.Window {
		if !e.port.CanAccept() {
			// Parking port-blocked: arm the lazy credit so the next
			// full-FIFO pop re-arms the injection wake.
			e.port.ArmCredit()
			stalled = true
			break
		}
		r := e.pending[0]
		copy(e.pending, e.pending[1:])
		e.pending = e.pending[:len(e.pending)-1]

		*e.nextID++
		var t *txn.Transaction
		if e.cfg.Pool != nil {
			//sara:alloc-ok inlined copy of Pool.Get's pool warm-up allocation; steady state recycles
			t = e.cfg.Pool.Get()
		} else {
			t = new(txn.Transaction) //sara:alloc-ok pool-less fallback path; pooled configs never take it
		}
		*t = txn.Transaction{
			ID:       *e.nextID,
			Kind:     r.kind,
			Addr:     r.addr,
			Size:     r.size,
			Priority: e.priority,
			Source:   e.id,
			Class:    e.cfg.Class,
			Issue:    now,
		}
		if e.urgent != nil {
			t.Urgent = e.urgent(now)
		}
		if debugInject != nil {
			debugInject(now, e.id, t.ID, uint64(t.Addr))
		}
		e.port.Push(t, now, now+e.hop)
		e.outstanding++
		e.stats.Injected++
	}
	if !stalled && len(e.pending) > 0 && e.outstanding >= e.cfg.Window {
		stalled = true
	}
	if stalled {
		e.stats.InjectStalls++
	}
	e.stalled = stalled
	if wasPendingFull && len(e.pending) < e.cfg.MaxPending {
		// The pending queue popped from full: the source, which ticked
		// before this engine saw the queue full, can generate again from
		// the next cycle on.
		e.srcWake.Rearm(now + 1)
	}
}

// Deliver hands a completed transaction back to the DMA at cycle now.
// The freed window slot re-arms the injection wake (the delivery event
// fires before this cycle's ticks, so the engine can inject this cycle),
// and the source wake is re-armed alongside: completions change the
// in-flight accounting some sources' activity hints depend on.
//
//sara:hotpath
func (e *Engine) Deliver(t *txn.Transaction, now sim.Cycle) {
	if t.Source != e.id {
		panic(fmt.Sprintf("dma %s: delivery of foreign txn %d", e.cfg.Name, t.ID))
	}
	t.Complete = now
	e.outstanding--
	if e.outstanding < 0 {
		panic(fmt.Sprintf("dma %s: negative outstanding count", e.cfg.Name))
	}
	e.stats.Completed++
	e.stats.BytesCompleted += uint64(t.Size)
	e.stats.TotalLatency += uint64(t.Latency())
	for _, fn := range e.onComplete {
		fn(t, now)
	}
	if len(e.pending) > 0 {
		e.rearm(now, 'D')
	}
	if e.srcWakeOnDeliver {
		e.srcWake.Rearm(now)
	}
	// The transaction has fully left the system: observers consume it
	// synchronously and nothing downstream retains it.
	if e.cfg.Pool != nil {
		e.cfg.Pool.Put(t)
	}
}

// SettleRun implements sim.Settler: when the run horizon cuts a dormant
// stalled stretch short, flush the batched InjectStalls accounting up to
// the last simulated cycle (end-1), exactly as a dormant tick there would
// have. No-op when the engine is not stalled, or when the final cycle was
// ticked normally (stepped and force-poll modes, or an active engine).
func (e *Engine) SettleRun(end sim.Cycle) {
	if !e.stalled || end == 0 || e.lastTick >= end-1 {
		return
	}
	now := end - 1
	if now > e.lastTick+1 {
		e.stats.InjectStalls += uint64(now - e.lastTick - 1)
	}
	e.stats.InjectStalls++
	e.lastTick = now
}

// AverageLatency reports mean end-to-end latency in cycles, or 0.
func (e *Engine) AverageLatency() float64 {
	if e.stats.Completed == 0 {
		return 0
	}
	return float64(e.stats.TotalLatency) / float64(e.stats.Completed)
}
