// Package dma implements the DMA engines that sit between a core's
// traffic source and the on-chip network. Each DMA keeps a bounded queue
// of generated requests, injects them into its NoC port subject to an
// outstanding-transaction window, stamps every transaction with the
// priority its adapter most recently chose (Section 3.2), and routes
// completion notifications back to the source and the performance meter.
package dma

import (
	"fmt"

	"sara/internal/noc"
	"sara/internal/sim"
	"sara/internal/txn"
)

// debugInject, when set, observes every injection (tests only).
var debugInject func(now sim.Cycle, source int, id uint64, addr uint64)

// SetDebugInject installs the injection trace hook (equivalence tests
// only; not for concurrent use).
func SetDebugInject(fn func(now sim.Cycle, source int, id uint64, addr uint64)) { debugInject = fn }

// CompletionFunc observes a finished transaction.
type CompletionFunc func(t *txn.Transaction, now sim.Cycle)

// request is a generated but not-yet-injected memory request.
type request struct {
	kind txn.Kind
	addr txn.Addr
	size uint32
}

// Config parameterizes one DMA engine.
type Config struct {
	// Name labels the DMA in reports, e.g. "ImageProc-rd".
	Name string
	// Core is the owning core's name; figures aggregate DMAs by core.
	Core string
	// Class selects the memory-controller queue.
	Class txn.Class
	// Window bounds the number of injected-but-incomplete transactions.
	Window int
	// MaxPending bounds the generated-but-not-injected request queue.
	MaxPending int
	// Pool, when set, recycles completed transactions so the steady-state
	// inject/complete path allocates nothing. All engines of one system
	// share a pool; the simulator is single-threaded.
	Pool *txn.Pool
}

// Stats holds the DMA's counters.
type Stats struct {
	Generated      uint64
	Injected       uint64
	Completed      uint64
	BytesCompleted uint64
	// TotalLatency accumulates end-to-end cycles for completed reads and
	// writes, for average-latency reporting.
	TotalLatency uint64
	// InjectStalls counts cycles where a pending request existed but the
	// NoC port was full or the window exhausted.
	InjectStalls uint64
}

// Engine is one DMA unit.
type Engine struct {
	cfg  Config
	id   int
	port *noc.Port
	hop  sim.Cycle

	priority txn.Priority
	// urgent is probed at injection time for the frame-rate baseline; nil
	// means never urgent.
	urgent func() bool

	pending     []request
	outstanding int
	nextID      *uint64

	// lastTick and stalled batch the InjectStalls accounting across
	// kernel-skipped cycles: a stalled engine's blockers (full window,
	// full port) cannot change while the whole system is quiescent, so
	// the skipped cycles were all stalled too and are counted in one
	// step on the next executed cycle.
	lastTick sim.Cycle
	stalled  bool

	onComplete []CompletionFunc
	stats      Stats
}

// New builds a DMA engine. id must be unique per system; nextID is the
// system-wide transaction ID counter; port is the engine's NoC input port
// and hop its injection link latency.
func New(cfg Config, id int, nextID *uint64, port *noc.Port, hop sim.Cycle) *Engine {
	if cfg.Window <= 0 {
		panic(fmt.Sprintf("dma %s: window must be positive", cfg.Name))
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 2 * cfg.Window
	}
	return &Engine{cfg: cfg, id: id, nextID: nextID, port: port, hop: hop}
}

// Name returns the DMA label.
func (e *Engine) Name() string { return e.cfg.Name }

// Core returns the owning core's name.
func (e *Engine) Core() string { return e.cfg.Core }

// Class returns the memory-controller queue class.
func (e *Engine) Class() txn.Class { return e.cfg.Class }

// ID returns the engine's system-wide index.
func (e *Engine) ID() int { return e.id }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetPriority sets the urgency stamped on future transactions. It
// implements adapt.PrioritySetter.
func (e *Engine) SetPriority(p txn.Priority) { e.priority = p }

// Priority reports the currently stamped priority.
func (e *Engine) Priority() txn.Priority { return e.priority }

// SetUrgentProbe installs the frame-progress urgency probe used by the
// frame-rate-based QoS baseline.
func (e *Engine) SetUrgentProbe(fn func() bool) { e.urgent = fn }

// OnComplete registers a completion observer (meter, source bookkeeping).
func (e *Engine) OnComplete(fn CompletionFunc) {
	e.onComplete = append(e.onComplete, fn)
}

// Enqueue adds a request to the pending queue. It reports false when the
// queue is full, letting rate-based sources retry next cycle without
// losing the tokens.
func (e *Engine) Enqueue(kind txn.Kind, addr txn.Addr, size uint32) bool {
	if len(e.pending) >= e.cfg.MaxPending {
		return false
	}
	e.pending = append(e.pending, request{kind: kind, addr: addr, size: size})
	e.stats.Generated++
	return true
}

// PendingSpace reports how many more requests Enqueue will accept.
func (e *Engine) PendingSpace() int { return e.cfg.MaxPending - len(e.pending) }

// Pending reports the generated-but-not-injected request count.
func (e *Engine) Pending() int { return len(e.pending) }

// Outstanding reports the injected-but-incomplete transaction count.
func (e *Engine) Outstanding() int { return e.outstanding }

// NextActivity implements sim.Idler: the engine acts when it can actually
// inject — requests pending, window open, port space available. A blocked
// engine only accrues stall cycles, which Tick back-fills exactly over any
// skipped stretch, and unblocking requires external activity (a completion
// event, a router pop) that executes a cycle anyway.
func (e *Engine) NextActivity(now sim.Cycle) (sim.Cycle, bool) {
	if len(e.pending) > 0 && e.outstanding < e.cfg.Window && e.port.CanAccept() {
		return now, true
	}
	return 0, false
}

// Tick injects pending requests into the NoC port while the outstanding
// window and port space allow.
func (e *Engine) Tick(now sim.Cycle) {
	if len(e.pending) == 0 && !e.stalled {
		return // nothing to inject, no stall accounting to carry
	}
	if e.stalled && now > e.lastTick+1 {
		// Skipped cycles between the last stalled tick and now: nothing
		// in the system moved, so each of them stalled as well.
		e.stats.InjectStalls += uint64(now - e.lastTick - 1)
	}
	e.lastTick = now
	stalled := false
	for len(e.pending) > 0 && e.outstanding < e.cfg.Window {
		if !e.port.CanAccept() {
			stalled = true
			break
		}
		r := e.pending[0]
		copy(e.pending, e.pending[1:])
		e.pending = e.pending[:len(e.pending)-1]

		*e.nextID++
		var t *txn.Transaction
		if e.cfg.Pool != nil {
			t = e.cfg.Pool.Get()
		} else {
			t = new(txn.Transaction)
		}
		*t = txn.Transaction{
			ID:       *e.nextID,
			Kind:     r.kind,
			Addr:     r.addr,
			Size:     r.size,
			Priority: e.priority,
			Source:   e.id,
			Class:    e.cfg.Class,
			Issue:    now,
		}
		if e.urgent != nil {
			t.Urgent = e.urgent()
		}
		if debugInject != nil {
			debugInject(now, e.id, t.ID, uint64(t.Addr))
		}
		e.port.Push(t, now, now+e.hop)
		e.outstanding++
		e.stats.Injected++
	}
	if !stalled && len(e.pending) > 0 && e.outstanding >= e.cfg.Window {
		stalled = true
	}
	if stalled {
		e.stats.InjectStalls++
	}
	e.stalled = stalled
}

// Deliver hands a completed transaction back to the DMA at cycle now.
func (e *Engine) Deliver(t *txn.Transaction, now sim.Cycle) {
	if t.Source != e.id {
		panic(fmt.Sprintf("dma %s: delivery of foreign txn %d", e.cfg.Name, t.ID))
	}
	t.Complete = now
	e.outstanding--
	if e.outstanding < 0 {
		panic(fmt.Sprintf("dma %s: negative outstanding count", e.cfg.Name))
	}
	e.stats.Completed++
	e.stats.BytesCompleted += uint64(t.Size)
	e.stats.TotalLatency += uint64(t.Latency())
	for _, fn := range e.onComplete {
		fn(t, now)
	}
	// The transaction has fully left the system: observers consume it
	// synchronously and nothing downstream retains it.
	if e.cfg.Pool != nil {
		e.cfg.Pool.Put(t)
	}
}

// AverageLatency reports mean end-to-end latency in cycles, or 0.
func (e *Engine) AverageLatency() float64 {
	if e.stats.Completed == 0 {
		return 0
	}
	return float64(e.stats.TotalLatency) / float64(e.stats.Completed)
}
