package dma

import (
	"testing"

	"sara/internal/noc"
	"sara/internal/sim"
	"sara/internal/txn"
)

// rig wires an engine into a single-port router draining into a capture
// sink, so tests can observe injected transactions.
type rig struct {
	engine *Engine
	router *noc.Router
	out    []*txn.Transaction
}

func newRig(window int) *rig {
	r := &rig{}
	var id uint64
	sink := sinkFunc(func(tr *txn.Transaction) { r.out = append(r.out, tr) })
	r.router = noc.NewRouter("t", noc.Params{PortDepth: 8, Arb: noc.ArbFCFS}, 1, []noc.Sink{sink}, nil)
	r.engine = New(Config{Name: "t", Core: "T", Class: txn.ClassMedia, Window: window},
		0, &id, r.router.Port(0), 0)
	return r
}

// drain runs router ticks until n transactions have been captured.
func (r *rig) drain(t *testing.T, n int) {
	t.Helper()
	for now := sim.Cycle(1); len(r.out) < n && now < 1000; now++ {
		r.router.Tick(now)
	}
	if len(r.out) < n {
		t.Fatalf("drained %d transactions, want %d", len(r.out), n)
	}
}

type sinkFunc func(*txn.Transaction)

func (f sinkFunc) CanAccept(*txn.Transaction) bool         { return true }
func (f sinkFunc) Accept(tr *txn.Transaction, _ sim.Cycle) { f(tr) }

func TestWindowLimitsOutstanding(t *testing.T) {
	r := newRig(2)
	for i := 0; i < 4; i++ { // MaxPending defaults to 2*window = 4
		if !r.engine.Enqueue(txn.Read, txn.Addr(i*128), 128) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	r.engine.Tick(0)
	if r.engine.Outstanding() != 2 {
		t.Fatalf("outstanding %d, want window 2", r.engine.Outstanding())
	}
	if r.engine.Pending() != 2 {
		t.Fatalf("pending %d, want 2", r.engine.Pending())
	}
	// Completions open the window again.
	r.drain(t, 2)
	for _, tr := range r.out {
		r.engine.Deliver(tr, 10)
	}
	if r.engine.Outstanding() != 0 {
		t.Fatalf("outstanding %d after delivery, want 0", r.engine.Outstanding())
	}
	r.engine.Tick(11)
	if r.engine.Outstanding() != 2 {
		t.Fatal("window did not refill after completions")
	}
}

func TestPriorityStampedAtInjection(t *testing.T) {
	r := newRig(4)
	r.engine.SetPriority(5)
	r.engine.Enqueue(txn.Write, 0, 128)
	r.engine.Tick(0)
	r.engine.SetPriority(1) // must not affect the already-injected txn
	r.drain(t, 1)
	got := r.out[0]
	if got.Priority != 5 {
		t.Fatalf("stamped priority %d, want 5", got.Priority)
	}
	if got.Kind != txn.Write || got.Issue != 0 || got.Class != txn.ClassMedia {
		t.Fatalf("transaction fields wrong: %+v", got)
	}
}

func TestUrgentProbe(t *testing.T) {
	r := newRig(4)
	r.engine.SetUrgentProbe(func(now sim.Cycle) bool { return true })
	r.engine.Enqueue(txn.Read, 0, 128)
	r.engine.Tick(0)
	r.drain(t, 1)
	if !r.out[0].Urgent {
		t.Fatal("urgent flag not stamped")
	}
}

func TestEnqueueBackpressure(t *testing.T) {
	r := newRig(2) // MaxPending defaults to 2*window = 4
	for i := 0; i < 4; i++ {
		if !r.engine.Enqueue(txn.Read, txn.Addr(i*128), 128) {
			t.Fatalf("enqueue %d rejected below MaxPending", i)
		}
	}
	if r.engine.Enqueue(txn.Read, 0, 128) {
		t.Fatal("enqueue accepted beyond MaxPending")
	}
	if r.engine.PendingSpace() != 0 {
		t.Fatalf("pending space %d, want 0", r.engine.PendingSpace())
	}
}

func TestStatsAndLatency(t *testing.T) {
	r := newRig(4)
	r.engine.Enqueue(txn.Read, 0, 128)
	r.engine.Tick(0)
	r.drain(t, 1)
	r.engine.Deliver(r.out[0], 100)
	st := r.engine.Stats()
	if st.Completed != 1 || st.BytesCompleted != 128 {
		t.Fatalf("stats %+v", st)
	}
	if got := r.engine.AverageLatency(); got != 100 {
		t.Fatalf("average latency %v, want 100", got)
	}
}

func TestForeignDeliveryPanics(t *testing.T) {
	r := newRig(2)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign delivery accepted")
		}
	}()
	r.engine.Deliver(&txn.Transaction{ID: 1, Source: 99}, 0)
}

func TestCompletionCallbacksFire(t *testing.T) {
	r := newRig(2)
	calls := 0
	r.engine.OnComplete(func(*txn.Transaction, sim.Cycle) { calls++ })
	r.engine.OnComplete(func(*txn.Transaction, sim.Cycle) { calls++ })
	r.engine.Enqueue(txn.Read, 0, 128)
	r.engine.Tick(0)
	r.drain(t, 1)
	r.engine.Deliver(r.out[0], 5)
	if calls != 2 {
		t.Fatalf("completion callbacks fired %d times, want 2", calls)
	}
}

// TestNextActivityIsCachedWake pins the event-driven injection contract:
// the hint is an O(1) read of the cached wake, parked at never whenever
// the injection loop stopped (queue empty, window full, port full) and
// re-armed by deliveries and port credits. Fresh enqueues re-arm
// nothing — the Tick gate reads the live queue, and the enqueue cycle
// always executes because the enqueuing source was active in it.
func TestNextActivityIsCachedWake(t *testing.T) {
	r := newRig(1) // window 1, MaxPending 2
	if _, ok := r.engine.NextActivity(0); !ok {
		t.Fatal("a fresh engine must report activity (initial wake is cycle 0)")
	}
	r.engine.Tick(0) // empty queue: parks at never
	if _, ok := r.engine.NextActivity(1); ok {
		t.Fatal("an idle engine must park its wake at never")
	}
	r.engine.Enqueue(txn.Read, 0, 128)
	r.engine.Tick(3) // the live-queue gate routes the fresh request to the loop
	if got := r.engine.Outstanding(); got != 1 {
		t.Fatalf("enqueue-cycle tick injected %d, want 1 (live-queue gate)", got)
	}
	r.engine.Enqueue(txn.Read, 128, 128) // queued behind the window
	r.engine.Tick(4)                     // window full: stalls, parks at never
	if _, ok := r.engine.NextActivity(5); ok {
		t.Fatal("a window-blocked engine must park until a delivery")
	}
	r.drain(t, 1)
	r.engine.Deliver(r.out[0], 7) // delivery re-arms onto its cycle
	if at, ok := r.engine.NextActivity(7); !ok || at != 7 {
		t.Fatalf("after delivery NextActivity = (%d, %v), want (7, true)", at, ok)
	}
}

// TestInjectionWakeDifferential scripts a scenario that exercises all
// three injection blockers — port full, window full, queue empty — and
// their re-arming events, and requires the event-driven engine to match
// the SetForceScan per-cycle reference injection-for-injection and
// stall-for-stall.
func TestInjectionWakeDifferential(t *testing.T) {
	type inj struct {
		now sim.Cycle
		id  uint64
	}
	run := func(force bool) (Stats, []inj) {
		SetForceScan(force)
		defer SetForceScan(false)
		var injs []inj
		SetDebugInject(func(now sim.Cycle, _ int, id uint64, _ uint64) {
			injs = append(injs, inj{now, id})
		})
		defer SetDebugInject(nil)

		var id uint64
		var out []*txn.Transaction
		sink := sinkFunc(func(tr *txn.Transaction) { out = append(out, tr) })
		// Port depth 2 so the port-full blocker engages quickly.
		router := noc.NewRouter("t", noc.Params{PortDepth: 2, Arb: noc.ArbFCFS}, 1, []noc.Sink{sink}, nil)
		engine := New(Config{Name: "t", Core: "T", Class: txn.ClassMedia, Window: 3, MaxPending: 8},
			0, &id, router.Port(0), 0)

		delivered := 0
		for now := sim.Cycle(0); now < 40; now++ {
			switch now {
			case 0:
				for i := 0; i < 5; i++ {
					engine.Enqueue(txn.Read, txn.Addr(i*128), 128)
				}
			case 20:
				engine.Enqueue(txn.Write, 4096, 128)
			}
			if now >= 12 && delivered < len(out) {
				// Hand one completion back per cycle from cycle 12 on.
				engine.Deliver(out[delivered], now)
				delivered++
			}
			engine.Tick(now)
			if now >= 5 && now%3 == 0 {
				// The router drains sporadically, returning port credits.
				router.Tick(now)
			}
		}
		return engine.Stats(), injs
	}

	refStats, refInjs := run(true)
	fastStats, fastInjs := run(false)
	if refStats != fastStats {
		t.Fatalf("stats differ:\n  force-scan: %+v\n  event-driven: %+v", refStats, fastStats)
	}
	if len(refInjs) != len(fastInjs) {
		t.Fatalf("injection counts differ: %d vs %d", len(refInjs), len(fastInjs))
	}
	for i := range refInjs {
		if refInjs[i] != fastInjs[i] {
			t.Fatalf("injection %d differs: force-scan %+v, event-driven %+v", i, refInjs[i], fastInjs[i])
		}
	}
	if refStats.InjectStalls == 0 || refStats.Injected != 6 || refStats.Completed == 0 {
		t.Fatalf("vacuous scenario: %+v", refStats)
	}
}
