package dma

import (
	"testing"

	"sara/internal/noc"
	"sara/internal/sim"
	"sara/internal/txn"
)

// rig wires an engine into a single-port router draining into a capture
// sink, so tests can observe injected transactions.
type rig struct {
	engine *Engine
	router *noc.Router
	out    []*txn.Transaction
}

func newRig(window int) *rig {
	r := &rig{}
	var id uint64
	sink := sinkFunc(func(tr *txn.Transaction) { r.out = append(r.out, tr) })
	r.router = noc.NewRouter("t", noc.Params{PortDepth: 8, Arb: noc.ArbFCFS}, 1, []noc.Sink{sink}, nil)
	r.engine = New(Config{Name: "t", Core: "T", Class: txn.ClassMedia, Window: window},
		0, &id, r.router.Port(0), 0)
	return r
}

// drain runs router ticks until n transactions have been captured.
func (r *rig) drain(t *testing.T, n int) {
	t.Helper()
	for now := sim.Cycle(1); len(r.out) < n && now < 1000; now++ {
		r.router.Tick(now)
	}
	if len(r.out) < n {
		t.Fatalf("drained %d transactions, want %d", len(r.out), n)
	}
}

type sinkFunc func(*txn.Transaction)

func (f sinkFunc) CanAccept(*txn.Transaction) bool         { return true }
func (f sinkFunc) Accept(tr *txn.Transaction, _ sim.Cycle) { f(tr) }

func TestWindowLimitsOutstanding(t *testing.T) {
	r := newRig(2)
	for i := 0; i < 4; i++ { // MaxPending defaults to 2*window = 4
		if !r.engine.Enqueue(txn.Read, txn.Addr(i*128), 128) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	r.engine.Tick(0)
	if r.engine.Outstanding() != 2 {
		t.Fatalf("outstanding %d, want window 2", r.engine.Outstanding())
	}
	if r.engine.Pending() != 2 {
		t.Fatalf("pending %d, want 2", r.engine.Pending())
	}
	// Completions open the window again.
	r.drain(t, 2)
	for _, tr := range r.out {
		r.engine.Deliver(tr, 10)
	}
	if r.engine.Outstanding() != 0 {
		t.Fatalf("outstanding %d after delivery, want 0", r.engine.Outstanding())
	}
	r.engine.Tick(11)
	if r.engine.Outstanding() != 2 {
		t.Fatal("window did not refill after completions")
	}
}

func TestPriorityStampedAtInjection(t *testing.T) {
	r := newRig(4)
	r.engine.SetPriority(5)
	r.engine.Enqueue(txn.Write, 0, 128)
	r.engine.Tick(0)
	r.engine.SetPriority(1) // must not affect the already-injected txn
	r.drain(t, 1)
	got := r.out[0]
	if got.Priority != 5 {
		t.Fatalf("stamped priority %d, want 5", got.Priority)
	}
	if got.Kind != txn.Write || got.Issue != 0 || got.Class != txn.ClassMedia {
		t.Fatalf("transaction fields wrong: %+v", got)
	}
}

func TestUrgentProbe(t *testing.T) {
	r := newRig(4)
	r.engine.SetUrgentProbe(func() bool { return true })
	r.engine.Enqueue(txn.Read, 0, 128)
	r.engine.Tick(0)
	r.drain(t, 1)
	if !r.out[0].Urgent {
		t.Fatal("urgent flag not stamped")
	}
}

func TestEnqueueBackpressure(t *testing.T) {
	r := newRig(2) // MaxPending defaults to 2*window = 4
	for i := 0; i < 4; i++ {
		if !r.engine.Enqueue(txn.Read, txn.Addr(i*128), 128) {
			t.Fatalf("enqueue %d rejected below MaxPending", i)
		}
	}
	if r.engine.Enqueue(txn.Read, 0, 128) {
		t.Fatal("enqueue accepted beyond MaxPending")
	}
	if r.engine.PendingSpace() != 0 {
		t.Fatalf("pending space %d, want 0", r.engine.PendingSpace())
	}
}

func TestStatsAndLatency(t *testing.T) {
	r := newRig(4)
	r.engine.Enqueue(txn.Read, 0, 128)
	r.engine.Tick(0)
	r.drain(t, 1)
	r.engine.Deliver(r.out[0], 100)
	st := r.engine.Stats()
	if st.Completed != 1 || st.BytesCompleted != 128 {
		t.Fatalf("stats %+v", st)
	}
	if got := r.engine.AverageLatency(); got != 100 {
		t.Fatalf("average latency %v, want 100", got)
	}
}

func TestForeignDeliveryPanics(t *testing.T) {
	r := newRig(2)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign delivery accepted")
		}
	}()
	r.engine.Deliver(&txn.Transaction{ID: 1, Source: 99}, 0)
}

func TestCompletionCallbacksFire(t *testing.T) {
	r := newRig(2)
	calls := 0
	r.engine.OnComplete(func(*txn.Transaction, sim.Cycle) { calls++ })
	r.engine.OnComplete(func(*txn.Transaction, sim.Cycle) { calls++ })
	r.engine.Enqueue(txn.Read, 0, 128)
	r.engine.Tick(0)
	r.drain(t, 1)
	r.engine.Deliver(r.out[0], 5)
	if calls != 2 {
		t.Fatalf("completion callbacks fired %d times, want 2", calls)
	}
}
