// Package noc models the on-chip network that carries memory transactions
// from the DMAs to the memory controllers: routers with per-input FIFO
// ports, one-packet-per-output switch allocation per cycle, credit-based
// backpressure into the downstream sink, and pluggable arbitration
// policies (FCFS, round-robin, priority-based with round-robin tiebreak,
// and the frame-rate-urgency baseline).
//
// The evaluated topology (built by internal/core) is a two-level tree
// matching Fig. 1: media cores and system cores aggregate through their
// own routers, which join the CPU, GPU and DSP at a root router with one
// output per DRAM channel. The response path is a fixed-latency pipe
// handled by the SoC layer, since the figures the paper reports are
// insensitive to return-path contention.
package noc

import (
	"fmt"

	"sara/internal/sim"
	"sara/internal/txn"
)

// ArbKind selects a router's switch-allocation policy.
type ArbKind uint8

const (
	// ArbFCFS grants the input whose head packet arrived first.
	ArbFCFS ArbKind = iota
	// ArbRR grants inputs in round-robin order.
	ArbRR
	// ArbPriority grants the highest-priority head, round-robin on ties.
	ArbPriority
	// ArbFrameRate grants urgent media packets first, then FCFS.
	ArbFrameRate
)

// String returns the arbitration policy name.
func (a ArbKind) String() string {
	switch a {
	case ArbFCFS:
		return "fcfs"
	case ArbRR:
		return "rr"
	case ArbPriority:
		return "priority"
	case ArbFrameRate:
		return "framerate"
	}
	return fmt.Sprintf("arb(%d)", uint8(a))
}

// Params are the network-wide knobs.
type Params struct {
	// PortDepth is the FIFO depth of each router input port.
	PortDepth int
	// HopLatency is the cycles a packet spends traversing one link
	// before it becomes eligible for arbitration at the next router.
	HopLatency sim.Cycle
	// RespLatency is the fixed return-path delay from memory controller
	// back to the DMA.
	RespLatency sim.Cycle
	// Arb is the switch-allocation policy of every router.
	Arb ArbKind
	// AgingT serves any packet that has waited at least this long at one
	// router ahead of policy order, preventing starvation under priority
	// arbitration. Zero disables aging.
	AgingT sim.Cycle
}

// DefaultParams returns the evaluation settings: 16-deep ports, 2-cycle
// hops, 12-cycle response path, aging at the paper's T. The port depth
// matters for the baselines: deep FIFOs let a flooding engine accumulate
// old packets that dominate FCFS (oldest-first) arbitration, which is how
// high-bandwidth cores overwhelm others on a shared interconnect.
func DefaultParams() Params {
	return Params{PortDepth: 16, HopLatency: 2, RespLatency: 12, Arb: ArbPriority, AgingT: 10000}
}

// packet is a transaction in flight through one router.
type packet struct {
	t       *txn.Transaction
	readyAt sim.Cycle // when it finishes the incoming link
	arrived sim.Cycle // when it entered this router's port (for FCFS/aging)
}

// Port is a router input FIFO.
type Port struct {
	fifo  []packet
	depth int
}

// NewPort returns a port with the given FIFO depth.
func NewPort(depth int) *Port {
	if depth <= 0 {
		panic("noc: port depth must be positive")
	}
	return &Port{depth: depth}
}

// CanAccept reports whether the FIFO has space.
func (p *Port) CanAccept() bool { return len(p.fifo) < p.depth }

// Push appends t, becoming arbitrable at readyAt.
func (p *Port) Push(t *txn.Transaction, arrived, readyAt sim.Cycle) {
	if !p.CanAccept() {
		panic("noc: push to full port")
	}
	p.fifo = append(p.fifo, packet{t: t, readyAt: readyAt, arrived: arrived})
}

// Len reports the queued packet count.
func (p *Port) Len() int { return len(p.fifo) }

func (p *Port) head() (packet, bool) {
	if len(p.fifo) == 0 {
		return packet{}, false
	}
	return p.fifo[0], true
}

func (p *Port) pop() packet {
	pk := p.fifo[0]
	copy(p.fifo, p.fifo[1:])
	p.fifo[len(p.fifo)-1] = packet{}
	p.fifo = p.fifo[:len(p.fifo)-1]
	return pk
}

// Sink is the downstream consumer of a router output: either the next
// router's input port or a memory-controller queue.
type Sink interface {
	// CanAccept reports whether the sink can take t this cycle.
	CanAccept(t *txn.Transaction) bool
	// Accept consumes t at cycle now.
	Accept(t *txn.Transaction, now sim.Cycle)
}

// PortSink adapts a router input port into a Sink for the upstream router,
// applying the link's hop latency.
type PortSink struct {
	Port *Port
	Hop  sim.Cycle
}

// CanAccept reports whether the port FIFO has space.
func (s PortSink) CanAccept(*txn.Transaction) bool { return s.Port.CanAccept() }

// Accept pushes t into the port; it becomes arbitrable after the hop.
func (s PortSink) Accept(t *txn.Transaction, now sim.Cycle) {
	s.Port.Push(t, now, now+s.Hop)
}

// Router arbitrates its input ports onto one or more output sinks. Packets
// are routed to an output by the Route function (e.g. by DRAM channel at
// the root router; single-output aggregation routers ignore it).
type Router struct {
	name    string
	params  Params
	ports   []*Port
	outputs []Sink
	// Route maps a transaction to an output index.
	route func(*txn.Transaction) int
	rrPtr int

	// stats
	forwarded uint64
	stalls    uint64 // cycles an arbitrable head existed but no grant fit
}

// NewRouter builds a router with nports input ports. route may be nil when
// there is exactly one output.
func NewRouter(name string, params Params, nports int, outputs []Sink, route func(*txn.Transaction) int) *Router {
	if nports <= 0 || len(outputs) == 0 {
		panic("noc: router needs ports and outputs")
	}
	if route == nil {
		if len(outputs) != 1 {
			panic("noc: nil route with multiple outputs")
		}
		route = func(*txn.Transaction) int { return 0 }
	}
	r := &Router{name: name, params: params, outputs: outputs, route: route}
	r.ports = make([]*Port, nports)
	for i := range r.ports {
		r.ports[i] = NewPort(params.PortDepth)
	}
	return r
}

// Name returns the router's label.
func (r *Router) Name() string { return r.name }

// Port returns input port i, for wiring upstream producers.
func (r *Router) Port(i int) *Port { return r.ports[i] }

// Forwarded reports the number of packets granted so far.
func (r *Router) Forwarded() uint64 { return r.forwarded }

// Stalls reports cycles where a ready head existed but nothing was granted.
func (r *Router) Stalls() uint64 { return r.stalls }

// Tick performs one cycle of switch allocation: at most one grant per
// output, at most one pop per input.
func (r *Router) Tick(now sim.Cycle) {
	granted := false
	ready := false
	for out := range r.outputs {
		idx := r.selectFor(out, now)
		if idx < 0 {
			continue
		}
		ready = true
		pk := r.ports[idx].pop()
		r.outputs[out].Accept(pk.t, now)
		r.forwarded++
		granted = true
		r.rrPtr = (idx + 1) % len(r.ports)
	}
	if !granted {
		// Count a stall only if some head was ready but blocked downstream.
		for _, p := range r.ports {
			if pk, ok := p.head(); ok && pk.readyAt <= now {
				ready = true
				break
			}
		}
		if ready {
			r.stalls++
		}
	}
}

// selectFor picks the input port to grant for output out, or -1.
func (r *Router) selectFor(out int, now sim.Cycle) int {
	bestIdx := -1
	var best packet
	// Aging pass: any over-age head is served oldest-first.
	if r.params.AgingT > 0 {
		for i, p := range r.ports {
			pk, ok := p.head()
			if !ok || pk.readyAt > now || r.route(pk.t) != out {
				continue
			}
			if now < pk.arrived+r.params.AgingT {
				continue
			}
			if !r.outputs[out].CanAccept(pk.t) {
				continue
			}
			if bestIdx < 0 || pk.arrived < best.arrived || (pk.arrived == best.arrived && pk.t.ID < best.t.ID) {
				bestIdx, best = i, pk
			}
		}
		if bestIdx >= 0 {
			return bestIdx
		}
	}
	for i, p := range r.ports {
		pk, ok := p.head()
		if !ok || pk.readyAt > now || r.route(pk.t) != out {
			continue
		}
		if !r.outputs[out].CanAccept(pk.t) {
			continue
		}
		if bestIdx < 0 || r.better(pk, i, best, bestIdx, now) {
			bestIdx, best = i, pk
		}
	}
	return bestIdx
}

// better reports whether candidate (pk, idx) beats the incumbent under the
// router's arbitration policy.
func (r *Router) better(pk packet, idx int, inc packet, incIdx int, now sim.Cycle) bool {
	switch r.params.Arb {
	case ArbFCFS:
		return fcfsBefore(pk, inc)
	case ArbRR:
		return r.rrDist(idx) < r.rrDist(incIdx)
	case ArbPriority:
		if pk.t.Priority != inc.t.Priority {
			return pk.t.Priority > inc.t.Priority
		}
		return r.rrDist(idx) < r.rrDist(incIdx)
	case ArbFrameRate:
		if pk.t.Urgent != inc.t.Urgent {
			return pk.t.Urgent
		}
		return fcfsBefore(pk, inc)
	default:
		panic("noc: unknown arbitration policy")
	}
}

func fcfsBefore(a, b packet) bool {
	if a.arrived != b.arrived {
		return a.arrived < b.arrived
	}
	return a.t.ID < b.t.ID
}

func (r *Router) rrDist(idx int) int {
	return (idx - r.rrPtr + len(r.ports)) % len(r.ports)
}
