// Package noc models the on-chip network that carries memory transactions
// from the DMAs to the memory controllers: routers with per-input FIFO
// ports, one-packet-per-output switch allocation per cycle, credit-based
// backpressure into the downstream sink, and pluggable arbitration
// policies (FCFS, round-robin, priority-based with round-robin tiebreak,
// and the frame-rate-urgency baseline).
//
// The evaluated topology (built by internal/core) is a two-level tree
// matching Fig. 1: media cores and system cores aggregate through their
// own routers, which join the CPU, GPU and DSP at a root router with one
// output per DRAM channel. The response path is a fixed-latency pipe
// handled by the SoC layer, since the figures the paper reports are
// insensitive to return-path contention.
//
// Arbitration is fully event-driven: every router caches nextGrantAt, the
// exact earliest cycle at which a grant could occur given its head-flit
// arrival times, per-output credit state and arbiter inputs, and its Tick
// short-circuits in O(1) on every cycle before that. The cache is re-armed
// from outside by the two events that can make a grant possible earlier —
// an upstream injection into one of its ports (Port.Push) and a downstream
// credit return (a full FIFO pop, or a memory-controller queue release) —
// so a router stays dormant between grants even while the rest of the
// system keeps executing cycles.
package noc

import (
	"fmt"

	"sara/internal/sim"
	"sara/internal/txn"
)

// ArbKind selects a router's switch-allocation policy.
type ArbKind uint8

const (
	// ArbFCFS grants the input whose head packet arrived first.
	ArbFCFS ArbKind = iota
	// ArbRR grants inputs in round-robin order.
	ArbRR
	// ArbPriority grants the highest-priority head, round-robin on ties.
	ArbPriority
	// ArbFrameRate grants urgent media packets first, then FCFS.
	ArbFrameRate
)

// String returns the arbitration policy name.
func (a ArbKind) String() string {
	switch a {
	case ArbFCFS:
		return "fcfs"
	case ArbRR:
		return "rr"
	case ArbPriority:
		return "priority"
	case ArbFrameRate:
		return "framerate"
	}
	return fmt.Sprintf("arb(%d)", uint8(a))
}

// Params are the network-wide knobs.
type Params struct {
	// PortDepth is the FIFO depth of each router input port.
	PortDepth int
	// HopLatency is the cycles a packet spends traversing one link
	// before it becomes eligible for arbitration at the next router.
	HopLatency sim.Cycle
	// RespLatency is the fixed return-path delay from memory controller
	// back to the DMA.
	RespLatency sim.Cycle
	// Arb is the switch-allocation policy of every router.
	Arb ArbKind
	// AgingT serves any packet that has waited at least this long at one
	// router ahead of policy order, preventing starvation under priority
	// arbitration. Zero disables aging.
	AgingT sim.Cycle
}

// DefaultParams returns the evaluation settings: 16-deep ports, 2-cycle
// hops, 12-cycle response path, aging at the paper's T. The port depth
// matters for the baselines: deep FIFOs let a flooding engine accumulate
// old packets that dominate FCFS (oldest-first) arbitration, which is how
// high-bandwidth cores overwhelm others on a shared interconnect.
func DefaultParams() Params {
	return Params{PortDepth: 16, HopLatency: 2, RespLatency: 12, Arb: ArbPriority, AgingT: 10000}
}

// CrossDomainLatency is the minimum latency of a request crossing a
// router-to-router link plus its injection stage: the link hop plus the
// one-cycle store-and-forward step of the receiving port. It is the
// conservative lookahead of the domain-parallel kernel (core.BuildParallel):
// a packet granted at cycle t cannot influence another domain before
// t + CrossDomainLatency, so domains may run that many cycles ahead of
// each other between barriers. Derived from the config, never hardcoded —
// fuzzed hop latencies change the epoch length with it.
func (p Params) CrossDomainLatency() sim.Cycle { return p.HopLatency + 1 }

// Waker is the wake-propagation half of the event-driven arbitration
// contract: a component that caches its next-grant cycle implements Waker
// so the events that could make a grant possible earlier — an upstream
// injection landing mid-sleep, a downstream credit return — can re-arm the
// cached wake. Under the kernel's push-based wake heap the receiver must
// forward the re-arm to its sim.WakeHandle as well (the kernel no longer
// polls hints per executed cycle); the Router does so in Wake. Re-arming
// earlier than necessary is always safe (the component scans, finds
// nothing, and recomputes); failing to re-arm breaks simulation
// equivalence.
type Waker interface {
	// Wake re-arms the receiver to re-evaluate no later than cycle at.
	Wake(at sim.Cycle)
}

// packet is a transaction in flight through one router.
type packet struct {
	t       *txn.Transaction
	readyAt sim.Cycle // when it finishes the incoming link
	arrived sim.Cycle // when it entered this router's port (for FCFS/aging)
	// out caches the routed output index (-1 until first computed);
	// routing is per-transaction math the arbitration loops would
	// otherwise redo every cycle the packet waits at the head.
	out int16
}

// Port is a router input FIFO.
type Port struct {
	fifo  []packet
	depth int
	// owner, when the port is wired into a router, receives queue
	// bookkeeping and a wake re-arm on every push, and idx is the port's
	// index at that router (for the credit trace).
	owner *Router
	idx   int
	// creditTo is the feeder to wake when a pop frees space in a full
	// FIFO (the credit return): the upstream router of a router-to-router
	// link (eager — woken on every full pop), or the DMA engine injecting
	// into the port (lazy — woken only while creditArmed, which the
	// engine sets when it parks port-blocked, so the common full pop with
	// an unblocked feeder costs one flag test instead of a wake).
	creditTo    Waker
	creditLazy  bool
	creditArmed bool
	// onPop, when set, observes every pop (not just full ones) with the
	// pop cycle. The domain-parallel kernel uses it on cross-domain
	// ingress ports to count credits owed to the sending domain; credits
	// travel back through the barrier exchange instead of a Waker because
	// the sender lives on another goroutine.
	onPop func(now sim.Cycle)
}

// NewPort returns a port with the given FIFO depth.
func NewPort(depth int) *Port {
	if depth <= 0 {
		panic("noc: port depth must be positive")
	}
	return &Port{depth: depth}
}

// CanAccept reports whether the FIFO has space.
//
//sara:hotpath
func (p *Port) CanAccept() bool { return len(p.fifo) < p.depth }

// Push appends t, becoming arbitrable at readyAt. When the port belongs to
// a router, the push re-arms the router's wake: an injection landing while
// the router sleeps must be able to pull the next scan forward.
//
//sara:hotpath
func (p *Port) Push(t *txn.Transaction, arrived, readyAt sim.Cycle) {
	if !p.CanAccept() {
		panic("noc: push to full port")
	}
	p.fifo = append(p.fifo, packet{t: t, readyAt: readyAt, arrived: arrived, out: -1}) //sara:alloc-ok fifo backing array amortizes to the port's credit depth
	if o := p.owner; o != nil {
		o.queued++
		if readyAt < o.nextGrantAt {
			// The push lowers the dormancy window, so the kernel must
			// hear about it here and now: under the active-ticker list a
			// dormant router is not ticked at all, so there is no tick-top
			// sync to pick the push up later. When the window is already
			// at or below readyAt the kernel's cached bound covers it too
			// (every lowering of either goes through Push or Wake), and
			// the re-arm is skipped to keep Push cheap on the hot path.
			o.nextGrantAt = readyAt
			o.wake.Rearm(readyAt)
		}
	}
}

// Len reports the queued packet count.
func (p *Port) Len() int { return len(p.fifo) }

// Depth reports the FIFO capacity; Len/Depth is the port's occupancy.
func (p *Port) Depth() int { return p.depth }

// pop removes the head packet at cycle now. Popping a full FIFO returns a
// credit to the upstream router, which can use the freed slot from the
// next cycle on.
func (p *Port) pop(now sim.Cycle) packet {
	wasFull := len(p.fifo) == p.depth
	pk := p.fifo[0]
	copy(p.fifo, p.fifo[1:])
	p.fifo[len(p.fifo)-1] = packet{}
	p.fifo = p.fifo[:len(p.fifo)-1]
	if p.owner != nil {
		p.owner.queued--
		if debugCredit != nil {
			debugCredit(p.owner.name, now, p.idx, wasFull)
		}
	}
	if wasFull && p.creditTo != nil && (!p.creditLazy || p.creditArmed) {
		p.creditArmed = false
		p.creditTo.Wake(now + 1)
	}
	if p.onPop != nil {
		p.onPop(now)
	}
	return pk
}

// Sink is the downstream consumer of a router output: either the next
// router's input port or a memory-controller queue.
type Sink interface {
	// CanAccept reports whether the sink can take t this cycle.
	CanAccept(t *txn.Transaction) bool
	// Accept consumes t at cycle now.
	Accept(t *txn.Transaction, now sim.Cycle)
}

// CreditSink is a Sink that returns credits: it notifies the upstream
// waker when it transitions from full back to having space, so a router
// blocked on it can sleep until the credit instead of polling CanAccept
// every cycle. Sinks that do not implement CreditSink are polled — a
// router with a ready head blocked on a plain Sink re-scans each cycle.
type CreditSink interface {
	Sink
	// OnCredit registers the upstream waker to notify on credit returns.
	OnCredit(w Waker)
}

// PortSink adapts a router input port into a Sink for the upstream router,
// applying the link's hop latency.
type PortSink struct {
	Port *Port
	Hop  sim.Cycle
}

// CanAccept reports whether the port FIFO has space.
func (s PortSink) CanAccept(*txn.Transaction) bool { return s.Port.CanAccept() }

// Accept pushes t into the port; it becomes arbitrable after the hop.
func (s PortSink) Accept(t *txn.Transaction, now sim.Cycle) {
	s.Port.Push(t, now, now+s.Hop)
}

// OnCredit registers w to be woken when a pop frees a slot in the full
// FIFO — the credit return of whatever feeds this port: the upstream
// router of a router-to-router link, or the DMA engine injecting into it.
// A port has exactly one feeder; wiring a second would silently steal the
// first one's credit wakes, so it panics instead.
func (p *Port) OnCredit(w Waker) {
	if p.creditTo != nil {
		panic("noc: port already credit-wired")
	}
	p.creditTo = w
}

// OnCreditArmed wires w like OnCredit but lazily: pops wake w only after
// an ArmCredit call, and consume the arming. The DMA engines use it so
// pops of a full port whose feeder is not actually blocked on it (idle,
// or window-limited) cost a flag test instead of a wake.
func (p *Port) OnCreditArmed(w Waker) {
	p.OnCredit(w)
	p.creditLazy = true
}

// ArmCredit requests a wake from the next credit-returning pop. The
// feeder calls it when it blocks on the full FIFO.
//
//sara:hotpath
func (p *Port) ArmCredit() { p.creditArmed = true }

// OnPop registers a per-pop observer (every pop, not only full ones).
// A port has exactly one observer; wiring a second would silently drop
// the first one's credit accounting, so it panics instead.
func (p *Port) OnPop(fn func(now sim.Cycle)) {
	if p.onPop != nil {
		panic("noc: port already pop-wired")
	}
	p.onPop = fn
}

// OnCredit implements CreditSink: pops of the full downstream port wake w.
func (s PortSink) OnCredit(w Waker) { s.Port.OnCredit(w) }

// Router arbitrates its input ports onto one or more output sinks. Packets
// are routed to an output by the Route function (e.g. by DRAM channel at
// the root router; single-output aggregation routers ignore it).
type Router struct {
	name    string
	params  Params
	ports   []*Port
	outputs []Sink
	// Route maps a transaction to an output index.
	route func(*txn.Transaction) int
	rrPtr int

	// ready is per-cycle scratch: the arbitrable head of every port,
	// collected once per scan so the per-output selection loops do not
	// re-read FIFOs and re-route packets.
	ready []readyHead
	// queued is the live packet count across all input ports.
	queued int
	// credited marks outputs that return credits (CreditSink). A ready
	// head blocked on a credited output needs no polling — the credit
	// re-arms nextGrantAt; a head blocked on an uncredited output forces
	// a scan every cycle.
	credited []bool

	// nextGrantAt is the dormancy window: the earliest cycle at which,
	// absent any external wake, this router could grant. Each full scan
	// recomputes it exactly from head readyAt times and per-output credit
	// state; Push and credit returns re-arm it earlier. never means no
	// grant is possible without an external event. Ticks strictly before
	// nextGrantAt only settle stall accounting and skip the scan.
	nextGrantAt sim.Cycle

	// lastTick and stallFrom batch the stall accounting across cycles the
	// scan did not run (kernel-skipped or dormant). stallFrom is the first
	// cycle at which, absent any activity, a ready head exists — from then
	// on every scan-free cycle stalls, because a grantable head would have
	// re-armed nextGrantAt and forced a scan. It starts at a head's future
	// readyAt when the head is still traversing its link, which a boolean
	// "stalled last tick" flag could not express. lastScan tracks the last
	// cycle the full scan ran, for the sleep-window trace.
	lastTick  sim.Cycle
	stallFrom sim.Cycle
	lastScan  sim.Cycle

	// stats
	forwarded uint64
	stalls    uint64 // cycles an arbitrable head existed but no grant fit

	// wake is the router's kernel wake handle: every lowering of
	// nextGrantAt — upstream pushes (Port.Push) and credit wakes (Wake) —
	// is forwarded through it into the kernel's wake heap, so the
	// active-ticker list knows to tick the router without polling
	// NextActivity. Scan-end increases of nextGrantAt are reconciled by
	// the kernel's post-tick re-key.
	wake sim.WakeHandle
}

// The trace edges below follow the registry contract shared by noc, dma
// and memctrl: each edge is a package-level function pointer that the hot
// path nil-checks, multiplexed by a sim.HookList so several observers can
// coexist. HookX(fn) subscribes fn and returns its detach function;
// SetDebugX(fn) is the legacy single-observer installer the equivalence
// suites use, reimplemented as one managed registry slot (SetDebugX(nil)
// releases it). With no subscribers the pointer is nil and the disabled
// path stays zero-cost (the steady-state alloc gates cover it).
// Registration is single-threaded: never attach or detach concurrently
// with a running kernel, and note the edges are process-global — two
// simulations in one process share them.

// StallFn observes a stall accrual: name's router stalled for n cycles
// ending at now. Stalls are batched across dormant stretches, so one call
// may cover many cycles (backfill reports whether the accrual was settled
// after the fact rather than observed on a live scan); batching boundaries
// depend on when settles run and are not part of the equivalence contract
// — only the per-router totals are.
type StallFn = func(name string, now sim.Cycle, n uint64, backfill bool)

// debugStall, when non-nil, observes every stall accrual.
var debugStall StallFn

var stallHooks sim.HookList[StallFn]

// HookStall subscribes fn to the stall edge and returns its detach func.
func HookStall(fn StallFn) (detach func()) {
	return stallHooks.Attach(fn, &debugStall, func(fns []StallFn) StallFn {
		return func(name string, now sim.Cycle, n uint64, backfill bool) {
			for _, f := range fns {
				f(name, now, n, backfill)
			}
		}
	})
}

var legacyStall func()

// SetDebugStall installs fn as the legacy stall observer (nil uninstalls),
// managing a single registry slot so tests and analyzers coexist.
func SetDebugStall(fn StallFn) {
	if fn == nil {
		setLegacy(&legacyStall, nil)
		return
	}
	setLegacy(&legacyStall, func() func() { return HookStall(fn) })
}

// GrantFn observes one switch-allocation grant: which input port won
// which output for which transaction.
type GrantFn = func(name string, now sim.Cycle, port, out int, id uint64)

// debugGrant, when non-nil, observes every switch-allocation grant.
var debugGrant GrantFn

var grantHooks sim.HookList[GrantFn]

// HookGrant subscribes fn to the grant edge and returns its detach func.
func HookGrant(fn GrantFn) (detach func()) {
	return grantHooks.Attach(fn, &debugGrant, func(fns []GrantFn) GrantFn {
		return func(name string, now sim.Cycle, port, out int, id uint64) {
			for _, f := range fns {
				f(name, now, port, out, id)
			}
		}
	})
}

var legacyGrant func()

// SetDebugGrant installs fn as the legacy grant observer (nil uninstalls).
func SetDebugGrant(fn GrantFn) {
	if fn == nil {
		setLegacy(&legacyGrant, nil)
		return
	}
	setLegacy(&legacyGrant, func() func() { return HookGrant(fn) })
}

// CreditFn observes a credit-side pop of a router input port: which port
// freed a slot and whether the FIFO was full (i.e. the pop actually
// returned a credit upstream). Controller-side queue releases are
// reported on the same edge through TraceCredit by the SoC wiring, under
// their own names.
type CreditFn = func(name string, now sim.Cycle, port int, wasFull bool)

// debugCredit, when non-nil, observes every credit-side pop.
var debugCredit CreditFn

var creditHooks sim.HookList[CreditFn]

// HookCredit subscribes fn to the credit edge and returns its detach func.
func HookCredit(fn CreditFn) (detach func()) {
	return creditHooks.Attach(fn, &debugCredit, func(fns []CreditFn) CreditFn {
		return func(name string, now sim.Cycle, port int, wasFull bool) {
			for _, f := range fns {
				f(name, now, port, wasFull)
			}
		}
	})
}

var legacyCredit func()

// SetDebugCredit installs fn as the legacy credit observer (nil
// uninstalls).
func SetDebugCredit(fn CreditFn) {
	if fn == nil {
		setLegacy(&legacyCredit, nil)
		return
	}
	setLegacy(&legacyCredit, func() func() { return HookCredit(fn) })
}

// setLegacy points one managed registry slot at a fresh subscription: the
// previous legacy subscription (if any) is detached, then attach (when
// non-nil) installs the replacement — exactly the old single-pointer
// SetDebugX semantics, expressed on the registry.
func setLegacy(slot *func(), attach func() func()) {
	if *slot != nil {
		(*slot)()
		*slot = nil
	}
	if attach != nil {
		*slot = attach()
	}
}

// TraceCredit reports a credit return to the credit edge's subscribers.
// It exists for credit sources outside this package (the memory-controller
// queue releases wired up by the SoC assembly).
func TraceCredit(name string, now sim.Cycle, port int, wasFull bool) {
	if debugCredit != nil {
		debugCredit(name, now, port, wasFull)
	}
}

// SleepFn observes a sleep window: when a scan runs at cycle b after the
// previous scan at a-1, the router asserts no grant occurred in [a, b).
type SleepFn = func(name string, from, until sim.Cycle)

// debugSleep, when non-nil, observes every sleep window.
var debugSleep SleepFn

var sleepHooks sim.HookList[SleepFn]

// HookSleep subscribes fn to the sleep-window edge and returns its detach
// func.
func HookSleep(fn SleepFn) (detach func()) {
	return sleepHooks.Attach(fn, &debugSleep, func(fns []SleepFn) SleepFn {
		return func(name string, from, until sim.Cycle) {
			for _, f := range fns {
				f(name, from, until)
			}
		}
	})
}

var legacySleep func()

// SetDebugSleep installs fn as the legacy sleep-window observer (nil
// uninstalls).
func SetDebugSleep(fn SleepFn) {
	if fn == nil {
		setLegacy(&legacySleep, nil)
		return
	}
	setLegacy(&legacySleep, func() func() { return HookSleep(fn) })
}

// FlushSleep reports the router's trailing sleep window — the scan-free
// stretch between its last scan and now — to the sleep-window edge.
// Windows are otherwise only emitted when a later scan runs, so an
// observer ending its run mid-sleep calls this to close the final window.
func (r *Router) FlushSleep(now sim.Cycle) {
	if debugSleep != nil && now > r.lastScan+1 {
		debugSleep(r.name, r.lastScan+1, now)
	}
}

// forceScan, when set, disables the dormancy short-circuit so Tick runs
// the full ready-head scan every cycle — the polling reference the
// differential tests compare the event-driven arbiter against.
var forceScan bool

// SetForceScan forces the per-cycle reference scan (tests only; use with
// idle skipping disabled).
func SetForceScan(on bool) { forceScan = on }

// never marks an unarmed wake: a router with no packets accrues no stalls
// (stallFrom) and a router whose every head is blocked on a credited sink
// cannot grant without an external event (nextGrantAt).
const never = ^sim.Cycle(0)

// readyHead is one port's arbitrable head packet with its routed output.
type readyHead struct {
	idx int
	out int
	pk  packet
}

// NewRouter builds a router with nports input ports. route may be nil when
// there is exactly one output. Outputs implementing CreditSink are wired
// to wake the router on credit returns.
func NewRouter(name string, params Params, nports int, outputs []Sink, route func(*txn.Transaction) int) *Router {
	if nports <= 0 || len(outputs) == 0 {
		panic("noc: router needs ports and outputs")
	}
	if route == nil {
		if len(outputs) != 1 {
			panic("noc: nil route with multiple outputs")
		}
		route = func(*txn.Transaction) int { return 0 }
	}
	r := &Router{name: name, params: params, outputs: outputs, route: route,
		stallFrom: never, nextGrantAt: never}
	r.ports = make([]*Port, nports)
	for i := range r.ports {
		r.ports[i] = NewPort(params.PortDepth)
		r.ports[i].owner = r
		r.ports[i].idx = i
	}
	r.credited = make([]bool, len(outputs))
	for i, out := range outputs {
		if cs, ok := out.(CreditSink); ok {
			cs.OnCredit(r)
			r.credited[i] = true
		}
	}
	return r
}

// Name returns the router's label.
func (r *Router) Name() string { return r.name }

// Port returns input port i, for wiring upstream producers.
func (r *Router) Port(i int) *Port { return r.ports[i] }

// NPorts reports the number of input ports.
func (r *Router) NPorts() int { return len(r.ports) }

// Forwarded reports the number of packets granted so far.
func (r *Router) Forwarded() uint64 { return r.forwarded }

// Stalls reports cycles where a ready head existed but nothing was granted.
func (r *Router) Stalls() uint64 { return r.stalls }

// BindWake implements sim.WakeBinder: the kernel hands the router its
// wake handle at registration, so Wake can push external re-arms into
// the kernel's wake heap.
func (r *Router) BindWake(h sim.WakeHandle) { r.wake = h }

// Wake implements Waker: re-arm the router to scan no later than cycle at.
// Earlier than necessary is safe — the scan finds nothing grantable and
// recomputes the window. Pushes wake at the packet's readyAt; credit
// returns wake at the cycle after the pop or queue release. The re-arm is
// forwarded to the kernel's wake heap, which is what lets the kernel skip
// to this router's next grant without polling it.
//
//sara:hotpath
func (r *Router) Wake(at sim.Cycle) {
	if r.queued == 0 {
		// A credit return to an empty router is moot: there is nothing to
		// grant into the freed slot. Adopting it anyway would lower
		// nextGrantAt below `never` with no scan left to recompute it (the
		// empty tick returns early), and once that cycle passes the stale
		// low window makes the next Push skip its kernel re-arm — the
		// router would sleep through the pushed packet's readyAt.
		return
	}
	if at < r.nextGrantAt {
		r.nextGrantAt = at
	}
	// The re-arm must reach the kernel directly: credit wakes land after
	// this router's tick in their cycle, and under the active-ticker list
	// a dormant router is not ticked again until its kernel bound says so.
	// (Rearm drops values the kernel's cached bound already covers.)
	r.wake.Rearm(at)
}

// NextActivity implements sim.Idler from the cached dormancy window: an
// empty router never acts, and a router whose window is unarmed (every
// head blocked on a credited sink) acts only after an external wake, which
// lands on an executed cycle and is observed by the kernel's re-query. The
// O(ports) work lives in the scan that computed the window, not here.
//
//sara:hotpath
func (r *Router) NextActivity(now sim.Cycle) (sim.Cycle, bool) {
	if r.queued == 0 || r.nextGrantAt == never {
		return 0, false
	}
	if r.nextGrantAt <= now {
		return now, true
	}
	return r.nextGrantAt, true
}

// SettleRun implements sim.Settler: flush the batched stall accounting at
// the end of a Run segment by mimicking a dormant tick at end-1 (the last
// simulated cycle). Under the active-ticker list a router that stays
// dormant to the horizon is never ticked again, so without this its
// backfilled stalls for the trailing stretch would be lost. Idempotent,
// and a no-op in the stepped and force-poll modes, where the tick at
// end-1 already ran this exact accounting.
func (r *Router) SettleRun(end sim.Cycle) {
	if r.queued == 0 || end == 0 || r.lastTick >= end-1 {
		return
	}
	now := end - 1
	r.accrueStallGap(now)
	if r.stallFrom <= now {
		r.stalls++
		if debugStall != nil {
			debugStall(r.name, now, 1, false)
		}
	}
	r.lastTick = now
}

// accrueStallGap back-fills stall cycles for the scan-free stretch
// (lastTick, now): every cycle from stallFrom on had a ready head and no
// grant (the dormancy window proves no grant was possible).
func (r *Router) accrueStallGap(now sim.Cycle) {
	if now > r.lastTick+1 && r.stallFrom < now {
		from := r.stallFrom
		if from <= r.lastTick {
			from = r.lastTick + 1
		}
		r.stalls += uint64(now - from)
		if debugStall != nil {
			debugStall(r.name, now, uint64(now-from), true)
		}
	}
}

// Tick performs one cycle of switch allocation: at most one grant per
// output. Strictly before the dormancy window opens it only settles stall
// accounting in O(1); at or after the window it runs the full scan: the
// arbitrable heads are collected (and routed) once; after a grant, the
// popped port's next head joins the pool for the remaining outputs,
// matching the per-output re-read of a straightforward nested scan.
//
//sara:hotpath
func (r *Router) Tick(now sim.Cycle) {
	if r.queued == 0 {
		return // stallFrom is never: the scan that popped the last packet reset it
	}
	// No kernel sync is needed here: every lowering of nextGrantAt
	// (Port.Push, Wake) re-arms the kernel bound at its source, and the
	// scan-end recompute below only raises the window relative to the
	// post-tick re-key the active list performs.
	if now < r.nextGrantAt && !forceScan {
		// Dormant: the window proves no grant can occur this cycle, so
		// the only per-cycle work is the stall accounting the reference
		// scan would have done.
		r.accrueStallGap(now)
		if r.stallFrom <= now {
			r.stalls++
			if debugStall != nil {
				debugStall(r.name, now, 1, false)
			}
		}
		r.lastTick = now
		return
	}
	if debugSleep != nil && now > r.lastScan+1 {
		debugSleep(r.name, r.lastScan+1, now)
	}
	r.accrueStallGap(now)
	r.lastTick = now
	r.lastScan = now
	r.ready = r.ready[:0]
	oldest := now
	for i, p := range r.ports {
		if len(p.fifo) == 0 {
			continue // zero buffered flits: nothing to collect or route
		}
		if pk := p.fifo[0]; pk.readyAt <= now {
			r.ready = append(r.ready, readyHead{idx: i, out: r.headOut(p), pk: pk}) //sara:alloc-ok ready list is reused each tick; capacity amortizes to port count
			if pk.arrived < oldest {
				oldest = pk.arrived
			}
		}
	}
	// The aging pass only matters once some ready head is over-age.
	aging := r.params.AgingT > 0 && now >= oldest+r.params.AgingT
	granted := false
	for out := range r.outputs {
		sel := r.selectReady(out, now, aging)
		if sel < 0 {
			continue
		}
		h := r.ready[sel]
		pk := r.ports[h.idx].pop(now)
		if debugGrant != nil {
			debugGrant(r.name, now, h.idx, out, pk.t.ID)
		}
		r.outputs[out].Accept(pk.t, now)
		r.forwarded++
		granted = true
		r.rrPtr = (h.idx + 1) % len(r.ports)
		// Refresh the granted port's cached head for later outputs.
		if p := r.ports[h.idx]; len(p.fifo) > 0 && p.fifo[0].readyAt <= now {
			r.ready[sel] = readyHead{idx: h.idx, out: r.headOut(p), pk: p.fifo[0]}
		} else {
			r.ready = append(r.ready[:sel], r.ready[sel+1:]...) //sara:alloc-ok in-place removal; never grows the backing array
		}
	}
	if !granted && len(r.ready) > 0 {
		// Some head was ready but nothing fit downstream.
		r.stalls++
		if debugStall != nil {
			debugStall(r.name, now, 1, false)
		}
	}
	// Recompute the dormancy window and the stall origin from the
	// post-grant state. A head still traversing its link opens the window
	// at its readyAt; a ready head that survived ungranted opens it at
	// now+1 if its output can accept (it may win next cycle) or is not
	// credit-wired (it must be polled); a ready head blocked on a
	// credited output contributes nothing — the credit return re-arms the
	// window. stallFrom is the first cycle any head is arbitrable: every
	// scan-free cycle from then on stalls.
	r.stallFrom = never
	next := never
	for _, p := range r.ports {
		if len(p.fifo) == 0 {
			continue
		}
		pk := &p.fifo[0]
		at := pk.readyAt
		if at <= now {
			at = now + 1
			if out := r.headOut(p); !r.credited[out] || r.outputs[out].CanAccept(pk.t) {
				next = at
			}
		} else if at < next {
			next = at
		}
		if at < r.stallFrom {
			r.stallFrom = at
		}
	}
	r.nextGrantAt = next
}

// headOut returns the routed output of p's head packet, computing and
// caching it on first use.
func (r *Router) headOut(p *Port) int {
	pk := &p.fifo[0]
	if pk.out < 0 {
		pk.out = int16(r.route(pk.t))
	}
	return int(pk.out)
}

// selectReady picks the index in r.ready to grant for output out, or -1.
func (r *Router) selectReady(out int, now sim.Cycle, aging bool) int {
	sel := -1
	// Aging pass: any over-age head is served oldest-first.
	if aging {
		for i, h := range r.ready {
			if h.out != out || now < h.pk.arrived+r.params.AgingT {
				continue
			}
			if !r.outputs[out].CanAccept(h.pk.t) {
				continue
			}
			if sel < 0 || fcfsBefore(h.pk, r.ready[sel].pk) {
				sel = i
			}
		}
		if sel >= 0 {
			return sel
		}
	}
	for i, h := range r.ready {
		if h.out != out || !r.outputs[out].CanAccept(h.pk.t) {
			continue
		}
		if sel < 0 || r.better(h.pk, h.idx, r.ready[sel].pk, r.ready[sel].idx, now) {
			sel = i
		}
	}
	return sel
}

// better reports whether candidate (pk, idx) beats the incumbent under the
// router's arbitration policy.
func (r *Router) better(pk packet, idx int, inc packet, incIdx int, now sim.Cycle) bool {
	switch r.params.Arb {
	case ArbFCFS:
		return fcfsBefore(pk, inc)
	case ArbRR:
		return r.rrDist(idx) < r.rrDist(incIdx)
	case ArbPriority:
		if pk.t.Priority != inc.t.Priority {
			return pk.t.Priority > inc.t.Priority
		}
		return r.rrDist(idx) < r.rrDist(incIdx)
	case ArbFrameRate:
		if pk.t.Urgent != inc.t.Urgent {
			return pk.t.Urgent
		}
		return fcfsBefore(pk, inc)
	default:
		panic("noc: unknown arbitration policy")
	}
}

func fcfsBefore(a, b packet) bool {
	if a.arrived != b.arrived {
		return a.arrived < b.arrived
	}
	return a.t.ID < b.t.ID
}

func (r *Router) rrDist(idx int) int {
	return (idx - r.rrPtr + len(r.ports)) % len(r.ports)
}
