// Package noc models the on-chip network that carries memory transactions
// from the DMAs to the memory controllers: routers with per-input FIFO
// ports, one-packet-per-output switch allocation per cycle, credit-based
// backpressure into the downstream sink, and pluggable arbitration
// policies (FCFS, round-robin, priority-based with round-robin tiebreak,
// and the frame-rate-urgency baseline).
//
// The evaluated topology (built by internal/core) is a two-level tree
// matching Fig. 1: media cores and system cores aggregate through their
// own routers, which join the CPU, GPU and DSP at a root router with one
// output per DRAM channel. The response path is a fixed-latency pipe
// handled by the SoC layer, since the figures the paper reports are
// insensitive to return-path contention.
package noc

import (
	"fmt"

	"sara/internal/sim"
	"sara/internal/txn"
)

// ArbKind selects a router's switch-allocation policy.
type ArbKind uint8

const (
	// ArbFCFS grants the input whose head packet arrived first.
	ArbFCFS ArbKind = iota
	// ArbRR grants inputs in round-robin order.
	ArbRR
	// ArbPriority grants the highest-priority head, round-robin on ties.
	ArbPriority
	// ArbFrameRate grants urgent media packets first, then FCFS.
	ArbFrameRate
)

// String returns the arbitration policy name.
func (a ArbKind) String() string {
	switch a {
	case ArbFCFS:
		return "fcfs"
	case ArbRR:
		return "rr"
	case ArbPriority:
		return "priority"
	case ArbFrameRate:
		return "framerate"
	}
	return fmt.Sprintf("arb(%d)", uint8(a))
}

// Params are the network-wide knobs.
type Params struct {
	// PortDepth is the FIFO depth of each router input port.
	PortDepth int
	// HopLatency is the cycles a packet spends traversing one link
	// before it becomes eligible for arbitration at the next router.
	HopLatency sim.Cycle
	// RespLatency is the fixed return-path delay from memory controller
	// back to the DMA.
	RespLatency sim.Cycle
	// Arb is the switch-allocation policy of every router.
	Arb ArbKind
	// AgingT serves any packet that has waited at least this long at one
	// router ahead of policy order, preventing starvation under priority
	// arbitration. Zero disables aging.
	AgingT sim.Cycle
}

// DefaultParams returns the evaluation settings: 16-deep ports, 2-cycle
// hops, 12-cycle response path, aging at the paper's T. The port depth
// matters for the baselines: deep FIFOs let a flooding engine accumulate
// old packets that dominate FCFS (oldest-first) arbitration, which is how
// high-bandwidth cores overwhelm others on a shared interconnect.
func DefaultParams() Params {
	return Params{PortDepth: 16, HopLatency: 2, RespLatency: 12, Arb: ArbPriority, AgingT: 10000}
}

// packet is a transaction in flight through one router.
type packet struct {
	t       *txn.Transaction
	readyAt sim.Cycle // when it finishes the incoming link
	arrived sim.Cycle // when it entered this router's port (for FCFS/aging)
	// out caches the routed output index (-1 until first computed);
	// routing is per-transaction math the arbitration loops would
	// otherwise redo every cycle the packet waits at the head.
	out int16
}

// Port is a router input FIFO.
type Port struct {
	fifo  []packet
	depth int
	// queued, when wired by a router, tracks the router-wide packet
	// count so Tick and NextActivity can bail out of an empty router
	// without touching every port.
	queued *int
}

// NewPort returns a port with the given FIFO depth.
func NewPort(depth int) *Port {
	if depth <= 0 {
		panic("noc: port depth must be positive")
	}
	return &Port{depth: depth}
}

// CanAccept reports whether the FIFO has space.
func (p *Port) CanAccept() bool { return len(p.fifo) < p.depth }

// Push appends t, becoming arbitrable at readyAt.
func (p *Port) Push(t *txn.Transaction, arrived, readyAt sim.Cycle) {
	if !p.CanAccept() {
		panic("noc: push to full port")
	}
	p.fifo = append(p.fifo, packet{t: t, readyAt: readyAt, arrived: arrived, out: -1})
	if p.queued != nil {
		*p.queued++
	}
}

// Len reports the queued packet count.
func (p *Port) Len() int { return len(p.fifo) }

func (p *Port) head() (packet, bool) {
	if len(p.fifo) == 0 {
		return packet{}, false
	}
	return p.fifo[0], true
}

func (p *Port) pop() packet {
	pk := p.fifo[0]
	copy(p.fifo, p.fifo[1:])
	p.fifo[len(p.fifo)-1] = packet{}
	p.fifo = p.fifo[:len(p.fifo)-1]
	if p.queued != nil {
		*p.queued--
	}
	return pk
}

// Sink is the downstream consumer of a router output: either the next
// router's input port or a memory-controller queue.
type Sink interface {
	// CanAccept reports whether the sink can take t this cycle.
	CanAccept(t *txn.Transaction) bool
	// Accept consumes t at cycle now.
	Accept(t *txn.Transaction, now sim.Cycle)
}

// PortSink adapts a router input port into a Sink for the upstream router,
// applying the link's hop latency.
type PortSink struct {
	Port *Port
	Hop  sim.Cycle
}

// CanAccept reports whether the port FIFO has space.
func (s PortSink) CanAccept(*txn.Transaction) bool { return s.Port.CanAccept() }

// Accept pushes t into the port; it becomes arbitrable after the hop.
func (s PortSink) Accept(t *txn.Transaction, now sim.Cycle) {
	s.Port.Push(t, now, now+s.Hop)
}

// Router arbitrates its input ports onto one or more output sinks. Packets
// are routed to an output by the Route function (e.g. by DRAM channel at
// the root router; single-output aggregation routers ignore it).
type Router struct {
	name    string
	params  Params
	ports   []*Port
	outputs []Sink
	// Route maps a transaction to an output index.
	route func(*txn.Transaction) int
	rrPtr int

	// ready is per-cycle scratch: the arbitrable head of every port,
	// collected once per Tick so the per-output selection loops do not
	// re-read FIFOs and re-route packets.
	ready []readyHead
	// queued is the live packet count across all input ports.
	queued int
	// lastTick and stallFrom batch the stall accounting across
	// kernel-skipped cycles. stallFrom is the first cycle at which,
	// absent any activity, a ready head exists — from then on every
	// skipped cycle stalls, because downstream space cannot change while
	// the whole system is quiescent, and a grantable head would have
	// kept the kernel executing. The next executed Tick back-fills the
	// range in one step. It starts at a head's future readyAt when the
	// head is still traversing its link, which a boolean "stalled last
	// tick" flag could not express.
	lastTick  sim.Cycle
	stallFrom sim.Cycle

	// stats
	forwarded uint64
	stalls    uint64 // cycles an arbitrable head existed but no grant fit
}

// debugStall, when set, observes every stall accrual (tests only).
var debugStall func(name string, now sim.Cycle, n uint64, backfill bool)

// SetDebugStall installs the stall trace hook (tests only).
func SetDebugStall(fn func(name string, now sim.Cycle, n uint64, backfill bool)) { debugStall = fn }

// debugGrant, when set, observes every switch-allocation grant (tests
// only): which input port won which output for which transaction.
var debugGrant func(name string, now sim.Cycle, port, out int, id uint64)

// SetDebugGrant installs the grant trace hook (equivalence tests only;
// not for concurrent use).
func SetDebugGrant(fn func(name string, now sim.Cycle, port, out int, id uint64)) { debugGrant = fn }

// neverStall marks a router with no packets: gaps accrue no stalls.
const neverStall = ^sim.Cycle(0)

// readyHead is one port's arbitrable head packet with its routed output.
type readyHead struct {
	idx int
	out int
	pk  packet
}

// NewRouter builds a router with nports input ports. route may be nil when
// there is exactly one output.
func NewRouter(name string, params Params, nports int, outputs []Sink, route func(*txn.Transaction) int) *Router {
	if nports <= 0 || len(outputs) == 0 {
		panic("noc: router needs ports and outputs")
	}
	if route == nil {
		if len(outputs) != 1 {
			panic("noc: nil route with multiple outputs")
		}
		route = func(*txn.Transaction) int { return 0 }
	}
	r := &Router{name: name, params: params, outputs: outputs, route: route, stallFrom: neverStall}
	r.ports = make([]*Port, nports)
	for i := range r.ports {
		r.ports[i] = NewPort(params.PortDepth)
		r.ports[i].queued = &r.queued
	}
	return r
}

// Name returns the router's label.
func (r *Router) Name() string { return r.name }

// Port returns input port i, for wiring upstream producers.
func (r *Router) Port(i int) *Port { return r.ports[i] }

// Forwarded reports the number of packets granted so far.
func (r *Router) Forwarded() uint64 { return r.forwarded }

// Stalls reports cycles where a ready head existed but nothing was granted.
func (r *Router) Stalls() uint64 { return r.stalls }

// NextActivity implements sim.Idler: an empty router never acts; a router
// whose head packets are all still traversing their incoming links acts no
// earlier than the first head becomes arbitrable; and a router whose ready
// heads are all blocked downstream only accrues stall cycles, which Tick
// back-fills exactly — unblocking requires downstream activity, which
// executes a cycle and re-queries this hint.
func (r *Router) NextActivity(now sim.Cycle) (sim.Cycle, bool) {
	if r.queued == 0 {
		return 0, false
	}
	var earliest sim.Cycle
	found := false
	for _, p := range r.ports {
		pk, ok := p.head()
		if !ok {
			continue
		}
		if pk.readyAt <= now {
			if r.outputs[r.headOut(p)].CanAccept(pk.t) {
				return now, true
			}
			continue
		}
		if !found || pk.readyAt < earliest {
			earliest = pk.readyAt
			found = true
		}
	}
	return earliest, found
}

// Tick performs one cycle of switch allocation: at most one grant per
// output. The arbitrable heads are collected (and routed) once; after a
// grant, the popped port's next head joins the pool for the remaining
// outputs, matching the per-output re-read of a straightforward nested
// scan.
func (r *Router) Tick(now sim.Cycle) {
	if r.queued == 0 {
		return // stallFrom is neverStall: the tick that popped the last packet reset it
	}
	if now > r.lastTick+1 && r.stallFrom < now {
		// Skipped cycles since the last tick: nothing in the system
		// moved, so every one of them from stallFrom on stalled.
		from := r.stallFrom
		if from <= r.lastTick {
			from = r.lastTick + 1
		}
		r.stalls += uint64(now - from)
		if debugStall != nil {
			debugStall(r.name, now, uint64(now-from), true)
		}
	}
	r.lastTick = now
	r.ready = r.ready[:0]
	oldest := now
	for i, p := range r.ports {
		if pk, ok := p.head(); ok && pk.readyAt <= now {
			r.ready = append(r.ready, readyHead{idx: i, out: r.headOut(p), pk: pk})
			if pk.arrived < oldest {
				oldest = pk.arrived
			}
		}
	}
	// The aging pass only matters once some ready head is over-age.
	aging := r.params.AgingT > 0 && now >= oldest+r.params.AgingT
	granted := false
	for out := range r.outputs {
		sel := r.selectReady(out, now, aging)
		if sel < 0 {
			continue
		}
		h := r.ready[sel]
		pk := r.ports[h.idx].pop()
		if debugGrant != nil {
			debugGrant(r.name, now, h.idx, out, pk.t.ID)
		}
		r.outputs[out].Accept(pk.t, now)
		r.forwarded++
		granted = true
		r.rrPtr = (h.idx + 1) % len(r.ports)
		// Refresh the granted port's cached head for later outputs.
		if npk, ok := r.ports[h.idx].head(); ok && npk.readyAt <= now {
			r.ready[sel] = readyHead{idx: h.idx, out: r.headOut(r.ports[h.idx]), pk: npk}
		} else {
			r.ready = append(r.ready[:sel], r.ready[sel+1:]...)
		}
	}
	if !granted && len(r.ready) > 0 {
		// Some head was ready but nothing fit downstream.
		r.stalls++
		if debugStall != nil {
			debugStall(r.name, now, 1, false)
		}
	}
	// Recompute when stalling would resume if the system goes quiescent:
	// the first cycle any head is arbitrable — now+1 for heads already
	// ready (they survived ungranted, so they are blocked), a future
	// readyAt for heads still traversing their links. Grantable heads
	// keep the kernel executing, so genuinely skipped cycles past this
	// point all stall.
	r.stallFrom = neverStall
	for _, p := range r.ports {
		if pk, ok := p.head(); ok {
			at := pk.readyAt
			if at <= now {
				at = now + 1
			}
			if at < r.stallFrom {
				r.stallFrom = at
			}
		}
	}
}

// headOut returns the routed output of p's head packet, computing and
// caching it on first use.
func (r *Router) headOut(p *Port) int {
	pk := &p.fifo[0]
	if pk.out < 0 {
		pk.out = int16(r.route(pk.t))
	}
	return int(pk.out)
}

// selectReady picks the index in r.ready to grant for output out, or -1.
func (r *Router) selectReady(out int, now sim.Cycle, aging bool) int {
	sel := -1
	// Aging pass: any over-age head is served oldest-first.
	if aging {
		for i, h := range r.ready {
			if h.out != out || now < h.pk.arrived+r.params.AgingT {
				continue
			}
			if !r.outputs[out].CanAccept(h.pk.t) {
				continue
			}
			if sel < 0 || fcfsBefore(h.pk, r.ready[sel].pk) {
				sel = i
			}
		}
		if sel >= 0 {
			return sel
		}
	}
	for i, h := range r.ready {
		if h.out != out || !r.outputs[out].CanAccept(h.pk.t) {
			continue
		}
		if sel < 0 || r.better(h.pk, h.idx, r.ready[sel].pk, r.ready[sel].idx, now) {
			sel = i
		}
	}
	return sel
}

// better reports whether candidate (pk, idx) beats the incumbent under the
// router's arbitration policy.
func (r *Router) better(pk packet, idx int, inc packet, incIdx int, now sim.Cycle) bool {
	switch r.params.Arb {
	case ArbFCFS:
		return fcfsBefore(pk, inc)
	case ArbRR:
		return r.rrDist(idx) < r.rrDist(incIdx)
	case ArbPriority:
		if pk.t.Priority != inc.t.Priority {
			return pk.t.Priority > inc.t.Priority
		}
		return r.rrDist(idx) < r.rrDist(incIdx)
	case ArbFrameRate:
		if pk.t.Urgent != inc.t.Urgent {
			return pk.t.Urgent
		}
		return fcfsBefore(pk, inc)
	default:
		panic("noc: unknown arbitration policy")
	}
}

func fcfsBefore(a, b packet) bool {
	if a.arrived != b.arrived {
		return a.arrived < b.arrived
	}
	return a.t.ID < b.t.ID
}

func (r *Router) rrDist(idx int) int {
	return (idx - r.rrPtr + len(r.ports)) % len(r.ports)
}
