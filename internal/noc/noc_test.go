package noc

import (
	"testing"

	"sara/internal/sim"
	"sara/internal/txn"
)

// collectSink records accepted transactions and can simulate backpressure.
type collectSink struct {
	got  []*txn.Transaction
	full bool
}

func (s *collectSink) CanAccept(*txn.Transaction) bool { return !s.full }
func (s *collectSink) Accept(t *txn.Transaction, now sim.Cycle) {
	s.got = append(s.got, t)
}

func params(arb ArbKind) Params {
	return Params{PortDepth: 4, HopLatency: 0, RespLatency: 12, Arb: arb, AgingT: 0}
}

func tx(id uint64, prio txn.Priority) *txn.Transaction {
	return &txn.Transaction{ID: id, Priority: prio}
}

func TestPortBackpressure(t *testing.T) {
	p := NewPort(2)
	p.Push(tx(1, 0), 0, 0)
	p.Push(tx(2, 0), 0, 0)
	if p.CanAccept() {
		t.Fatal("full port accepts")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("push to full port did not panic")
		}
	}()
	p.Push(tx(3, 0), 0, 0)
}

func TestRouterForwardsOnePerCycle(t *testing.T) {
	sink := &collectSink{}
	r := NewRouter("t", params(ArbFCFS), 2, []Sink{sink}, nil)
	r.Port(0).Push(tx(1, 0), 0, 0)
	r.Port(1).Push(tx(2, 0), 1, 1)
	r.Tick(1)
	if len(sink.got) != 1 {
		t.Fatalf("forwarded %d packets in one cycle, want 1", len(sink.got))
	}
	r.Tick(2)
	if len(sink.got) != 2 {
		t.Fatalf("forwarded %d packets after two cycles, want 2", len(sink.got))
	}
}

func TestHopLatencyGatesArbitration(t *testing.T) {
	sink := &collectSink{}
	pr := params(ArbFCFS)
	pr.HopLatency = 3
	r := NewRouter("t", pr, 1, []Sink{sink}, nil)
	PortSink{Port: r.Port(0), Hop: pr.HopLatency}.Accept(tx(1, 0), 0)
	r.Tick(1)
	r.Tick(2)
	if len(sink.got) != 0 {
		t.Fatal("packet forwarded before finishing its hop")
	}
	r.Tick(3)
	if len(sink.got) != 1 {
		t.Fatal("packet not forwarded after the hop")
	}
}

func TestFCFSArbitrationOldestHeadWins(t *testing.T) {
	sink := &collectSink{}
	r := NewRouter("t", params(ArbFCFS), 2, []Sink{sink}, nil)
	r.Port(1).Push(tx(2, 0), 0, 0) // older
	r.Port(0).Push(tx(1, 0), 5, 5)
	r.Tick(6)
	if sink.got[0].ID != 2 {
		t.Fatalf("FCFS granted %d first, want the older head 2", sink.got[0].ID)
	}
}

func TestPriorityArbitration(t *testing.T) {
	sink := &collectSink{}
	r := NewRouter("t", params(ArbPriority), 3, []Sink{sink}, nil)
	r.Port(0).Push(tx(1, 2), 0, 0)
	r.Port(1).Push(tx(2, 7), 1, 1)
	r.Port(2).Push(tx(3, 5), 2, 2)
	for i := sim.Cycle(3); len(sink.got) < 3; i++ {
		r.Tick(i)
	}
	if sink.got[0].ID != 2 || sink.got[1].ID != 3 || sink.got[2].ID != 1 {
		t.Fatalf("priority order %v, want [2 3 1]", ids(sink.got))
	}
}

func TestRRArbitrationFairness(t *testing.T) {
	sink := &collectSink{}
	r := NewRouter("t", params(ArbRR), 2, []Sink{sink}, nil)
	// Keep both ports backlogged; grants must alternate.
	for i := 0; i < 4; i++ {
		r.Port(0).Push(tx(uint64(10+i), 0), 0, 0)
		r.Port(1).Push(tx(uint64(20+i), 0), 0, 0)
	}
	for i := sim.Cycle(0); len(sink.got) < 8; i++ {
		r.Tick(i)
	}
	for i := 1; i < 8; i++ {
		if (sink.got[i].ID < 20) == (sink.got[i-1].ID < 20) {
			t.Fatalf("RR grants did not alternate: %v", ids(sink.got))
		}
	}
}

func TestFrameRateArbitrationUrgentFirst(t *testing.T) {
	sink := &collectSink{}
	r := NewRouter("t", params(ArbFrameRate), 2, []Sink{sink}, nil)
	r.Port(0).Push(tx(1, 0), 0, 0)
	urgent := tx(2, 0)
	urgent.Urgent = true
	r.Port(1).Push(urgent, 5, 5)
	r.Tick(6)
	if sink.got[0].ID != 2 {
		t.Fatal("urgent packet did not win frame-rate arbitration")
	}
}

func TestBlockedDownstreamStalls(t *testing.T) {
	sink := &collectSink{full: true}
	r := NewRouter("t", params(ArbFCFS), 1, []Sink{sink}, nil)
	r.Port(0).Push(tx(1, 0), 0, 0)
	r.Tick(1)
	if len(sink.got) != 0 {
		t.Fatal("forwarded into a full sink")
	}
	if r.Stalls() != 1 {
		t.Fatalf("stalls %d, want 1", r.Stalls())
	}
	sink.full = false
	r.Tick(2)
	if len(sink.got) != 1 {
		t.Fatal("did not forward once the sink freed up")
	}
	if r.Forwarded() != 1 {
		t.Fatalf("forwarded counter %d, want 1", r.Forwarded())
	}
}

func TestMultiOutputRouting(t *testing.T) {
	s0, s1 := &collectSink{}, &collectSink{}
	route := func(t *txn.Transaction) int { return int(t.Addr & 1) }
	r := NewRouter("root", params(ArbFCFS), 2, []Sink{s0, s1}, route)
	a := tx(1, 0)
	a.Addr = 0
	b := tx(2, 0)
	b.Addr = 1
	r.Port(0).Push(a, 0, 0)
	r.Port(1).Push(b, 0, 0)
	// Both outputs can grant in the same cycle.
	r.Tick(1)
	if len(s0.got) != 1 || len(s1.got) != 1 {
		t.Fatalf("per-output grants %d/%d, want 1/1", len(s0.got), len(s1.got))
	}
}

func TestAgingBeatsPriority(t *testing.T) {
	sink := &collectSink{}
	pr := params(ArbPriority)
	pr.AgingT = 50
	r := NewRouter("t", pr, 2, []Sink{sink}, nil)
	r.Port(0).Push(tx(1, 0), 0, 0) // old, low priority
	r.Port(1).Push(tx(2, 7), 60, 60)
	r.Tick(60)
	if sink.got[0].ID != 1 {
		t.Fatal("over-age packet lost to priority")
	}
}

func ids(ts []*txn.Transaction) []uint64 {
	var out []uint64
	for _, t := range ts {
		out = append(out, t.ID)
	}
	return out
}
