package noc

import (
	"testing"

	"sara/internal/sim"
	"sara/internal/txn"
)

// collectSink records accepted transactions and can simulate backpressure.
type collectSink struct {
	got  []*txn.Transaction
	full bool
}

func (s *collectSink) CanAccept(*txn.Transaction) bool { return !s.full }
func (s *collectSink) Accept(t *txn.Transaction, now sim.Cycle) {
	s.got = append(s.got, t)
}

func params(arb ArbKind) Params {
	return Params{PortDepth: 4, HopLatency: 0, RespLatency: 12, Arb: arb, AgingT: 0}
}

func tx(id uint64, prio txn.Priority) *txn.Transaction {
	return &txn.Transaction{ID: id, Priority: prio}
}

func TestPortBackpressure(t *testing.T) {
	p := NewPort(2)
	p.Push(tx(1, 0), 0, 0)
	p.Push(tx(2, 0), 0, 0)
	if p.CanAccept() {
		t.Fatal("full port accepts")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("push to full port did not panic")
		}
	}()
	p.Push(tx(3, 0), 0, 0)
}

func TestRouterForwardsOnePerCycle(t *testing.T) {
	sink := &collectSink{}
	r := NewRouter("t", params(ArbFCFS), 2, []Sink{sink}, nil)
	r.Port(0).Push(tx(1, 0), 0, 0)
	r.Port(1).Push(tx(2, 0), 1, 1)
	r.Tick(1)
	if len(sink.got) != 1 {
		t.Fatalf("forwarded %d packets in one cycle, want 1", len(sink.got))
	}
	r.Tick(2)
	if len(sink.got) != 2 {
		t.Fatalf("forwarded %d packets after two cycles, want 2", len(sink.got))
	}
}

func TestHopLatencyGatesArbitration(t *testing.T) {
	sink := &collectSink{}
	pr := params(ArbFCFS)
	pr.HopLatency = 3
	r := NewRouter("t", pr, 1, []Sink{sink}, nil)
	PortSink{Port: r.Port(0), Hop: pr.HopLatency}.Accept(tx(1, 0), 0)
	r.Tick(1)
	r.Tick(2)
	if len(sink.got) != 0 {
		t.Fatal("packet forwarded before finishing its hop")
	}
	r.Tick(3)
	if len(sink.got) != 1 {
		t.Fatal("packet not forwarded after the hop")
	}
}

func TestFCFSArbitrationOldestHeadWins(t *testing.T) {
	sink := &collectSink{}
	r := NewRouter("t", params(ArbFCFS), 2, []Sink{sink}, nil)
	r.Port(1).Push(tx(2, 0), 0, 0) // older
	r.Port(0).Push(tx(1, 0), 5, 5)
	r.Tick(6)
	if sink.got[0].ID != 2 {
		t.Fatalf("FCFS granted %d first, want the older head 2", sink.got[0].ID)
	}
}

func TestPriorityArbitration(t *testing.T) {
	sink := &collectSink{}
	r := NewRouter("t", params(ArbPriority), 3, []Sink{sink}, nil)
	r.Port(0).Push(tx(1, 2), 0, 0)
	r.Port(1).Push(tx(2, 7), 1, 1)
	r.Port(2).Push(tx(3, 5), 2, 2)
	for i := sim.Cycle(3); len(sink.got) < 3; i++ {
		r.Tick(i)
	}
	if sink.got[0].ID != 2 || sink.got[1].ID != 3 || sink.got[2].ID != 1 {
		t.Fatalf("priority order %v, want [2 3 1]", ids(sink.got))
	}
}

func TestRRArbitrationFairness(t *testing.T) {
	sink := &collectSink{}
	r := NewRouter("t", params(ArbRR), 2, []Sink{sink}, nil)
	// Keep both ports backlogged; grants must alternate.
	for i := 0; i < 4; i++ {
		r.Port(0).Push(tx(uint64(10+i), 0), 0, 0)
		r.Port(1).Push(tx(uint64(20+i), 0), 0, 0)
	}
	for i := sim.Cycle(0); len(sink.got) < 8; i++ {
		r.Tick(i)
	}
	for i := 1; i < 8; i++ {
		if (sink.got[i].ID < 20) == (sink.got[i-1].ID < 20) {
			t.Fatalf("RR grants did not alternate: %v", ids(sink.got))
		}
	}
}

func TestFrameRateArbitrationUrgentFirst(t *testing.T) {
	sink := &collectSink{}
	r := NewRouter("t", params(ArbFrameRate), 2, []Sink{sink}, nil)
	r.Port(0).Push(tx(1, 0), 0, 0)
	urgent := tx(2, 0)
	urgent.Urgent = true
	r.Port(1).Push(urgent, 5, 5)
	r.Tick(6)
	if sink.got[0].ID != 2 {
		t.Fatal("urgent packet did not win frame-rate arbitration")
	}
}

func TestBlockedDownstreamStalls(t *testing.T) {
	sink := &collectSink{full: true}
	r := NewRouter("t", params(ArbFCFS), 1, []Sink{sink}, nil)
	r.Port(0).Push(tx(1, 0), 0, 0)
	r.Tick(1)
	if len(sink.got) != 0 {
		t.Fatal("forwarded into a full sink")
	}
	if r.Stalls() != 1 {
		t.Fatalf("stalls %d, want 1", r.Stalls())
	}
	sink.full = false
	r.Tick(2)
	if len(sink.got) != 1 {
		t.Fatal("did not forward once the sink freed up")
	}
	if r.Forwarded() != 1 {
		t.Fatalf("forwarded counter %d, want 1", r.Forwarded())
	}
}

func TestMultiOutputRouting(t *testing.T) {
	s0, s1 := &collectSink{}, &collectSink{}
	route := func(t *txn.Transaction) int { return int(t.Addr & 1) }
	r := NewRouter("root", params(ArbFCFS), 2, []Sink{s0, s1}, route)
	a := tx(1, 0)
	a.Addr = 0
	b := tx(2, 0)
	b.Addr = 1
	r.Port(0).Push(a, 0, 0)
	r.Port(1).Push(b, 0, 0)
	// Both outputs can grant in the same cycle.
	r.Tick(1)
	if len(s0.got) != 1 || len(s1.got) != 1 {
		t.Fatalf("per-output grants %d/%d, want 1/1", len(s0.got), len(s1.got))
	}
}

func TestAgingBeatsPriority(t *testing.T) {
	sink := &collectSink{}
	pr := params(ArbPriority)
	pr.AgingT = 50
	r := NewRouter("t", pr, 2, []Sink{sink}, nil)
	r.Port(0).Push(tx(1, 0), 0, 0) // old, low priority
	r.Port(1).Push(tx(2, 7), 60, 60)
	r.Tick(60)
	if sink.got[0].ID != 1 {
		t.Fatal("over-age packet lost to priority")
	}
}

// --- event-driven arbitration: dormancy windows and credit returns ---

// next is NextActivity unpacked for terse assertions.
func next(r *Router, now sim.Cycle) (sim.Cycle, bool) { return r.NextActivity(now) }

func TestEmptyRouterReportsNoActivity(t *testing.T) {
	r := NewRouter("t", params(ArbFCFS), 2, []Sink{&collectSink{}}, nil)
	if _, ok := next(r, 0); ok {
		t.Fatal("empty router reported activity")
	}
}

func TestPushReArmsDormantRouter(t *testing.T) {
	sink := &collectSink{}
	r := NewRouter("t", params(ArbFCFS), 1, []Sink{sink}, nil)
	r.Port(0).Push(tx(1, 0), 0, 7) // still traversing its link until cycle 7
	if at, ok := next(r, 1); !ok || at != 7 {
		t.Fatalf("NextActivity = (%d, %v), want (7, true)", at, ok)
	}
	// Ticks before the head is arbitrable must not grant (dormant path).
	for c := sim.Cycle(1); c < 7; c++ {
		r.Tick(c)
	}
	if len(sink.got) != 0 {
		t.Fatal("granted before the head finished its hop")
	}
	// A second injection with an earlier readyAt pulls the wake forward.
	r.Port(0).Push(tx(2, 0), 0, 3)
	if at, ok := next(r, 1); !ok || at != 3 {
		t.Fatalf("after earlier push NextActivity = (%d, %v), want (3, true)", at, ok)
	}
	r.Tick(7)
	if len(sink.got) != 1 || sink.got[0].ID != 1 {
		t.Fatalf("granted %v, want head 1 at cycle 7", ids(sink.got))
	}
}

// TestCreditReturnWakesBlockedUpstream chains two routers through a
// PortSink and checks the full dormancy round trip: the upstream router
// sleeps (NextActivity false) while its head is blocked on the full
// downstream port, and the downstream pop returns a credit that re-arms
// the upstream wake at exactly pop+1.
func TestCreditReturnWakesBlockedUpstream(t *testing.T) {
	pr := params(ArbFCFS)
	pr.PortDepth = 2
	final := &collectSink{full: true}
	down := NewRouter("down", pr, 1, []Sink{final}, nil)
	up := NewRouter("up", pr, 1, []Sink{PortSink{Port: down.Port(0), Hop: 0}}, nil)

	// Fill the downstream port (depth 2) through upstream grants, plus one
	// more packet that stays blocked upstream.
	up.Port(0).Push(tx(1, 0), 0, 0)
	up.Port(0).Push(tx(2, 0), 0, 0)
	up.Tick(0)
	up.Port(0).Push(tx(3, 0), 0, 0)
	up.Tick(1)
	if down.Port(0).Len() != 2 {
		t.Fatalf("downstream port holds %d, want 2 (full)", down.Port(0).Len())
	}
	up.Tick(2) // head 3 is ready but the downstream port is full
	if _, ok := next(up, 3); ok {
		t.Fatal("upstream blocked on a credited sink must report no activity")
	}
	stallsBefore := up.Stalls()

	// Downstream unblocks and pops at cycle 5: the credit must re-arm the
	// upstream wake to cycle 6.
	final.full = false
	down.Tick(5)
	if at, ok := next(up, 5); !ok || at != 6 {
		t.Fatalf("after credit NextActivity = (%d, %v), want (6, true)", at, ok)
	}
	up.Tick(6)
	if down.Port(0).Len() != 2 {
		t.Fatal("upstream did not grant into the credited slot")
	}
	// Cycles 3..5 had a ready head and no grant: the dormant path must
	// have accrued them (3, 4) plus the blocked scan at 6... the exact
	// per-cycle set is pinned by the system-level stall equivalence test;
	// here just require the counter moved while asleep.
	up.Tick(7)
	if up.Stalls() <= stallsBefore {
		t.Fatalf("blocked dormant stretch accrued no stalls (%d -> %d)", stallsBefore, up.Stalls())
	}
}

// TestUncreditedSinkIsPolled pins the compatibility path: a ready head
// blocked on a sink that cannot return credits (plain Sink) keeps the
// router polling every cycle, so unblocking the sink out-of-band is
// observed without any wake.
func TestUncreditedSinkIsPolled(t *testing.T) {
	sink := &collectSink{full: true}
	r := NewRouter("t", params(ArbFCFS), 1, []Sink{sink}, nil)
	r.Port(0).Push(tx(1, 0), 0, 0)
	r.Tick(1)
	if at, ok := next(r, 1); !ok || at != 2 {
		t.Fatalf("NextActivity = (%d, %v), want the next poll (2, true)", at, ok)
	}
	sink.full = false
	r.Tick(2)
	if len(sink.got) != 1 {
		t.Fatal("polled router missed the out-of-band unblock")
	}
}

// TestDormantMatchesForceScan drives the same randomized push/drain
// schedule through a dormant router and a force-scan (per-cycle
// reference) router and requires identical grants, stalls and forwarded
// counts — the unit-level version of the skip-vs-step differential.
func TestDormantMatchesForceScan(t *testing.T) {
	type result struct {
		granted []uint64
		cycles  []sim.Cycle
		stalls  uint64
	}
	run := func(force bool) result {
		SetForceScan(force)
		defer SetForceScan(false)
		rng := sim.NewRand(99)
		sink := &collectSink{}
		pr := params(ArbPriority)
		pr.PortDepth = 3
		pr.AgingT = 40
		r := NewRouter("t", pr, 3, []Sink{sink}, nil)
		id := uint64(0)
		var res result
		for c := sim.Cycle(0); c < 3000; c++ {
			sink.full = rng.Bool(0.6)
			if rng.Bool(0.3) {
				p := r.Port(rng.Intn(3))
				if p.CanAccept() {
					id++
					p.Push(tx(id, txn.Priority(rng.Intn(8))), c, c+sim.Cycle(rng.Intn(4)))
				}
			}
			before := len(sink.got)
			r.Tick(c)
			for _, g := range sink.got[before:] {
				res.granted = append(res.granted, g.ID)
				res.cycles = append(res.cycles, c)
			}
		}
		res.stalls = r.Stalls()
		return res
	}
	ref, fast := run(true), run(false)
	if len(ref.granted) == 0 {
		t.Fatal("reference run granted nothing; schedule too weak")
	}
	if len(ref.granted) != len(fast.granted) || ref.stalls != fast.stalls {
		t.Fatalf("grants %d/%d stalls %d/%d differ between force-scan and dormant",
			len(ref.granted), len(fast.granted), ref.stalls, fast.stalls)
	}
	for i := range ref.granted {
		if ref.granted[i] != fast.granted[i] || ref.cycles[i] != fast.cycles[i] {
			t.Fatalf("grant %d: reference (%d@%d), dormant (%d@%d)", i,
				ref.granted[i], ref.cycles[i], fast.granted[i], fast.cycles[i])
		}
	}
}

func ids(ts []*txn.Transaction) []uint64 {
	var out []uint64
	for _, t := range ts {
		out = append(out, t.ID)
	}
	return out
}
