package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"sara/internal/sim"
)

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Primed() {
		t.Fatal("fresh EWMA claims primed")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first sample %v, want 10", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("EWMA %v, want 15", e.Value())
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEWMA(0)
}

func TestCounterRate(t *testing.T) {
	c := NewCounter(1000, 10)
	for now := sim.Cycle(0); now < 2000; now += 10 {
		c.Add(now, 10) // 1 unit/cycle
	}
	rate := c.Rate(2000)
	if math.Abs(rate-1.0) > 0.15 {
		t.Fatalf("rate %v, want ~1.0", rate)
	}
	// After a long silent gap the window empties.
	if total := c.Total(4001); total != 0 {
		t.Fatalf("stale total %v, want 0", total)
	}
}

func TestCounterEarlyRateUnbiased(t *testing.T) {
	c := NewCounter(10000, 10)
	c.Add(100, 200) // 2/cycle over the first 100 cycles
	rate := c.Rate(100)
	if math.Abs(rate-2.0) > 0.01 {
		t.Fatalf("early rate %v, want 2.0 (divide by elapsed, not window)", rate)
	}
}

func TestCounterConservationProperty(t *testing.T) {
	// Property: within one window, Total equals the sum of amounts added.
	f := func(amounts []uint8) bool {
		c := NewCounter(4096, 16)
		var sum float64
		now := sim.Cycle(0)
		for _, a := range amounts {
			if len(amounts) > 16 {
				return true
			}
			c.Add(now, float64(a))
			sum += float64(a)
			now += 10
		}
		return math.Abs(c.Total(now)-sum) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCounter(10, 20)
}

func TestSeriesSummaries(t *testing.T) {
	s := &Series{Name: "x"}
	for i, v := range []float64{3, 1, 4, 1, 5} {
		s.Append(sim.Cycle(i), v)
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max %v/%v, want 1/5", s.Min(), s.Max())
	}
	if math.Abs(s.Mean()-2.8) > 1e-9 {
		t.Fatalf("mean %v, want 2.8", s.Mean())
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("median %v, want 3", q)
	}
	if f := s.FractionBelow(3); f != 0.4 {
		t.Fatalf("fraction below 3 = %v, want 0.4", f)
	}
	empty := &Series{}
	if !math.IsInf(empty.Min(), 1) || !math.IsNaN(empty.Mean()) {
		t.Fatal("empty series summaries wrong")
	}
}

func TestLevelHistogram(t *testing.T) {
	h := NewLevelHistogram(8)
	h.Add(0, 90)
	h.Add(7, 10)
	if h.Fraction(0) != 0.9 || h.Fraction(7) != 0.1 {
		t.Fatalf("fractions %v/%v, want 0.9/0.1", h.Fraction(0), h.Fraction(7))
	}
	if h.Levels() != 8 || h.Total() != 100 {
		t.Fatalf("levels/total %d/%d", h.Levels(), h.Total())
	}
}

func TestLevelHistogramRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLevelHistogram(4).Add(4, 1)
}

func TestWriteCSV(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	a.Append(0, 1)
	a.Append(10, 2)
	b.Append(0, 3)
	b.Append(10, 4)
	var sb strings.Builder
	if err := WriteCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	want := "cycle,a,b\n0,1,3\n10,2,4\n"
	if sb.String() != want {
		t.Fatalf("CSV %q, want %q", sb.String(), want)
	}
	// Mismatched lengths error out.
	b.Append(20, 5)
	if err := WriteCSV(&sb, a, b); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.Std != 0 || s.CI95 != 0 {
		t.Fatalf("empty summary %+v, want zeros", s)
	}
	if s := Summarize([]float64{3}); s.N != 1 || s.Mean != 3 || s.Std != 0 || s.CI95 != 0 {
		t.Fatalf("single-sample summary %+v, want mean 3 and zero spread", s)
	}
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary %+v, want N=8 mean=5", s)
	}
	// Bessel-corrected std of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std %v, want %v", s.Std, want)
	}
	wantCI := 1.96 * want / math.Sqrt(8)
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Fatalf("CI95 %v, want %v", s.CI95, wantCI)
	}
	// Constant samples: zero spread.
	if s := Summarize([]float64{1, 1, 1}); s.Std != 0 || s.CI95 != 0 {
		t.Fatalf("constant-sample summary %+v, want zero spread", s)
	}
}

// advanceLoop is the pre-clamp reference for Counter.advance: rotate one
// bucketW at a time, however long the gap. The clamped fast path must
// land head, headEnd, buckets and total exactly where this loop does.
func advanceLoop(c *Counter, now sim.Cycle) {
	for now >= c.headEnd {
		c.head = (c.head + 1) % len(c.buckets)
		c.total -= c.buckets[c.head]
		c.buckets[c.head] = 0
		c.headEnd += c.bucketW
	}
}

func counterStateEqual(a, b *Counter) bool {
	if a.head != b.head || a.headEnd != b.headEnd || a.total != b.total {
		return false
	}
	for i := range a.buckets {
		if a.buckets[i] != b.buckets[i] {
			return false
		}
	}
	return true
}

func TestCounterAdvanceClampMatchesRotation(t *testing.T) {
	// Drive two identical counters through adds separated by gaps both
	// shorter and (much) longer than the window; the clamped advance must
	// stay bit-identical to the one-bucket-at-a-time reference, including
	// across a multi-million-cycle dormant stretch.
	c := NewCounter(1000, 10)
	r := NewCounter(1000, 10)
	now := sim.Cycle(0)
	gaps := []sim.Cycle{1, 37, 99, 100, 101, 450, 999, 1000, 1001, 2500,
		10_000, 7, 3_000_000, 12, 950, 25_000_000, 1, 999, 1050}
	for i, g := range gaps {
		amount := float64(i%5) + 0.25
		c.Add(now, amount)
		advanceLoop(r, now)
		r.buckets[r.head] += amount
		r.total += amount
		if !counterStateEqual(c, r) {
			t.Fatalf("state diverged after add %d at cycle %d:\nclamp %+v\nloop  %+v", i, now, c, r)
		}
		now += g
		c.advance(now)
		advanceLoop(r, now)
		if !counterStateEqual(c, r) {
			t.Fatalf("state diverged after gap %d ending at cycle %d:\nclamp %+v\nloop  %+v", g, now, c, r)
		}
		if ct, rt := c.Total(now), r.total; ct != rt {
			t.Fatalf("Total %v, reference %v at cycle %d", ct, rt, now)
		}
	}
}

func TestCounterDormantGapResets(t *testing.T) {
	c := NewCounter(1000, 10)
	c.Add(100, 42)
	if total := c.Total(100); total != 42 {
		t.Fatalf("total %v, want 42", total)
	}
	// A gap of several million cycles empties the window in one step.
	if total := c.Total(5_000_100); total != 0 {
		t.Fatalf("total after dormant gap %v, want 0", total)
	}
	if rate := c.Rate(5_000_100); rate != 0 {
		t.Fatalf("rate after dormant gap %v, want 0", rate)
	}
	// The counter keeps working normally afterwards.
	c.Add(5_000_200, 7)
	if total := c.Total(5_000_200); total != 7 {
		t.Fatalf("total after resume %v, want 7", total)
	}
}

func TestWriteCSVCycleMismatch(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	a.Append(0, 1)
	a.Append(10, 2)
	b.Append(0, 3)
	b.Append(20, 4) // same length, sampled at a different cycle
	var sb strings.Builder
	err := WriteCSV(&sb, a, b)
	if err == nil {
		t.Fatal("cycle-mismatched series accepted")
	}
	for _, frag := range []string{`"b"`, "sample 1", "cycle 20", "cycle 10"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not name %s", err, frag)
		}
	}
	if sb.Len() != 0 {
		t.Fatalf("partial CSV %q written despite error", sb.String())
	}
}
