// Package stats provides the small statistics toolkit used across the
// simulator: windowed rate estimators, exponentially weighted moving
// averages, time series with summary statistics, histograms of discrete
// levels, and CSV export helpers for the experiment harness.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"

	"sara/internal/sim"
)

// EWMA is an exponentially weighted moving average. The zero value is
// unusable; create with NewEWMA.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]. Larger
// alpha weights recent samples more heavily.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Add folds sample x into the average.
func (e *EWMA) Add(x float64) {
	if !e.primed {
		e.value, e.primed = x, true
		return
	}
	e.value += e.alpha * (x - e.value)
}

// Value reports the current average, or 0 before the first sample.
func (e *EWMA) Value() float64 { return e.value }

// Primed reports whether at least one sample has been added.
func (e *EWMA) Primed() bool { return e.primed }

// Counter accumulates an amount (e.g. bytes) and converts it to a rate over
// a sliding window of fixed length. It is the building block of the
// bandwidth and occupancy meters.
type Counter struct {
	window  sim.Cycle
	buckets []float64
	bucketW sim.Cycle
	head    int
	headEnd sim.Cycle
	total   float64
}

// NewCounter returns a Counter covering the trailing window cycles using
// nbuckets sub-buckets (resolution window/nbuckets).
func NewCounter(window sim.Cycle, nbuckets int) *Counter {
	if nbuckets <= 0 || window == 0 || sim.Cycle(nbuckets) > window {
		panic("stats: invalid Counter geometry")
	}
	bw := window / sim.Cycle(nbuckets)
	return &Counter{
		window:  bw * sim.Cycle(nbuckets),
		buckets: make([]float64, nbuckets),
		bucketW: bw,
		headEnd: bw,
	}
}

// advance rotates buckets until now falls in the head bucket. A gap of a
// full window or more means every bucket has expired, so it clamps to one
// O(nbuckets) reset instead of rotating bucket by bucket — the first
// sample after a fast-forwarded dormant stretch must not do O(gap/bucketW)
// work. The clamp lands head and headEnd exactly where the rotation loop
// would, so short-gap behavior is bit-identical.
func (c *Counter) advance(now sim.Cycle) {
	if now < c.headEnd {
		return
	}
	if gap := now - c.headEnd; gap >= c.window {
		steps := gap/c.bucketW + 1
		c.head = (c.head + int(steps%sim.Cycle(len(c.buckets)))) % len(c.buckets)
		c.headEnd += steps * c.bucketW
		for i := range c.buckets {
			c.buckets[i] = 0
		}
		c.total = 0
		return
	}
	for now >= c.headEnd {
		c.head = (c.head + 1) % len(c.buckets)
		c.total -= c.buckets[c.head]
		c.buckets[c.head] = 0
		c.headEnd += c.bucketW
	}
}

// Add records amount at cycle now.
func (c *Counter) Add(now sim.Cycle, amount float64) {
	c.advance(now)
	c.buckets[c.head] += amount
	c.total += amount
}

// Total reports the amount accumulated over the trailing window as of now.
func (c *Counter) Total(now sim.Cycle) float64 {
	c.advance(now)
	return c.total
}

// Rate reports Total divided by the effective window length. Before a full
// window has elapsed the divisor is the elapsed time, so early rates are
// not biased low.
func (c *Counter) Rate(now sim.Cycle) float64 {
	c.advance(now)
	span := c.window
	if now < span {
		span = now
	}
	if span == 0 {
		return 0
	}
	return c.total / float64(span)
}

// Window reports the configured window length in cycles.
func (c *Counter) Window() sim.Cycle { return c.window }

// Series is a sampled time series of (cycle, value) points with running
// summary statistics.
type Series struct {
	Name   string
	Cycles []sim.Cycle
	Values []float64
}

// Append adds one sample.
func (s *Series) Append(at sim.Cycle, v float64) {
	s.Cycles = append(s.Cycles, at)
	s.Values = append(s.Values, v)
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Min returns the minimum value, or +Inf for an empty series.
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.Values {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the maximum value, or -Inf for an empty series.
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	return max
}

// Mean returns the arithmetic mean, or NaN for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank on a
// sorted copy. It returns NaN for an empty series.
func (s *Series) Quantile(q float64) float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), s.Values...)
	sort.Float64s(cp)
	idx := int(q*float64(len(cp)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// FractionBelow reports the fraction of samples strictly below threshold.
func (s *Series) FractionBelow(threshold float64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	n := 0
	for _, v := range s.Values {
		if v < threshold {
			n++
		}
	}
	return float64(n) / float64(len(s.Values))
}

// Summary aggregates one scalar metric across independent runs (e.g. the
// worst min-NPI across a seed fan-out): sample mean, Bessel-corrected
// standard deviation and the half-width of a normal-approximation 95%
// confidence interval.
type Summary struct {
	N         int
	Mean, Std float64
	CI95      float64
}

// Summarize computes the Summary of xs. With fewer than two samples the
// spread terms are zero.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	for _, x := range xs {
		s.Mean += x
	}
	s.Mean /= float64(s.N)
	if s.N < 2 {
		return s
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N-1))
	s.CI95 = 1.96 * s.Std / math.Sqrt(float64(s.N))
	return s
}

// LevelHistogram counts time spent at small discrete levels (priority
// levels 0..n-1 in the Fig. 7 experiment).
type LevelHistogram struct {
	counts []uint64
	total  uint64
}

// NewLevelHistogram returns a histogram over levels 0..n-1.
func NewLevelHistogram(n int) *LevelHistogram {
	return &LevelHistogram{counts: make([]uint64, n)}
}

// Add records weight units of time at level.
func (h *LevelHistogram) Add(level int, weight uint64) {
	if level < 0 || level >= len(h.counts) {
		panic(fmt.Sprintf("stats: level %d out of range 0..%d", level, len(h.counts)-1))
	}
	h.counts[level] += weight
	h.total += weight
}

// Fraction reports the share of total weight spent at level, or 0 if empty.
func (h *LevelHistogram) Fraction(level int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[level]) / float64(h.total)
}

// Levels reports the number of levels.
func (h *LevelHistogram) Levels() int { return len(h.counts) }

// Total reports the accumulated weight.
func (h *LevelHistogram) Total() uint64 { return h.total }

// WriteCSV writes the given series side by side: a cycle column taken from
// the first series followed by one value column per series. All series must
// have identical sampling points; WriteCSV returns an error otherwise.
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	n := series[0].Len()
	for _, s := range series[1:] {
		if s.Len() != n {
			return fmt.Errorf("stats: series %q has %d samples, want %d", s.Name, s.Len(), n)
		}
		for i, cyc := range s.Cycles {
			if cyc != series[0].Cycles[i] {
				return fmt.Errorf("stats: series %q sample %d is at cycle %d, but series %q has cycle %d there",
					s.Name, i, cyc, series[0].Name, series[0].Cycles[i])
			}
		}
	}
	if _, err := fmt.Fprint(w, "cycle"); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, ",%s", s.Name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(w, "%d", series[0].Cycles[i]); err != nil {
			return err
		}
		for _, s := range series {
			if _, err := fmt.Fprintf(w, ",%.6g", s.Values[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
