package memctrl

import (
	"fmt"
	"testing"

	"sara/internal/dram"
	"sara/internal/sim"
	"sara/internal/txn"
)

// issueRecord is one observable scheduling decision.
type issueRecord struct {
	id   uint64
	at   sim.Cycle
	kind byte
}

// driveRandom runs one controller under a seeded random enqueue stream
// for the given cycles, recording every issued command. With force set
// the controller re-derives candidates from scratch every cycle; without
// it the per-bank buckets and the dormancy window are live. Both must
// produce identical command streams.
func driveRandom(t *testing.T, policy PolicyKind, seed uint64, refresh, force bool, cycles sim.Cycle) []issueRecord {
	t.Helper()
	SetForceScan(force)
	defer SetForceScan(false)

	dcfg := dram.PaperConfig(1866)
	if refresh {
		dcfg.Refresh = dcfg.DefaultRefresh()
	}
	d := dram.New(dcfg)
	cfg := DefaultConfig(0)
	cfg.Policy = policy
	cfg.AgingT = 500 // low enough that aged passes actually happen
	c := New(cfg, d)

	var out []issueRecord
	SetDebugTrace(func(ch int, now sim.Cycle, id uint64, kind byte) {
		out = append(out, issueRecord{id, now, kind})
	})
	defer SetDebugTrace(nil)
	c.OnComplete = func(*txn.Transaction, sim.Cycle) {}

	rng := sim.NewRand(seed)
	id := uint64(0)
	for now := sim.Cycle(0); now < cycles; now++ {
		// A bursty, bank-colliding arrival pattern: some cycles enqueue
		// several transactions, many enqueue none, rows collide often so
		// conflicts, reservations and the open-page guard all trigger.
		if rng.Bool(0.25) {
			for n := rng.Intn(3); n >= 0; n-- {
				class := txn.Class(rng.Intn(txn.NumClasses))
				if !c.SpaceFor(class) {
					continue
				}
				id++
				loc := dram.Location{
					Channel: 0,
					Rank:    rng.Intn(2),
					Bank:    rng.Intn(4), // few banks: heavy collisions
					Row:     uint64(rng.Intn(3)),
				}
				kind := txn.Read
				if rng.Bool(0.3) {
					kind = txn.Write
				}
				tr := &txn.Transaction{
					ID:       id,
					Kind:     kind,
					Addr:     d.Mapper().Encode(loc),
					Size:     128,
					Class:    class,
					Priority: txn.Priority(rng.Intn(8)),
					Urgent:   rng.Bool(0.1),
				}
				c.Enqueue(tr, now)
			}
		}
		c.Tick(now)
	}
	return out
}

// TestBucketScanMatchesForceScan is the unit-level differential for the
// per-bank buckets: across every policy, with and without refresh, the
// incrementally maintained scan must issue the exact same command stream
// — same transactions, same cycles, same command kinds — as the
// per-cycle full rescan reference. Random bank collisions exercise every
// invalidation edge (reservation release, open-page guard, refresh
// drains, aging passes, dormancy-window resets).
func TestBucketScanMatchesForceScan(t *testing.T) {
	for _, policy := range AllPolicies() {
		for _, refresh := range []bool{false, true} {
			policy, refresh := policy, refresh
			t.Run(fmt.Sprintf("%v/refresh=%v", policy, refresh), func(t *testing.T) {
				for seed := uint64(1); seed <= 5; seed++ {
					ref := driveRandom(t, policy, seed, refresh, true, 30000)
					fast := driveRandom(t, policy, seed, refresh, false, 30000)
					if len(ref) == 0 {
						t.Fatalf("seed %d: reference issued nothing", seed)
					}
					if len(ref) != len(fast) {
						t.Fatalf("seed %d: issue counts differ: full %d, bucket %d",
							seed, len(ref), len(fast))
					}
					for i := range ref {
						if ref[i] != fast[i] {
							t.Fatalf("seed %d: issue %d differs: full %+v, bucket %+v",
								seed, i, ref[i], fast[i])
						}
					}
				}
			})
		}
	}
}

// TestBucketMembershipTracksQueues pins the dual index: after a run with
// arrivals and completions, the bucket population must equal the class
// queue population entry for entry.
func TestBucketMembershipTracksQueues(t *testing.T) {
	c, d := newTestController(QoS)
	rng := sim.NewRand(7)
	id := uint64(0)
	for now := sim.Cycle(0); now < 5000; now++ {
		if rng.Bool(0.3) && c.SpaceFor(txn.ClassGPU) {
			id++
			loc := dram.Location{Channel: 0, Rank: rng.Intn(2), Bank: rng.Intn(4), Row: uint64(rng.Intn(3))}
			c.Enqueue(&txn.Transaction{ID: id, Kind: txn.Read, Addr: d.Mapper().Encode(loc),
				Size: 128, Class: txn.ClassGPU}, now)
		}
		c.Tick(now)
	}
	inQueues := make(map[uint64]bool)
	for qi := range c.queues {
		for i := range c.queues[qi].entries {
			inQueues[c.queues[qi].entries[i].t.ID] = true
		}
	}
	nBuckets := 0
	for k := range c.buckets {
		for i := range c.buckets[k].entries {
			e := &c.buckets[k].entries[i]
			if c.bankKey(e.loc) != k {
				t.Fatalf("txn %d filed under bank %d, located at %+v", e.t.ID, k, e.loc)
			}
			if !inQueues[e.t.ID] {
				t.Fatalf("txn %d in a bucket but not in any class queue", e.t.ID)
			}
			nBuckets++
		}
	}
	if nBuckets != len(inQueues) {
		t.Fatalf("bucket population %d, queue population %d", nBuckets, len(inQueues))
	}
	if c.Pending() != nBuckets {
		t.Fatalf("Pending() %d, bucket population %d", c.Pending(), nBuckets)
	}
}
