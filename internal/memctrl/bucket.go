package memctrl

import (
	"fmt"

	"sara/internal/dram"
	"sara/internal/sim"
)

// Per-bank candidate buckets: incremental maintenance of the queue scan.
//
// The controller's scheduling scan used to re-probe every queued
// transaction against the timing snapshot on every eligible cycle. Under
// the saturated loaded phase that full rescan dominated simulation time,
// and it grows with queue depth rather than with actual activity. The
// buckets below replace it: every queued entry is indexed by its bank
// (bankKey = rank*banks+bank), and each bucket carries a cached lower
// bound on the earliest cycle any of its entries could issue. A scan then
// touches only banks whose readiness could have changed since the last
// event — clean buckets parked in the future contribute their cached
// cycle to the dormancy window (nextTry, and through it the controller's
// sim.Idler hint) without probing a single entry.
//
// # Invalidation contract
//
// bucket.readyAt must remain a LOWER bound on the true earliest-issuable
// cycle of every entry in the bucket for as long as the bucket is clean.
// Probing too early is always safe (the scan re-probes and goes back to
// sleep); probing too late would miss a command and break skip-vs-step
// equivalence. The bound stays sound because every input of probeScan is
// either monotone — DRAM timing gates (bank CAS/PRE/ACT, rank tRRD/tFAW,
// channel CAS and bus gates) only ever move later as commands issue — or
// bank-local and patched at the exact event that could advance an entry:
//
//   - command issue on a bank (CAS, PRE, ACT — transaction or refresh
//     drain): the bank's row state, reservation, timing gates and queued
//     row-hit picture all changed; issue() and issueRefreshPre call
//     bankChanged, which marks the bucket dirty and rebuilds its cached
//     row-hit priority against the freshly patched dram.ScanState.
//   - CAS release: the served entry leaves its bucket (bucketRemove in
//     issueCAS) before bankChanged rebuilds the hit cache, so the
//     open-page guard (allowPrecharge) unblocks followers the same cycle.
//   - REF issue: the rank's forced-drain gate (ScanState.RefBlocked)
//     clears and every activate gate of the rank moved; issueRefresh
//     calls dirtyRank. The opposite transitions (a drain starting, gates
//     moving later) only delay entries and need no invalidation.
//   - enqueue: the new entry may be issuable immediately; Enqueue pushes
//     it into its bucket, marks the bucket dirty and raises the cached
//     row-hit priority if the entry hits the open row. (nextTry is also
//     reset to zero, as before, so the next Tick scans.)
//
// Entry attributes the probe reads (Priority, Urgent, Enqueue, ID,
// decoded Location) are stamped at injection and immutable while queued,
// so no adapter activity can invalidate a parked bucket.
//
// Aging is the one non-bank-local input: once any class-queue head
// crosses the starvation limit the "serve only over-age work" rule makes
// the candidate set a function of age, not of banks, so the controller
// falls back to the full legacy rescan for those (rare) cycles. The full
// scan leaves the cached bounds untouched; they remain sound because
// aged-pass issues dirty their banks like any other issue.
//
// SetForceScan keeps the contract honest: with it enabled the controller
// re-derives candidates from scratch every tick — no nextTry dormancy, no
// bucket caches, full bankHit recompute — giving the differential fuzz
// harness a stepped reference that any stale bound diverges from.

// bucket indexes the queued entries of one bank.
type bucket struct {
	entries []entry
	// readyAt is the cached lower bound on the earliest cycle any entry in
	// this bucket could issue; neverTry when the bucket is empty or every
	// entry is blocked on a queue-shape change rather than a timing gate.
	readyAt sim.Cycle
	// dirty forces a re-probe on the next scan regardless of readyAt.
	dirty bool
}

// entryHit is THE queued row-hit-priority rule: the entry's priority
// offset by one when a CAS would hit the bank's open row (so zero means
// "no hit"). The incremental maintainers (bucketPush, bankChanged) and
// the full recompute (refreshBankHits) all evaluate this one function —
// the incremental and reference bankHit values must stay bit-identical
// for skip-vs-step equivalence, so the rule must not fork.
func entryHit(bs *dram.BankScan, e *entry) uint16 {
	if !bs.Open || bs.Row != e.loc.Row {
		return 0
	}
	return uint16(e.t.Priority) + 1
}

// bucketPush adds e to its bank's bucket and marks it for re-probing.
// When the entry hits the bank's open row it also raises the cached
// row-hit priority (it can only raise it: lowering happens exclusively
// through bankChanged after an issue on the bank).
func (c *Controller) bucketPush(e entry) {
	key := c.bankKey(e.loc)
	b := &c.buckets[key]
	b.entries = append(b.entries, e) //sara:alloc-ok bucket capacity amortizes to steady state (0 allocs/op bench gate)
	b.dirty = true
	if c.rowAware {
		if p := entryHit(&c.scan.Banks[key], &e); p > c.bankHit[key] {
			c.bankHit[key] = p
		}
	}
}

// bucketRemove deletes the entry holding transaction id from bank key.
func (c *Controller) bucketRemove(key int, id uint64) {
	es := c.buckets[key].entries
	for i := range es {
		if es[i].t.ID == id {
			copy(es[i:], es[i+1:])
			es[len(es)-1] = entry{}
			c.buckets[key].entries = es[:len(es)-1]
			return
		}
	}
	panic(fmt.Sprintf("memctrl: bucket remove of unknown txn %d", id))
}

// bankChanged records that a command was issued to bank key: the bucket
// must be re-probed, and for row-aware policies the cached best queued
// row-hit priority is rebuilt against the just-patched scan snapshot.
func (c *Controller) bankChanged(key int) {
	b := &c.buckets[key]
	b.dirty = true
	if !c.rowAware {
		return
	}
	hit := uint16(0)
	bs := &c.scan.Banks[key]
	for i := range b.entries {
		if p := entryHit(bs, &b.entries[i]); p > hit {
			hit = p
		}
	}
	c.bankHit[key] = hit
}

// dirtyRank marks every bucket of rank r for re-probing (a REF cleared
// the rank's forced-drain gate and moved its activate gates).
func (c *Controller) dirtyRank(r int) {
	for b := r * c.nBanks; b < (r+1)*c.nBanks; b++ {
		c.buckets[b].dirty = true
	}
}

// forceScan, when set, disables the controller's dormancy window and all
// bucket caches: every Tick re-derives the candidate set, the row-hit
// table and the refresh mask from scratch. The differential fuzz harness
// runs the cycle-stepped reference in this mode, so a stale bucket bound
// or missed invalidation diverges the command trace instead of hiding.
var forceScan bool

// SetForceScan forces the per-cycle full-rescan reference (tests only;
// not for concurrent use).
func SetForceScan(on bool) { forceScan = on }
