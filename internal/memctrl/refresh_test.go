package memctrl

import (
	"sort"
	"testing"

	"sara/internal/dram"
	"sara/internal/sim"
	"sara/internal/txn"
)

func newRefreshController(policy PolicyKind) (*Controller, *dram.DRAM) {
	cfg := dram.PaperConfig(1866)
	cfg.Refresh = cfg.DefaultRefresh()
	d := dram.New(cfg)
	mc := DefaultConfig(0)
	mc.Policy = policy
	return New(mc, d), d
}

// TestRefreshGoldenIdleSchedule pins the hand-computed REF schedule of an
// idle channel. Pull-in waits until a rank has been idle a full tRFC, so
// the first REF lands at tRFC; from there the controller banks the
// window's credit — one REF per rank every tRFC, ranks staggered by the
// one-command-per-cycle rule — then settles into exactly one REF per rank
// per tREFI at the rank's own staggered boundary:
//
//	rank 0: tRFC, 2*tRFC, ... 8*tRFC, then tREFI, 2*tREFI, ...
//	rank 1: one cycle behind through the pull-in, then its boundaries
//	        offset by tREFI/4 (rank index 1 of 4 device-wide).
func TestRefreshGoldenIdleSchedule(t *testing.T) {
	c, d := newRefreshController(QoS)
	ref := d.Config().Refresh

	var got []sim.Cycle
	SetDebugTrace(func(ch int, now sim.Cycle, id uint64, kind byte) {
		if kind != 'R' {
			t.Fatalf("idle controller issued non-REF command %c at %d", kind, now)
		}
		if id != 0 {
			t.Fatalf("REF carried transaction id %d, want 0", id)
		}
		got = append(got, now)
	})
	defer SetDebugTrace(nil)

	horizon := 3*ref.TREFI + 10
	for now := sim.Cycle(0); now < horizon; now++ {
		c.Tick(now)
	}

	var want []sim.Cycle
	for k := sim.Cycle(1); k <= sim.Cycle(ref.Window); k++ {
		want = append(want, k*ref.TRFC, k*ref.TRFC+1)
	}
	geo := d.Config().Geometry
	total := sim.Cycle(geo.Channels * geo.Ranks)
	var bounds []sim.Cycle
	for r := sim.Cycle(0); r < sim.Cycle(geo.Ranks); r++ {
		offset := r * ref.TREFI / total
		for m := sim.Cycle(1); m*ref.TREFI+offset < horizon; m++ {
			bounds = append(bounds, m*ref.TREFI+offset)
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	want = append(want, bounds...)
	if len(got) != len(want) {
		t.Fatalf("REF count %d, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("REF %d at cycle %d, want %d\ngot:  %v\nwant: %v", i, got[i], want[i], got, want)
		}
	}
	st := c.Stats()
	if st.Refreshes != uint64(len(want)) || st.ForcedRefreshes != 0 {
		t.Fatalf("stats %+v: want %d refreshes, none forced", st, len(want))
	}
}

// TestRefreshForcedUnderLoad keeps one rank saturated with row-hit
// traffic so opportunistic refresh never fires there, and asserts the
// postponement contract: owed never exceeds the window, the forced drain
// precharges the open row and issues REF, and service resumes afterwards.
func TestRefreshForcedUnderLoad(t *testing.T) {
	c, d := newRefreshController(FCFS)
	ref := d.Config().Refresh

	var refs, pres []sim.Cycle
	SetDebugTrace(func(ch int, now sim.Cycle, id uint64, kind byte) {
		if id != 0 {
			return
		}
		switch kind {
		case 'R':
			refs = append(refs, now)
		case 'P':
			pres = append(pres, now)
		}
	})
	defer SetDebugTrace(nil)

	served := 0
	c.OnComplete = func(tr *txn.Transaction, at sim.Cycle) { served++ }
	id := uint64(0)
	horizon := sim.Cycle(ref.Window)*ref.TREFI + 4000
	lastServe := sim.Cycle(0)
	for now := sim.Cycle(0); now < horizon; now++ {
		// Row-hitting reads to rank 0, bank 0 keep its pending count high.
		if c.SpaceFor(txn.ClassCPU) {
			id++
			tr := mkTxn(d, id, txn.Read, txn.ClassCPU, 0, 0, 1)
			c.Enqueue(tr, now)
		}
		before := served
		c.Tick(now)
		if served > before {
			lastServe = now
		}
		if owed := d.RefreshOwed(0, 0, now); owed > ref.Window {
			t.Fatalf("cycle %d: owed %d exceeds the %d-deep postponement window", now, owed, ref.Window)
		}
	}

	// Rank 1 is idle: it refreshes opportunistically from cycle 0. Rank 0
	// must have been forced at the window's edge, draining via PRE first.
	st := c.Stats()
	if st.ForcedRefreshes == 0 {
		t.Fatalf("stats %+v: saturated rank never forced a refresh", st)
	}
	if st.RefreshPrecharges == 0 {
		t.Fatalf("stats %+v: forced refresh never drained the open row", st)
	}
	forcedAt := sim.Cycle(ref.Window) * ref.TREFI
	found := false
	for _, at := range refs {
		if at >= forcedAt && at < forcedAt+2000 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no REF near the forced deadline %d; refs=%v", forcedAt, refs)
	}
	if lastServe < forcedAt {
		t.Fatalf("service stopped at %d, before the forced refresh at %d", lastServe, forcedAt)
	}
	if served == 0 {
		t.Fatal("no transactions served under load")
	}
}

// TestRefreshNextActivity pins the sim.Idler contract extension: an empty
// controller with refresh enabled still reports a wake (the refresh
// cadence), where the refresh-free controller reports none.
func TestRefreshNextActivity(t *testing.T) {
	c, d := newRefreshController(QoS)
	if at, ok := c.NextActivity(0); !ok || at != 0 {
		t.Fatalf("fresh refresh-on controller NextActivity = (%d, %v), want (0, true)", at, ok)
	}
	// Bank the full pull-in credit, then the controller sleeps until the
	// next tREFI boundary.
	ref := d.Config().Refresh
	var now sim.Cycle
	for d.RefreshOwed(0, 0, now) > -ref.Window || d.RefreshOwed(0, 1, now) > -ref.Window {
		c.Tick(now)
		now++
		if now > 100*ref.TRFC {
			t.Fatal("pull-in never completed")
		}
	}
	c.Tick(now) // recompute refNextAction with the credit banked
	at, ok := c.NextActivity(now + 1)
	if !ok {
		t.Fatal("refresh-on controller reported no wake")
	}
	if at != ref.TREFI {
		t.Fatalf("dormant wake at %d, want the tREFI boundary %d", at, ref.TREFI)
	}

	off, _ := newTestController(QoS)
	if _, ok := off.NextActivity(0); ok {
		t.Fatal("refresh-free empty controller reported a wake")
	}
}
