// Package memctrl implements the QoS-aware memory controller: five class
// transaction queues per channel (Table 1: 42 entries total), a
// command-level scheduler with per-bank reservations, starvation aging
// (Section 3.3, T = 10000 cycles) and the six arbitration policies the
// paper evaluates — FCFS, round-robin, FR-FCFS, the frame-rate-based QoS
// baseline, the priority-based QoS policy (Policy 1) and the priority-based
// row-buffer optimizing policy (Policy 2, threshold delta).
package memctrl

import (
	"fmt"

	"sara/internal/dram"
	"sara/internal/txn"
)

// entry is a queued transaction plus its decoded DRAM coordinate.
type entry struct {
	t   *txn.Transaction
	loc dram.Location
}

// classQueue is one of the five transaction queues.
type classQueue struct {
	class   txn.Class
	cap     int
	entries []entry
}

func (q *classQueue) full() bool { return len(q.entries) >= q.cap }

func (q *classQueue) push(e entry) {
	if q.full() {
		panic(fmt.Sprintf("memctrl: queue %s overflow", q.class))
	}
	q.entries = append(q.entries, e) //sara:alloc-ok queue backing array amortizes to its configured depth
}

// remove deletes the entry holding transaction id, preserving order.
func (q *classQueue) remove(id uint64) {
	for i := range q.entries {
		if q.entries[i].t.ID == id {
			copy(q.entries[i:], q.entries[i+1:])
			q.entries[len(q.entries)-1] = entry{}
			q.entries = q.entries[:len(q.entries)-1]
			return
		}
	}
	panic(fmt.Sprintf("memctrl: remove of unknown txn %d", id))
}

// QueueCaps is the per-class capacity split. The paper's controller has 42
// entries across 5 queues; DefaultQueueCaps apportions them.
type QueueCaps [txn.NumClasses]int

// DefaultQueueCaps returns the split used in the evaluation: CPU 8, GPU 8,
// DSP 6, media 12, system 8 (total 42).
func DefaultQueueCaps() QueueCaps {
	return QueueCaps{8, 8, 6, 12, 8}
}

// Total reports the summed capacity.
func (c QueueCaps) Total() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}
