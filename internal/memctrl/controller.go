package memctrl

import (
	"fmt"

	"sara/internal/dram"
	"sara/internal/sim"
	"sara/internal/txn"
)

// Config parameterizes one per-channel controller.
type Config struct {
	// Channel is the DRAM channel this controller owns.
	Channel int
	// Policy selects the arbitration policy.
	Policy PolicyKind
	// Delta is Policy 2's row-buffer threshold (paper: 6).
	Delta txn.Priority
	// AgingT is the starvation limit: any transaction that has waited at
	// least this many cycles is served before policy order applies
	// (paper: 10000). Zero disables aging.
	AgingT sim.Cycle
	// QueueCaps splits the controller's entries across the five class
	// queues.
	QueueCaps QueueCaps
}

// DefaultConfig returns the paper's controller settings for a channel.
func DefaultConfig(channel int) Config {
	return Config{
		Channel:   channel,
		Policy:    QoS,
		Delta:     6,
		AgingT:    10000,
		QueueCaps: DefaultQueueCaps(),
	}
}

// Stats holds the controller's activity counters.
type Stats struct {
	Served       uint64 // transactions completed (CAS issued)
	ServedReads  uint64
	ServedWrites uint64
	// Row-locality classification of served transactions: a hit issued its
	// CAS against an already-open matching row; a miss had to activate a
	// closed bank; a conflict had to precharge another row first.
	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64
	// AgedServes counts transactions served through the aging override.
	AgedServes uint64
	// PerClass counts served transactions per queue class.
	PerClass [txn.NumClasses]uint64
	// Enqueued counts admissions.
	Enqueued uint64
	// Refreshes counts REF commands issued; ForcedRefreshes those issued
	// with the postponement window exhausted; RefreshPrecharges the PREs
	// issued to drain open rows ahead of a forced REF.
	Refreshes         uint64
	ForcedRefreshes   uint64
	RefreshPrecharges uint64
}

// Controller is one channel's transaction scheduler. It is driven by the
// SoC assembly: Enqueue from the NoC side, Tick once per cycle to issue at
// most one DRAM command.
type Controller struct {
	cfg    Config
	dram   *dram.DRAM
	mapper *dram.AddressMapper
	queues [txn.NumClasses]classQueue
	rrPtr  txn.Class // class whose turn is next on priority ties / RR

	// OnComplete is invoked when a transaction's DRAM phase finishes:
	// for reads, the cycle the last data beat leaves the device; for
	// writes, the cycle the write data has been absorbed. The SoC layer
	// adds the response-network latency before notifying the DMA.
	OnComplete func(t *txn.Transaction, done sim.Cycle)

	// OnRelease is invoked when a CAS frees a slot in a class queue that
	// was full — the controller-side credit return. The SoC layer wires
	// it to wake the NoC router feeding this controller, whose
	// event-driven arbiter sleeps while its heads are blocked on a full
	// queue instead of polling SpaceFor every cycle. Pops of non-full
	// queues return no credit: the upstream arbiter was not blocked on
	// this queue, so its dormancy window already covers the slot.
	OnRelease func(class txn.Class, now sim.Cycle)

	stats Stats

	// scratch is reused every cycle to collect issuable candidates.
	scratch []candidate
	// aged marks that scratch currently holds only over-age candidates.
	agedPass bool
	// bankHit caches, per (rank, bank), the highest priority among queued
	// transactions that hit the currently open row, offset by one so zero
	// means "no queued hit". Row-aware policies use it to avoid
	// precharging a row that still has useful hits queued. A flat array
	// indexed by rank*banks+bank keeps the per-cycle refresh free of map
	// traffic. It is maintained incrementally (bucketPush/bankChanged)
	// and recomputed from scratch only on full-rescan passes.
	bankHit []uint16
	// rowAware marks policies that consult bankHit, gating its upkeep.
	rowAware bool

	// buckets index the queued entries by bank; see bucket.go for the
	// incremental-maintenance and invalidation contract.
	buckets []bucket

	// npending caches the total queued-transaction count across the five
	// class queues; Pending is on the controller's activity-hint path,
	// which the kernel's wake-heap validation queries per probe.
	npending int

	// nextTry is the next cycle a queue scan can possibly yield a
	// command. After a scan finds nothing issuable, the blockers are pure
	// DRAM timing (plus aging thresholds), both of which are exactly
	// predictable, and nothing outside this controller mutates its
	// channel's state — so Tick sleeps until nextTry or the next Enqueue
	// instead of re-scanning every cycle. neverTry means no queued
	// transaction can ever issue without a queue change.
	nextTry sim.Cycle

	// scan is the per-scan snapshot of the channel's DRAM timing state;
	// entries are evaluated against it with plain arithmetic instead of
	// per-entry device probes.
	scan dram.ScanState

	// nBanks caches the geometry for bankKey (fetching the full device
	// config per lookup is measurable on the scan path).
	nBanks int

	// Refresh machinery (one branch of cost when the device models no
	// refresh). refCfg caches the device's refresh parameters; rankPending
	// counts queued transactions per rank so opportunistic refresh can
	// tell an idle rank from a momentarily blocked one, and rankIdleFrom
	// records when each rank's pending count last dropped to zero — a
	// pull-in REF waits until the rank has been idle for a full tRFC, so
	// a window-limited source whose queue merely blinks empty between
	// requests does not eat a blackout at the worst moment. refNextAction
	// is the next cycle the refresh state machine could issue a command or
	// change the forced-rank mask — the refresh analogue of nextTry, and
	// the wake NextActivity reports so skipped stretches cannot slide past
	// a due refresh.
	refreshOn     bool
	refCfg        dram.RefreshConfig
	nRanks        int
	rankPending   []int
	rankIdleFrom  []sim.Cycle
	refNextAction sim.Cycle

	// wake is the controller's kernel wake handle. The only external
	// event that can move this controller's next action earlier is an
	// Enqueue from the NoC side (everything else — DRAM timing gates,
	// refresh cadence — is this controller's own state machine), so
	// Enqueue is the one place that pushes a re-arm into the kernel's
	// wake heap; self-inflicted later wakes are reconciled lazily.
	wake sim.WakeHandle
}

// neverTry marks a dormant controller whose queue contents must change
// before any command can issue.
const neverTry = ^sim.Cycle(0)

const (
	neededNothing uint8 = iota
	neededAct
	neededPre
)

// New builds a controller for the given channel of d.
func New(cfg Config, d *dram.DRAM) *Controller {
	if cfg.Channel < 0 || cfg.Channel >= d.Config().Geometry.Channels {
		panic(fmt.Sprintf("memctrl: channel %d out of range", cfg.Channel))
	}
	geo := d.Config().Geometry
	c := &Controller{
		cfg:       cfg,
		dram:      d,
		mapper:    d.Mapper(),
		bankHit:   make([]uint16, geo.Ranks*geo.Banks),
		rowAware:  cfg.Policy == FRFCFS || cfg.Policy == QoSRB,
		buckets:   make([]bucket, geo.Ranks*geo.Banks),
		nBanks:    geo.Banks,
		nRanks:    geo.Ranks,
		refreshOn: d.RefreshEnabled(),
		refCfg:    d.Config().Refresh,
	}
	if c.refreshOn {
		c.rankPending = make([]int, geo.Ranks)
		c.rankIdleFrom = make([]sim.Cycle, geo.Ranks)
	}
	for i := range c.queues {
		c.queues[i] = classQueue{class: txn.Class(i), cap: cfg.QueueCaps[i]}
	}
	d.InitScan(&c.scan)
	// The snapshot is filled once and patched after every issued command;
	// nothing else mutates this channel's timing state.
	d.FillScan(cfg.Channel, &c.scan)
	return c
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// SpaceFor reports whether the class queue can admit one more transaction.
// The NoC uses it as the credit check before forwarding.
func (c *Controller) SpaceFor(class txn.Class) bool {
	return !c.queues[class].full()
}

// Occupancy reports the number of queued transactions in class.
func (c *Controller) Occupancy(class txn.Class) int {
	return len(c.queues[class].entries)
}

// Enqueue admits t at cycle now. The caller must have checked SpaceFor.
//
//sara:hotpath
func (c *Controller) Enqueue(t *txn.Transaction, now sim.Cycle) {
	loc := c.mapper.Decode(t.Addr)
	if loc.Channel != c.cfg.Channel {
		panic(fmt.Sprintf("memctrl: txn %d routed to channel %d, controller owns %d",
			t.ID, loc.Channel, c.cfg.Channel))
	}
	t.Enqueue = now
	t.RowPath = neededNothing
	wasEmpty := c.npending == 0
	e := entry{t: t, loc: loc}
	c.queues[t.Class].push(e)
	c.npending++
	c.bucketPush(e)
	c.stats.Enqueued++
	if c.refreshOn {
		c.rankPending[loc.Rank]++
	}
	// A new transaction invalidates the dormancy window: it may be
	// issuable immediately, and it changes the row-hit picture. The
	// kernel wake is re-armed alongside (the upstream router ticks
	// before this controller, so the entry is schedulable this cycle) —
	// but only when the controller was parked in the future, or was
	// empty (an empty controller's hint ignores nextTry entirely, so its
	// kernel bound may be parked at never regardless of nextTry); a
	// nonempty controller already due now has a bound at or below now.
	if wasEmpty || c.nextTry > now {
		c.wake.Rearm(now)
	}
	c.nextTry = 0
}

// BindWake implements sim.WakeBinder: the kernel hands the controller its
// wake handle at registration, for the Enqueue re-arm.
func (c *Controller) BindWake(h sim.WakeHandle) { c.wake = h }

// Pending reports the total number of queued transactions.
func (c *Controller) Pending() int { return c.npending }

// rrDist measures how far class is from the round-robin pointer; the class
// whose turn is next has distance 0.
func (c *Controller) rrDist(class txn.Class) int {
	return (int(class) - int(c.rrPtr) + txn.NumClasses) % txn.NumClasses
}

// NextActivity implements sim.Idler: an empty controller never wakes the
// kernel, and a controller whose queued transactions are all blocked on
// DRAM timing wakes exactly when the first timing gate opens. With
// refresh modeled the controller additionally wakes for the refresh state
// machine — REF issue, forced-drain precharges and tREFI boundary
// crossings — so a skipped stretch can never slide past a due refresh or
// mis-time a tRFC blackout.
//
//sara:hotpath
func (c *Controller) NextActivity(now sim.Cycle) (sim.Cycle, bool) {
	var queueAt sim.Cycle
	queueOK := false
	if c.npending > 0 && c.nextTry != neverTry {
		// nextTry == neverTry: every queued transaction is blocked on a
		// queue-shape change (e.g. the open-page guard); only an Enqueue
		// can unblock it.
		queueAt = c.nextTry
		if queueAt < now {
			queueAt = now
		}
		queueOK = true
	}
	if !c.refreshOn {
		if !queueOK {
			return 0, false
		}
		return queueAt, true
	}
	refAt := c.refNextAction
	if refAt < now {
		refAt = now
	}
	if !queueOK || refAt < queueAt {
		return refAt, true
	}
	return queueAt, true
}

// Tick issues at most one DRAM command for this channel.
//
//sara:hotpath
func (c *Controller) Tick(now sim.Cycle) {
	if c.refreshOn && (now >= c.refNextAction || forceScan) {
		if c.tickRefresh(now) {
			return // the refresh machine consumed this cycle's command slot
		}
	}
	if now < c.nextTry && !forceScan {
		return
	}
	c.collectCandidates(now)
	if len(c.scratch) == 0 {
		return // collectCandidates computed the dormancy window
	}
	c.nextTry = now + 1
	best := c.scratch[0]
	for _, cand := range c.scratch[1:] {
		if c.agedPass {
			if olderFirst(cand, best) {
				best = cand
			}
		} else if c.cfg.Policy.better(cand, best, c.rrDist, c.cfg.Delta) { //sara:alloc-ok method value does not escape; stack-allocated (0 allocs/op bench gate)
			best = cand
		}
	}
	c.issue(best, now)
	if c.refreshOn {
		// The issued command changed bank or queue state the refresh
		// machine keys on (open rows, pending counts); re-evaluate next
		// cycle rather than trusting a stale wake time.
		c.refNextAction = now + 1
	}
}

// tickRefresh runs the per-rank refresh state machine and issues at most
// one command: a REF, or a PRE draining an open row of a rank whose
// postponement window is exhausted. Forced work goes first; then ranks
// with no queued transactions refresh opportunistically, pulling in up to
// the window's depth ahead of schedule so bursts land on fully credited
// ranks. It returns true when it consumed this cycle's command slot; when
// it issues nothing it refreshes the forced-rank mask the queue scan
// honors and recomputes refNextAction, the earliest cycle it could act.
func (c *Controller) tickRefresh(now sim.Cycle) bool {
	ch := c.cfg.Channel
	for r := 0; r < c.nRanks; r++ {
		if !c.dram.RefreshForced(ch, r, now) {
			continue
		}
		if c.dram.CanRefresh(ch, r, now) {
			c.issueRefresh(r, now, true)
			return true
		}
		if b, ok := c.drainBank(r, now); ok {
			c.issueRefreshPre(r, b, now)
			return true
		}
	}
	for r := 0; r < c.nRanks; r++ {
		if c.rankPending[r] != 0 || now < c.rankIdleFrom[r]+c.refCfg.TRFC {
			continue // not idle, or not yet idle for a blackout's length
		}
		if c.dram.CanRefresh(ch, r, now) {
			c.issueRefresh(r, now, false)
			return true
		}
	}
	for r := 0; r < c.nRanks; r++ {
		c.scan.RefBlocked[r] = c.dram.RefreshForced(ch, r, now)
	}
	c.refNextAction = c.nextRefreshAction(now)
	return false
}

// drainBank picks the lowest-indexed open bank of rank r that is past its
// precharge gate, for the forced-refresh drain.
func (c *Controller) drainBank(r int, now sim.Cycle) (int, bool) {
	for b := 0; b < c.nBanks; b++ {
		bs := &c.scan.Banks[r*c.nBanks+b]
		if bs.Open && now >= bs.NextPre {
			return b, true
		}
	}
	return 0, false
}

// earliestPre reports the earliest precharge gate among rank r's open
// banks (neverTry if none is open).
func (c *Controller) earliestPre(r int) sim.Cycle {
	at := neverTry
	for b := 0; b < c.nBanks; b++ {
		bs := &c.scan.Banks[r*c.nBanks+b]
		if bs.Open && bs.NextPre < at {
			at = bs.NextPre
		}
	}
	return at
}

// issueRefresh performs a REF to rank r and wakes both schedulers next
// cycle: the REF moved every activate gate of the rank and may have
// cleared the forced mask over queued work.
func (c *Controller) issueRefresh(r int, now sim.Cycle, forced bool) {
	if debugTrace != nil {
		debugTrace(c.cfg.Channel, now, 0, 'R')
	}
	c.dram.Refresh(c.cfg.Channel, r, now)
	c.dram.RefreshScanRank(c.cfg.Channel, r, &c.scan)
	c.scan.RefBlocked[r] = false
	c.dirtyRank(r)
	c.stats.Refreshes++
	if forced {
		c.stats.ForcedRefreshes++
	}
	c.refNextAction = now + 1
	if c.nextTry > now+1 {
		c.nextTry = now + 1
	}
}

// issueRefreshPre precharges bank b of rank r on behalf of a forced
// refresh, overriding any transaction's bank reservation (the reserving
// transaction re-activates once the blackout passes).
func (c *Controller) issueRefreshPre(r, b int, now sim.Cycle) {
	if debugTrace != nil {
		debugTrace(c.cfg.Channel, now, 0, 'P')
	}
	loc := dram.Location{Channel: c.cfg.Channel, Rank: r, Bank: b}
	c.dram.Precharge(loc, now)
	c.dram.RefreshScanBank(c.cfg.Channel, loc, &c.scan)
	c.bankChanged(c.bankKey(loc))
	c.stats.RefreshPrecharges++
	c.refNextAction = now + 1
	if c.nextTry > now+1 {
		c.nextTry = now + 1
	}
}

// nextRefreshAction reports the earliest cycle the refresh machine could
// issue a command or change the forced-rank mask. Reporting early is
// always safe — the tick re-evaluates and goes back to sleep — but
// reporting late would let idle skipping slide past a due refresh, so
// every branch is a provable lower bound: forced drains wake on the exact
// DRAM gate, idle ranks on their REF-ready cycle, and everything else on
// the next tREFI boundary (the only cycle owed counts change).
func (c *Controller) nextRefreshAction(now sim.Cycle) sim.Cycle {
	ch := c.cfg.Channel
	best := neverTry
	for r := 0; r < c.nRanks; r++ {
		var at sim.Cycle
		owed := c.dram.RefreshOwed(ch, r, now)
		switch {
		case owed >= c.refCfg.Window:
			readyAt, closed := c.dram.RefreshReadyAt(ch, r)
			if closed {
				at = readyAt
			} else {
				at = c.earliestPre(r)
			}
		case c.rankPending[r] == 0 && owed > -c.refCfg.Window:
			readyAt, closed := c.dram.RefreshReadyAt(ch, r)
			if closed {
				at = readyAt
				if idleAt := c.rankIdleFrom[r] + c.refCfg.TRFC; idleAt > at {
					at = idleAt
				}
			} else {
				// An idle rank holding an open row refreshes only once
				// forced; re-check at the next boundary.
				at = c.dram.NextRefreshBoundary(ch, r, now)
			}
		default:
			at = c.dram.NextRefreshBoundary(ch, r, now)
		}
		if at < now+1 {
			at = now + 1 // this tick already declined to act
		}
		if at < best {
			best = at
		}
	}
	return best
}

// collectCandidates fills c.scratch with every queued transaction that can
// issue a DRAM command at cycle now, honoring bank reservations. When any
// transaction is over the aging limit, only over-age transactions are
// candidates (the "clear the backlog" rule of Section 3.3).
//
// When the scan comes up empty, the same pass has already gathered the
// next cycle anything could change — the minimum over per-bank cached
// bounds (or per-entry timing gates on a full rescan) and upcoming
// aging-threshold crossings — and parks the controller there via nextTry.
// The bounds are sound lower bounds: nothing outside this controller
// mutates its channel's DRAM state, and Enqueue resets the window.
//
// The common case walks the per-bank buckets (collectBuckets), probing
// only banks whose readiness could have changed since the last event.
// Aged cycles — and every cycle under SetForceScan — take the full
// legacy rescan (collectFull), which re-derives everything from scratch.
func (c *Controller) collectCandidates(now sim.Cycle) {
	// Queues are FIFO and Enqueue stamps are monotone, so each class head
	// is its queue's oldest entry: five compares decide whether any aging
	// work exists at all.
	hasAged := false
	if c.cfg.AgingT > 0 {
		for qi := range c.queues {
			if es := c.queues[qi].entries; len(es) > 0 && now >= es[0].t.Enqueue+c.cfg.AgingT {
				hasAged = true
				break
			}
		}
	}
	if hasAged || forceScan {
		c.collectFull(now, hasAged)
		return
	}
	c.collectBuckets(now)
}

// collectBuckets is the incremental scan: clean buckets parked in the
// future contribute their cached bound without any per-entry work; dirty
// or due buckets are re-probed and their bound refreshed. It is only
// valid while no queued transaction is over the aging limit (the caller
// checks), because aging changes the candidate rule globally.
func (c *Controller) collectBuckets(now sim.Cycle) {
	c.scratch = c.scratch[:0]
	c.agedPass = false
	tryAt := neverTry
	for k := range c.buckets {
		b := &c.buckets[k]
		if len(b.entries) == 0 {
			continue
		}
		if !b.dirty && b.readyAt > now {
			if b.readyAt < tryAt {
				tryAt = b.readyAt
			}
			continue
		}
		b.dirty = false
		at := neverTry
		for i := range b.entries {
			e := &b.entries[i]
			ok, rowHit, eAt, eOK := c.probeScan(e, c.allowPrecharge(e), now)
			if ok {
				c.scratch = append(c.scratch, candidate{e: *e, rowHit: rowHit}) //sara:alloc-ok scratch is reused across scans; capacity amortizes to queue depth
			}
			if eOK && eAt < at {
				at = eAt
			}
		}
		b.readyAt = at
		if at < tryAt {
			tryAt = at
		}
	}
	if len(c.scratch) == 0 {
		c.parkEmptyScan(now, tryAt)
	}
}

// collectFull is the legacy full rescan: every queued entry of every
// class is probed and the row-hit table recomputed. It serves the aged
// pass (where candidacy is a function of age, not banks) and the forced
// per-cycle reference mode. Bucket caches are left untouched — they stay
// sound lower bounds because issued commands dirty their banks.
func (c *Controller) collectFull(now sim.Cycle, hasAged bool) {
	c.scratch = c.scratch[:0]
	c.agedPass = false
	c.refreshBankHits()
	if hasAged {
		for qi := range c.queues {
			entries := c.queues[qi].entries
			for i := range entries {
				e := &entries[i]
				if now < e.t.Enqueue+c.cfg.AgingT {
					continue
				}
				if ok, rowHit, _, _ := c.probeScan(e, true, now); ok {
					c.scratch = append(c.scratch, candidate{e: *e, rowHit: rowHit}) //sara:alloc-ok scratch is reused across scans; capacity amortizes to queue depth
				}
			}
		}
		if len(c.scratch) > 0 {
			c.agedPass = true
			return
		}
	}
	tryAt := neverTry
	for qi := range c.queues {
		entries := c.queues[qi].entries
		for i := range entries {
			e := &entries[i]
			ok, rowHit, at, atOK := c.probeScan(e, c.allowPrecharge(e), now)
			if ok {
				c.scratch = append(c.scratch, candidate{e: *e, rowHit: rowHit}) //sara:alloc-ok scratch is reused across scans; capacity amortizes to queue depth
				continue
			}
			if hasAged && !atOK && now >= e.t.Enqueue+c.cfg.AgingT {
				// Already aged but policy-blocked: the aged pass
				// bypasses the open-page guard, so probe with it.
				_, _, at, atOK = c.probeScan(e, true, now)
			}
			if atOK && at < tryAt {
				tryAt = at
			}
		}
	}
	if len(c.scratch) == 0 {
		c.parkEmptyScan(now, tryAt)
	}
}

// parkEmptyScan finalizes a scan that produced no candidates: the next
// aging-threshold crossing changes both the candidate set and the
// open-page bypass, so it bounds the dormancy window alongside tryAt,
// the timing-gate minimum the scan gathered. Entries are sorted by
// Enqueue, so the first not-yet-aged entry of each class carries the
// class minimum — the head itself whenever nothing is aged (the bucket
// scan's case). Both scan flavors park through this one tail so their
// dormancy windows cannot drift apart.
func (c *Controller) parkEmptyScan(now, tryAt sim.Cycle) {
	if c.cfg.AgingT > 0 {
		for qi := range c.queues {
			entries := c.queues[qi].entries
			for i := range entries {
				if deadline := entries[i].t.Enqueue + c.cfg.AgingT; deadline > now {
					if deadline < tryAt {
						tryAt = deadline
					}
					break
				}
			}
		}
	}
	if tryAt <= now {
		// Defensive: the scan just failed at now, so nothing can
		// issue before the next cycle.
		tryAt = now + 1
	}
	c.nextTry = tryAt
}

// probeScan evaluates entry e against the current scan snapshot: whether
// its next command can issue at now, whether its CAS would hit the open
// row, and the earliest cycle the command clears the timing gates (atOK
// false when blocked on a foreign reservation or a disallowed precharge).
func (c *Controller) probeScan(e *entry, allowPre bool, now sim.Cycle) (ok, rowHit bool, at sim.Cycle, atOK bool) {
	if c.scan.RefBlocked[e.loc.Rank] {
		// The rank is being drained for a forced refresh: nothing issues
		// until the REF lands, and the refresh machine owns that wake.
		return false, false, 0, false
	}
	b := &c.scan.Banks[c.bankKey(e.loc)]
	if b.ReservedBy != 0 && b.ReservedBy != e.t.ID {
		return false, false, 0, false
	}
	switch {
	case b.Open && b.Row == e.loc.Row:
		if e.t.Kind == txn.Read {
			at = b.NextRead
			if c.scan.ChRead > at {
				at = c.scan.ChRead
			}
		} else {
			at = b.NextWrite
			if c.scan.ChWrite > at {
				at = c.scan.ChWrite
			}
		}
		return now >= at, true, at, true
	case b.Open:
		if !allowPre {
			return false, false, 0, false
		}
		return now >= b.NextPre, false, b.NextPre, true
	default:
		at = b.NextAct
		if g := c.scan.RankAct[e.loc.Rank]; g > at {
			at = g
		}
		return now >= at, false, at, true
	}
}

// refreshBankHits recomputes the per-bank best queued row-hit priority.
// Only the row-aware policies consult it, so other policies skip the scan.
func (c *Controller) refreshBankHits() {
	if !c.rowAware {
		return
	}
	for k := range c.bankHit {
		c.bankHit[k] = 0
	}
	for qi := range c.queues {
		entries := c.queues[qi].entries
		for i := range entries {
			e := &entries[i]
			key := c.bankKey(e.loc)
			if p := entryHit(&c.scan.Banks[key], e); p > c.bankHit[key] {
				c.bankHit[key] = p
			}
		}
	}
}

func (c *Controller) bankKey(loc dram.Location) int {
	return loc.Rank*c.nBanks + loc.Bank
}

// allowPrecharge reports whether a row-aware policy lets e close its
// bank's open row even though queued transactions still hit it. FR-FCFS
// never does (open-page); QoS-RB lets an urgent transaction (priority at
// or above delta) precharge past lower-priority hits, mirroring Policy 2's
// arbitration rule.
func (c *Controller) allowPrecharge(e *entry) bool {
	if !c.rowAware {
		return true // rowAware is the single gate for bankHit upkeep and use
	}
	hit := c.bankHit[c.bankKey(e.loc)]
	if hit == 0 {
		return true
	}
	if c.cfg.Policy == FRFCFS {
		return false
	}
	hitPrio := txn.Priority(hit - 1)
	return e.t.Priority >= c.cfg.Delta && e.t.Priority > hitPrio
}

// TraceFn observes one issued DRAM command on channel ch at cycle now:
// kind is 'A' (activate), 'P' (precharge), 'C' (CAS) or 'R' (refresh,
// id 0); id is the transaction the command serves. The edge follows the
// registry contract shared with noc and dma (see the hook block in
// internal/noc/noc.go): HookTrace subscribes alongside other observers,
// SetDebugTrace is the legacy single-observer installer, a nil fast-path
// pointer keeps the disabled path zero-cost, and registration is
// single-threaded on a process-global edge.
type TraceFn = func(ch int, now sim.Cycle, id uint64, kind byte)

// debugTrace, when non-nil, observes every issued command.
var debugTrace TraceFn

var traceHooks sim.HookList[TraceFn]

// HookTrace subscribes fn to the command edge and returns its detach
// func.
func HookTrace(fn TraceFn) (detach func()) {
	return traceHooks.Attach(fn, &debugTrace, func(fns []TraceFn) TraceFn {
		return func(ch int, now sim.Cycle, id uint64, kind byte) {
			for _, f := range fns {
				f(ch, now, id, kind)
			}
		}
	})
}

var legacyTrace func()

// SetDebugTrace installs fn as the legacy command observer (nil
// uninstalls).
func SetDebugTrace(fn TraceFn) {
	if fn == nil {
		if legacyTrace != nil {
			legacyTrace()
			legacyTrace = nil
		}
		return
	}
	if legacyTrace != nil {
		legacyTrace()
	}
	legacyTrace = HookTrace(fn)
}

// issue performs e's next command at cycle now.
func (c *Controller) issue(best candidate, now sim.Cycle) {
	e := best.e
	state, row := c.dram.State(e.loc)
	if debugTrace != nil {
		k := byte('C')
		if state == dram.BankOpen && row != e.loc.Row {
			k = 'P'
		} else if state != dram.BankOpen {
			k = 'A'
		}
		debugTrace(c.cfg.Channel, now, e.t.ID, k)
	}
	switch {
	case state == dram.BankOpen && row == e.loc.Row:
		c.issueCAS(e, now)
	case state == dram.BankOpen:
		c.dram.Reserve(e.loc, e.t.ID)
		c.dram.Precharge(e.loc, now)
		e.t.RowPath = neededPre
	default:
		c.dram.Reserve(e.loc, e.t.ID)
		c.dram.Activate(e.loc, now)
		if e.t.RowPath != neededPre {
			e.t.RowPath = neededAct
		}
	}
	c.dram.RefreshScanBank(c.cfg.Channel, e.loc, &c.scan)
	c.bankChanged(c.bankKey(e.loc))
}

func (c *Controller) issueCAS(e entry, now sim.Cycle) {
	var done sim.Cycle
	if e.t.Kind == txn.Read {
		done = c.dram.Read(e.loc, now)
		c.stats.ServedReads++
	} else {
		done = c.dram.Write(e.loc, now)
		c.stats.ServedWrites++
	}
	c.dram.Release(e.loc, e.t.ID)
	q := &c.queues[e.t.Class]
	wasFull := q.full()
	q.remove(e.t.ID)
	c.npending--
	c.bucketRemove(c.bankKey(e.loc), e.t.ID)
	if wasFull && c.OnRelease != nil {
		c.OnRelease(e.t.Class, now)
	}
	if c.refreshOn {
		c.rankPending[e.loc.Rank]--
		if c.rankPending[e.loc.Rank] == 0 {
			c.rankIdleFrom[e.loc.Rank] = now
		}
	}

	switch e.t.RowPath {
	case neededPre:
		c.stats.RowConflicts++
	case neededAct:
		c.stats.RowMisses++
	default:
		c.stats.RowHits++
	}

	c.stats.Served++
	c.stats.PerClass[e.t.Class]++
	if c.cfg.AgingT > 0 && now >= e.t.Enqueue+c.cfg.AgingT {
		c.stats.AgedServes++
	}
	// Advance the round-robin pointer past the class just served.
	c.rrPtr = txn.Class((int(e.t.Class) + 1) % txn.NumClasses)

	if c.OnComplete != nil {
		c.OnComplete(e.t, done)
	}
}
