package memctrl

import (
	"fmt"

	"sara/internal/dram"
	"sara/internal/sim"
	"sara/internal/txn"
)

// Config parameterizes one per-channel controller.
type Config struct {
	// Channel is the DRAM channel this controller owns.
	Channel int
	// Policy selects the arbitration policy.
	Policy PolicyKind
	// Delta is Policy 2's row-buffer threshold (paper: 6).
	Delta txn.Priority
	// AgingT is the starvation limit: any transaction that has waited at
	// least this many cycles is served before policy order applies
	// (paper: 10000). Zero disables aging.
	AgingT sim.Cycle
	// QueueCaps splits the controller's entries across the five class
	// queues.
	QueueCaps QueueCaps
}

// DefaultConfig returns the paper's controller settings for a channel.
func DefaultConfig(channel int) Config {
	return Config{
		Channel:   channel,
		Policy:    QoS,
		Delta:     6,
		AgingT:    10000,
		QueueCaps: DefaultQueueCaps(),
	}
}

// Stats holds the controller's activity counters.
type Stats struct {
	Served       uint64 // transactions completed (CAS issued)
	ServedReads  uint64
	ServedWrites uint64
	// Row-locality classification of served transactions: a hit issued its
	// CAS against an already-open matching row; a miss had to activate a
	// closed bank; a conflict had to precharge another row first.
	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64
	// AgedServes counts transactions served through the aging override.
	AgedServes uint64
	// PerClass counts served transactions per queue class.
	PerClass [txn.NumClasses]uint64
	// Enqueued counts admissions.
	Enqueued uint64
}

// Controller is one channel's transaction scheduler. It is driven by the
// SoC assembly: Enqueue from the NoC side, Tick once per cycle to issue at
// most one DRAM command.
type Controller struct {
	cfg    Config
	dram   *dram.DRAM
	mapper *dram.AddressMapper
	queues [txn.NumClasses]classQueue
	rrPtr  txn.Class // class whose turn is next on priority ties / RR

	// OnComplete is invoked when a transaction's DRAM phase finishes:
	// for reads, the cycle the last data beat leaves the device; for
	// writes, the cycle the write data has been absorbed. The SoC layer
	// adds the response-network latency before notifying the DMA.
	OnComplete func(t *txn.Transaction, done sim.Cycle)

	stats Stats

	// scratch is reused every cycle to collect issuable candidates.
	scratch []candidate
	// aged marks that scratch currently holds only over-age candidates.
	agedPass bool
	// rowState tracks whether each queued transaction needed a precharge
	// (conflict) or activate (miss) before its CAS, keyed by txn ID.
	needed map[uint64]uint8
	// bankHit caches, per (rank, bank), the highest priority among queued
	// transactions that hit the currently open row. Row-aware policies use
	// it to avoid precharging a row that still has useful hits queued.
	bankHit map[int]txn.Priority
}

const (
	neededNothing uint8 = iota
	neededAct
	neededPre
)

// New builds a controller for the given channel of d.
func New(cfg Config, d *dram.DRAM) *Controller {
	if cfg.Channel < 0 || cfg.Channel >= d.Config().Geometry.Channels {
		panic(fmt.Sprintf("memctrl: channel %d out of range", cfg.Channel))
	}
	c := &Controller{
		cfg:     cfg,
		dram:    d,
		mapper:  d.Mapper(),
		needed:  make(map[uint64]uint8),
		bankHit: make(map[int]txn.Priority),
	}
	for i := range c.queues {
		c.queues[i] = classQueue{class: txn.Class(i), cap: cfg.QueueCaps[i]}
	}
	return c
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// SpaceFor reports whether the class queue can admit one more transaction.
// The NoC uses it as the credit check before forwarding.
func (c *Controller) SpaceFor(class txn.Class) bool {
	return !c.queues[class].full()
}

// Occupancy reports the number of queued transactions in class.
func (c *Controller) Occupancy(class txn.Class) int {
	return len(c.queues[class].entries)
}

// Enqueue admits t at cycle now. The caller must have checked SpaceFor.
func (c *Controller) Enqueue(t *txn.Transaction, now sim.Cycle) {
	loc := c.mapper.Decode(t.Addr)
	if loc.Channel != c.cfg.Channel {
		panic(fmt.Sprintf("memctrl: txn %d routed to channel %d, controller owns %d",
			t.ID, loc.Channel, c.cfg.Channel))
	}
	t.Enqueue = now
	c.queues[t.Class].push(entry{t: t, loc: loc})
	c.stats.Enqueued++
}

// Pending reports the total number of queued transactions.
func (c *Controller) Pending() int {
	n := 0
	for i := range c.queues {
		n += len(c.queues[i].entries)
	}
	return n
}

// rrDist measures how far class is from the round-robin pointer; the class
// whose turn is next has distance 0.
func (c *Controller) rrDist(class txn.Class) int {
	return (int(class) - int(c.rrPtr) + txn.NumClasses) % txn.NumClasses
}

// Tick issues at most one DRAM command for this channel.
func (c *Controller) Tick(now sim.Cycle) {
	c.collectCandidates(now)
	if len(c.scratch) == 0 {
		return
	}
	best := c.scratch[0]
	for _, cand := range c.scratch[1:] {
		if c.agedPass {
			if olderFirst(cand, best) {
				best = cand
			}
		} else if c.cfg.Policy.better(cand, best, c.rrDist, c.cfg.Delta) {
			best = cand
		}
	}
	c.issue(best, now)
}

// collectCandidates fills c.scratch with every queued transaction that can
// issue a DRAM command at cycle now, honoring bank reservations. When any
// transaction is over the aging limit, only over-age transactions are
// candidates (the "clear the backlog" rule of Section 3.3).
func (c *Controller) collectCandidates(now sim.Cycle) {
	c.scratch = c.scratch[:0]
	c.agedPass = false
	c.refreshBankHits()
	if c.cfg.AgingT > 0 {
		for qi := range c.queues {
			for _, e := range c.queues[qi].entries {
				if now >= e.t.Enqueue+c.cfg.AgingT && c.issuable(e, now, true) {
					c.scratch = append(c.scratch, candidate{e: e, rowHit: c.dram.RowHit(e.loc)})
				}
			}
		}
		if len(c.scratch) > 0 {
			c.agedPass = true
			return
		}
	}
	for qi := range c.queues {
		for _, e := range c.queues[qi].entries {
			if c.issuable(e, now, false) {
				c.scratch = append(c.scratch, candidate{e: e, rowHit: c.dram.RowHit(e.loc)})
			}
		}
	}
}

// refreshBankHits recomputes the per-bank best queued row-hit priority.
// Only the row-aware policies consult it, so other policies skip the scan.
func (c *Controller) refreshBankHits() {
	if c.cfg.Policy != FRFCFS && c.cfg.Policy != QoSRB {
		return
	}
	for k := range c.bankHit {
		delete(c.bankHit, k)
	}
	for qi := range c.queues {
		for _, e := range c.queues[qi].entries {
			if !c.dram.RowHit(e.loc) {
				continue
			}
			key := c.bankKey(e.loc)
			if p, ok := c.bankHit[key]; !ok || e.t.Priority > p {
				c.bankHit[key] = e.t.Priority
			}
		}
	}
}

func (c *Controller) bankKey(loc dram.Location) int {
	return loc.Rank*c.dram.Config().Geometry.Banks + loc.Bank
}

// allowPrecharge reports whether a row-aware policy lets e close its
// bank's open row even though queued transactions still hit it. FR-FCFS
// never does (open-page); QoS-RB lets an urgent transaction (priority at
// or above delta) precharge past lower-priority hits, mirroring Policy 2's
// arbitration rule.
func (c *Controller) allowPrecharge(e entry) bool {
	switch c.cfg.Policy {
	case FRFCFS, QoSRB:
		hitPrio, ok := c.bankHit[c.bankKey(e.loc)]
		if !ok {
			return true
		}
		if c.cfg.Policy == FRFCFS {
			return false
		}
		return e.t.Priority >= c.cfg.Delta && e.t.Priority > hitPrio
	default:
		return true
	}
}

// issuable reports whether e's next command can issue at now. Aged
// transactions bypass the open-page precharge guard so the backlog always
// clears.
func (c *Controller) issuable(e entry, now sim.Cycle, aged bool) bool {
	if owner := c.dram.ReservedBy(e.loc); owner != 0 && owner != e.t.ID {
		return false
	}
	state, row := c.dram.State(e.loc)
	switch {
	case state == dram.BankOpen && row == e.loc.Row:
		if e.t.Kind == txn.Read {
			return c.dram.CanRead(e.loc, now)
		}
		return c.dram.CanWrite(e.loc, now)
	case state == dram.BankOpen:
		if !aged && !c.allowPrecharge(e) {
			return false
		}
		return c.dram.CanPrecharge(e.loc, now)
	default:
		return c.dram.CanActivate(e.loc, now)
	}
}

// issue performs e's next command at cycle now.
func (c *Controller) issue(best candidate, now sim.Cycle) {
	e := best.e
	state, row := c.dram.State(e.loc)
	switch {
	case state == dram.BankOpen && row == e.loc.Row:
		c.issueCAS(e, now)
	case state == dram.BankOpen:
		c.dram.Reserve(e.loc, e.t.ID)
		c.dram.Precharge(e.loc, now)
		c.needed[e.t.ID] = neededPre
	default:
		c.dram.Reserve(e.loc, e.t.ID)
		c.dram.Activate(e.loc, now)
		if c.needed[e.t.ID] != neededPre {
			c.needed[e.t.ID] = neededAct
		}
	}
}

func (c *Controller) issueCAS(e entry, now sim.Cycle) {
	var done sim.Cycle
	if e.t.Kind == txn.Read {
		done = c.dram.Read(e.loc, now)
		c.stats.ServedReads++
	} else {
		done = c.dram.Write(e.loc, now)
		c.stats.ServedWrites++
	}
	c.dram.Release(e.loc, e.t.ID)
	c.queues[e.t.Class].remove(e.t.ID)

	switch c.needed[e.t.ID] {
	case neededPre:
		c.stats.RowConflicts++
	case neededAct:
		c.stats.RowMisses++
	default:
		c.stats.RowHits++
	}
	delete(c.needed, e.t.ID)

	c.stats.Served++
	c.stats.PerClass[e.t.Class]++
	if c.cfg.AgingT > 0 && now >= e.t.Enqueue+c.cfg.AgingT {
		c.stats.AgedServes++
	}
	// Advance the round-robin pointer past the class just served.
	c.rrPtr = txn.Class((int(e.t.Class) + 1) % txn.NumClasses)

	if c.OnComplete != nil {
		c.OnComplete(e.t, done)
	}
}
