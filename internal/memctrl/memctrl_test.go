package memctrl

import (
	"testing"

	"sara/internal/dram"
	"sara/internal/sim"
	"sara/internal/txn"
)

func newTestController(policy PolicyKind) (*Controller, *dram.DRAM) {
	d := dram.New(dram.PaperConfig(1866))
	cfg := DefaultConfig(0)
	cfg.Policy = policy
	return New(cfg, d), d
}

// mkTxn builds a transaction targeting channel 0 with the given bank/row,
// by encoding through the mapper.
func mkTxn(d *dram.DRAM, id uint64, kind txn.Kind, class txn.Class, prio txn.Priority, bank int, row uint64) *txn.Transaction {
	addr := d.Mapper().Encode(dram.Location{Channel: 0, Bank: bank, Row: row})
	return &txn.Transaction{ID: id, Kind: kind, Addr: addr, Size: 128, Class: class, Priority: prio}
}

func TestQueueCapsTotal42(t *testing.T) {
	if got := DefaultQueueCaps().Total(); got != 42 {
		t.Fatalf("default queue capacity %d, want 42 (Table 1)", got)
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range AllPolicies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestEnqueueAndSpace(t *testing.T) {
	c, d := newTestController(FCFS)
	cap := c.Config().QueueCaps[txn.ClassDSP]
	for i := 0; i < cap; i++ {
		if !c.SpaceFor(txn.ClassDSP) {
			t.Fatalf("queue full after %d of %d", i, cap)
		}
		c.Enqueue(mkTxn(d, uint64(i+1), txn.Read, txn.ClassDSP, 0, i%8, 1), 0)
	}
	if c.SpaceFor(txn.ClassDSP) {
		t.Fatal("queue should be full")
	}
	if c.Occupancy(txn.ClassDSP) != cap {
		t.Fatalf("occupancy %d, want %d", c.Occupancy(txn.ClassDSP), cap)
	}
	if c.SpaceFor(txn.ClassCPU) != true {
		t.Fatal("other class should still have space")
	}
}

func TestWrongChannelPanics(t *testing.T) {
	c, d := newTestController(FCFS)
	addr := d.Mapper().Encode(dram.Location{Channel: 1, Row: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong-channel enqueue")
		}
	}()
	c.Enqueue(&txn.Transaction{ID: 1, Addr: addr, Class: txn.ClassCPU}, 0)
}

// drive runs the controller until n transactions complete or the budget
// expires, returning completion order.
func drive(c *Controller, budget sim.Cycle, n int) []uint64 {
	var done []uint64
	c.OnComplete = func(tr *txn.Transaction, at sim.Cycle) { done = append(done, tr.ID) }
	for now := sim.Cycle(0); now < budget && len(done) < n; now++ {
		c.Tick(now)
	}
	return done
}

func TestFCFSServesInArrivalOrder(t *testing.T) {
	c, d := newTestController(FCFS)
	// Same bank, different rows: strict order forces conflicts.
	c.Enqueue(mkTxn(d, 1, txn.Read, txn.ClassCPU, 0, 0, 1), 0)
	c.Enqueue(mkTxn(d, 2, txn.Read, txn.ClassGPU, 7, 0, 2), 1)
	c.Enqueue(mkTxn(d, 3, txn.Read, txn.ClassDSP, 7, 0, 3), 2)
	done := drive(c, 2000, 3)
	if len(done) != 3 || done[0] != 1 || done[1] != 2 || done[2] != 3 {
		t.Fatalf("FCFS completion order %v, want [1 2 3]", done)
	}
}

func TestQoSServesHighPriorityFirst(t *testing.T) {
	c, d := newTestController(QoS)
	c.Enqueue(mkTxn(d, 1, txn.Read, txn.ClassCPU, 0, 0, 1), 0)
	c.Enqueue(mkTxn(d, 2, txn.Read, txn.ClassGPU, 7, 1, 2), 1)
	c.Enqueue(mkTxn(d, 3, txn.Read, txn.ClassDSP, 3, 2, 3), 2)
	done := drive(c, 2000, 3)
	if done[0] != 2 {
		t.Fatalf("QoS served %v first, want txn 2 (priority 7)", done[0])
	}
	if done[1] != 3 {
		t.Fatalf("QoS served %v second, want txn 3 (priority 3)", done[1])
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	c, d := newTestController(FRFCFS)
	// txn 1 opens row 1; txn 2 (older) conflicts on row 2; txn 3 (younger)
	// hits row 1. FR-FCFS should serve 1 then 3 then 2.
	c.Enqueue(mkTxn(d, 1, txn.Read, txn.ClassCPU, 0, 0, 1), 0)
	c.Enqueue(mkTxn(d, 2, txn.Read, txn.ClassCPU, 0, 0, 2), 1)
	c.Enqueue(mkTxn(d, 3, txn.Read, txn.ClassCPU, 0, 0, 1), 2)
	done := drive(c, 3000, 3)
	if done[0] != 1 || done[1] != 3 || done[2] != 2 {
		t.Fatalf("FR-FCFS order %v, want [1 3 2]", done)
	}
}

func TestFrameRateUrgentFirst(t *testing.T) {
	c, d := newTestController(FrameRate)
	a := mkTxn(d, 1, txn.Read, txn.ClassCPU, 0, 0, 1)
	b := mkTxn(d, 2, txn.Read, txn.ClassMedia, 0, 1, 1)
	b.Urgent = true
	c.Enqueue(a, 0)
	c.Enqueue(b, 1)
	done := drive(c, 2000, 2)
	if done[0] != 2 {
		t.Fatalf("frame-rate policy served %v first, want urgent txn 2", done[0])
	}
}

func TestQoSRBDeltaGating(t *testing.T) {
	// Policy 2: a row hit beats a non-hit when both priorities are below
	// delta; an urgent transaction (>= delta) goes first regardless.
	c, d := newTestController(QoSRB)

	// Open row 1 via txn 1 (highest priority, so it activates first).
	c.Enqueue(mkTxn(d, 1, txn.Read, txn.ClassCPU, 5, 0, 1), 0)
	// Older conflict at priority 3 (below delta).
	c.Enqueue(mkTxn(d, 2, txn.Read, txn.ClassGPU, 3, 0, 2), 1)
	// Younger hit at priority 0.
	c.Enqueue(mkTxn(d, 3, txn.Read, txn.ClassDSP, 0, 0, 1), 2)
	done := drive(c, 3000, 3)
	if done[0] != 1 || done[1] != 3 {
		t.Fatalf("QoS-RB below-delta order %v, want hit (3) before conflict (2)", done)
	}

	// The precharge guard itself: an urgent conflict (priority >= delta)
	// may close a row past lower-priority queued hits; a low-priority
	// conflict may not.
	c2, d2 := newTestController(QoSRB)
	c2.Enqueue(mkTxn(d2, 1, txn.Read, txn.ClassCPU, 7, 0, 1), 0)
	urgent := entry{t: mkTxn(d2, 2, txn.Read, txn.ClassGPU, 7, 0, 2)}
	urgent.loc = d2.Mapper().Decode(urgent.t.Addr)
	calm := entry{t: mkTxn(d2, 4, txn.Read, txn.ClassGPU, 3, 0, 2)}
	calm.loc = d2.Mapper().Decode(calm.t.Addr)
	c2.Enqueue(mkTxn(d2, 3, txn.Read, txn.ClassDSP, 0, 0, 1), 2)
	// Open row 1 so txn 3 becomes a queued hit.
	for now := sim.Cycle(0); now < 200 && c2.Stats().Served == 0; now++ {
		c2.Tick(now)
	}
	c2.refreshBankHits()
	if !c2.allowPrecharge(&urgent) {
		t.Fatal("priority-7 conflict should be allowed to precharge past a priority-0 hit")
	}
	if c2.allowPrecharge(&calm) {
		t.Fatal("priority-3 conflict must not precharge past a queued hit")
	}
}

func TestAgingOverridesPriority(t *testing.T) {
	d := dram.New(dram.PaperConfig(1866))
	cfg := DefaultConfig(0)
	cfg.Policy = QoS
	cfg.AgingT = 100
	c := New(cfg, d)

	// Low-priority old transaction vs a stream of fresh high-priority ones.
	c.Enqueue(mkTxn(d, 1, txn.Read, txn.ClassCPU, 0, 0, 1), 0)
	var done []uint64
	c.OnComplete = func(tr *txn.Transaction, at sim.Cycle) { done = append(done, tr.ID) }
	id := uint64(100)
	for now := sim.Cycle(0); now < 2000; now++ {
		if now > 0 && now%10 == 0 && c.SpaceFor(txn.ClassGPU) {
			id++
			c.Enqueue(mkTxn(d, id, txn.Read, txn.ClassGPU, 7, 1, 2), now)
		}
		c.Tick(now)
		if len(done) > 0 && done[0] == 1 {
			// The victim must be served promptly — either through a bus
			// gap (work conservation) or the aging override; it must never
			// wait far beyond the aging limit.
			if now > 100+400 {
				t.Fatalf("aged txn served too late (cycle %d)", now)
			}
			return
		}
	}
	t.Fatal("aged low-priority transaction never served")
}

func TestRRPointerRotation(t *testing.T) {
	c, d := newTestController(RR)
	// One transaction per class, distinct banks so all are issuable.
	for cls := 0; cls < txn.NumClasses; cls++ {
		c.Enqueue(mkTxn(d, uint64(cls+1), txn.Read, txn.Class(cls), 0, cls, 1), sim.Cycle(cls))
	}
	done := drive(c, 4000, txn.NumClasses)
	if len(done) != txn.NumClasses {
		t.Fatalf("completed %d, want %d", len(done), txn.NumClasses)
	}
	// Command-level round-robin interleaves ACT/CAS across banks, so the
	// exact completion order varies with DRAM timing; the guarantee is
	// that every class is served exactly once.
	seen := make(map[uint64]bool)
	for _, id := range done {
		if seen[id] {
			t.Fatalf("RR served txn %d twice: %v", id, done)
		}
		seen[id] = true
	}
	st := c.Stats()
	for cls := 0; cls < txn.NumClasses; cls++ {
		if st.PerClass[cls] != 1 {
			t.Fatalf("class %d served %d times, want 1", cls, st.PerClass[cls])
		}
	}
}

func TestRowClassificationStats(t *testing.T) {
	c, d := newTestController(FCFS)
	c.Enqueue(mkTxn(d, 1, txn.Read, txn.ClassCPU, 0, 0, 1), 0) // miss (closed)
	done := drive(c, 1500, 1)
	if len(done) != 1 {
		t.Fatal("txn 1 not served")
	}
	st := c.Stats()
	if st.RowMisses != 1 || st.RowHits != 0 || st.RowConflicts != 0 {
		t.Fatalf("stats %+v after first access, want 1 miss", st)
	}
	// Same row: hit.
	c.Enqueue(mkTxn(d, 2, txn.Read, txn.ClassCPU, 0, 0, 1), 1500)
	for now := sim.Cycle(1500); now < 3000 && c.Pending() > 0; now++ {
		c.Tick(now)
	}
	if st := c.Stats(); st.RowHits != 1 {
		t.Fatalf("stats %+v, want 1 hit", st)
	}
	// Different row: conflict.
	c.Enqueue(mkTxn(d, 3, txn.Read, txn.ClassCPU, 0, 0, 9), 3000)
	for now := sim.Cycle(3000); now < 4500 && c.Pending() > 0; now++ {
		c.Tick(now)
	}
	if st := c.Stats(); st.RowConflicts != 1 {
		t.Fatalf("stats %+v, want 1 conflict", st)
	}
}

func TestWritesComplete(t *testing.T) {
	c, d := newTestController(FCFS)
	c.Enqueue(mkTxn(d, 1, txn.Write, txn.ClassMedia, 0, 0, 1), 0)
	done := drive(c, 2000, 1)
	if len(done) != 1 {
		t.Fatal("write never completed")
	}
	if st := c.Stats(); st.ServedWrites != 1 {
		t.Fatalf("stats %+v, want 1 write", st)
	}
}

// TestNoStarvationUnderAllPolicies is a liveness property: with aging
// enabled, every enqueued transaction eventually completes under every
// policy even while higher-priority traffic keeps arriving.
func TestNoStarvationUnderAllPolicies(t *testing.T) {
	for _, p := range AllPolicies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			d := dram.New(dram.PaperConfig(1866))
			cfg := DefaultConfig(0)
			cfg.Policy = p
			c := New(cfg, d)

			victim := mkTxn(d, 1, txn.Read, txn.ClassSystem, 0, 0, 1)
			c.Enqueue(victim, 0)
			served := false
			c.OnComplete = func(tr *txn.Transaction, at sim.Cycle) {
				if tr.ID == 1 {
					served = true
				}
			}
			id := uint64(10)
			for now := sim.Cycle(0); now < 50000 && !served; now++ {
				// Keep flooding with young, urgent, row-hitting traffic.
				if c.SpaceFor(txn.ClassGPU) {
					id++
					tr := mkTxn(d, id, txn.Read, txn.ClassGPU, 7, 1, 2)
					tr.Urgent = true
					c.Enqueue(tr, now)
				}
				c.Tick(now)
			}
			if !served {
				t.Fatalf("policy %v starved the victim beyond 5x the aging limit", p)
			}
		})
	}
}
