package memctrl

import (
	"fmt"

	"sara/internal/txn"
)

// PolicyKind selects the arbitration policy used by the memory controller
// (and, through the SoC assembly, by the on-chip network arbiters).
type PolicyKind uint8

const (
	// FCFS serves transactions strictly in arrival order.
	FCFS PolicyKind = iota
	// RR serves the five class queues in round-robin order, oldest first
	// within a queue.
	RR
	// FRFCFS is first-ready FCFS: row-buffer hits first, then oldest.
	// It maximizes DRAM bandwidth with no QoS awareness.
	FRFCFS
	// FrameRate is the frame-rate-based QoS baseline [Jeong et al., DAC'12]:
	// media transactions flagged urgent (behind reference frame progress)
	// win; everything else is best-effort FCFS.
	FrameRate
	// QoS is the paper's Policy 1: higher priority wins, equal priorities
	// resolve by round-robin across queues.
	QoS
	// QoSRB is the paper's Policy 2: like QoS, but a row-buffer hit beats a
	// non-hit whenever both priorities are below the delta threshold or
	// the priorities are equal.
	QoSRB
	numPolicies
)

var policyNames = [numPolicies]string{"fcfs", "rr", "frfcfs", "framerate", "qos", "qos-rb"}

// String returns the short policy name used in reports.
func (p PolicyKind) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy converts a name produced by String back into a PolicyKind.
func ParsePolicy(name string) (PolicyKind, error) {
	for i, n := range policyNames {
		if n == name {
			return PolicyKind(i), nil
		}
	}
	return 0, fmt.Errorf("memctrl: unknown policy %q", name)
}

// AllPolicies lists every policy in evaluation order.
func AllPolicies() []PolicyKind {
	return []PolicyKind{FCFS, RR, FRFCFS, FrameRate, QoS, QoSRB}
}

// candidate is a queued transaction that can issue a DRAM command this
// cycle, with the attributes the comparators need.
type candidate struct {
	e      entry
	rowHit bool // a CAS would hit the open row (ignoring timing)
}

// better reports whether a should be served before b under policy p.
// rrDist maps a class to its distance from the controller's round-robin
// pointer (0 = next in turn). delta is Policy 2's threshold.
func (p PolicyKind) better(a, b candidate, rrDist func(txn.Class) int, delta txn.Priority) bool {
	switch p {
	case FCFS:
		return olderFirst(a, b)

	case RR:
		da, db := rrDist(a.e.t.Class), rrDist(b.e.t.Class)
		if da != db {
			return da < db
		}
		return olderFirst(a, b)

	case FRFCFS:
		if a.rowHit != b.rowHit {
			return a.rowHit
		}
		return olderFirst(a, b)

	case FrameRate:
		if a.e.t.Urgent != b.e.t.Urgent {
			return a.e.t.Urgent
		}
		return olderFirst(a, b)

	case QoS:
		return qosBetter(a, b, rrDist)

	case QoSRB:
		pa, pb := a.e.t.Priority, b.e.t.Priority
		if a.rowHit != b.rowHit {
			// Policy 2: the row hit wins when both priorities are under
			// the threshold, or when priorities tie; otherwise fall back
			// to priority-based round-robin (Policy 1).
			if (pa < delta && pb < delta) || pa == pb {
				return a.rowHit
			}
			return qosBetter(a, b, rrDist)
		}
		return qosBetter(a, b, rrDist)

	default:
		panic("memctrl: unknown policy")
	}
}

// qosBetter implements Policy 1: priority descending, then round-robin
// across queues, then age.
func qosBetter(a, b candidate, rrDist func(txn.Class) int) bool {
	pa, pb := a.e.t.Priority, b.e.t.Priority
	if pa != pb {
		return pa > pb
	}
	da, db := rrDist(a.e.t.Class), rrDist(b.e.t.Class)
	if da != db {
		return da < db
	}
	return olderFirst(a, b)
}

// olderFirst orders by memory-controller arrival, with the globally unique
// transaction ID as the deterministic tiebreak.
func olderFirst(a, b candidate) bool {
	if a.e.t.Enqueue != b.e.t.Enqueue {
		return a.e.t.Enqueue < b.e.t.Enqueue
	}
	return a.e.t.ID < b.e.t.ID
}
