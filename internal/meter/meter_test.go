package meter

import (
	"math"
	"testing"
	"testing/quick"

	"sara/internal/sim"
)

func TestLatencyMeterEqn1(t *testing.T) {
	m := NewLatencyMeter(500, 1.0) // alpha 1: NPI tracks the last sample
	if npi := m.NPI(0); npi != 2.0 {
		t.Fatalf("idle latency meter NPI %v, want healthy 2.0", npi)
	}
	m.Observe(250)
	if npi := m.NPI(0); npi != 2.0 {
		t.Fatalf("NPI %v, want limit/avg = 500/250 = 2", npi)
	}
	m.Observe(1000)
	if npi := m.NPI(0); npi != 0.5 {
		t.Fatalf("NPI %v, want 0.5", npi)
	}
}

func TestLatencyMeterEWMA(t *testing.T) {
	m := NewLatencyMeter(100, 0.5)
	m.Observe(100)
	m.Observe(200)
	if avg := m.Average(); avg != 150 {
		t.Fatalf("EWMA avg %v, want 150", avg)
	}
}

func TestBandwidthMeterMargin(t *testing.T) {
	m := NewBandwidthMeter(1.0, 1024)
	// Feed exactly the target rate.
	for now := sim.Cycle(0); now < 4096; now += 64 {
		m.ObserveBytes(now, 64)
	}
	npi := m.NPI(4096)
	want := 1.0 / m.Margin
	if math.Abs(npi-want) > 0.1 {
		t.Fatalf("at-target NPI %v, want ~%v", npi, want)
	}
	// A starved meter decays.
	if npi := m.NPI(4096 + 4*1024); npi >= 0.2 {
		t.Fatalf("starved NPI %v, want near 0", npi)
	}
}

func TestBandwidthMeterWarmupGrace(t *testing.T) {
	m := NewBandwidthMeter(1.0, 1024)
	if npi := m.NPI(10); npi != 1.0 {
		t.Fatalf("early NPI %v, want neutral 1.0", npi)
	}
}

func TestFrameProgressMeterEqn2(t *testing.T) {
	progress := 0.5
	start := sim.Cycle(0)
	m := NewFrameProgressMeter(1000, 1.0, func() (float64, sim.Cycle) { return progress, start })

	// Halfway through the frame at half progress: NPI = 1.
	if npi := m.NPI(500); math.Abs(npi-1.0) > 1e-9 {
		t.Fatalf("NPI %v, want 1.0", npi)
	}
	// Early in the frame the reference is tiny: healthy.
	if npi := m.NPI(1); npi != 2.0 {
		t.Fatalf("frame-start NPI %v, want 2.0", npi)
	}
	// Behind schedule.
	progress = 0.25
	if npi := m.NPI(500); math.Abs(npi-0.5) > 1e-9 {
		t.Fatalf("behind NPI %v, want 0.5", npi)
	}
	// Reference clamps at 1 past the period.
	progress = 1.0
	if npi := m.NPI(5000); math.Abs(npi-1.0) > 1e-9 {
		t.Fatalf("late NPI %v, want 1.0", npi)
	}
}

func TestFrameProgressReferenceFactor(t *testing.T) {
	m := NewFrameProgressMeter(1000, 0.5, func() (float64, sim.Cycle) { return 0.25, 0 })
	// At t=500 the x0.5 reference is 0.25: on target.
	if npi := m.NPI(500); math.Abs(npi-1.0) > 1e-9 {
		t.Fatalf("NPI %v with 0.5 reference, want 1.0", npi)
	}
}

func TestOccupancyMeterEqn3Display(t *testing.T) {
	occ := 0.5
	m := NewOccupancyMeter(2.0, 1000, 8000, false, func(sim.Cycle) float64 { return occ })
	// At the initial level: NPI = 1 exactly (Eqn. 3 with dOcc = 0).
	if npi := m.NPI(0); math.Abs(npi-1.0) > 1e-9 {
		t.Fatalf("NPI %v at initial occupancy, want 1.0", npi)
	}
	// Full buffer: 1 + 0.5*8000/(2*1000) = 3.
	occ = 1.0
	if npi := m.NPI(0); math.Abs(npi-3.0) > 1e-9 {
		t.Fatalf("NPI %v at full buffer, want 3.0", npi)
	}
	// Empty buffer: 1 - 2 = clamp to MinNPI.
	occ = 0.0
	if npi := m.NPI(0); npi != MinNPI {
		t.Fatalf("NPI %v at empty buffer, want clamp %v", npi, MinNPI)
	}
}

func TestOccupancyMeterInvertedCamera(t *testing.T) {
	occ := 0.9 // camera buffer filling up = DMA behind
	m := NewOccupancyMeter(2.0, 1000, 8000, true, func(sim.Cycle) float64 { return occ })
	if npi := m.NPI(0); npi >= 1 {
		t.Fatalf("camera NPI %v with overfull buffer, want < 1", npi)
	}
	occ = 0.1
	if npi := m.NPI(0); npi <= 1 {
		t.Fatalf("camera NPI %v with drained buffer, want > 1", npi)
	}
}

func TestChunkMeterLifecycle(t *testing.T) {
	progress := 0.0
	m := NewChunkMeter(1000, func() float64 { return progress })
	if npi := m.NPI(0); npi != 2.0 {
		t.Fatalf("initial chunk NPI %v, want 2.0", npi)
	}
	m.ChunkStarted(0)
	// 40% through the deadline with 20% progress: NPI = 0.5.
	progress = 0.2
	if npi := m.NPI(400); math.Abs(npi-0.5) > 1e-9 {
		t.Fatalf("in-flight NPI %v, want 0.5", npi)
	}
	// Past the deadline the NPI degrades with elapsed time.
	if npi := m.NPI(2000); math.Abs(npi-0.5) > 1e-9 {
		t.Fatalf("overrun NPI %v, want deadline/elapsed = 0.5", npi)
	}
	m.ChunkDone(2000)
	if npi := m.NPI(3000); math.Abs(npi-0.5) > 1e-9 {
		t.Fatalf("completed NPI %v, want 1000/2000", npi)
	}
	// A fast chunk restores health.
	m.ChunkStarted(3000)
	m.ChunkDone(3200)
	if npi := m.NPI(3300); math.Abs(npi-5.0) > 1e-9 {
		t.Fatalf("fast-chunk NPI %v, want 5.0", npi)
	}
}

func TestStaticMeter(t *testing.T) {
	if npi := Static(1.5).NPI(123); npi != 1.5 {
		t.Fatalf("static NPI %v, want 1.5", npi)
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v float64) bool {
		c := clamp(v)
		return c >= MinNPI && c <= MaxNPI
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if clamp(math.NaN()) != MinNPI {
		t.Fatal("NaN did not clamp to MinNPI")
	}
}

func TestStallAttribution(t *testing.T) {
	// Target met: nothing to attribute.
	if r, c := StallAttribution(1.2, 0.07); r != 0 || c != 0 {
		t.Fatalf("healthy core attributed (%v, %v), want zeros", r, c)
	}
	// Shortfall larger than the refresh duty: refresh is capped at its
	// duty, the rest is contention.
	r, c := StallAttribution(0.8, 0.07)
	if math.Abs(r-0.07) > 1e-12 || math.Abs(c-0.13) > 1e-12 {
		t.Fatalf("attribution (%v, %v), want (0.07, 0.13)", r, c)
	}
	// Shortfall smaller than the duty: refresh absorbs all of it.
	r, c = StallAttribution(0.98, 0.07)
	if math.Abs(r-0.02) > 1e-12 || c != 0 {
		t.Fatalf("attribution (%v, %v), want (0.02, 0)", r, c)
	}
	// A negative duty (defensive) attributes everything to contention.
	if r, c := StallAttribution(0.9, -1); r != 0 || math.Abs(c-0.1) > 1e-12 {
		t.Fatalf("attribution (%v, %v), want (0, 0.1)", r, c)
	}
}

func TestBandwidthMeterDefaultMargin(t *testing.T) {
	m := NewBandwidthMeter(1.0, 1024)
	if m.Margin != DefaultMargin {
		t.Fatalf("constructor Margin %v, want DefaultMargin %v", m.Margin, DefaultMargin)
	}
	if DefaultMargin != 0.88 {
		t.Fatalf("DefaultMargin %v, want the documented 0.88", DefaultMargin)
	}
}
