// Package meter implements the distributed performance meters of Section
// 3.1: each DMA owns a lightweight meter that measures its core's own
// notion of QoS — average latency (Eqn. 1), frame progress (Eqn. 2),
// buffer occupancy / refill rate (Eqn. 3), achieved bandwidth, or
// work-chunk processing time — and normalizes it into the Normalized
// Performance Indicator (NPI). NPI >= 1 means the target performance is
// met; the further below 1, the less healthy the core.
package meter

import (
	"math"

	"sara/internal/sim"
	"sara/internal/stats"
)

// Clamp bounds NPI values for numerical robustness and plotting; the
// paper's figures use a log axis from 0.1 to 10, our internal range is
// wider so information is not lost before rendering.
const (
	// MinNPI is the lower clamp.
	MinNPI = 0.01
	// MaxNPI is the upper clamp.
	MaxNPI = 100.0
)

func clamp(v float64) float64 {
	if math.IsNaN(v) {
		return MinNPI
	}
	if v < MinNPI {
		return MinNPI
	}
	if v > MaxNPI {
		return MaxNPI
	}
	return v
}

// Meter is a per-DMA performance meter producing an NPI value on demand.
type Meter interface {
	// NPI reports the current normalized performance indicator.
	NPI(now sim.Cycle) float64
}

// --- Latency (Eqn. 1: NPI = maximum latency limit / average latency) ---

// LatencyMeter tracks the average end-to-end transaction latency against a
// maximum limit. Used by the DSP and audio cores.
type LatencyMeter struct {
	// Limit is the maximum tolerable average latency in cycles.
	Limit sim.Cycle
	avg   *stats.EWMA
}

// NewLatencyMeter returns a meter with the given latency limit. alpha is
// the EWMA smoothing factor; 0 selects a default suited to sporadic
// request streams.
func NewLatencyMeter(limit sim.Cycle, alpha float64) *LatencyMeter {
	if alpha == 0 {
		alpha = 0.1
	}
	return &LatencyMeter{Limit: limit, avg: stats.NewEWMA(alpha)}
}

// Observe records one completed transaction's latency.
func (m *LatencyMeter) Observe(latency sim.Cycle) {
	m.avg.Add(float64(latency))
}

// Average reports the current average latency estimate in cycles.
func (m *LatencyMeter) Average() float64 { return m.avg.Value() }

// NPI reports limit/average; before any sample it reports a healthy 2.0
// so an idle core does not demand priority.
func (m *LatencyMeter) NPI(sim.Cycle) float64 {
	if !m.avg.Primed() || m.avg.Value() <= 0 {
		return 2.0
	}
	return clamp(float64(m.Limit) / m.avg.Value())
}

// --- Bandwidth (NPI = achieved bandwidth / target bandwidth) ---

// BandwidthMeter tracks achieved bytes/cycle over a sliding window against
// a target. Used by WiFi and USB. Targets carry a small provisioning
// margin (the required rate is Margin*Target), so a core keeping up with
// its nominal rate reads slightly above 1 instead of oscillating around it
// with window-edge noise.
type BandwidthMeter struct {
	// Target is the required bandwidth in bytes per cycle.
	Target float64
	// Margin scales the target for the NPI ratio; NewBandwidthMeter sets
	// it to DefaultMargin.
	Margin  float64
	counter *stats.Counter
}

// DefaultMargin is the provisioning margin NewBandwidthMeter applies to
// the target rate. The constructor and this doc share the constant so
// they cannot drift apart again.
const DefaultMargin = 0.88

// NewBandwidthMeter returns a meter with the given target (bytes/cycle)
// measured over window cycles and Margin set to DefaultMargin.
func NewBandwidthMeter(target float64, window sim.Cycle) *BandwidthMeter {
	return &BandwidthMeter{Target: target, Margin: DefaultMargin, counter: stats.NewCounter(window, 16)}
}

// ObserveBytes records n completed bytes at cycle now.
func (m *BandwidthMeter) ObserveBytes(now sim.Cycle, n int) {
	m.counter.Add(now, float64(n))
}

// Achieved reports the measured bandwidth in bytes/cycle.
func (m *BandwidthMeter) Achieved(now sim.Cycle) float64 { return m.counter.Rate(now) }

// NPI reports achieved/(Margin*target). During the first window it reports
// healthy until enough time has passed for the rate to be meaningful.
func (m *BandwidthMeter) NPI(now sim.Cycle) float64 {
	if m.Target <= 0 {
		return MaxNPI
	}
	if now < m.counter.Window()/4 {
		return 1.0
	}
	return clamp(m.counter.Rate(now) / (m.Margin * m.Target))
}

// --- Frame progress (Eqn. 2: NPI = frame progress / reference progress) ---

// ProgressFunc reports a core's progress through its current frame in
// [0, 1] and the cycle the frame started.
type ProgressFunc func() (progress float64, frameStart sim.Cycle)

// FrameProgressMeter compares frame progress against a reference progress
// line that grows proportionally with frame time (GPU, video codec, image
// processor, rotator, JPEG).
type FrameProgressMeter struct {
	// Period is the frame period in cycles.
	Period sim.Cycle
	// RefFactor scales the reference slope; 1.0 demands the average data
	// rate of the target performance (Fig. 4(b) also shows 0.75 and 0.5).
	RefFactor float64
	progress  ProgressFunc
}

// NewFrameProgressMeter builds the meter from the source's progress probe.
func NewFrameProgressMeter(period sim.Cycle, refFactor float64, fn ProgressFunc) *FrameProgressMeter {
	if refFactor <= 0 {
		refFactor = 1.0
	}
	return &FrameProgressMeter{Period: period, RefFactor: refFactor, progress: fn}
}

// Reference reports the reference progress at cycle now.
func (m *FrameProgressMeter) Reference(now sim.Cycle) float64 {
	_, start := m.progress()
	elapsed := float64(now-start) / float64(m.Period)
	ref := elapsed * m.RefFactor
	if ref > 1 {
		ref = 1
	}
	return ref
}

// NPI reports progress/reference. At the very start of a frame, before the
// reference has grown past a minimal epsilon, the core reports healthy.
func (m *FrameProgressMeter) NPI(now sim.Cycle) float64 {
	p, _ := m.progress()
	ref := m.Reference(now)
	const eps = 0.005
	if ref < eps {
		return 2.0
	}
	return clamp(p / ref)
}

// --- Buffer occupancy (Eqn. 3: NPI = Rrefill / Rread) ---

// OccupancyMeter implements Eqn. 3: the health of a buffered constant-rate
// core is indicated by the deviation of its buffer occupancy from the
// initial (50%) level, normalized by the constant rate and the observation
// window:
//
//	NPI = Rrefill/Rread = 1 + dOccupancy / (Rread * t)
//
// For the display, occupancy above 50% means the refill DMA is keeping up
// (NPI > 1) and a draining buffer pushes the NPI toward 0. For the camera
// the sign flips: occupancy *rising* above 50% means the drain DMA is
// falling behind the sensor.
type OccupancyMeter struct {
	// TargetRate is the panel read rate (display) or sensor fill rate
	// (camera) in bytes/cycle.
	TargetRate float64
	// BufBytes is the buffer capacity.
	BufBytes float64
	// InitFrac is the initial occupancy level (paper: 0.5).
	InitFrac float64
	// Window is the normalization time t of Eqn. 3, in cycles.
	Window sim.Cycle
	// Invert flips the deviation sign for drain-side (camera) buffers.
	Invert bool
	// occupancy probes the buffer fill fraction at a given cycle. Taking
	// the cycle lets buffered sources integrate any pending drain/fill
	// before answering, so sampling is exact even when the kernel
	// fast-forwarded over the preceding cycles.
	occupancy func(now sim.Cycle) float64
}

// NewOccupancyMeter builds an Eqn. 3 meter. target is in bytes/cycle.
func NewOccupancyMeter(target float64, window sim.Cycle, bufBytes float64,
	invert bool, occupancy func(now sim.Cycle) float64) *OccupancyMeter {
	return &OccupancyMeter{
		TargetRate: target,
		BufBytes:   bufBytes,
		InitFrac:   0.5,
		Window:     window,
		Invert:     invert,
		occupancy:  occupancy,
	}
}

// OccupancyAt reports the buffer fill fraction at cycle now.
func (m *OccupancyMeter) OccupancyAt(now sim.Cycle) float64 {
	if m.occupancy == nil {
		return 0
	}
	return m.occupancy(now)
}

// NPI reports 1 + dOccupancy/(rate*window), per Eqn. 3.
func (m *OccupancyMeter) NPI(now sim.Cycle) float64 {
	if m.TargetRate <= 0 {
		return MaxNPI
	}
	delta := (m.OccupancyAt(now) - m.InitFrac) * m.BufBytes
	if m.Invert {
		delta = -delta
	}
	return clamp(1 + delta/(m.TargetRate*float64(m.Window)))
}

// --- Processing time (GPS, modem) ---

// ChunkMeter measures the processing time of periodic work chunks against
// a deadline. While a chunk is in flight the meter compares the chunk's
// transfer progress against the elapsed fraction of the deadline — the
// same reference-progress construction as Eqn. 2, applied to the chunk —
// so the adaptation can react *before* the deadline is blown. On
// completion it records deadline/actual.
type ChunkMeter struct {
	// Deadline is the allowed processing time in cycles.
	Deadline sim.Cycle

	// progress probes the in-flight chunk's completion fraction [0,1].
	progress func() float64

	inFlight   bool
	chunkStart sim.Cycle
	lastNPI    float64
}

// NewChunkMeter returns a meter with the given deadline. progress may be
// nil, in which case the meter only degrades after the deadline passes.
func NewChunkMeter(deadline sim.Cycle, progress func() float64) *ChunkMeter {
	return &ChunkMeter{Deadline: deadline, progress: progress, lastNPI: 2.0}
}

// SetProgress installs the chunk-progress probe after construction (the
// source and meter reference each other).
func (m *ChunkMeter) SetProgress(fn func() float64) { m.progress = fn }

// ChunkStarted notes that a new chunk began at cycle now.
func (m *ChunkMeter) ChunkStarted(now sim.Cycle) {
	m.inFlight = true
	m.chunkStart = now
}

// ChunkDone notes that the in-flight chunk completed at cycle now.
func (m *ChunkMeter) ChunkDone(now sim.Cycle) {
	if !m.inFlight {
		return
	}
	m.inFlight = false
	elapsed := now - m.chunkStart
	if elapsed == 0 {
		elapsed = 1
	}
	m.lastNPI = clamp(float64(m.Deadline) / float64(elapsed))
}

// NPI reports chunk progress against the deadline's reference progress
// while a chunk is in flight, and the last completed chunk's deadline
// ratio otherwise.
func (m *ChunkMeter) NPI(now sim.Cycle) float64 {
	if !m.inFlight {
		return clamp(m.lastNPI)
	}
	elapsed := now - m.chunkStart
	ref := float64(elapsed) / float64(m.Deadline)
	if ref > 1 || m.progress == nil {
		// Past the deadline (or no progress probe): degrade with time.
		if elapsed > m.Deadline {
			return clamp(float64(m.Deadline) / float64(elapsed))
		}
		return clamp(m.lastNPI)
	}
	const eps = 0.02
	if ref < eps {
		return 2.0
	}
	return clamp(m.progress() / ref)
}

// Static is a constant-NPI meter for background traffic (the CPU cluster)
// that has no QoS target of its own.
type Static float64

// NPI reports the fixed value.
func (s Static) NPI(sim.Cycle) float64 { return float64(s) }

// StallAttribution splits a measured NPI shortfall (1 - npi, zero when
// the target is met) between DRAM refresh and everything else. Refresh
// steals at most its blackout duty — the fraction of rank-cycles spent
// under tRFC — so that bounds the share it can be blamed for; the
// remainder is contention (arbitration, row conflicts, bus turnaround).
// Reports use it to say "the dip is refresh cadence, not the policy".
func StallAttribution(npi, refreshDuty float64) (refresh, contention float64) {
	shortfall := 1 - npi
	if shortfall <= 0 {
		return 0, 0
	}
	if refreshDuty < 0 {
		refreshDuty = 0
	}
	refresh = refreshDuty
	if refresh > shortfall {
		refresh = shortfall
	}
	return refresh, shortfall - refresh
}
