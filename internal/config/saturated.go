package config

import (
	"fmt"

	"sara/internal/core"
	"sara/internal/txn"
)

// Saturated returns a bandwidth-bound variant of test case A used by the
// Fig. 8 bandwidth comparison. The paper's traffic keeps the DRAM
// saturated for the whole frame, which is what makes scheduling-policy
// efficiency visible as an average-bandwidth difference; our calibrated
// camcorder workload is deliberately demand-limited (so that SARA can
// deliver every target in Figs. 5/6), so the bandwidth experiment keeps
// every QoS core at its normal target (healthy cores sit at low priority,
// giving Policy 2's delta threshold transactions to optimize) and fills
// all remaining capacity with best-effort CPU-cluster traffic.
//
// The CPU cluster is modeled as four cores whose cache-miss streams have
// high spatial locality individually but interleave in arrival order, so
// arrival-order scheduling (FCFS) shatters row locality that a row-aware
// scheduler (FR-FCFS, QoS-RB) can recover — the effect Fig. 8 measures.
func Saturated(opts ...Option) core.Config {
	cfg := Camcorder(CaseA, opts...)
	out := cfg.DMAs[:0]
	for _, spec := range cfg.DMAs {
		if spec.Source.Kind == core.SrcCPU {
			continue // replaced by the flooding cluster below
		}
		if spec.Source.Kind == core.SrcFrame {
			spec.Source.RateBps *= 1.2
		}
		out = append(out, spec)
	}
	for i := 0; i < 4; i++ {
		out = append(out, core.DMASpec{
			Core: "CPU", DMA: fmt.Sprintf("c%d", i), Class: txn.ClassCPU,
			Window: 24,
			Source: core.SourceSpec{
				Kind:     core.SrcCPU,
				RateBps:  2.8 * GB,
				ReadFrac: 0.7,
				Locality: 0.8,
			},
		})
	}
	cfg.DMAs = out
	return cfg
}
