package config

import (
	"testing"

	"sara/internal/core"
	"sara/internal/memctrl"
	"sara/internal/txn"
)

func TestTable1Settings(t *testing.T) {
	a := Camcorder(CaseA)
	if a.DRAM.DataRateMTps != 1866 {
		t.Fatalf("case A data rate %d, want 1866", a.DRAM.DataRateMTps)
	}
	b := Camcorder(CaseB)
	if b.DRAM.DataRateMTps != 1700 {
		t.Fatalf("case B data rate %d, want 1700", b.DRAM.DataRateMTps)
	}
	if a.QueueCaps.Total() != 42 {
		t.Fatalf("MC entries %d, want 42", a.QueueCaps.Total())
	}
	if a.Delta != 6 || a.AgingT != 10000 || a.PriorityBits != 3 {
		t.Fatalf("delta/aging/bits = %d/%d/%d, want 6/10000/3", a.Delta, a.AgingT, a.PriorityBits)
	}
}

func TestCaseBDisablesCores(t *testing.T) {
	b := Camcorder(CaseB)
	for _, spec := range b.DMAs {
		switch spec.Core {
		case "GPS", "Camera", "Rotator", "JPEG":
			t.Fatalf("case B still contains %s", spec.Core)
		}
	}
	a := Camcorder(CaseA)
	if len(a.DMAs) <= len(b.DMAs) {
		t.Fatal("case A should have more DMAs than case B")
	}
}

// TestTable2Coverage checks every Table 2 core is present in case A with
// a performance-type-appropriate source kind.
func TestTable2Coverage(t *testing.T) {
	want := map[string]core.SourceKind{
		"GPU":         core.SrcFrame,    // frame rate
		"DSP":         core.SrcSporadic, // latency
		"Image Proc.": core.SrcFrame,    // frame rate
		"Video Codec": core.SrcFrame,    // frame rate
		"Rotator":     core.SrcFrame,    // frame rate
		"JPEG":        core.SrcFrame,    // frame rate
		"Camera":      core.SrcCamera,   // buffer occupancy
		"Display":     core.SrcDisplay,  // buffer occupancy
		"GPS":         core.SrcChunk,    // processing time
		"WiFi":        core.SrcRate,     // bandwidth
		"USB":         core.SrcRate,     // bandwidth
		"Modem":       core.SrcChunk,    // processing time
		"Audio":       core.SrcSporadic, // latency
	}
	got := map[string]core.SourceKind{}
	for _, spec := range Camcorder(CaseA).DMAs {
		got[spec.Core] = spec.Source.Kind
	}
	for name, kind := range want {
		gk, ok := got[name]
		if !ok {
			t.Errorf("Table 2 core %q missing from case A", name)
			continue
		}
		if gk != kind {
			t.Errorf("%s source kind %v, want %v", name, gk, kind)
		}
	}
}

func TestRotatorPaperRate(t *testing.T) {
	// The paper's only concrete rate: 89 MB/s per rotator DMA.
	found := 0
	for _, spec := range Camcorder(CaseA).DMAs {
		if spec.Core == "Rotator" {
			if spec.Source.RateBps != 89*MB {
				t.Fatalf("rotator DMA rate %v, want 89 MB/s", spec.Source.RateBps)
			}
			found++
		}
	}
	if found != 2 {
		t.Fatalf("rotator has %d DMAs, want 2 (read + write)", found)
	}
}

func TestOptionsApply(t *testing.T) {
	cfg := Camcorder(CaseA,
		WithPolicy(memctrl.FRFCFS),
		WithSeed(99),
		WithScaleDiv(128),
		WithDataRate(1500),
		WithDelta(4),
		WithPriorityBits(2),
		WithAgingT(777),
		WithAdaptInterval(2048))
	if cfg.Policy != memctrl.FRFCFS || cfg.Seed != 99 || cfg.ScaleDiv != 128 ||
		cfg.DRAM.DataRateMTps != 1500 || cfg.Delta != 4 || cfg.PriorityBits != 2 ||
		cfg.AgingT != 777 || cfg.AdaptInterval != 2048 {
		t.Fatalf("options not applied: %+v", cfg)
	}
}

func TestClassRouting(t *testing.T) {
	for _, spec := range Camcorder(CaseA).DMAs {
		switch spec.Core {
		case "CPU":
			if spec.Class != txn.ClassCPU {
				t.Errorf("CPU in class %v", spec.Class)
			}
		case "GPU":
			if spec.Class != txn.ClassGPU {
				t.Errorf("GPU in class %v", spec.Class)
			}
		case "DSP":
			if spec.Class != txn.ClassDSP {
				t.Errorf("DSP in class %v", spec.Class)
			}
		case "GPS", "WiFi", "USB", "Modem", "Audio":
			if spec.Class != txn.ClassSystem {
				t.Errorf("%s in class %v, want system", spec.Core, spec.Class)
			}
		default:
			if spec.Class != txn.ClassMedia {
				t.Errorf("%s in class %v, want media", spec.Core, spec.Class)
			}
		}
	}
}

func TestSaturatedDemandExceedsCamcorder(t *testing.T) {
	base := TotalDemandGBps(Camcorder(CaseA).DMAs)
	sat := TotalDemandGBps(Saturated().DMAs)
	if sat <= base {
		t.Fatalf("saturated demand %.1f not above base %.1f", sat, base)
	}
	if sat < 15 {
		t.Fatalf("saturated demand %.1f GB/s too low to stress the DRAM", sat)
	}
}

func TestScaleSoCGeometryAndRoster(t *testing.T) {
	base := Camcorder(CaseA)
	for _, factor := range []int{1, 2, 4} {
		cfg := ScaleSoC(Camcorder(CaseA), factor)
		if got, want := cfg.DRAM.Geometry.Channels, base.DRAM.Geometry.Channels*factor; got != want {
			t.Fatalf("%dx channels = %d, want %d", factor, got, want)
		}
		if got, want := len(cfg.DMAs), len(base.DMAs)*factor; got != want {
			t.Fatalf("%dx roster size = %d, want %d", factor, got, want)
		}
		if err := cfg.DRAM.Validate(); err != nil {
			t.Fatalf("%dx config invalid: %v", factor, err)
		}
		seen := make(map[string]bool, len(cfg.DMAs))
		for _, spec := range cfg.DMAs {
			if seen[spec.Label()] {
				t.Fatalf("%dx roster duplicates label %q", factor, spec.Label())
			}
			seen[spec.Label()] = true
		}
	}
}

func TestScaleSoCComposes(t *testing.T) {
	twice := ScaleSoC(ScaleSoC(Camcorder(CaseA), 2), 2)
	once := ScaleSoC(Camcorder(CaseA), 4)
	if twice.DRAM.Geometry.Channels != once.DRAM.Geometry.Channels {
		t.Fatalf("2x twice gives %d channels, 4x once gives %d",
			twice.DRAM.Geometry.Channels, once.DRAM.Geometry.Channels)
	}
	if len(twice.DMAs) != len(once.DMAs) {
		t.Fatalf("2x twice gives %d DMAs, 4x once gives %d", len(twice.DMAs), len(once.DMAs))
	}
	seen := make(map[string]bool, len(twice.DMAs))
	for _, spec := range twice.DMAs {
		if seen[spec.Label()] {
			t.Fatalf("repeated scaling duplicates label %q", spec.Label())
		}
		seen[spec.Label()] = true
	}
}

func TestScaleSoCRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for factor 3")
		}
	}()
	ScaleSoC(Camcorder(CaseA), 3)
}

func TestScaledCamcorderBuildsAndRuns(t *testing.T) {
	cfg := ScaledCamcorder(CaseA, 2, WithRefresh(true))
	if !cfg.DRAM.Refresh.Enabled {
		t.Fatal("options must apply after scaling")
	}
	sys := core.Build(cfg)
	sys.Run(20000)
	var served uint64
	for _, c := range sys.Controllers() {
		served += c.Stats().Served
	}
	if len(sys.Controllers()) != 4 {
		t.Fatalf("built %d controllers, want 4", len(sys.Controllers()))
	}
	if served == 0 {
		t.Fatal("scaled system served no transactions")
	}
}
