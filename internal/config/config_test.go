package config

import (
	"testing"

	"sara/internal/core"
	"sara/internal/memctrl"
	"sara/internal/txn"
)

func TestTable1Settings(t *testing.T) {
	a := Camcorder(CaseA)
	if a.DRAM.DataRateMTps != 1866 {
		t.Fatalf("case A data rate %d, want 1866", a.DRAM.DataRateMTps)
	}
	b := Camcorder(CaseB)
	if b.DRAM.DataRateMTps != 1700 {
		t.Fatalf("case B data rate %d, want 1700", b.DRAM.DataRateMTps)
	}
	if a.QueueCaps.Total() != 42 {
		t.Fatalf("MC entries %d, want 42", a.QueueCaps.Total())
	}
	if a.Delta != 6 || a.AgingT != 10000 || a.PriorityBits != 3 {
		t.Fatalf("delta/aging/bits = %d/%d/%d, want 6/10000/3", a.Delta, a.AgingT, a.PriorityBits)
	}
}

func TestCaseBDisablesCores(t *testing.T) {
	b := Camcorder(CaseB)
	for _, spec := range b.DMAs {
		switch spec.Core {
		case "GPS", "Camera", "Rotator", "JPEG":
			t.Fatalf("case B still contains %s", spec.Core)
		}
	}
	a := Camcorder(CaseA)
	if len(a.DMAs) <= len(b.DMAs) {
		t.Fatal("case A should have more DMAs than case B")
	}
}

// TestTable2Coverage checks every Table 2 core is present in case A with
// a performance-type-appropriate source kind.
func TestTable2Coverage(t *testing.T) {
	want := map[string]core.SourceKind{
		"GPU":         core.SrcFrame,    // frame rate
		"DSP":         core.SrcSporadic, // latency
		"Image Proc.": core.SrcFrame,    // frame rate
		"Video Codec": core.SrcFrame,    // frame rate
		"Rotator":     core.SrcFrame,    // frame rate
		"JPEG":        core.SrcFrame,    // frame rate
		"Camera":      core.SrcCamera,   // buffer occupancy
		"Display":     core.SrcDisplay,  // buffer occupancy
		"GPS":         core.SrcChunk,    // processing time
		"WiFi":        core.SrcRate,     // bandwidth
		"USB":         core.SrcRate,     // bandwidth
		"Modem":       core.SrcChunk,    // processing time
		"Audio":       core.SrcSporadic, // latency
	}
	got := map[string]core.SourceKind{}
	for _, spec := range Camcorder(CaseA).DMAs {
		got[spec.Core] = spec.Source.Kind
	}
	for name, kind := range want {
		gk, ok := got[name]
		if !ok {
			t.Errorf("Table 2 core %q missing from case A", name)
			continue
		}
		if gk != kind {
			t.Errorf("%s source kind %v, want %v", name, gk, kind)
		}
	}
}

func TestRotatorPaperRate(t *testing.T) {
	// The paper's only concrete rate: 89 MB/s per rotator DMA.
	found := 0
	for _, spec := range Camcorder(CaseA).DMAs {
		if spec.Core == "Rotator" {
			if spec.Source.RateBps != 89*MB {
				t.Fatalf("rotator DMA rate %v, want 89 MB/s", spec.Source.RateBps)
			}
			found++
		}
	}
	if found != 2 {
		t.Fatalf("rotator has %d DMAs, want 2 (read + write)", found)
	}
}

func TestOptionsApply(t *testing.T) {
	cfg := Camcorder(CaseA,
		WithPolicy(memctrl.FRFCFS),
		WithSeed(99),
		WithScaleDiv(128),
		WithDataRate(1500),
		WithDelta(4),
		WithPriorityBits(2),
		WithAgingT(777),
		WithAdaptInterval(2048))
	if cfg.Policy != memctrl.FRFCFS || cfg.Seed != 99 || cfg.ScaleDiv != 128 ||
		cfg.DRAM.DataRateMTps != 1500 || cfg.Delta != 4 || cfg.PriorityBits != 2 ||
		cfg.AgingT != 777 || cfg.AdaptInterval != 2048 {
		t.Fatalf("options not applied: %+v", cfg)
	}
}

func TestClassRouting(t *testing.T) {
	for _, spec := range Camcorder(CaseA).DMAs {
		switch spec.Core {
		case "CPU":
			if spec.Class != txn.ClassCPU {
				t.Errorf("CPU in class %v", spec.Class)
			}
		case "GPU":
			if spec.Class != txn.ClassGPU {
				t.Errorf("GPU in class %v", spec.Class)
			}
		case "DSP":
			if spec.Class != txn.ClassDSP {
				t.Errorf("DSP in class %v", spec.Class)
			}
		case "GPS", "WiFi", "USB", "Modem", "Audio":
			if spec.Class != txn.ClassSystem {
				t.Errorf("%s in class %v, want system", spec.Core, spec.Class)
			}
		default:
			if spec.Class != txn.ClassMedia {
				t.Errorf("%s in class %v, want media", spec.Core, spec.Class)
			}
		}
	}
}

func TestSaturatedDemandExceedsCamcorder(t *testing.T) {
	base := TotalDemandGBps(Camcorder(CaseA).DMAs)
	sat := TotalDemandGBps(Saturated().DMAs)
	if sat <= base {
		t.Fatalf("saturated demand %.1f not above base %.1f", sat, base)
	}
	if sat < 15 {
		t.Fatalf("saturated demand %.1f GB/s too low to stress the DRAM", sat)
	}
}
