// Package config encodes the paper's evaluation setup: the Table 1
// simulation settings (LPDDR4 organization and timings, memory-controller
// queues, the two test cases) and the Table 2 roster of heterogeneous
// cores with their QoS types, parameterized from the 30 fps camcorder
// dataflow of Fig. 2 (e.g. the rotator reads and writes 1080p YUV420
// frames at 30 fps: 89 MB/s per DMA).
package config

import (
	"sara/internal/core"
	"sara/internal/dram"
	"sara/internal/memctrl"
	"sara/internal/noc"
	"sara/internal/sim"
	"sara/internal/txn"
)

const (
	// MB and GB are decimal byte-rate units (bytes/second scale factors).
	MB = 1e6
	GB = 1e9
)

// Case identifies one of Table 1's test cases.
type Case int

const (
	// CaseA runs all cores with DRAM at 1866 MT/s.
	CaseA Case = iota
	// CaseB disables GPS, camera, rotator and JPEG and runs DRAM at
	// 1700 MT/s.
	CaseB
)

// String names the test case.
func (c Case) String() string {
	if c == CaseA {
		return "A"
	}
	return "B"
}

// Option adjusts a generated configuration.
type Option func(*core.Config)

// WithPolicy selects the arbitration policy (default: QoS, Policy 1).
func WithPolicy(p memctrl.PolicyKind) Option {
	return func(c *core.Config) { c.Policy = p }
}

// WithSeed sets the random seed.
func WithSeed(seed uint64) Option {
	return func(c *core.Config) { c.Seed = seed }
}

// WithScaleDiv sets the time-scaling factor (default 256, the calibrated
// evaluation scale; smaller is longer/finer and proportionally slower).
func WithScaleDiv(div int) Option {
	return func(c *core.Config) { c.ScaleDiv = div }
}

// WithDataRate overrides the DRAM data rate in MT/s (the Fig. 7 sweep).
func WithDataRate(mtps int) Option {
	return func(c *core.Config) { c.DRAM.DataRateMTps = mtps }
}

// WithRefresh enables (or disables) LPDDR4 per-rank all-bank refresh with
// the JEDEC defaults for the configuration's data rate (tREFI = 3.904 us,
// tRFCab = 280 ns, 8-deep postponement window). Apply it after
// WithDataRate so the cycle conversion uses the final clock. Refresh is
// off by default: the paper's evaluation does not state a refresh policy,
// and the refresh-free model remains the bit-identical baseline.
func WithRefresh(on bool) Option {
	return func(c *core.Config) {
		if on {
			c.DRAM.Refresh = c.DRAM.DefaultRefresh()
		} else {
			c.DRAM.Refresh = dram.RefreshConfig{}
		}
	}
}

// WithDelta overrides Policy 2's row-buffer threshold.
func WithDelta(delta txn.Priority) Option {
	return func(c *core.Config) { c.Delta = delta }
}

// WithPriorityBits overrides the priority quantization k.
func WithPriorityBits(bits int) Option {
	return func(c *core.Config) { c.PriorityBits = bits }
}

// WithAgingT overrides the starvation limit (0 disables aging).
func WithAgingT(t sim.Cycle) Option {
	return func(c *core.Config) { c.AgingT = t }
}

// WithAdaptInterval overrides the adaptation period.
func WithAdaptInterval(iv sim.Cycle) Option {
	return func(c *core.Config) { c.AdaptInterval = iv }
}

// WithDomainWorkers selects the domain-parallel kernel with the given
// goroutine count (>= 2; 0 or 1 keeps the serial kernel). Build falls
// back to serial when the topology is unpartitionable.
func WithDomainWorkers(n int) Option {
	return func(c *core.Config) { c.DomainWorkers = n }
}

// Camcorder returns the full system configuration for the given test
// case, with any options applied.
func Camcorder(tc Case, opts ...Option) core.Config {
	mtps := 1866
	if tc == CaseB {
		mtps = 1700
	}
	cfg := core.Config{
		Seed:             1,
		DRAM:             dram.PaperConfig(mtps),
		Policy:           memctrl.QoS,
		Delta:            6,
		AgingT:           10000,
		QueueCaps:        memctrl.DefaultQueueCaps(),
		NoC:              noc.DefaultParams(),
		PriorityBits:     3,
		AdaptInterval:    1024,
		RealFrameSeconds: 1.0 / 30.0,
		ScaleDiv:         256,
		SampleEvery:      2048,
		DMAs:             coreRoster(tc),
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// coreRoster builds the Table 2 core list. Rates are derived from the
// camcorder dataflow at 30 fps on a next-generation (4K-class) MPSoC;
// the rotator's 89 MB/s per DMA is the paper's own number.
func coreRoster(tc Case) []core.DMASpec {
	var specs []core.DMASpec
	add := func(s core.DMASpec) { specs = append(specs, s) }

	// Case B drops the preview/snapshot cores (GPS, camera, rotator, JPEG)
	// but records at the full 4K pipeline rate while DRAM runs at only
	// 1700 MT/s, so the remaining cores press the memory system harder —
	// this is what exposes the latency-sensitive DSP under FCFS (Fig. 6).
	boost := 1.0
	if tc == CaseB {
		boost = 1.15
	}

	// --- Media cores (shared "media" transaction queue) ---

	// Image processor: reads raw sensor data, writes processed YUV.
	// Bursty per frame; QoS type: frame rate.
	add(core.DMASpec{
		Core: "Image Proc.", DMA: "rd", Class: txn.ClassMedia, Critical: true,
		Window: 48,
		Source: core.SourceSpec{Kind: core.SrcFrame, RateBps: 0.7 * boost * GB, ReadFrac: 1, RefFactor: 1},
	})
	add(core.DMASpec{
		Core: "Image Proc.", DMA: "wr", Class: txn.ClassMedia, Critical: true,
		Window: 48,
		Source: core.SourceSpec{Kind: core.SrcFrame, RateBps: 0.7 * boost * GB, ReadFrac: 0, RefFactor: 1},
	})

	// Video codec: reads reference frames, writes the encoded stream and
	// reconstructed references. QoS type: frame rate.
	add(core.DMASpec{
		Core: "Video Codec", DMA: "rd", Class: txn.ClassMedia, Critical: true,
		Window: 48,
		Source: core.SourceSpec{Kind: core.SrcFrame, RateBps: 0.6 * boost * GB, ReadFrac: 1, RefFactor: 1},
	})
	add(core.DMASpec{
		Core: "Video Codec", DMA: "wr", Class: txn.ClassMedia, Critical: true,
		Window: 48,
		Source: core.SourceSpec{Kind: core.SrcFrame, RateBps: 0.5 * boost * GB, ReadFrac: 0, RefFactor: 1},
	})

	// Display: constant-rate read-buffer refill. QoS: buffer occupancy.
	// Its LUT escalates earlier than the default (Fig. 4(c)): a draining
	// real-time buffer leaves no slack for a late rescue.
	add(core.DMASpec{
		Core: "Display", Class: txn.ClassMedia, Critical: true,
		LUTBounds: []float64{1.5, 1.3, 1.2, 1.1, 1.05, 1.02, 0.95, 0},
		Source:    core.SourceSpec{Kind: core.SrcDisplay, RateBps: 1.8 * GB, ReadFrac: 1},
	})

	if tc == CaseA {
		// Frame rotator: 1080p YUV420 at 30 fps = 89 MB/s per DMA.
		add(core.DMASpec{
			Core: "Rotator", DMA: "rd", Class: txn.ClassMedia, Critical: true,
			Source: core.SourceSpec{Kind: core.SrcFrame, RateBps: 89 * MB, ReadFrac: 1, RefFactor: 1},
		})
		add(core.DMASpec{
			Core: "Rotator", DMA: "wr", Class: txn.ClassMedia, Critical: true,
			Source: core.SourceSpec{Kind: core.SrcFrame, RateBps: 89 * MB, ReadFrac: 0, RefFactor: 1},
		})
		// Camera front end: sensor fills, DMA drains. QoS: occupancy.
		add(core.DMASpec{
			Core: "Camera", Class: txn.ClassMedia, Critical: true,
			Window:    28,
			LUTBounds: []float64{1.5, 1.3, 1.2, 1.1, 1.02, 0.95, 0.85, 0},
			Source:    core.SourceSpec{Kind: core.SrcCamera, RateBps: 0.9 * GB, ReadFrac: 0},
		})
		// JPEG engine: snapshot compression bursts. QoS: frame rate.
		add(core.DMASpec{
			Core: "JPEG", Class: txn.ClassMedia,
			Source: core.SourceSpec{Kind: core.SrcFrame, RateBps: 0.3 * GB, ReadFrac: 0.5,
				RefFactor: 1, StartOffsetFrac: 0.3},
		})
	}

	// --- GPU (own queue): renders preview UI; bursty. QoS: frame rate ---
	add(core.DMASpec{
		Core: "GPU", Class: txn.ClassGPU,
		Window: 32,
		Source: core.SourceSpec{Kind: core.SrcFrame, RateBps: 1.8 * GB, ReadFrac: 0.75, RefFactor: 1},
	})

	// --- DSP (own queue): latency-bound sporadic accesses. Case B runs
	// the DSP in a tighter real-time mode (Fig. 6 tracks its NPI there) ---
	dspLimit := sim.Cycle(500)
	if tc == CaseB {
		dspLimit = 300
	}
	add(core.DMASpec{
		Core: "DSP", Class: txn.ClassDSP, Critical: true,
		LUTBounds: []float64{1.6, 1.4, 1.25, 1.12, 1.0, 0.9, 0.75, 0},
		Source: core.SourceSpec{Kind: core.SrcSporadic, RateBps: 0.25 * boost * GB, ReadFrac: 0.8,
			LatencyLimit: dspLimit},
	})

	// --- System cores (shared "system" queue) ---

	if tc == CaseA {
		// GPS: periodic correlation chunks. QoS: processing time.
		add(core.DMASpec{
			Core: "GPS", Class: txn.ClassSystem, Critical: true,
			Window: 3,
			// The GPS escalates earlier than the default table: its
			// scattered, deadline-bound chunks leave no slack to recover
			// from a late rescue.
			LUTBounds: []float64{1.5, 1.3, 1.15, 1.05, 0.95, 0.85, 0.7, 0},
			Source: core.SourceSpec{Kind: core.SrcChunk, RateBps: 0.4 * GB, ReadFrac: 0.7,
				ChunkPeriodFrac: 0.1, DeadlineFrac: 0.5, Scatter: true},
		})
	}
	// WiFi: steady stream. QoS: bandwidth.
	add(core.DMASpec{
		Core: "WiFi", Class: txn.ClassSystem, Critical: true,
		Source: core.SourceSpec{Kind: core.SrcRate, RateBps: 0.4 * GB, ReadFrac: 0.5, BurstReqs: 2},
	})
	// USB: bulk transfers. QoS: bandwidth.
	add(core.DMASpec{
		Core: "USB", Class: txn.ClassSystem, Critical: true,
		Window: 64,
		Source: core.SourceSpec{Kind: core.SrcRate, RateBps: 1.0 * boost * GB, ReadFrac: 0.5, BurstReqs: 16},
	})
	// Modem: periodic subframe processing. QoS: processing time.
	add(core.DMASpec{
		Core: "Modem", Class: txn.ClassSystem,
		Source: core.SourceSpec{Kind: core.SrcChunk, RateBps: 0.4 * GB, ReadFrac: 0.5,
			ChunkPeriodFrac: 0.25, DeadlineFrac: 0.6, StartOffsetFrac: 0.1},
	})
	// Audio: tiny sporadic accesses with a generous latency bound.
	add(core.DMASpec{
		Core: "Audio", Class: txn.ClassSystem,
		Source: core.SourceSpec{Kind: core.SrcSporadic, RateBps: 0.02 * GB, ReadFrac: 0.9,
			LatencyLimit: 2000},
	})

	// --- CPU cluster: background cache-miss traffic, no QoS target ---
	add(core.DMASpec{
		Core: "CPU", Class: txn.ClassCPU,
		Window: 16,
		Source: core.SourceSpec{Kind: core.SrcCPU, RateBps: 1.3 * boost * GB, ReadFrac: 0.7, Locality: 0.5},
	})

	return specs
}

// TotalDemandGBps sums the roster's average demand, for sanity checks and
// reports.
func TotalDemandGBps(specs []core.DMASpec) float64 {
	var sum float64
	for _, s := range specs {
		sum += s.Source.RateBps
	}
	return sum / GB
}
