package config

import (
	"fmt"

	"sara/internal/core"
)

// ScaleSoC grows cfg into a factor-times-larger system: factor× DRAM
// channels (each with its own memory controller, root-router output and
// data bus) and factor× copies of the DMA roster, so total demand and
// total capacity grow together and per-channel pressure stays comparable
// to the base configuration. factor must be a power of two so the channel
// count stays a power of two (the address mapper interleaves on channel
// bits); 1 returns cfg unchanged.
//
// Roster copies get distinct core names ("GPU" → "GPU×2", …) and keep
// their traffic shapes, classes and QoS tables; every DMA draws its own
// forked RNG stream from the builder, so copies de-correlate naturally.
// The configs exist to demonstrate that the event-driven controllers and
// routers keep loaded-phase cost near-flat as the SoC grows — the
// per-bank candidate buckets make a controller scan proportional to
// active banks, not queue depth — and to widen the differential fuzz
// harness across system sizes.
func ScaleSoC(cfg core.Config, factor int) core.Config {
	if factor == 1 {
		return cfg
	}
	if factor < 1 || factor&(factor-1) != 0 {
		panic(fmt.Sprintf("config: SoC scale factor %d must be a power of two", factor))
	}
	cfg.DRAM.Geometry.Channels *= factor
	base := cfg.DMAs
	out := make([]core.DMASpec, 0, len(base)*factor)
	out = append(out, base...)
	// Core names must stay unique (Build panics on duplicate DMA labels),
	// including when scaling an already-scaled config — a copy whose
	// suffixed name collides with an existing core bumps its suffix, so
	// ScaleSoC(ScaleSoC(cfg, 2), 2) composes into the 4x system.
	seen := make(map[string]bool, len(base)*factor)
	for _, spec := range base {
		seen[spec.Core] = true
	}
	for rep := 2; rep <= factor; rep++ {
		for _, spec := range base {
			for n := rep; ; n++ {
				if name := fmt.Sprintf("%s×%d", spec.Core, n); !seen[name] {
					spec.Core = name
					break
				}
			}
			seen[spec.Core] = true
			out = append(out, spec)
		}
	}
	cfg.DMAs = out
	return cfg
}

// ScaledCamcorder returns the camcorder use case scaled to factor×
// channels and cores, with opts applied after scaling.
func ScaledCamcorder(tc Case, factor int, opts ...Option) core.Config {
	cfg := ScaleSoC(Camcorder(tc), factor)
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// ScaledSaturated returns the bandwidth-bound Fig. 8 variant scaled to
// factor× channels and cores — the loaded-phase scaling benchmark, where
// every channel stays saturated and the per-cycle machinery is everything.
func ScaledSaturated(factor int, opts ...Option) core.Config {
	cfg := ScaleSoC(Saturated(), factor)
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}
