package txn

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("kind names wrong")
	}
}

func TestClampProperty(t *testing.T) {
	f := func(p int16, bits uint8) bool {
		b := int(bits%4) + 1
		got := Clamp(int(p), b)
		return got <= Priority((1<<b)-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Clamp(-3, 3) != 0 {
		t.Fatal("negative priority not clamped to 0")
	}
	if Clamp(99, 3) != 7 {
		t.Fatal("overlarge priority not clamped to max")
	}
}

func TestClassNames(t *testing.T) {
	want := []string{"cpu", "gpu", "dsp", "media", "system"}
	for i, w := range want {
		if Class(i).String() != w {
			t.Fatalf("class %d = %q, want %q", i, Class(i), w)
		}
	}
	if !strings.Contains(Class(9).String(), "9") {
		t.Fatal("unknown class string should include the value")
	}
}

func TestLatencyAndWait(t *testing.T) {
	tr := &Transaction{ID: 1, Issue: 100, Enqueue: 150, Complete: 400}
	if tr.Latency() != 300 {
		t.Fatalf("latency %d, want 300", tr.Latency())
	}
	if tr.QueueWait(250) != 100 {
		t.Fatalf("queue wait %d, want 100", tr.QueueWait(250))
	}
	if !strings.Contains(tr.String(), "txn 1") {
		t.Fatalf("String() = %q", tr.String())
	}
}
