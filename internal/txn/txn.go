// Package txn defines the memory transaction model shared by the DMA
// engines, the on-chip network and the memory controller: transaction
// kinds, 3-bit priority levels, memory-controller queue classes and the
// transaction record itself with its lifecycle timestamps.
package txn

import (
	"fmt"

	"sara/internal/sim"
)

// Kind distinguishes reads from writes.
type Kind uint8

const (
	// Read moves data from DRAM to the requesting DMA.
	Read Kind = iota
	// Write moves data from the requesting DMA to DRAM.
	Write
)

// String returns "read" or "write".
func (k Kind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Priority is a relative urgency level carried by every transaction.
// SARA quantizes priorities into 2^k levels; the paper (and this library's
// default) uses k = 3, i.e. levels 0..7 where 0 means "healthy, lowest
// urgency" and 7 means "far below target performance, most urgent".
type Priority uint8

const (
	// MinPriority is the lowest urgency (core comfortably above target).
	MinPriority Priority = 0
	// MaxPriority is the highest urgency expressible with 3 bits.
	MaxPriority Priority = 7
	// Levels is the number of distinct priority levels (2^3).
	Levels = 8
)

// Clamp limits p to the representable range for k priority bits.
func Clamp(p int, bits int) Priority {
	max := (1 << bits) - 1
	if p < 0 {
		return 0
	}
	if p > max {
		return Priority(max)
	}
	return Priority(p)
}

// Class identifies the memory-controller transaction queue a transaction is
// routed to. The evaluated MPSoC dedicates one queue each to the CPU, the
// GPU and the DSP, one to all media cores and one to all system cores
// (Table 1: five transaction queues).
type Class uint8

const (
	// ClassCPU is the general-purpose CPU cluster queue.
	ClassCPU Class = iota
	// ClassGPU is the GPU queue.
	ClassGPU
	// ClassDSP is the latency-sensitive DSP queue.
	ClassDSP
	// ClassMedia aggregates media cores (camera, display, codec, ...).
	ClassMedia
	// ClassSystem aggregates system cores (GPS, WiFi, USB, modem, audio).
	ClassSystem
	// NumClasses is the number of memory-controller queues.
	NumClasses = 5
)

var classNames = [NumClasses]string{"cpu", "gpu", "dsp", "media", "system"}

// String returns the queue-class name used in traces and reports.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Addr is a physical byte address.
type Addr uint64

// Transaction is one memory request travelling from a DMA through the NoC
// into the memory controller and DRAM. Transactions are allocated by the
// issuing DMA and mutated in place as they move through the system; the
// simulator is single-threaded so no synchronization is needed.
type Transaction struct {
	// ID is unique per simulation run (monotonically increasing issue order).
	ID uint64
	// Kind is Read or Write.
	Kind Kind
	// Addr is the first byte touched.
	Addr Addr
	// Size is the transfer length in bytes. The DRAM model serves one
	// burst per transaction, so DMAs split larger buffers into
	// burst-sized transactions.
	Size uint32
	// Priority is the urgency stamped by the source DMA at issue time
	// under SARA; fixed-function baselines leave it at the default.
	Priority Priority
	// Urgent marks transactions from a media core that is behind its
	// reference frame progress. Only the frame-rate-based QoS baseline
	// policy consults it.
	Urgent bool
	// Source identifies the issuing DMA (index into the system DMA table).
	Source int
	// Class selects the memory-controller queue.
	Class Class

	// Issue is the cycle the DMA injected the transaction into the NoC.
	Issue sim.Cycle
	// Enqueue is the cycle the transaction entered an MC queue.
	Enqueue sim.Cycle
	// Complete is the cycle the response reached the DMA (reads) or the
	// write was accepted by DRAM and acknowledged.
	Complete sim.Cycle

	// RowPath is memory-controller scratch: it records whether the
	// transaction needed an activate or a precharge before its CAS, for
	// the row-locality statistics. Living on the transaction keeps the
	// controller's hot path free of map lookups.
	RowPath uint8
}

// Pool recycles Transactions so the steady-state inject/complete path
// allocates nothing. The simulator is single-threaded, so a plain
// free-list suffices (no sync.Pool locking or per-P sharding).
//
// Get does not zero the transaction; the issuing DMA overwrites every
// field. Put must only be called once the transaction has fully left the
// system (after the completion observers ran).
type Pool struct {
	free []*Transaction
}

// Get returns a recycled transaction, or a fresh one if the pool is empty.
//
//sara:hotpath
func (p *Pool) Get() *Transaction {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return t
	}
	return new(Transaction) //sara:alloc-ok pool warm-up; steady state recycles (0 allocs/op bench gate)
}

// Put returns t to the pool for reuse.
//
//sara:hotpath
func (p *Pool) Put(t *Transaction) {
	p.free = append(p.free, t) //sara:alloc-ok free-list growth is bounded by peak in-flight transactions
}

// Latency reports the end-to-end cycles from NoC injection to completion.
// It is only meaningful after the transaction completed.
//
//sara:hotpath
func (t *Transaction) Latency() sim.Cycle {
	return t.Complete - t.Issue
}

// QueueWait reports cycles spent in the memory-controller queue so far.
func (t *Transaction) QueueWait(now sim.Cycle) sim.Cycle {
	return now - t.Enqueue
}

// String formats the transaction for debug traces.
func (t *Transaction) String() string {
	return fmt.Sprintf("txn %d %s addr=%#x size=%d prio=%d class=%s src=%d",
		t.ID, t.Kind, uint64(t.Addr), t.Size, t.Priority, t.Class, t.Source)
}
