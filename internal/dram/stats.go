package dram

import "sara/internal/sim"

// ChannelStats is a snapshot of one channel's activity counters.
type ChannelStats struct {
	ReadBursts  uint64
	WriteBursts uint64
	BytesMoved  uint64
	Activates   uint64
	Precharges  uint64
	Refreshes   uint64
}

// Stats aggregates counters across channels.
type Stats struct {
	Channels []ChannelStats
}

// Totals sums the per-channel counters.
func (s Stats) Totals() ChannelStats {
	var t ChannelStats
	for _, c := range s.Channels {
		t.ReadBursts += c.ReadBursts
		t.WriteBursts += c.WriteBursts
		t.BytesMoved += c.BytesMoved
		t.Activates += c.Activates
		t.Precharges += c.Precharges
		t.Refreshes += c.Refreshes
	}
	return t
}

// Stats returns a snapshot of all channel counters.
func (d *DRAM) Stats() Stats {
	s := Stats{Channels: make([]ChannelStats, len(d.channels))}
	for i := range d.channels {
		c := &d.channels[i]
		s.Channels[i] = ChannelStats{
			ReadBursts:  c.readBursts,
			WriteBursts: c.writeBursts,
			BytesMoved:  c.bytesMoved,
			Activates:   c.activates,
			Precharges:  c.precharges,
			Refreshes:   c.refreshes,
		}
	}
	return s
}

// RowHitRate reports the fraction of CAS commands that did not require a
// fresh activate: 1 - activates/(reads+writes). It is an aggregate measure
// of row-buffer locality actually exploited.
func (d *DRAM) RowHitRate() float64 {
	t := d.Stats().Totals()
	cas := t.ReadBursts + t.WriteBursts
	if cas == 0 {
		return 0
	}
	hits := float64(cas) - float64(t.Activates)
	if hits < 0 {
		hits = 0
	}
	return hits / float64(cas)
}

// AverageBandwidthGBps reports total bytes moved divided by the elapsed
// simulated time up to cycle now, in GB/s.
func (d *DRAM) AverageBandwidthGBps(now sim.Cycle) float64 {
	if now == 0 {
		return 0
	}
	t := d.Stats().Totals()
	seconds := float64(now) / d.cfg.ClockHz()
	return float64(t.BytesMoved) / seconds / 1e9
}

// RefreshDuty reports the fraction of rank-cycles up to now spent in a
// tRFC blackout — the bandwidth ceiling the refresh cadence steals from
// every scheduling policy. It is zero when refresh is disabled.
func (d *DRAM) RefreshDuty(now sim.Cycle) float64 {
	if now == 0 || !d.cfg.Refresh.Enabled {
		return 0
	}
	refs := d.Stats().Totals().Refreshes
	rankCycles := float64(now) * float64(len(d.channels)*d.nRanks)
	return float64(refs) * float64(d.cfg.Refresh.TRFC) / rankCycles
}

// BandwidthOverWindowGBps reports bytes moved between two stats snapshots
// divided by the window length, in GB/s. Use it to exclude warmup.
func (d *DRAM) BandwidthOverWindowGBps(before Stats, from, to sim.Cycle) float64 {
	if to <= from {
		return 0
	}
	moved := d.Stats().Totals().BytesMoved - before.Totals().BytesMoved
	seconds := float64(to-from) / d.cfg.ClockHz()
	return float64(moved) / seconds / 1e9
}
