package dram

import "sara/internal/sim"

// ChannelStats is a snapshot of one channel's activity counters.
type ChannelStats struct {
	ReadBursts  uint64
	WriteBursts uint64
	BytesMoved  uint64
	Activates   uint64
	Precharges  uint64
	Refreshes   uint64
}

// Stats aggregates counters across channels.
type Stats struct {
	Channels []ChannelStats
}

// Totals sums the per-channel counters.
func (s Stats) Totals() ChannelStats {
	var t ChannelStats
	for _, c := range s.Channels {
		t.ReadBursts += c.ReadBursts
		t.WriteBursts += c.WriteBursts
		t.BytesMoved += c.BytesMoved
		t.Activates += c.Activates
		t.Precharges += c.Precharges
		t.Refreshes += c.Refreshes
	}
	return t
}

// MergeStats sums snapshots elementwise per channel. The domain-parallel
// System keeps one full-geometry DRAM instance per domain with only the
// domain's own channel attached — every other channel's row is zero — so
// the elementwise sum over domains reconstructs the whole device's
// per-channel counters exactly.
func MergeStats(parts ...Stats) Stats {
	var out Stats
	for _, p := range parts {
		if len(p.Channels) > len(out.Channels) {
			grown := make([]ChannelStats, len(p.Channels))
			copy(grown, out.Channels)
			out.Channels = grown
		}
		for i, c := range p.Channels {
			o := &out.Channels[i]
			o.ReadBursts += c.ReadBursts
			o.WriteBursts += c.WriteBursts
			o.BytesMoved += c.BytesMoved
			o.Activates += c.Activates
			o.Precharges += c.Precharges
			o.Refreshes += c.Refreshes
		}
	}
	return out
}

// RowHitRate reports the fraction of CAS commands in the snapshot that
// did not require a fresh activate: 1 - activates/(reads+writes). It is
// an aggregate measure of row-buffer locality actually exploited.
func (s Stats) RowHitRate() float64 {
	t := s.Totals()
	cas := t.ReadBursts + t.WriteBursts
	if cas == 0 {
		return 0
	}
	hits := float64(cas) - float64(t.Activates)
	if hits < 0 {
		hits = 0
	}
	return hits / float64(cas)
}

// AverageBandwidthOf reports the snapshot's total bytes moved divided by
// the elapsed simulated time up to cycle now, in GB/s, under cfg's clock.
func AverageBandwidthOf(cfg Config, s Stats, now sim.Cycle) float64 {
	if now == 0 {
		return 0
	}
	seconds := float64(now) / cfg.ClockHz()
	return float64(s.Totals().BytesMoved) / seconds / 1e9
}

// RefreshDutyOf reports the fraction of rank-cycles up to now that the
// snapshot's refreshes spent in a tRFC blackout — the bandwidth ceiling
// the refresh cadence steals from every scheduling policy. It is zero
// when refresh is disabled in cfg.
func RefreshDutyOf(cfg Config, s Stats, now sim.Cycle) float64 {
	if now == 0 || !cfg.Refresh.Enabled {
		return 0
	}
	refs := s.Totals().Refreshes
	rankCycles := float64(now) * float64(cfg.Geometry.Channels*cfg.Geometry.Ranks)
	return float64(refs) * float64(cfg.Refresh.TRFC) / rankCycles
}

// BandwidthOverWindowOf reports bytes moved between two snapshots divided
// by the window length, in GB/s, under cfg's clock. Use it to exclude
// warmup.
func BandwidthOverWindowOf(cfg Config, before, after Stats, from, to sim.Cycle) float64 {
	if to <= from {
		return 0
	}
	moved := after.Totals().BytesMoved - before.Totals().BytesMoved
	seconds := float64(to-from) / cfg.ClockHz()
	return float64(moved) / seconds / 1e9
}

// Stats returns a snapshot of all channel counters.
func (d *DRAM) Stats() Stats {
	s := Stats{Channels: make([]ChannelStats, len(d.channels))}
	for i := range d.channels {
		c := &d.channels[i]
		s.Channels[i] = ChannelStats{
			ReadBursts:  c.readBursts,
			WriteBursts: c.writeBursts,
			BytesMoved:  c.bytesMoved,
			Activates:   c.activates,
			Precharges:  c.precharges,
			Refreshes:   c.refreshes,
		}
	}
	return s
}

// RowHitRate reports the device-wide row hit rate (see Stats.RowHitRate).
func (d *DRAM) RowHitRate() float64 { return d.Stats().RowHitRate() }

// AverageBandwidthGBps reports total bytes moved divided by the elapsed
// simulated time up to cycle now, in GB/s.
func (d *DRAM) AverageBandwidthGBps(now sim.Cycle) float64 {
	return AverageBandwidthOf(d.cfg, d.Stats(), now)
}

// RefreshDuty reports the fraction of rank-cycles up to now spent in a
// tRFC blackout (see RefreshDutyOf).
func (d *DRAM) RefreshDuty(now sim.Cycle) float64 {
	return RefreshDutyOf(d.cfg, d.Stats(), now)
}

// BandwidthOverWindowGBps reports bytes moved between two stats snapshots
// divided by the window length, in GB/s (see BandwidthOverWindowOf).
func (d *DRAM) BandwidthOverWindowGBps(before Stats, from, to sim.Cycle) float64 {
	return BandwidthOverWindowOf(d.cfg, before, d.Stats(), from, to)
}
