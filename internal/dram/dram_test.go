package dram

import (
	"testing"
	"testing/quick"

	"sara/internal/sim"
	"sara/internal/txn"
)

func testConfig() Config { return PaperConfig(1866) }

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	bad := testConfig()
	bad.Timing.BL = 3
	if err := bad.Validate(); err == nil {
		t.Fatal("odd burst length accepted")
	}
	bad = testConfig()
	bad.Geometry.Channels = 3
	if err := bad.Validate(); err == nil {
		t.Fatal("non-power-of-two channels accepted")
	}
	bad = testConfig()
	bad.DataRateMTps = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero data rate accepted")
	}
	bad = testConfig()
	bad.Timing.TRAS = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("tRAS below tRCD accepted")
	}
}

func TestPaperTimingMatchesTable1(t *testing.T) {
	tm := PaperTiming()
	if tm.CL != 36 || tm.TRCD != 34 || tm.TRP != 34 {
		t.Fatalf("CL-tRCD-tRP = %d-%d-%d, want 36-34-34", tm.CL, tm.TRCD, tm.TRP)
	}
	if tm.TWTR != 19 || tm.TRTP != 14 || tm.TWR != 34 {
		t.Fatalf("tWTR-tRTP-tWR = %d-%d-%d, want 19-14-34", tm.TWTR, tm.TRTP, tm.TWR)
	}
	if tm.TRRD != 19 || tm.TFAW != 75 {
		t.Fatalf("tRRD-tFAW = %d-%d, want 19-75", tm.TRRD, tm.TFAW)
	}
	g := PaperGeometry()
	if g.Channels != 2 || g.Ranks != 2 || g.Banks != 8 {
		t.Fatalf("channels-ranks-banks = %d-%d-%d, want 2-2-8", g.Channels, g.Ranks, g.Banks)
	}
}

func TestClockAndRates(t *testing.T) {
	cfg := testConfig()
	if hz := cfg.ClockHz(); hz != 933e6 {
		t.Fatalf("clock %v Hz, want 933e6", hz)
	}
	// 933 MB/s is exactly one byte per command-clock cycle.
	if bpc := cfg.BytesPerCycle(933e6); bpc != 1.0 {
		t.Fatalf("BytesPerCycle(933e6) = %v, want 1", bpc)
	}
	if c := cfg.CyclesFromSeconds(1e-6); c != 933 {
		t.Fatalf("1us = %d cycles, want 933", c)
	}
	peak := cfg.PeakBandwidthGBps()
	if peak < 29.8 || peak > 29.9 {
		t.Fatalf("peak bandwidth %.2f GB/s, want ~29.86", peak)
	}
}

func TestAddressMapperRoundTrip(t *testing.T) {
	cfg := testConfig()
	m := NewAddressMapper(cfg.Geometry, cfg.Timing)
	f := func(raw uint64) bool {
		// Restrict to 2 GB (Table 1 volume) and burst alignment.
		addr := txn.Addr(raw % (2 << 30) &^ uint64(m.BurstBytes()-1))
		loc := m.Decode(addr)
		return m.Encode(loc) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddressMapperChannelInterleave(t *testing.T) {
	cfg := testConfig()
	m := NewAddressMapper(cfg.Geometry, cfg.Timing)
	bb := txn.Addr(m.BurstBytes())
	// Consecutive bursts alternate channels.
	if m.Channel(0) == m.Channel(bb) {
		t.Fatal("consecutive bursts mapped to same channel")
	}
	if m.Channel(0) != m.Channel(2*bb) {
		t.Fatal("stride-2 bursts should return to the same channel")
	}
}

func TestAddressMapperSequentialRowLocality(t *testing.T) {
	cfg := testConfig()
	m := NewAddressMapper(cfg.Geometry, cfg.Timing)
	// Walking one channel's bursts within a row should keep bank and row
	// fixed while the column advances.
	first := m.Decode(0)
	colsPerRow := cfg.Geometry.RowBytes / m.BurstBytes()
	for i := 1; i < colsPerRow; i++ {
		addr := txn.Addr(i * m.BurstBytes() * cfg.Geometry.Channels)
		loc := m.Decode(addr)
		if loc.Row != first.Row || loc.Bank != first.Bank || loc.Channel != first.Channel {
			t.Fatalf("burst %d left the row: %+v vs %+v", i, loc, first)
		}
		if loc.Col != uint64(i) {
			t.Fatalf("burst %d col = %d", i, loc.Col)
		}
	}
}

func TestBankStateMachine(t *testing.T) {
	d := New(testConfig())
	loc := Location{Channel: 0, Rank: 0, Bank: 0, Row: 5}
	tm := d.Config().Timing

	if st, _ := d.State(loc); st != BankClosed {
		t.Fatal("bank should start closed")
	}
	if !d.CanActivate(loc, 0) {
		t.Fatal("fresh bank should accept ACT")
	}
	d.Activate(loc, 0)
	if st, row := d.State(loc); st != BankOpen || row != 5 {
		t.Fatalf("bank state %v row %d after ACT", st, row)
	}
	if d.CanRead(loc, 0) {
		t.Fatal("READ must wait tRCD")
	}
	if !d.CanRead(loc, tm.TRCD) {
		t.Fatal("READ should be legal at tRCD")
	}
	done := d.Read(loc, tm.TRCD)
	if want := tm.TRCD + tm.CL + tm.BurstCycles(); done != want {
		t.Fatalf("read data end %d, want %d", done, want)
	}
	if !d.RowHit(loc) {
		t.Fatal("open matching row should be a hit")
	}
	other := loc
	other.Row = 9
	if d.RowHit(other) {
		t.Fatal("different row must not be a hit")
	}
}

func TestPrechargeRespectsTRASAndTRP(t *testing.T) {
	d := New(testConfig())
	tm := d.Config().Timing
	loc := Location{Row: 1}
	d.Activate(loc, 0)
	if d.CanPrecharge(loc, tm.TRCD) {
		t.Fatal("PRE before tRAS accepted")
	}
	if !d.CanPrecharge(loc, tm.TRAS) {
		t.Fatal("PRE at tRAS rejected")
	}
	d.Precharge(loc, tm.TRAS)
	if d.CanActivate(loc, tm.TRAS+1) {
		t.Fatal("ACT before tRP accepted")
	}
	if !d.CanActivate(loc, tm.TRAS+tm.TRP) {
		t.Fatal("ACT at tRP rejected")
	}
}

func TestTRRDBetweenBanks(t *testing.T) {
	d := New(testConfig())
	tm := d.Config().Timing
	a := Location{Bank: 0, Row: 1}
	b := Location{Bank: 1, Row: 1}
	d.Activate(a, 0)
	if d.CanActivate(b, tm.TRRD-1) {
		t.Fatal("ACT before tRRD accepted")
	}
	if !d.CanActivate(b, tm.TRRD) {
		t.Fatal("ACT at tRRD rejected")
	}
}

func TestTFAWFourActivateWindow(t *testing.T) {
	d := New(testConfig())
	tm := d.Config().Timing
	now := sim.Cycle(0)
	for bank := 0; bank < 4; bank++ {
		loc := Location{Bank: bank, Row: 1}
		for !d.CanActivate(loc, now) {
			now++
		}
		d.Activate(loc, now)
	}
	fifth := Location{Bank: 4, Row: 1}
	// The fifth activate must wait until tFAW after the first, even once
	// tRRD from the fourth has long passed.
	if now+tm.TRRD < tm.TFAW && d.CanActivate(fifth, now+tm.TRRD) {
		t.Fatalf("fifth ACT allowed at %d, inside the tFAW window", now+tm.TRRD)
	}
	earliest := tm.TFAW
	if now+tm.TRRD > earliest {
		earliest = now + tm.TRRD
	}
	if !d.CanActivate(fifth, earliest) {
		t.Fatalf("fifth ACT rejected at %d (tFAW %d, last+tRRD %d)", earliest, tm.TFAW, now+tm.TRRD)
	}
	// A different rank has its own window.
	otherRank := Location{Rank: 1, Bank: 0, Row: 1}
	if !d.CanActivate(otherRank, now+tm.TRRD) {
		t.Fatal("other rank should not share the tFAW window")
	}
}

func TestDataBusSerializesBursts(t *testing.T) {
	d := New(testConfig())
	tm := d.Config().Timing
	a := Location{Bank: 0, Row: 1}
	b := Location{Bank: 1, Row: 1}
	d.Activate(a, 0)
	d.Activate(b, tm.TRRD)
	start := tm.TRRD + tm.TRCD
	d.Read(a, start)
	// A second CAS on the same channel must respect tCCD.
	if d.CanRead(b, start+1) {
		t.Fatal("second READ inside tCCD accepted")
	}
	if !d.CanRead(b, start+tm.TCCD) {
		t.Fatal("second READ at tCCD rejected")
	}
	// A different channel's bus is independent.
	c := Location{Channel: 1, Bank: 0, Row: 1}
	d.Activate(c, 0)
	if !d.CanRead(c, start+1) {
		t.Fatal("other channel should have a free bus")
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	d := New(testConfig())
	tm := d.Config().Timing
	a := Location{Bank: 0, Row: 1}
	b := Location{Bank: 1, Row: 1}
	d.Activate(a, 0)
	d.Activate(b, tm.TRRD)
	start := tm.TRRD + tm.TRCD
	dataEnd := d.Write(a, start)
	if d.CanRead(b, dataEnd+tm.TWTR-1) {
		t.Fatal("READ inside tWTR accepted")
	}
	if !d.CanRead(b, dataEnd+tm.TWTR) {
		t.Fatal("READ at tWTR rejected")
	}
}

func TestWriteRecoveryBeforePrecharge(t *testing.T) {
	d := New(testConfig())
	tm := d.Config().Timing
	loc := Location{Row: 3}
	d.Activate(loc, 0)
	dataEnd := d.Write(loc, tm.TRCD)
	if d.CanPrecharge(loc, dataEnd+tm.TWR-1) {
		t.Fatal("PRE inside tWR accepted")
	}
	if !d.CanPrecharge(loc, dataEnd+tm.TWR) {
		t.Fatal("PRE at tWR rejected")
	}
}

func TestIllegalCommandsPanic(t *testing.T) {
	for name, fn := range map[string]func(*DRAM){
		"read closed bank": func(d *DRAM) { d.Read(Location{Row: 1}, 0) },
		"precharge closed": func(d *DRAM) { d.Precharge(Location{}, 0) },
		"double activate":  func(d *DRAM) { d.Activate(Location{Row: 1}, 0); d.Activate(Location{Row: 2}, 1) },
		"write wrong row":  func(d *DRAM) { d.Activate(Location{Row: 1}, 0); d.Write(Location{Row: 2}, 100) },
		"read before tRCD": func(d *DRAM) { d.Activate(Location{Row: 1}, 0); d.Read(Location{Row: 1}, 1) },
	} {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn(New(testConfig()))
		})
	}
}

func TestReservation(t *testing.T) {
	d := New(testConfig())
	loc := Location{Row: 1}
	d.Reserve(loc, 42)
	if got := d.ReservedBy(loc); got != 42 {
		t.Fatalf("reserved by %d, want 42", got)
	}
	d.Release(loc, 7) // wrong owner: no-op
	if got := d.ReservedBy(loc); got != 42 {
		t.Fatal("release by non-owner cleared reservation")
	}
	d.Release(loc, 42)
	if got := d.ReservedBy(loc); got != 0 {
		t.Fatal("release by owner did not clear reservation")
	}
}

func TestReserveConflictPanics(t *testing.T) {
	d := New(testConfig())
	loc := Location{Row: 1}
	d.Reserve(loc, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on conflicting reservation")
		}
	}()
	d.Reserve(loc, 2)
}

func TestStatsAndBandwidth(t *testing.T) {
	d := New(testConfig())
	tm := d.Config().Timing
	loc := Location{Row: 1}
	d.Activate(loc, 0)
	d.Read(loc, tm.TRCD)
	d.Read(loc, tm.TRCD+tm.TCCD)
	st := d.Stats().Totals()
	if st.ReadBursts != 2 || st.Activates != 1 {
		t.Fatalf("stats %+v, want 2 reads 1 activate", st)
	}
	wantBytes := uint64(2 * d.Config().Geometry.BurstBytes(tm))
	if st.BytesMoved != wantBytes {
		t.Fatalf("bytes %d, want %d", st.BytesMoved, wantBytes)
	}
	if hr := d.RowHitRate(); hr != 0.5 {
		t.Fatalf("row hit rate %.2f, want 0.5 (1 hit of 2 CAS)", hr)
	}
	if bw := d.AverageBandwidthGBps(933); bw <= 0 {
		t.Fatalf("bandwidth %v, want positive", bw)
	}
}

func TestRandomizedCommandLegality(t *testing.T) {
	// Property: driving the device with a random-but-legal command stream
	// never panics and never lets two bursts overlap on a channel's bus.
	d := New(testConfig())
	tm := d.Config().Timing
	rng := uint64(12345)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int(rng>>33) % n
	}
	var busFree [2]sim.Cycle
	for now := sim.Cycle(0); now < 20000; now++ {
		loc := Location{
			Channel: next(2),
			Rank:    next(2),
			Bank:    next(8),
			Row:     uint64(next(4)),
		}
		switch next(4) {
		case 0:
			if d.CanActivate(loc, now) {
				d.Activate(loc, now)
			}
		case 1:
			if st, row := d.State(loc); st == BankOpen {
				loc.Row = row
				if d.CanRead(loc, now) {
					start := now + tm.CL
					if start < busFree[loc.Channel] {
						t.Fatalf("read burst overlaps bus at %d", now)
					}
					busFree[loc.Channel] = d.Read(loc, now)
				}
			}
		case 2:
			if st, row := d.State(loc); st == BankOpen {
				loc.Row = row
				if d.CanWrite(loc, now) {
					start := now + tm.CWL
					if start < busFree[loc.Channel] {
						t.Fatalf("write burst overlaps bus at %d", now)
					}
					busFree[loc.Channel] = d.Write(loc, now)
				}
			}
		case 3:
			if d.CanPrecharge(loc, now) {
				d.Precharge(loc, now)
			}
		}
	}
	if d.Stats().Totals().BytesMoved == 0 {
		t.Fatal("random driver moved no data")
	}
}
