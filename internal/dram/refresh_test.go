package dram

import (
	"testing"
	"testing/quick"

	"sara/internal/sim"
)

func refreshConfig() Config {
	cfg := PaperConfig(1866)
	cfg.Refresh = cfg.DefaultRefresh()
	return cfg
}

func TestRefreshConfigValidate(t *testing.T) {
	if err := refreshConfig().Validate(); err != nil {
		t.Fatalf("default refresh config invalid: %v", err)
	}
	bad := refreshConfig()
	bad.Refresh.TRFC = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero tRFC accepted")
	}
	bad = refreshConfig()
	bad.Refresh.TRFC = bad.Refresh.TREFI
	if err := bad.Validate(); err == nil {
		t.Fatal("tRFC >= tREFI accepted")
	}
	bad = refreshConfig()
	bad.Refresh.Window = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero postponement window accepted")
	}
	// The zero value stays valid: refresh disabled.
	off := PaperConfig(1866)
	if err := off.Validate(); err != nil {
		t.Fatalf("refresh-free config invalid: %v", err)
	}
	if New(off).RefreshEnabled() {
		t.Fatal("refresh enabled on a refresh-free config")
	}
}

func TestDefaultRefreshDerivation(t *testing.T) {
	cfg := PaperConfig(1866)
	r := cfg.DefaultRefresh()
	// 3.904 us and 280 ns at the 933 MHz command clock.
	if r.TREFI != 3642 {
		t.Fatalf("tREFI = %d cycles, want 3642", r.TREFI)
	}
	if r.TRFC != 261 {
		t.Fatalf("tRFC = %d cycles, want 261", r.TRFC)
	}
	if r.Window != 8 {
		t.Fatalf("window = %d, want 8 (JEDEC)", r.Window)
	}
}

// TestRefreshOwedAccrual pins the tREFI accounting: one refresh becomes
// owed per elapsed tREFI slot, independent of how often the state is
// queried (the property idle skipping relies on).
func TestRefreshOwedAccrual(t *testing.T) {
	d := New(refreshConfig())
	trefi := d.Config().Refresh.TREFI
	if got := d.RefreshOwed(0, 0, trefi-1); got != 0 {
		t.Fatalf("owed %d before first boundary, want 0", got)
	}
	if got := d.RefreshOwed(0, 0, trefi); got != 1 {
		t.Fatalf("owed %d at first boundary, want 1", got)
	}
	if got := d.NextRefreshBoundary(0, 0, trefi); got != 2*trefi {
		t.Fatalf("next boundary %d, want %d", got, 2*trefi)
	}
	// Jumping far ahead in one query accrues every missed slot at once.
	if got := New(refreshConfig()).RefreshOwed(0, 0, 5*trefi+1); got != 5 {
		t.Fatalf("owed %d after 5 slots, want 5", got)
	}
}

// TestRefreshStaggeredPhases pins the anti-alignment property: every rank
// of the device gets a distinct tREFI phase, spread evenly over the
// interval, so the per-rank blackouts can never all land on one cycle.
func TestRefreshStaggeredPhases(t *testing.T) {
	d := New(refreshConfig())
	g := d.Config().Geometry
	trefi := d.Config().Refresh.TREFI
	total := sim.Cycle(g.Channels * g.Ranks)
	seen := map[sim.Cycle]bool{}
	for ch := 0; ch < g.Channels; ch++ {
		for r := 0; r < g.Ranks; r++ {
			idx := sim.Cycle(ch*g.Ranks + r)
			want := trefi + idx*trefi/total
			got := d.NextRefreshBoundary(ch, r, 0)
			if got != want {
				t.Fatalf("rank (%d,%d) first boundary %d, want %d", ch, r, got, want)
			}
			if seen[got] {
				t.Fatalf("rank (%d,%d) shares boundary %d with another rank", ch, r, got)
			}
			seen[got] = true
		}
	}
}

// TestRefreshGolden walks one rank through a hand-computed REF schedule:
// the REF is legal exactly when every bank is closed and past its
// activate gate, the tRFC blackout blocks activates until it ends, and
// back-to-back REFs space by tRFC.
func TestRefreshGolden(t *testing.T) {
	d := New(refreshConfig())
	ref := d.Config().Refresh
	tm := d.Config().Timing

	// Fresh device: all banks closed, REF legal immediately (pull-in).
	if !d.CanRefresh(0, 0, 0) {
		t.Fatal("fresh rank should accept REF")
	}
	d.Refresh(0, 0, 0)
	if got := d.BlackoutEnd(0, 0); got != ref.TRFC {
		t.Fatalf("blackout end %d, want %d", got, ref.TRFC)
	}
	// Blackout: no ACT, no second REF, until exactly tRFC.
	loc := Location{Row: 1}
	if d.CanActivate(loc, ref.TRFC-1) {
		t.Fatal("ACT inside the tRFC blackout accepted")
	}
	if d.CanRefresh(0, 0, ref.TRFC-1) {
		t.Fatal("REF inside the tRFC blackout accepted")
	}
	if !d.CanActivate(loc, ref.TRFC) {
		t.Fatal("ACT at blackout end rejected")
	}
	if !d.CanRefresh(0, 0, ref.TRFC) {
		t.Fatal("REF at blackout end rejected")
	}
	// The other rank is independent.
	if !d.CanRefresh(0, 1, 1) {
		t.Fatal("other rank should refresh during this rank's blackout")
	}

	// An open row blocks REF until precharged and past tRP.
	d.Activate(loc, ref.TRFC)
	if _, closed := d.RefreshReadyAt(0, 0); closed {
		t.Fatal("open bank reported as REF-ready")
	}
	if d.CanRefresh(0, 0, ref.TRFC+tm.TRAS+tm.TRP) {
		t.Fatal("REF accepted with an open row")
	}
	d.Precharge(loc, ref.TRFC+tm.TRAS)
	preDone := ref.TRFC + tm.TRAS + tm.TRP
	if d.CanRefresh(0, 0, preDone-1) {
		t.Fatal("REF inside tRP after PRE accepted")
	}
	at, closed := d.RefreshReadyAt(0, 0)
	if !closed || at != preDone {
		t.Fatalf("REF ready at %d (closed=%v), want %d", at, closed, preDone)
	}
	d.Refresh(0, 0, preDone)
	if got := d.Stats().Channels[0].Refreshes; got != 2 {
		t.Fatalf("channel 0 refreshes = %d, want 2", got)
	}
}

// TestRefreshPullInWindow pins the JEDEC pull-in bound: a rank may bank at
// most Window refreshes ahead of schedule.
func TestRefreshPullInWindow(t *testing.T) {
	d := New(refreshConfig())
	ref := d.Config().Refresh
	now := sim.Cycle(0)
	for i := 0; i < ref.Window; i++ {
		if !d.CanRefresh(0, 0, now) {
			t.Fatalf("pull-in REF %d rejected at %d", i, now)
		}
		d.Refresh(0, 0, now)
		now += ref.TRFC
	}
	if got := d.RefreshOwed(0, 0, now); got != -ref.Window {
		t.Fatalf("owed %d after full pull-in, want %d", got, -ref.Window)
	}
	if d.CanRefresh(0, 0, now) {
		t.Fatal("REF beyond the pull-in window accepted")
	}
	// The next boundary restores one credit.
	if !d.CanRefresh(0, 0, ref.TREFI) {
		t.Fatal("REF rejected after a boundary restored credit")
	}
}

func TestIllegalRefreshPanics(t *testing.T) {
	d := New(refreshConfig())
	d.Activate(Location{Row: 1}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("REF with an open row did not panic")
		}
	}()
	d.Refresh(0, 0, 1000)
}

func TestRefreshDisabledDevice(t *testing.T) {
	d := New(PaperConfig(1866))
	if d.CanRefresh(0, 0, 1_000_000) {
		t.Fatal("refresh-free device accepted REF")
	}
	if d.RefreshForced(0, 0, 1<<40) {
		t.Fatal("refresh-free device reported forced refresh")
	}
	if got := d.RefreshDuty(1 << 40); got != 0 {
		t.Fatalf("refresh-free duty %v, want 0", got)
	}
}

// TestQuickNoCommandInBlackout is the blackout property: driving the
// device with a random-but-legal command stream — activates, CAS,
// precharges and refreshes — never lets any command reach a rank inside
// its tRFC blackout, and never exceeds the postponement accounting the
// device exposes.
func TestQuickNoCommandInBlackout(t *testing.T) {
	prop := func(seed uint64) bool {
		cfg := refreshConfig()
		// Shrink tREFI so thousands of cycles cover many boundaries.
		cfg.Refresh.TREFI = 500
		cfg.Refresh.TRFC = 60
		d := New(cfg)
		rng := seed | 1
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int(rng>>33) % n
		}
		var blackoutEnd [2][2]sim.Cycle
		for now := sim.Cycle(0); now < 30000; now++ {
			ch, rk := next(2), next(2)
			loc := Location{Channel: ch, Rank: rk, Bank: next(8), Row: uint64(next(4))}
			// Alternate churn and drain phases: pure random traffic keeps
			// some bank of every rank open almost forever, and a REF needs
			// the whole rank closed. The drain phase (PRE/REF only) lets
			// ranks quiesce so refresh actually interleaves with traffic.
			op := next(5)
			if now%1000 >= 700 {
				op = 3 + next(2)
			}
			switch op {
			case 0:
				if d.CanActivate(loc, now) {
					if now < blackoutEnd[ch][rk] {
						t.Errorf("seed %d: ACT at %d inside blackout ending %d", seed, now, blackoutEnd[ch][rk])
						return false
					}
					d.Activate(loc, now)
				}
			case 1:
				if st, row := d.State(loc); st == BankOpen {
					loc.Row = row
					if d.CanRead(loc, now) {
						if now < blackoutEnd[ch][rk] {
							t.Errorf("seed %d: READ at %d inside blackout", seed, now)
							return false
						}
						d.Read(loc, now)
					}
				}
			case 2:
				if st, row := d.State(loc); st == BankOpen {
					loc.Row = row
					if d.CanWrite(loc, now) {
						if now < blackoutEnd[ch][rk] {
							t.Errorf("seed %d: WRITE at %d inside blackout", seed, now)
							return false
						}
						d.Write(loc, now)
					}
				}
			case 3:
				if d.CanPrecharge(loc, now) {
					if now < blackoutEnd[ch][rk] {
						t.Errorf("seed %d: PRE at %d inside blackout", seed, now)
						return false
					}
					d.Precharge(loc, now)
				}
			case 4:
				if d.CanRefresh(ch, rk, now) {
					if now < blackoutEnd[ch][rk] {
						t.Errorf("seed %d: REF at %d inside blackout", seed, now)
						return false
					}
					d.Refresh(ch, rk, now)
					blackoutEnd[ch][rk] = now + cfg.Refresh.TRFC
					if got := d.BlackoutEnd(ch, rk); got != blackoutEnd[ch][rk] {
						t.Errorf("seed %d: BlackoutEnd %d, want %d", seed, got, blackoutEnd[ch][rk])
						return false
					}
				}
				// The pull-in bound must hold at every step.
				if owed := d.RefreshOwed(ch, rk, now); owed < -cfg.Refresh.Window {
					t.Errorf("seed %d: owed %d beyond pull-in window", seed, owed)
					return false
				}
			}
		}
		if d.Stats().Totals().Refreshes == 0 {
			t.Errorf("seed %d: random driver issued no REF", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
