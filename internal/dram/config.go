// Package dram implements a cycle-accurate LPDDR4 DRAM model in the spirit
// of DRAMSim2: channels, ranks and banks with open-page row buffers, the
// full set of inter-command timing constraints from the paper's Table 1
// (CL, tRCD, tRP, tWTR, tRTP, tWR, tRRD, tFAW), per-rank all-bank refresh
// (tREFI, tRFC, the JEDEC 8-deep postponement/pull-in window), a shared
// data bus per channel, and row-hit/miss/conflict accounting.
//
// The model is passive: it exposes CanActivate/CanRead/CanRefresh/...
// predicates and the corresponding command issuers, and the memory
// controller drives it one command per channel per cycle. All state is
// expressed as "earliest cycle at which X may happen" timestamps — a REF,
// for example, simply pushes every activate gate of its rank past the
// tRFC blackout — so no per-cycle bookkeeping is needed inside the DRAM
// itself.
package dram

import (
	"fmt"

	"sara/internal/sim"
)

// Timing holds the inter-command constraints in command-clock cycles.
// Field names follow JEDEC convention.
type Timing struct {
	CL   sim.Cycle // read CAS latency (command to first data beat)
	CWL  sim.Cycle // write CAS latency
	TRCD sim.Cycle // activate to CAS
	TRP  sim.Cycle // precharge to activate
	TRAS sim.Cycle // activate to precharge (minimum row-open time)
	TWTR sim.Cycle // write data end to read command (same rank)
	TRTP sim.Cycle // read command to precharge
	TWR  sim.Cycle // write data end to precharge (write recovery)
	TRRD sim.Cycle // activate to activate, different banks, same rank
	TFAW sim.Cycle // window containing at most four activates per rank
	TCCD sim.Cycle // CAS to CAS, same channel (burst gap)
	BL   int       // burst length in beats (data beats per CAS)
}

// PaperTiming returns the LPDDR4 timing set from Table 1 of the paper:
// CL-tRCD-tRP = 36-34-34, tWTR-tRTP-tWR = 19-14-34, tRRD-tFAW = 19-75.
// Values not listed in the table (CWL, tRAS, tCCD) use LPDDR4-typical
// derivations.
func PaperTiming() Timing {
	return Timing{
		CL:   36,
		CWL:  18, // LPDDR4 write latency is roughly half the read latency
		TRCD: 34,
		TRP:  34,
		TRAS: 48, // tRCD + data window; Table 1 omits tRAS
		TWTR: 19,
		TRTP: 14,
		TWR:  34,
		TRRD: 19,
		TFAW: 75,
		TCCD: 8, // BL/2 on the command clock: back-to-back bursts
		BL:   16,
	}
}

// BurstCycles reports how many command-clock cycles one burst occupies the
// data bus (BL beats at two beats per clock).
func (t Timing) BurstCycles() sim.Cycle { return sim.Cycle(t.BL / 2) }

// RefreshConfig parameterizes per-rank all-bank refresh (REFab). The zero
// value disables refresh entirely, preserving the refresh-free model.
type RefreshConfig struct {
	// Enabled turns refresh modeling on.
	Enabled bool
	// TREFI is the average refresh interval in command-clock cycles: one
	// refresh becomes owed per rank every TREFI cycles.
	TREFI sim.Cycle
	// TRFC is the refresh cycle time: after a REF issues, the rank accepts
	// no command for TRFC cycles (the blackout).
	TRFC sim.Cycle
	// Window is the JEDEC postponement/pull-in depth: at most Window
	// refreshes may be postponed past their tREFI slots, and at most
	// Window may be banked in advance (LPDDR4: 8).
	Window int
}

// Validate reports an error for non-physical refresh settings.
func (r RefreshConfig) Validate() error {
	if !r.Enabled {
		return nil
	}
	if r.TREFI == 0 || r.TRFC == 0 {
		return fmt.Errorf("dram: refresh enabled with tREFI=%d tRFC=%d; both must be non-zero", r.TREFI, r.TRFC)
	}
	if r.TRFC >= r.TREFI {
		return fmt.Errorf("dram: tRFC (%d) must be below tREFI (%d)", r.TRFC, r.TREFI)
	}
	if r.Window < 1 {
		return fmt.Errorf("dram: refresh window %d must be at least 1", r.Window)
	}
	return nil
}

// Validate reports an error for non-physical settings.
func (t Timing) Validate() error {
	if t.BL <= 0 || t.BL%2 != 0 {
		return fmt.Errorf("dram: burst length %d must be positive and even", t.BL)
	}
	if t.CL == 0 || t.TRCD == 0 || t.TRP == 0 {
		return fmt.Errorf("dram: CL/tRCD/tRP must be non-zero")
	}
	if t.TRAS < t.TRCD {
		return fmt.Errorf("dram: tRAS (%d) below tRCD (%d)", t.TRAS, t.TRCD)
	}
	if t.TFAW < t.TRRD {
		return fmt.Errorf("dram: tFAW (%d) below tRRD (%d)", t.TFAW, t.TRRD)
	}
	return nil
}

// Geometry describes the channel/rank/bank organization and the address
// layout of the device.
type Geometry struct {
	Channels int // independent channels, each with its own bus and MC
	Ranks    int // ranks per channel
	Banks    int // banks per rank
	RowBytes int // bytes per row (row-buffer size)
	BusBytes int // data-bus width in bytes
}

// PaperGeometry returns Table 1's organization: 2 channels, 2 ranks,
// 8 banks, with a 2 KiB row buffer and an 8-byte bus (two byte-mode x32
// LPDDR4 die pairs per channel).
func PaperGeometry() Geometry {
	return Geometry{Channels: 2, Ranks: 2, Banks: 8, RowBytes: 2048, BusBytes: 8}
}

// BurstBytes reports the bytes moved by one CAS command.
func (g Geometry) BurstBytes(t Timing) int { return g.BusBytes * t.BL }

// Validate reports an error for non-physical settings.
func (g Geometry) Validate(t Timing) error {
	if g.Channels <= 0 || g.Ranks <= 0 || g.Banks <= 0 {
		return fmt.Errorf("dram: channels/ranks/banks must be positive")
	}
	if g.RowBytes <= 0 || g.BusBytes <= 0 {
		return fmt.Errorf("dram: row and bus sizes must be positive")
	}
	bb := g.BurstBytes(t)
	if g.RowBytes%bb != 0 {
		return fmt.Errorf("dram: row size %d not a multiple of burst size %d", g.RowBytes, bb)
	}
	for _, v := range []int{g.Channels, g.Ranks, g.Banks, g.RowBytes, g.BusBytes} {
		if v&(v-1) != 0 {
			return fmt.Errorf("dram: geometry values must be powers of two, got %d", v)
		}
	}
	return nil
}

// Config bundles everything needed to build a DRAM instance.
type Config struct {
	Timing   Timing
	Geometry Geometry
	// DataRateMTps is the I/O data rate in mega-transfers per second
	// (e.g. 1866). The command clock runs at half that rate, and one
	// simulator cycle equals one command-clock cycle.
	DataRateMTps int
	// Refresh models per-rank all-bank refresh; the zero value disables it.
	Refresh RefreshConfig
}

// PaperConfig returns the Table 1 configuration at the given data rate.
func PaperConfig(mtps int) Config {
	return Config{Timing: PaperTiming(), Geometry: PaperGeometry(), DataRateMTps: mtps}
}

// ClockHz reports the command-clock frequency in hertz.
func (c Config) ClockHz() float64 { return float64(c.DataRateMTps) / 2 * 1e6 }

// DefaultRefresh returns JEDEC LPDDR4 all-bank refresh timing for an 8 Gb
// die at this configuration's command clock — tREFI = 3.904 us, tRFCab =
// 280 ns — with the standard 8-deep postponement/pull-in window.
func (c Config) DefaultRefresh() RefreshConfig {
	return RefreshConfig{
		Enabled: true,
		TREFI:   c.CyclesFromSeconds(3.904e-6),
		TRFC:    c.CyclesFromSeconds(280e-9),
		Window:  8,
	}
}

// BytesPerCycle converts a real-time rate in bytes/second into the
// bytes-per-command-clock-cycle the simulator works in.
func (c Config) BytesPerCycle(bytesPerSecond float64) float64 {
	return bytesPerSecond / c.ClockHz()
}

// CyclesFromSeconds converts wall-clock seconds into command-clock cycles.
func (c Config) CyclesFromSeconds(s float64) sim.Cycle {
	return sim.Cycle(s * c.ClockHz())
}

// PeakBandwidthGBps reports the theoretical peak across all channels.
func (c Config) PeakBandwidthGBps() float64 {
	bytesPerSec := float64(c.DataRateMTps) * 1e6 * float64(c.Geometry.BusBytes) * float64(c.Geometry.Channels)
	return bytesPerSec / 1e9
}

// Validate checks the full configuration.
func (c Config) Validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if err := c.Geometry.Validate(c.Timing); err != nil {
		return err
	}
	if c.DataRateMTps <= 0 {
		return fmt.Errorf("dram: data rate must be positive, got %d", c.DataRateMTps)
	}
	if err := c.Refresh.Validate(); err != nil {
		return err
	}
	return nil
}
