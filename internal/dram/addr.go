package dram

import (
	"math/bits"

	"sara/internal/txn"
)

// Location is a fully decoded DRAM coordinate.
type Location struct {
	Channel int
	Rank    int
	Bank    int
	Row     uint64
	Col     uint64 // column in burst units within the row
}

// AddressMapper translates physical addresses into DRAM coordinates.
//
// The layout, from least-significant bit upward, is
//
//	[burst offset][channel][column][bank][rank][row]
//
// i.e. consecutive bursts interleave across channels, then walk the columns
// of one row. This gives sequential streams high row-buffer locality while
// still using both channels, which is the layout the paper's evaluation
// implies (streaming cores enjoy row hits; channel interleaving balances
// load).
type AddressMapper struct {
	geo Geometry

	burstShift   uint
	channelShift uint
	channelMask  uint64
	colShift     uint
	colMask      uint64
	bankShift    uint
	bankMask     uint64
	rankShift    uint
	rankMask     uint64
	rowShift     uint
}

// NewAddressMapper builds a mapper for the given geometry and timing.
func NewAddressMapper(g Geometry, t Timing) *AddressMapper {
	m := &AddressMapper{geo: g}
	burstBytes := g.BurstBytes(t)
	m.burstShift = uint(bits.TrailingZeros(uint(burstBytes)))

	m.channelShift = m.burstShift
	chBits := uint(bits.TrailingZeros(uint(g.Channels)))
	m.channelMask = uint64(g.Channels - 1)

	colsPerRow := g.RowBytes / burstBytes
	m.colShift = m.channelShift + chBits
	colBits := uint(bits.TrailingZeros(uint(colsPerRow)))
	m.colMask = uint64(colsPerRow - 1)

	m.bankShift = m.colShift + colBits
	bankBits := uint(bits.TrailingZeros(uint(g.Banks)))
	m.bankMask = uint64(g.Banks - 1)

	m.rankShift = m.bankShift + bankBits
	rankBits := uint(bits.TrailingZeros(uint(g.Ranks)))
	m.rankMask = uint64(g.Ranks - 1)

	m.rowShift = m.rankShift + rankBits
	return m
}

// Decode translates addr into a Location.
//
//sara:hotpath
func (m *AddressMapper) Decode(addr txn.Addr) Location {
	a := uint64(addr)
	return Location{
		Channel: int((a >> m.channelShift) & m.channelMask),
		Col:     (a >> m.colShift) & m.colMask,
		Bank:    int((a >> m.bankShift) & m.bankMask),
		Rank:    int((a >> m.rankShift) & m.rankMask),
		Row:     a >> m.rowShift,
	}
}

// Channel reports just the channel of addr (hot path for NoC routing).
func (m *AddressMapper) Channel(addr txn.Addr) int {
	return int((uint64(addr) >> m.channelShift) & m.channelMask)
}

// BurstBytes reports the bytes per CAS burst for this mapper's geometry.
func (m *AddressMapper) BurstBytes() int { return 1 << m.burstShift }

// Encode is the inverse of Decode; it is used by tests and by synthetic
// traffic generators that want to target a specific bank or row.
func (m *AddressMapper) Encode(loc Location) txn.Addr {
	a := loc.Row << m.rowShift
	a |= (uint64(loc.Rank) & m.rankMask) << m.rankShift
	a |= (uint64(loc.Bank) & m.bankMask) << m.bankShift
	a |= (loc.Col & m.colMask) << m.colShift
	a |= (uint64(loc.Channel) & m.channelMask) << m.channelShift
	return txn.Addr(a)
}
