package dram

import (
	"fmt"

	"sara/internal/sim"
)

// BankState is the row-buffer state of one bank.
type BankState uint8

const (
	// BankClosed means no row is in the row buffer.
	BankClosed BankState = iota
	// BankOpen means a row is active in the row buffer.
	BankOpen
)

// bank holds per-bank timing and row-buffer state.
type bank struct {
	state BankState
	row   uint64

	nextActivate  sim.Cycle // earliest ACT
	nextRead      sim.Cycle // earliest READ CAS
	nextWrite     sim.Cycle // earliest WRITE CAS
	nextPrecharge sim.Cycle // earliest PRE

	// reservedBy is the ID of the transaction currently walking this bank
	// through PRE/ACT on its behalf, or 0 when free. The memory controller
	// maintains it to prevent precharge/activate thrash between competing
	// transactions; the DRAM model stores it because the bank is the
	// natural owner.
	reservedBy uint64
}

// rank tracks the constraints shared by all banks of a rank.
type rank struct {
	// actHistory holds the cycles of the most recent activates for the
	// tFAW four-activate window (ring buffer of size 4). actCount tracks
	// how many activates have happened so a slot holding cycle 0 is not
	// mistaken for an empty one.
	actHistory [4]sim.Cycle
	actIdx     int
	actCount   uint64
	lastAct    sim.Cycle // for tRRD
	hasAct     bool

	// All-bank refresh bookkeeping. refBoundary is the next tREFI slot
	// not yet accounted for; refOwed counts refreshes due (negative when
	// pulled in ahead of schedule); refBlackoutEnd is the end of the
	// current tRFC blackout.
	refBoundary    sim.Cycle
	refOwed        int
	refBlackoutEnd sim.Cycle
}

// channel bundles the state of one data bus.
type channel struct {
	// dataFree is the cycle the data bus becomes free.
	dataFree sim.Cycle
	// nextRead/nextWrite gate bus-turnaround between read and write
	// bursts on the shared channel wires.
	nextRead  sim.Cycle
	nextWrite sim.Cycle
	// stats
	readBursts  uint64
	writeBursts uint64
	bytesMoved  uint64
	activates   uint64
	precharges  uint64
	refreshes   uint64
}

// DRAM is the device model. It is driven by the memory controller(s); it
// has no per-cycle work of its own. Banks and ranks live in flat slices
// indexed arithmetically from a Location — the controller probes bank
// state on every queue scan, and a single indexed load beats a walk
// through nested per-channel/per-rank slices.
type DRAM struct {
	cfg      Config
	mapper   *AddressMapper
	banks    []bank // flat [channel][rank][bank]
	ranks    []rank // flat [channel][rank]
	channels []channel
	nRanks   int
	nBanks   int
	// firstIssue/lastIssue bound the active measurement window for
	// average-bandwidth reporting.
	firstIssue sim.Cycle
	lastIssue  sim.Cycle
	anyIssue   bool
}

// New builds a DRAM from cfg. It panics on invalid configuration, because
// configurations are produced by code (not user input) in this library.
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := cfg.Geometry
	d := &DRAM{
		cfg:      cfg,
		mapper:   NewAddressMapper(g, cfg.Timing),
		banks:    make([]bank, g.Channels*g.Ranks*g.Banks),
		ranks:    make([]rank, g.Channels*g.Ranks),
		channels: make([]channel, g.Channels),
		nRanks:   g.Ranks,
		nBanks:   g.Banks,
	}
	if cfg.Refresh.Enabled {
		// Stagger each rank's tREFI phase across the whole device so the
		// per-rank blackouts spread over the interval instead of every
		// rank hitting its postponement wall at the same boundary — an
		// aligned cadence turns forced refresh into a periodic all-rank
		// drain storm that freezes the entire memory system at once.
		n := sim.Cycle(len(d.ranks))
		for i := range d.ranks {
			d.ranks[i].refBoundary = cfg.Refresh.TREFI + sim.Cycle(i)*cfg.Refresh.TREFI/n
		}
	}
	return d
}

// Config returns the configuration the device was built with.
func (d *DRAM) Config() Config { return d.cfg }

// Mapper returns the address mapper shared with the controllers and NoC.
func (d *DRAM) Mapper() *AddressMapper { return d.mapper }

func (d *DRAM) bank(loc Location) *bank {
	return &d.banks[(loc.Channel*d.nRanks+loc.Rank)*d.nBanks+loc.Bank]
}

func (d *DRAM) rank(loc Location) *rank {
	return &d.ranks[loc.Channel*d.nRanks+loc.Rank]
}

// State reports the row-buffer state and open row of the bank at loc.
//
//sara:hotpath
func (d *DRAM) State(loc Location) (BankState, uint64) {
	b := d.bank(loc)
	return b.state, b.row
}

// RowHit reports whether a CAS to loc would hit the open row right now
// (ignoring timing readiness).
func (d *DRAM) RowHit(loc Location) bool {
	b := d.bank(loc)
	return b.state == BankOpen && b.row == loc.Row
}

// ReservedBy reports which transaction holds the bank at loc (0 if none).
func (d *DRAM) ReservedBy(loc Location) uint64 { return d.bank(loc).reservedBy }

// Reserve marks the bank at loc as owned by transaction id. It panics if
// the bank is already reserved by a different transaction, which would
// indicate a scheduler bug.
//
//sara:hotpath
func (d *DRAM) Reserve(loc Location, id uint64) {
	b := d.bank(loc)
	if b.reservedBy != 0 && b.reservedBy != id {
		panic(fmt.Sprintf("dram: bank %v already reserved by txn %d, wanted %d", loc, b.reservedBy, id))
	}
	b.reservedBy = id
}

// Release frees the reservation on the bank at loc if held by id.
//
//sara:hotpath
func (d *DRAM) Release(loc Location, id uint64) {
	b := d.bank(loc)
	if b.reservedBy == id {
		b.reservedBy = 0
	}
}

// --- Activate ---

// CanActivate reports whether an ACT to loc may issue at cycle now.
func (d *DRAM) CanActivate(loc Location, now sim.Cycle) bool {
	b := d.bank(loc)
	if b.state != BankClosed {
		return false
	}
	return d.canActivate(b, d.rank(loc), now)
}

// canActivate checks the ACT timing gates for an already-fetched bank and
// rank (the bank must be closed).
func (d *DRAM) canActivate(b *bank, rk *rank, now sim.Cycle) bool {
	if now < b.nextActivate {
		return false
	}
	if rk.hasAct && now < rk.lastAct+d.cfg.Timing.TRRD {
		return false
	}
	// tFAW: the fourth-most-recent activate must be at least tFAW ago.
	if rk.actCount >= uint64(len(rk.actHistory)) {
		oldest := rk.actHistory[rk.actIdx]
		if now < oldest+d.cfg.Timing.TFAW {
			return false
		}
	}
	return true
}

// Activate opens row loc.Row in the bank at loc. The caller must have
// checked CanActivate.
//
//sara:hotpath
func (d *DRAM) Activate(loc Location, now sim.Cycle) {
	if !d.CanActivate(loc, now) {
		panic(fmt.Sprintf("dram: illegal ACT at %d to %+v", now, loc))
	}
	t := d.cfg.Timing
	b := d.bank(loc)
	b.state = BankOpen
	b.row = loc.Row
	b.nextRead = maxCycle(b.nextRead, now+t.TRCD)
	b.nextWrite = maxCycle(b.nextWrite, now+t.TRCD)
	b.nextPrecharge = maxCycle(b.nextPrecharge, now+t.TRAS)
	rk := d.rank(loc)
	rk.lastAct = now
	rk.hasAct = true
	rk.actHistory[rk.actIdx] = now
	rk.actIdx = (rk.actIdx + 1) % len(rk.actHistory)
	rk.actCount++
	d.channels[loc.Channel].activates++
	d.markIssue(now)
}

// --- Precharge ---

// CanPrecharge reports whether a PRE to loc may issue at cycle now.
func (d *DRAM) CanPrecharge(loc Location, now sim.Cycle) bool {
	b := d.bank(loc)
	return b.state == BankOpen && now >= b.nextPrecharge
}

// Precharge closes the open row in the bank at loc.
//
//sara:hotpath
func (d *DRAM) Precharge(loc Location, now sim.Cycle) {
	if !d.CanPrecharge(loc, now) {
		panic(fmt.Sprintf("dram: illegal PRE at %d to %+v", now, loc))
	}
	b := d.bank(loc)
	b.state = BankClosed
	b.nextActivate = maxCycle(b.nextActivate, now+d.cfg.Timing.TRP)
	d.channels[loc.Channel].precharges++
	d.markIssue(now)
}

// --- Read ---

// CanRead reports whether a READ CAS to loc may issue at now. The open row
// must match loc.Row.
func (d *DRAM) CanRead(loc Location, now sim.Cycle) bool {
	b := d.bank(loc)
	if b.state != BankOpen || b.row != loc.Row {
		return false
	}
	ch := &d.channels[loc.Channel]
	if now < b.nextRead || now < ch.nextRead {
		return false
	}
	// The data burst [now+CL, now+CL+BL/2) must not collide with an
	// earlier burst still on the bus.
	return now+d.cfg.Timing.CL >= ch.dataFree
}

// Read issues a READ CAS and returns the cycle at which the last data beat
// arrives (i.e. when the transaction's data is fully available).
//
//sara:hotpath
func (d *DRAM) Read(loc Location, now sim.Cycle) sim.Cycle {
	if !d.CanRead(loc, now) {
		panic(fmt.Sprintf("dram: illegal READ at %d to %+v", now, loc))
	}
	t := d.cfg.Timing
	b := d.bank(loc)
	ch := &d.channels[loc.Channel]
	burst := t.BurstCycles()
	dataStart := now + t.CL
	dataEnd := dataStart + burst

	ch.dataFree = dataEnd
	// Same-channel CAS-to-CAS spacing.
	b.nextRead = maxCycle(b.nextRead, now+t.TCCD)
	ch.nextRead = maxCycle(ch.nextRead, now+t.TCCD)
	// Read-to-write turnaround: the write burst may not start before the
	// read burst has left the bus (plus one dead cycle).
	ch.nextWrite = maxCycle(ch.nextWrite, dataEnd+1-t.CWL)
	// Precharge must respect tRTP from the read command.
	b.nextPrecharge = maxCycle(b.nextPrecharge, now+t.TRTP)

	ch.readBursts++
	ch.bytesMoved += uint64(d.cfg.Geometry.BurstBytes(t))
	d.markIssue(now)
	return dataEnd
}

// --- Write ---

// CanWrite reports whether a WRITE CAS to loc may issue at now.
func (d *DRAM) CanWrite(loc Location, now sim.Cycle) bool {
	b := d.bank(loc)
	if b.state != BankOpen || b.row != loc.Row {
		return false
	}
	ch := &d.channels[loc.Channel]
	if now < b.nextWrite || now < ch.nextWrite {
		return false
	}
	return now+d.cfg.Timing.CWL >= ch.dataFree
}

// Write issues a WRITE CAS and returns the cycle at which the write data
// has been fully transferred (the controller acknowledges the transaction
// then).
//
//sara:hotpath
func (d *DRAM) Write(loc Location, now sim.Cycle) sim.Cycle {
	if !d.CanWrite(loc, now) {
		panic(fmt.Sprintf("dram: illegal WRITE at %d to %+v", now, loc))
	}
	t := d.cfg.Timing
	b := d.bank(loc)
	ch := &d.channels[loc.Channel]
	burst := t.BurstCycles()
	dataStart := now + t.CWL
	dataEnd := dataStart + burst

	ch.dataFree = dataEnd
	b.nextWrite = maxCycle(b.nextWrite, now+t.TCCD)
	ch.nextWrite = maxCycle(ch.nextWrite, now+t.TCCD)
	// Write-to-read turnaround (tWTR counted from end of write data).
	ch.nextRead = maxCycle(ch.nextRead, dataEnd+t.TWTR)
	// Write recovery before precharge (tWR from end of write data).
	b.nextPrecharge = maxCycle(b.nextPrecharge, dataEnd+t.TWR)

	ch.writeBursts++
	ch.bytesMoved += uint64(d.cfg.Geometry.BurstBytes(t))
	d.markIssue(now)
	return dataEnd
}

// --- Refresh ---
//
// Refresh is modeled as per-rank all-bank REF (LPDDR4 REFab): every tREFI
// cycles a rank owes one refresh, the owed count may swing within the
// JEDEC postponement/pull-in window, and an issued REF blacks the rank out
// for tRFC. The blackout needs no gating beyond the activate timestamps:
// REF requires every bank closed, and a closed bank admits no command
// until its activate gate — which REF pushes past the blackout — opens.

// RefreshEnabled reports whether the device models refresh.
func (d *DRAM) RefreshEnabled() bool { return d.cfg.Refresh.Enabled }

func (d *DRAM) chRank(ch, r int) *rank { return &d.ranks[ch*d.nRanks+r] }

// syncRefresh advances rank bookkeeping to now: every elapsed tREFI slot
// adds one owed refresh. It is idempotent for a fixed now, so the state is
// a pure function of simulated time regardless of how often callers query
// it — the property the skip-vs-step equivalence relies on.
func (d *DRAM) syncRefresh(rk *rank, now sim.Cycle) {
	for rk.refBoundary <= now {
		rk.refOwed++
		rk.refBoundary += d.cfg.Refresh.TREFI
	}
}

// RefreshOwed reports how many refreshes rank r of channel ch owes at
// cycle now (negative when refreshes have been pulled in ahead of
// schedule), or zero on a refresh-free device.
//
//sara:hotpath
func (d *DRAM) RefreshOwed(ch, r int, now sim.Cycle) int {
	if !d.cfg.Refresh.Enabled {
		return 0 // syncRefresh would spin on a zero tREFI
	}
	rk := d.chRank(ch, r)
	d.syncRefresh(rk, now)
	return rk.refOwed
}

// RefreshForced reports whether rank r's postponement window is exhausted
// at now: the controller must drain the rank and issue REF before serving
// it further.
//
//sara:hotpath
func (d *DRAM) RefreshForced(ch, r int, now sim.Cycle) bool {
	if !d.cfg.Refresh.Enabled {
		return false
	}
	return d.RefreshOwed(ch, r, now) >= d.cfg.Refresh.Window
}

// NextRefreshBoundary reports the first tREFI slot strictly after now, or
// zero on a refresh-free device.
//
//sara:hotpath
func (d *DRAM) NextRefreshBoundary(ch, r int, now sim.Cycle) sim.Cycle {
	if !d.cfg.Refresh.Enabled {
		return 0 // syncRefresh would spin on a zero tREFI
	}
	rk := d.chRank(ch, r)
	d.syncRefresh(rk, now)
	return rk.refBoundary
}

// RefreshReadyAt reports when a REF to rank r could issue absent further
// commands: allClosed is false while some bank still holds an open row (a
// precharge must come first); otherwise at is the earliest cycle every
// bank's activate gate — which folds tRP after PRE and tRFC after REF —
// has opened.
//
//sara:hotpath
func (d *DRAM) RefreshReadyAt(ch, r int) (at sim.Cycle, allClosed bool) {
	base := (ch*d.nRanks + r) * d.nBanks
	for b := 0; b < d.nBanks; b++ {
		bk := &d.banks[base+b]
		if bk.state != BankClosed {
			return 0, false
		}
		if bk.nextActivate > at {
			at = bk.nextActivate
		}
	}
	return at, true
}

// CanRefresh reports whether a REF to rank r of channel ch may issue at
// now: refresh enabled, every bank closed and past its activate gate, and
// pull-in capacity left in the window.
//
//sara:hotpath
func (d *DRAM) CanRefresh(ch, r int, now sim.Cycle) bool {
	if !d.cfg.Refresh.Enabled {
		return false
	}
	rk := d.chRank(ch, r)
	d.syncRefresh(rk, now)
	if rk.refOwed <= -d.cfg.Refresh.Window {
		return false
	}
	at, closed := d.RefreshReadyAt(ch, r)
	return closed && now >= at
}

// Refresh issues an all-bank REF to rank r of channel ch. The caller must
// have checked CanRefresh. Every bank's activate gate moves past the tRFC
// blackout; no command can reach a closed bank before that gate opens.
//
//sara:hotpath
func (d *DRAM) Refresh(ch, r int, now sim.Cycle) {
	if !d.CanRefresh(ch, r, now) {
		panic(fmt.Sprintf("dram: illegal REF at %d to channel %d rank %d", now, ch, r))
	}
	end := now + d.cfg.Refresh.TRFC
	base := (ch*d.nRanks + r) * d.nBanks
	for b := 0; b < d.nBanks; b++ {
		bk := &d.banks[base+b]
		bk.nextActivate = maxCycle(bk.nextActivate, end)
	}
	rk := d.chRank(ch, r)
	rk.refOwed--
	rk.refBlackoutEnd = end
	d.channels[ch].refreshes++
}

// BlackoutEnd reports the end of rank r's most recent tRFC blackout (zero
// before the first REF). Cycles in [end-tRFC, end) admit no command to
// the rank; the refresh property tests audit command streams against it.
func (d *DRAM) BlackoutEnd(ch, r int) sim.Cycle {
	return d.chRank(ch, r).refBlackoutEnd
}

// --- Scan snapshots ---
//
// A controller's queue scan evaluates every queued transaction against
// the same handful of banks. Snapshotting the channel's timing state once
// per scan — per-bank gates, per-rank ACT gates, the shared bus gates —
// turns the per-entry work into pure arithmetic on a small flat array.
// The snapshot stays valid for the whole scan because nothing but the
// scanning controller mutates its channel.
//
// Timing-gate monotonicity is a contract, not an accident: every gate in
// the snapshot (bank CAS/PRE/ACT, rank tRRD/tFAW, channel CAS spacing and
// bus occupancy) only ever moves LATER as commands issue — issuers fold
// new constraints with maxCycle, and the bus re-books only after its
// previous booking has cleared. The controller's per-bank candidate
// buckets (memctrl/bucket.go) depend on this to keep cached
// earliest-issuable bounds sound between scans: a gate that could move
// earlier without a command issuing on that bank would silently break
// skip-vs-step equivalence. The non-monotone inputs — row/reservation
// state and the refresh drain mask — are exactly the ones the patch
// points below (RefreshScanBank after a bank command, RefreshScanRank
// after a REF) hand back to the controller for explicit invalidation.

// BankScan is one bank's scan-relevant state.
type BankScan struct {
	Open       bool
	Row        uint64
	ReservedBy uint64
	NextRead   sim.Cycle // bank-level CAS gates; combine with ScanState.ChRead
	NextWrite  sim.Cycle
	NextPre    sim.Cycle
	NextAct    sim.Cycle // bank-level ACT gate; combine with ScanState.RankAct
}

// ScanState is a per-channel snapshot for one controller scan. Create it
// once with InitScan and refresh it with FillScan.
type ScanState struct {
	// ChRead/ChWrite fold the channel CAS-to-CAS spacing and the data-bus
	// occupancy into a single earliest-CAS gate.
	ChRead  sim.Cycle
	ChWrite sim.Cycle
	// RankAct[r] is rank r's ACT gate from tRRD and tFAW.
	RankAct []sim.Cycle
	// RefBlocked[r] marks rank r as closed to new transaction commands
	// because its refresh postponement window is exhausted and the
	// controller is draining it for a forced REF. The controller maintains
	// it from the device's RefreshForced state; the queue scan treats it
	// as an absolute timing gate.
	RefBlocked []bool
	// Banks is indexed by rank*Banks+bank (the controller's bankKey).
	Banks []BankScan
}

// InitScan sizes s for this device's geometry.
func (d *DRAM) InitScan(s *ScanState) {
	s.RankAct = make([]sim.Cycle, d.nRanks)
	s.RefBlocked = make([]bool, d.nRanks)
	s.Banks = make([]BankScan, d.nRanks*d.nBanks)
}

// RefreshScanBank re-reads the state a just-issued command at loc could
// have changed — loc's bank, its rank's ACT gate and the channel CAS
// gates — leaving the rest of the snapshot untouched. Controllers call it
// after each issue instead of refilling the whole snapshot every scan.
//
//sara:hotpath
func (d *DRAM) RefreshScanBank(ch int, loc Location, s *ScanState) {
	t := d.cfg.Timing
	c := &d.channels[ch]
	s.ChRead = maxCycle(c.nextRead, satSub(c.dataFree, t.CL))
	s.ChWrite = maxCycle(c.nextWrite, satSub(c.dataFree, t.CWL))
	rk := &d.ranks[ch*d.nRanks+loc.Rank]
	var gate sim.Cycle
	if rk.hasAct {
		gate = rk.lastAct + t.TRRD
	}
	if rk.actCount >= uint64(len(rk.actHistory)) {
		gate = maxCycle(gate, rk.actHistory[rk.actIdx]+t.TFAW)
	}
	s.RankAct[loc.Rank] = gate
	bk := &d.banks[(ch*d.nRanks+loc.Rank)*d.nBanks+loc.Bank]
	s.Banks[loc.Rank*d.nBanks+loc.Bank] = BankScan{
		Open:       bk.state == BankOpen,
		Row:        bk.row,
		ReservedBy: bk.reservedBy,
		NextRead:   bk.nextRead,
		NextWrite:  bk.nextWrite,
		NextPre:    bk.nextPrecharge,
		NextAct:    bk.nextActivate,
	}
}

// RefreshScanRank re-reads the activate gates a just-issued REF moved —
// every bank of the rank — leaving CAS, precharge and channel gates
// untouched (REF changes nothing else).
//
//sara:hotpath
func (d *DRAM) RefreshScanRank(ch, r int, s *ScanState) {
	base := (ch*d.nRanks + r) * d.nBanks
	out := s.Banks[r*d.nBanks:]
	for b := 0; b < d.nBanks; b++ {
		out[b].NextAct = d.banks[base+b].nextActivate
	}
}

// FillScan refreshes s with channel's current timing state.
func (d *DRAM) FillScan(ch int, s *ScanState) {
	t := d.cfg.Timing
	c := &d.channels[ch]
	s.ChRead = maxCycle(c.nextRead, satSub(c.dataFree, t.CL))
	s.ChWrite = maxCycle(c.nextWrite, satSub(c.dataFree, t.CWL))
	for r := 0; r < d.nRanks; r++ {
		rk := &d.ranks[ch*d.nRanks+r]
		var gate sim.Cycle
		if rk.hasAct {
			gate = rk.lastAct + t.TRRD
		}
		if rk.actCount >= uint64(len(rk.actHistory)) {
			gate = maxCycle(gate, rk.actHistory[rk.actIdx]+t.TFAW)
		}
		s.RankAct[r] = gate
		base := (ch*d.nRanks + r) * d.nBanks
		out := s.Banks[r*d.nBanks:]
		for b := 0; b < d.nBanks; b++ {
			bk := &d.banks[base+b]
			out[b] = BankScan{
				Open:       bk.state == BankOpen,
				Row:        bk.row,
				ReservedBy: bk.reservedBy,
				NextRead:   bk.nextRead,
				NextWrite:  bk.nextWrite,
				NextPre:    bk.nextPrecharge,
				NextAct:    bk.nextActivate,
			}
		}
	}
}

func (d *DRAM) markIssue(now sim.Cycle) {
	if !d.anyIssue {
		d.firstIssue = now
		d.anyIssue = true
	}
	d.lastIssue = now
}

func maxCycle(a, b sim.Cycle) sim.Cycle {
	if a > b {
		return a
	}
	return b
}

// satSub returns a-b, floored at zero (cycles are unsigned).
func satSub(a, b sim.Cycle) sim.Cycle {
	if a <= b {
		return 0
	}
	return a - b
}
